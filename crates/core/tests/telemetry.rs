//! End-to-end telemetry integration: a tracked sequence populates every
//! per-stage histogram and the pool counters in the global registry.
//!
//! Gated on the `telemetry` feature so `--no-default-features` builds (where
//! recording compiles away) skip it; the runtime toggle is forced on so the
//! `EYECOD_TELEMETRY=0` CI job still exercises the instrumentation.
#![cfg(feature = "telemetry")]

use eyecod_core::tracker::{EyeTracker, TrackerConfig};
use eyecod_core::training::{train_tracker_models, TrainingSetup};
use eyecod_eyedata::sequence::EyeMotionGenerator;
use eyecod_telemetry::global;

#[test]
fn tracked_sequence_populates_stage_histograms_and_pool_counters() {
    eyecod_telemetry::set_enabled(true);
    global().reset();

    let mut config = TrackerConfig::small();
    // pin the recon path: the per-frame `optics/recon_solves` expectation
    // below is a property of the full-recon backends, not of the latent
    // fast path (which solves on refresh frames only, by design) — the
    // latent CI job must not flip this test's meaning through the env
    config.gaze_backend = eyecod_core::tracker::GazeBackend::F32;
    let models = train_tracker_models(&TrainingSetup::quick(), &config);
    let mut tracker = EyeTracker::new(config.clone(), models.clone_models());
    let frames = 12;
    let stats = tracker.run_sequence(&mut EyeMotionGenerator::with_seed(3), frames);
    assert_eq!(stats.frames, frames);

    // sequences in parallel exercise the pool counters as well
    EyeTracker::run_sequences_parallel(&config, &models, &[4, 5, 6], 6);

    let snap = global().snapshot();

    // per-stage latency histograms from process_frame
    for stage in [
        "tracker/frame_ns",
        "tracker/acquire_ns",
        "tracker/segment_ns",
        "tracker/crop_resize_ns",
        "tracker/gaze_forward_ns",
    ] {
        let h = snap
            .histogram(stage)
            .unwrap_or_else(|| panic!("missing stage histogram {stage}"));
        assert!(h.count > 0, "{stage} recorded nothing");
        assert!(h.median() <= h.p99(), "{stage} quantiles inconsistent");
        assert!(h.sum >= h.count, "{stage} has sub-nanosecond stages?");
    }
    // the per-frame stages ran once per frame (sequential + 3×6 parallel)
    let total_frames = (frames + 3 * 6) as u64;
    assert_eq!(snap.counter("tracker/frames"), Some(total_frames));
    assert_eq!(
        snap.histogram("tracker/frame_ns").unwrap().count,
        total_frames
    );
    // segmentation only runs on refresh frames
    let seg = snap.histogram("tracker/segment_ns").unwrap();
    assert!(seg.count < total_frames);
    assert_eq!(snap.counter("tracker/roi_refreshes"), Some(seg.count));

    // the FlatCam reconstruction underneath acquisition was timed too
    assert!(snap.counter("optics/recon_solves").unwrap_or(0) >= total_frames);
    assert!(snap.histogram("optics/recon_solve_ns").is_some());

    // training + parallel sequences submitted pool jobs
    assert!(snap.counter("pool/jobs").unwrap_or(0) > 0, "no pool jobs");
    let h = snap.histogram("pool/job_wall_ns").expect("pool wall hist");
    assert_eq!(Some(h.count), snap.counter("pool/jobs"));
    // every claimed chunk is either self-executed or stolen; at least the
    // self-executed path must have fired
    assert!(snap.counter("pool/chunks_self").unwrap_or(0) > 0);

    // the snapshot JSON round-trips with every metric intact
    let json = snap.to_json();
    let back = eyecod_telemetry::Snapshot::from_json(&json).expect("parse");
    assert_eq!(back, snap);
}
