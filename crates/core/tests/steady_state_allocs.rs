//! Allocation regression: a steady-state tracker frame must not touch the
//! heap.
//!
//! The tracker owns every per-stage buffer (acquisition matrices,
//! reconstruction workspace, ROI crop, gaze input, network arena), so once
//! those are warm — after the first ROI refresh and, under the int8
//! backend, after calibration — `process_frame` on a non-refresh frame is
//! designed to perform **zero** transient heap allocations, mirroring the
//! accelerator's fixed on-chip buffers. This test installs the counting
//! global allocator and pins that property for all three gaze backends
//! (the latent fast path senses, projects and regresses through its own
//! pre-warmed buffers — skipping recon entirely must not cost a single
//! allocation either); one stray per-frame `clone()` anywhere in the
//! frame path fails it.
//!
//! Kept as a single `#[test]` so no concurrent test pollutes the process-
//! wide allocation counter while a frame is being measured.

use eyecod_core::alloc_counter::{allocations, CountingAllocator};
use eyecod_core::tracker::{EyeTracker, GazeBackend, TrackerConfig};
use eyecod_core::training::{train_tracker_models, TrainingSetup};
use eyecod_eyedata::render::{render_eye, EyeParams};
use eyecod_faults::FaultPlan;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_frames_do_not_allocate_on_any_backend() {
    let base = TrackerConfig::small();
    let models = train_tracker_models(&TrainingSetup::quick(), &base);
    // the scene is rendered once, outside the measured window
    let scene = render_eye(&EyeParams::centered(base.scene_size), base.scene_size, 0).image;

    for backend in [GazeBackend::F32, GazeBackend::Int8, GazeBackend::Latent] {
        let config = TrackerConfig {
            gaze_backend: backend,
            ..base.clone()
        };
        let mut tracker =
            EyeTracker::new(config, models.clone_models()).with_faults(FaultPlan::none());

        // warm-up: ROI refreshes fire at frames 0 and 10 (`roi_period` 10),
        // int8 calibration completes at frame 7 (`calibration_frames` 8),
        // and frame 11 runs the first fully-warm steady-state frame — by
        // frame 12 every scratch buffer and telemetry static exists
        for frame in 0..12u64 {
            tracker.process_frame(&scene, frame);
        }

        #[cfg(feature = "telemetry")]
        let counter_before = eyecod_telemetry::global()
            .snapshot()
            .counter("tracker/steady_state_allocs");

        for frame in 12..20u64 {
            let before = allocations();
            let out = tracker.process_frame(&scene, frame);
            let delta = allocations() - before;
            assert!(!out.roi_refreshed, "frame {frame} unexpectedly refreshed");
            assert_eq!(
                delta, 0,
                "{backend:?} backend: steady-state frame {frame} made {delta} heap allocations"
            );
        }

        // the tracker's own accounting agrees: the steady-state counter did
        // not move across the measured window
        #[cfg(feature = "telemetry")]
        assert_eq!(
            counter_before,
            eyecod_telemetry::global()
                .snapshot()
                .counter("tracker/steady_state_allocs"),
            "{backend:?} backend: tracker/steady_state_allocs grew during steady state"
        );
    }
}
