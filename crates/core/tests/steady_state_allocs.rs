//! Allocation regression: a steady-state tracker frame must not touch the
//! heap.
//!
//! The tracker owns every per-stage buffer (acquisition matrices,
//! reconstruction workspace, ROI crop, gaze input, network arena), so once
//! those are warm — after the first ROI refresh and, under the int8
//! backend, after calibration — `process_frame` on a non-refresh frame is
//! designed to perform **zero** transient heap allocations, mirroring the
//! accelerator's fixed on-chip buffers. This test installs the counting
//! global allocator and pins that property for all three gaze backends
//! (the latent fast path senses, projects and regresses through its own
//! pre-warmed buffers — skipping recon entirely must not cost a single
//! allocation either); one stray per-frame `clone()` anywhere in the
//! frame path fails it.
//!
//! The event-driven delta path carries the same contract: once the delta
//! caches are primed (first dense refresh) every steady frame — whether it
//! applies a sparse column update or is skipped outright by the motion
//! gate — must also be allocation-free, for all three backends. And the
//! truncated-rank workspace solve (`reconstruct_truncated_into`) is pinned
//! directly: after one warming call, re-solving at any admissible rank
//! touches no heap.
//!
//! Kept as a single `#[test]` so no concurrent test pollutes the process-
//! wide allocation counter while a frame is being measured.

use eyecod_core::alloc_counter::{allocations, CountingAllocator};
use eyecod_core::tracker::{EyeTracker, GazeBackend, TrackerConfig};
use eyecod_core::training::{train_tracker_models, TrainingSetup};
use eyecod_eyedata::render::{render_eye, EyeParams};
use eyecod_faults::FaultPlan;
use eyecod_optics::mat::Mat;
use eyecod_optics::recon::ReconWorkspace;
use eyecod_optics::{FlatCam, SensorModel, SeparableMask, TikhonovReconstructor};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_frames_do_not_allocate_on_any_backend() {
    let base = TrackerConfig::small();
    let models = train_tracker_models(&TrainingSetup::quick(), &base);
    // the scene is rendered once, outside the measured window
    let scene = render_eye(&EyeParams::centered(base.scene_size), base.scene_size, 0).image;

    for backend in [GazeBackend::F32, GazeBackend::Int8, GazeBackend::Latent] {
        let config = TrackerConfig {
            gaze_backend: backend,
            ..base.clone()
        };
        let mut tracker =
            EyeTracker::new(config, models.clone_models()).with_faults(FaultPlan::none());

        // warm-up: ROI refreshes fire at frames 0 and 10 (`roi_period` 10),
        // int8 calibration completes at frame 7 (`calibration_frames` 8),
        // and frame 11 runs the first fully-warm steady-state frame — by
        // frame 12 every scratch buffer and telemetry static exists
        for frame in 0..12u64 {
            tracker.process_frame(&scene, frame);
        }

        #[cfg(feature = "telemetry")]
        let counter_before = eyecod_telemetry::global()
            .snapshot()
            .counter("tracker/steady_state_allocs");

        for frame in 12..20u64 {
            let before = allocations();
            let out = tracker.process_frame(&scene, frame);
            let delta = allocations() - before;
            assert!(!out.roi_refreshed, "frame {frame} unexpectedly refreshed");
            assert_eq!(
                delta, 0,
                "{backend:?} backend: steady-state frame {frame} made {delta} heap allocations"
            );
        }

        // the tracker's own accounting agrees: the steady-state counter did
        // not move across the measured window
        #[cfg(feature = "telemetry")]
        assert_eq!(
            counter_before,
            eyecod_telemetry::global()
                .snapshot()
                .counter("tracker/steady_state_allocs"),
            "{backend:?} backend: tracker/steady_state_allocs grew during steady state"
        );
    }

    // ---- event-driven delta path: gated AND sparse-update frames are
    // allocation-free once primed ----
    //
    // Two scenes, fed as A A B B A A …: repeating a scene gates the frame
    // (zero changed pixels), switching scenes exceeds the gate threshold
    // and runs the sparse column update. Warm-up runs through two ROI
    // refreshes (delta caches prime on each dense refresh, buffers sized
    // to the full column count) and, for int8, past calibration; the
    // measured window then alternates both steady-state frame kinds.
    let scene_b = {
        let mut p = EyeParams::centered(base.scene_size);
        p.yaw = 0.25;
        render_eye(&p, base.scene_size, 1).image
    };
    let scenes = [&scene, &scene_b];
    for backend in [GazeBackend::F32, GazeBackend::Int8, GazeBackend::Latent] {
        let config = TrackerConfig {
            gaze_backend: backend,
            delta: true,
            delta_threshold: 16,
            ..base.clone()
        };
        let mut tracker =
            EyeTracker::new(config, models.clone_models()).with_faults(FaultPlan::none());
        for frame in 0..22u64 {
            tracker.process_frame(scenes[(frame as usize / 2) % 2], frame);
        }

        let mut gated = 0usize;
        let mut sparse = 0usize;
        for frame in 22..30u64 {
            let input = scenes[(frame as usize / 2) % 2];
            let before = allocations();
            let out = tracker.process_frame(input, frame);
            let delta = allocations() - before;
            assert!(!out.roi_refreshed, "frame {frame} unexpectedly refreshed");
            assert_eq!(
                delta, 0,
                "{backend:?} backend: delta-mode steady frame {frame} (skipped={}) made {delta} heap allocations",
                out.gaze_skipped
            );
            if out.gaze_skipped {
                gated += 1;
            } else {
                sparse += 1;
            }
        }
        assert!(
            gated > 0 && sparse > 0,
            "{backend:?} backend: measured window must cover both gated ({gated}) and sparse ({sparse}) frames"
        );
    }

    // ---- truncated-rank workspace solve: warm once, then re-solving at
    // any admissible rank reuses the workspace without touching the heap
    // (ranks shrink below the warming rank; `Mat::reset` keeps capacity) ----
    let mask = SeparableMask::mls(2 * base.scene_size, base.scene_size, 9);
    let cam = FlatCam::new(mask.clone(), SensorModel::low_light());
    let recon = TikhonovReconstructor::new(&mask, 1e-4);
    let y = cam.capture(
        &Mat::from_fn(base.scene_size, base.scene_size, |r, c| {
            ((r * 7 + c * 3) % 11) as f64 / 11.0
        }),
        42,
    );
    let mut ws = ReconWorkspace::new();
    let mut out = Mat::zeros(1, 1);
    recon.reconstruct_truncated_into(&y, base.scene_size, &mut ws, &mut out);
    for rank in [base.scene_size, base.scene_size / 2, 4] {
        let before = allocations();
        recon.reconstruct_truncated_into(&y, rank, &mut ws, &mut out);
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "warm reconstruct_truncated_into at rank {rank} made {delta} heap allocations"
        );
    }
}
