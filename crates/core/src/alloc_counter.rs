//! A counting global allocator for allocation-regression tests.
//!
//! The steady-state frame path is designed to perform **zero** transient
//! heap allocations (every buffer lives in tracker-owned scratch, mirroring
//! the accelerator's fixed on-chip global buffers). That property is easy to
//! lose silently — one stray `clone()` re-introduces per-frame allocation —
//! so the tracker records the per-frame allocation delta in the
//! `tracker/steady_state_allocs` telemetry counter, and an integration test
//! installs [`CountingAllocator`] as the `#[global_allocator]` and asserts
//! the delta stays zero.
//!
//! When the counting allocator is *not* installed (every production build),
//! [`allocations`] always reads 0 and the telemetry counter never moves; the
//! counting costs nothing outside tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-forwarding allocator that counts every allocation event
/// (`alloc`, `alloc_zeroed`, and growth via `realloc`). Install it in a test
/// binary with `#[global_allocator]` and read [`allocations`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAllocator;

// SAFETY: every method forwards verbatim to `System`; the counter update is
// a relaxed atomic increment with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocation events counted so far. Always 0 unless
/// [`CountingAllocator`] is installed as the global allocator.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
