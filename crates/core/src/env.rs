//! Validated environment-knob parsing, shared by every `EYECOD_*` toggle.
//!
//! Every knob in the system goes through this module so that a garbled
//! value **hard-panics with the variable name and the offending value**
//! instead of silently falling back to a default — a silently ignored knob
//! would make an operator believe a limit or mode is in force when it is
//! not (the failure mode the `EYECOD_GAZE_BACKEND` parser fixed, now
//! applied uniformly).
//!
//! An *unset* variable, or one set to the empty string / whitespace, is
//! treated as absent and yields the caller's default; only a present,
//! non-empty, unparseable value panics.
//!
//! The `parse_*` functions take the variable name purely for the error
//! message, which keeps them testable without mutating the process
//! environment (env mutation races across the parallel test harness).

/// Reads `name`, treating unset / empty / whitespace-only values as
/// absent.
pub fn read(name: &str) -> Option<String> {
    match std::env::var(name) {
        Ok(v) if v.trim().is_empty() => None,
        Ok(v) => Some(v),
        Err(_) => None,
    }
}

/// Parses a decimal unsigned integer knob value.
///
/// # Panics
///
/// Panics with the variable name on anything `usize::from_str` rejects.
pub fn parse_usize(name: &str, value: &str) -> usize {
    value
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("bad {name} value {value:?} (want an unsigned integer)"))
}

/// Parses a boolean knob value: `1`/`on`/`true`/`yes` or
/// `0`/`off`/`false`/`no`, case-insensitive.
///
/// # Panics
///
/// Panics with the variable name on any other spelling.
pub fn parse_bool(name: &str, value: &str) -> bool {
    match value.trim().to_ascii_lowercase().as_str() {
        "1" | "on" | "true" | "yes" => true,
        "0" | "off" | "false" | "no" => false,
        _ => panic!("bad {name} value {value:?} (want 1|on|true|yes or 0|off|false|no)"),
    }
}

/// `name` as a `usize`, or `default` when absent.
///
/// # Panics
///
/// Panics on a present, unparseable value.
pub fn usize_or(name: &str, default: usize) -> usize {
    read(name).map_or(default, |v| parse_usize(name, &v))
}

/// `name` as a `usize`, or `None` when absent.
///
/// # Panics
///
/// Panics on a present, unparseable value.
pub fn opt_usize(name: &str) -> Option<usize> {
    read(name).map(|v| parse_usize(name, &v))
}

/// `name` as a boolean toggle, or `default` when absent.
///
/// # Panics
///
/// Panics on a present, unparseable value.
pub fn bool_or(name: &str, default: bool) -> bool {
    read(name).map_or(default, |v| parse_bool(name, &v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_parse_with_surrounding_whitespace() {
        assert_eq!(parse_usize("EYECOD_TEST_INT", "42"), 42);
        assert_eq!(parse_usize("EYECOD_TEST_INT", " 7 "), 7);
        assert_eq!(parse_usize("EYECOD_TEST_INT", "0"), 0);
    }

    #[test]
    #[should_panic(expected = "bad EYECOD_TEST_INT value \"4k\"")]
    fn garbage_integer_hard_panics_with_the_variable_name() {
        parse_usize("EYECOD_TEST_INT", "4k");
    }

    #[test]
    #[should_panic(expected = "bad EYECOD_TEST_INT value \"-3\"")]
    fn negative_integer_hard_panics() {
        parse_usize("EYECOD_TEST_INT", "-3");
    }

    #[test]
    fn booleans_accept_the_documented_spellings() {
        for v in ["1", "on", "TRUE", "Yes"] {
            assert!(parse_bool("EYECOD_TEST_BOOL", v), "{v}");
        }
        for v in ["0", "off", "False", "NO"] {
            assert!(!parse_bool("EYECOD_TEST_BOOL", v), "{v}");
        }
    }

    #[test]
    #[should_panic(expected = "bad EYECOD_TEST_BOOL value \"enable\"")]
    fn garbage_boolean_hard_panics() {
        parse_bool("EYECOD_TEST_BOOL", "enable");
    }

    #[test]
    fn absent_and_blank_variables_yield_the_default() {
        // unique names: never set anywhere, so no env races
        assert_eq!(usize_or("EYECOD_TEST_NEVER_SET_U", 9), 9);
        assert_eq!(opt_usize("EYECOD_TEST_NEVER_SET_U"), None);
        assert!(bool_or("EYECOD_TEST_NEVER_SET_B", true));
        std::env::set_var("EYECOD_TEST_BLANK_KNOB", "  ");
        assert_eq!(usize_or("EYECOD_TEST_BLANK_KNOB", 3), 3);
        assert_eq!(read("EYECOD_TEST_BLANK_KNOB"), None);
    }

    #[test]
    fn set_variables_parse_through_the_env_helpers() {
        std::env::set_var("EYECOD_TEST_SET_KNOB", "17");
        assert_eq!(usize_or("EYECOD_TEST_SET_KNOB", 3), 17);
        assert_eq!(opt_usize("EYECOD_TEST_SET_KNOB"), Some(17));
        std::env::set_var("EYECOD_TEST_SET_FLAG", "on");
        assert!(bool_or("EYECOD_TEST_SET_FLAG", false));
    }
}
