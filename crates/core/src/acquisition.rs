//! Image acquisition: lens camera vs lensless FlatCam.

use eyecod_faults::{FaultPlan, FaultSite};
use eyecod_optics::degrade::degrade_measurement;
use eyecod_optics::imaging::FlatCam;
use eyecod_optics::mask::SeparableMask;
use eyecod_optics::mat::Mat;
use eyecod_optics::recon::{DeltaReconWorkspace, ReconWorkspace, TikhonovReconstructor};
use eyecod_optics::sensor::SensorModel;
use eyecod_tensor::{Shape, Tensor};

/// Reusable buffers for [`Acquisition::acquire_faulted_into`]: the scene
/// staging matrix, the FlatCam capture temporaries, and the reconstruction
/// workspace. Buffers are sized on first use and then reused verbatim, so a
/// steady-state acquisition performs zero heap allocations.
#[derive(Debug, Clone)]
pub struct AcquireScratch {
    /// Scene staged as a matrix (the faulted image itself on the lens path).
    m: Mat,
    /// FlatCam capture temporary (`Φ_L · scene`).
    tmp: Mat,
    /// FlatCam measurement, degraded in place.
    y: Mat,
    /// Reconstructed image.
    recon: Mat,
    /// Tikhonov reconstruction intermediates.
    ws: ReconWorkspace,
    /// Event-driven delta-path caches and factor buffers.
    delta: DeltaCache,
}

impl AcquireScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        AcquireScratch {
            m: Mat::zeros(1, 1),
            tmp: Mat::zeros(1, 1),
            y: Mat::zeros(1, 1),
            recon: Mat::zeros(1, 1),
            ws: ReconWorkspace::new(),
            delta: DeltaCache::new(),
        }
    }

    /// Whether the delta caches hold a valid full capture to update
    /// against (set by [`Acquisition::prime_delta`], cleared by
    /// [`AcquireScratch::invalidate_delta`]).
    pub fn delta_primed(&self) -> bool {
        self.delta.primed
    }

    /// Invalidates the delta caches, forcing the next frame through the
    /// dense path (used after a lost frame leaves the caches out of sync
    /// with the scene stream).
    pub fn invalidate_delta(&mut self) {
        self.delta.primed = false;
    }
}

impl Default for AcquireScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-session state of the event-driven sparse acquisition path: the last
/// fully-sensed scene (the diff base), the cached measurement and cached
/// reconstruction it produced, and the factor buffers a sparse-column
/// update runs through. All buffers are pre-warmed at the maximum column
/// count by the first [`Acquisition::prime_delta`], so steady-state delta
/// frames allocate nothing.
#[derive(Debug, Clone)]
struct DeltaCache {
    /// The caches below mirror a real full capture.
    primed: bool,
    /// Buffers already pre-sized at full width (first prime only).
    warmed: bool,
    /// The last fully-sensed scene — the base the change columns diff
    /// against.
    scene: Mat,
    /// Cached transported signal: the FlatCam measurement (with its
    /// refresh-frame sensor noise baked in), or the captured image for the
    /// lens baseline. Delta frames add the *clean* measurement delta — the
    /// event-readout semantics: events carry no fresh exposure noise.
    y: Mat,
    /// Cached reconstruction of `y`, updated incrementally.
    x: Mat,
    /// Changed-column scene deltas (`scene × k`).
    dx: Mat,
    /// Left measurement factor `A = Φ_L · ΔX[:,cols]`.
    fa: Mat,
    /// Right measurement factor `B = Φ_R[:,cols]`.
    fb: Mat,
    /// Dense measurement delta `A·Bᵀ` (accumulated into `y`).
    dy: Mat,
    /// Incremental-update intermediates.
    dws: DeltaReconWorkspace,
    /// Changed-column indices staged between change detection and the
    /// sparse update (capacity reserved at prime, so the per-frame
    /// detect → apply hand-off allocates nothing).
    cols: Vec<usize>,
}

impl DeltaCache {
    fn new() -> Self {
        DeltaCache {
            primed: false,
            warmed: false,
            scene: Mat::zeros(1, 1),
            y: Mat::zeros(1, 1),
            x: Mat::zeros(1, 1),
            dx: Mat::zeros(1, 1),
            fa: Mat::zeros(1, 1),
            fb: Mat::zeros(1, 1),
            dy: Mat::zeros(1, 1),
            dws: DeltaReconWorkspace::new(),
            cols: Vec::new(),
        }
    }
}

/// How frames are acquired before entering the processing pipeline.
///
/// The FlatCam variant is much larger than the lens variant (it owns the
/// mask SVD factors); acquisitions are constructed once per tracker, so the
/// size imbalance is irrelevant in practice.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Acquisition {
    /// An ideal(ised) lens camera: the scene arrives focused, with only
    /// mild sensor noise. The baseline of Tables 2 and 3 ("Origin Image").
    Lens {
        /// Sensor model applied to the focused image.
        sensor: SensorModel,
    },
    /// A FlatCam: coded capture followed by Tikhonov reconstruction. The
    /// reconstruction carries the noise amplification and artefacts that
    /// make the FlatCam columns of Tables 2/3 slightly harder.
    FlatCam {
        /// The camera (mask + sensor model).
        camera: FlatCam,
        /// The matching precomputed reconstructor.
        reconstructor: TikhonovReconstructor,
    },
}

impl Acquisition {
    /// Builds a FlatCam acquisition for `scene`-sized square images with a
    /// `sensor`-sized measurement and regularisation `epsilon`.
    pub fn flatcam(scene: usize, sensor: usize, epsilon: f64, seed: u32) -> Self {
        // the differential (calibrated complementary-capture) model with an
        // NIR-illuminated sensor — the operating point of a VR/AR eye camera
        let mask = SeparableMask::mls_differential(sensor, scene, seed);
        let reconstructor = TikhonovReconstructor::new(&mask, epsilon);
        Acquisition::FlatCam {
            camera: FlatCam::new(mask, SensorModel::nir_eye_tracking()),
            reconstructor,
        }
    }

    /// Builds the lens baseline with the same NIR-illuminated sensor
    /// operating point as the FlatCam path (so the comparison isolates the
    /// optics).
    pub fn lens() -> Self {
        Acquisition::Lens {
            sensor: SensorModel::nir_eye_tracking(),
        }
    }

    /// Acquires a scene: returns the image the processing pipeline sees.
    ///
    /// `scene` is a `(1, 1, S, S)` grayscale ground-truth image; `seed`
    /// drives the per-frame sensor noise.
    ///
    /// # Panics
    ///
    /// Panics if the scene is not square or does not match the FlatCam
    /// geometry.
    pub fn acquire(&self, scene: &Tensor, seed: u64) -> Tensor {
        let s = scene.shape();
        assert_eq!(s.h, s.w, "scenes must be square, got {s}");
        match self {
            Acquisition::Lens { sensor } => {
                let m = Mat::from_tensor(scene);
                sensor.apply(&m, seed).to_tensor()
            }
            Acquisition::FlatCam {
                camera,
                reconstructor,
            } => {
                let m = Mat::from_tensor(scene);
                let y = camera.capture(&m, seed);
                reconstructor.reconstruct(&y).to_tensor()
            }
        }
    }

    /// [`Acquisition::acquire`] with the plan's sensor- and link-plane
    /// faults applied to the transported signal: pixel-mask / readout /
    /// noise degradation on the raw capture (the FlatCam measurement, or
    /// the focused image for the lens baseline), then transport-tail
    /// truncation and exponent-bit corruption on the link.
    ///
    /// `attempt` salts the link-plane draws so a re-requested transfer can
    /// arrive clean, and re-draws the sensor noise (a retry is a fresh
    /// exposure); static pixel defects and per-frame sensor events replay
    /// identically across attempts. With a no-fault plan and `attempt` 0
    /// the result is byte-identical to [`Acquisition::acquire`].
    ///
    /// Returns the acquired image and the number of injected fault events.
    pub fn acquire_faulted(
        &self,
        scene: &Tensor,
        seed: u64,
        plan: &FaultPlan,
        frame: u64,
        attempt: u64,
    ) -> (Tensor, u32) {
        let mut scratch = AcquireScratch::new();
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        let injected =
            self.acquire_faulted_into(scene, seed, plan, frame, attempt, &mut scratch, &mut out);
        (out, injected)
    }

    /// [`Acquisition::acquire_faulted`] writing the acquired image into a
    /// caller-owned tensor through reusable scratch buffers — the
    /// allocation-free variant the steady-state frame path uses. Every step
    /// runs the in-place twin of the allocating chain (`assign_tensor` /
    /// `apply_inplace` / `capture_into` / `reconstruct_into` /
    /// `write_tensor`), each of which is byte-identical to its allocating
    /// counterpart, so both variants produce identical images.
    ///
    /// Implemented as [`Acquisition::capture_faulted_into`] followed by
    /// [`Acquisition::recon_into`]: the columnar serve scheduler runs those
    /// two halves as separate column sweeps, and this composition is the
    /// conformance reference that keeps them byte-identical.
    ///
    /// Returns the number of injected fault events.
    #[allow(clippy::too_many_arguments)]
    pub fn acquire_faulted_into(
        &self,
        scene: &Tensor,
        seed: u64,
        plan: &FaultPlan,
        frame: u64,
        attempt: u64,
        scratch: &mut AcquireScratch,
        out: &mut Tensor,
    ) -> u32 {
        let injected = self.capture_faulted_into(scene, seed, plan, frame, attempt, scratch);
        self.recon_into(scratch, out);
        injected
    }

    /// The capture half of [`Acquisition::acquire_faulted_into`]: sensor
    /// exposure, sensor-plane degradation, and link-plane transport faults,
    /// leaving the transported signal staged inside `scratch` (the FlatCam
    /// measurement in `y`, or the focused image in `m` for the lens
    /// baseline). [`Acquisition::recon_into`] turns the staged signal into
    /// the image the pipeline sees.
    ///
    /// Returns the number of injected fault events.
    pub fn capture_faulted_into(
        &self,
        scene: &Tensor,
        seed: u64,
        plan: &FaultPlan,
        frame: u64,
        attempt: u64,
        scratch: &mut AcquireScratch,
    ) -> u32 {
        let s = scene.shape();
        assert_eq!(s.h, s.w, "scenes must be square, got {s}");
        let capture_seed = seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        match self {
            Acquisition::Lens { sensor } => {
                scratch.m.assign_tensor(scene);
                sensor.apply_inplace(&mut scratch.m, capture_seed);
                let mut injected =
                    degrade_measurement(plan, &mut scratch.m, frame, sensor.saturation);
                injected += apply_link_faults(plan, &mut scratch.m, frame, attempt);
                injected
            }
            Acquisition::FlatCam { camera, .. } => {
                scratch.m.assign_tensor(scene);
                camera.capture_into(&scratch.m, capture_seed, &mut scratch.tmp, &mut scratch.y);
                let mut injected =
                    degrade_measurement(plan, &mut scratch.y, frame, camera.sensor().saturation);
                injected += apply_link_faults(plan, &mut scratch.y, frame, attempt);
                injected
            }
        }
    }

    /// The reconstruction half of [`Acquisition::acquire_faulted_into`]:
    /// reads the signal a matching [`Acquisition::capture_faulted_into`]
    /// staged in `scratch` and writes the image the processing pipeline
    /// sees into `out` (Tikhonov reconstruction for the FlatCam, a plain
    /// copy for the lens baseline). Allocation-free once buffers are sized.
    pub fn recon_into(&self, scratch: &mut AcquireScratch, out: &mut Tensor) {
        match self {
            Acquisition::Lens { .. } => scratch.m.write_tensor(out),
            Acquisition::FlatCam { reconstructor, .. } => {
                reconstructor.reconstruct_into(&scratch.y, &mut scratch.ws, &mut scratch.recon);
                scratch.recon.write_tensor(out);
            }
        }
    }

    /// The latent twin of [`Acquisition::recon_into`]: reads the signal a
    /// matching [`Acquisition::capture_faulted_into`] staged in `scratch`
    /// and writes the **raw transported signal** — the FlatCam measurement
    /// itself, or the focused image for the lens baseline — into `out`,
    /// skipping the Tikhonov solve entirely. This is what the latent gaze
    /// backend consumes on steady-state frames. Allocation-free once
    /// buffers are sized.
    pub fn sense_into(&self, scratch: &AcquireScratch, out: &mut Tensor) {
        match self {
            Acquisition::Lens { .. } => scratch.m.write_tensor(out),
            Acquisition::FlatCam { .. } => scratch.y.write_tensor(out),
        }
    }

    /// Allocating variant of [`Acquisition::sense_into`] for the training
    /// path: captures `scene` (no fault plan, attempt 0) and returns the
    /// raw transported signal. Uses the same capture seed derivation as
    /// [`Acquisition::acquire`], so for equal seeds the measurement is the
    /// one underneath the image `acquire` would reconstruct.
    pub fn sense(&self, scene: &Tensor, seed: u64) -> Tensor {
        let mut scratch = AcquireScratch::new();
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        self.capture_faulted_into(scene, seed, &FaultPlan::none(), 0, 0, &mut scratch);
        self.sense_into(&scratch, &mut out);
        out
    }

    /// Primes the delta caches from the dense capture currently staged in
    /// `scratch`: `scene` becomes the diff base, and the staged transported
    /// signal plus its reconstruction become the caches subsequent
    /// [`Acquisition::sense_delta_into`] calls update incrementally. Must
    /// run after a successful dense [`Acquisition::capture_faulted_into`] +
    /// [`Acquisition::recon_into`] pair for this `scene`.
    ///
    /// The first prime pre-sizes every delta buffer at the maximum column
    /// count, so every later delta frame (any column count) allocates
    /// nothing.
    pub fn prime_delta(&self, scene: &Tensor, scratch: &mut AcquireScratch) {
        let s = scene.shape();
        assert_eq!(s.h, s.w, "scenes must be square, got {s}");
        let n = s.h;
        let d = &mut scratch.delta;
        d.scene.assign_tensor(scene);
        match self {
            Acquisition::Lens { .. } => {
                d.y.copy_from(&scratch.m);
                d.x.copy_from(&scratch.m);
            }
            Acquisition::FlatCam { .. } => {
                d.y.copy_from(&scratch.y);
                d.x.copy_from(&scratch.recon);
            }
        }
        if !d.warmed {
            let (mh, mw) = match self {
                Acquisition::Lens { .. } => (n, n),
                Acquisition::FlatCam { camera, .. } => {
                    (camera.mask().phi_l().rows(), camera.mask().phi_r().rows())
                }
            };
            d.dx.reset(n, n);
            d.fa.reset(mh, n);
            d.fb.reset(mw, n);
            d.dy.reset(mh, mw);
            d.dws.warm(n, n);
            d.cols.reserve(n);
            d.warmed = true;
        }
        d.primed = true;
    }

    /// Diffs `scene` against the primed diff base: columns whose largest
    /// per-pixel magnitude change exceeds `threshold` are appended to
    /// `cols` (cleared first, ascending order), and the total count of
    /// super-threshold pixels is returned. Pure — neither the caches nor
    /// the diff base move, so a motion-gated (skipped) frame keeps
    /// accumulating change against the same base until it crosses the
    /// threshold.
    ///
    /// # Panics
    ///
    /// Panics if the caches are not primed or `scene` changed geometry.
    pub fn detect_changes(
        &self,
        scene: &Tensor,
        scratch: &AcquireScratch,
        threshold: f64,
        cols: &mut Vec<usize>,
    ) -> usize {
        let d = &scratch.delta;
        assert!(
            d.primed,
            "delta caches not primed — run a dense frame first"
        );
        let s = scene.shape();
        assert_eq!(
            (s.h, s.w),
            (d.scene.rows(), d.scene.cols()),
            "scene geometry changed under the delta caches"
        );
        cols.clear();
        let n = s.h;
        let mut changed_px = 0usize;
        for c in 0..n {
            let mut col_changed = false;
            for r in 0..n {
                if (scene.at(0, 0, r, c) as f64 - d.scene.at(r, c)).abs() > threshold {
                    changed_px += 1;
                    col_changed = true;
                }
            }
            if col_changed {
                cols.push(c);
            }
        }
        changed_px
    }

    /// Applies the changed columns to the caches: updates the diff base,
    /// accumulates the clean measurement delta into the cached transported
    /// signal, and (when `update_recon`) applies the matching sparse-column
    /// correction to the cached reconstruction.
    fn apply_delta(
        &self,
        scene: &Tensor,
        cols: &[usize],
        scratch: &mut AcquireScratch,
        update_recon: bool,
    ) {
        let d = &mut scratch.delta;
        assert!(
            d.primed,
            "delta caches not primed — run a dense frame first"
        );
        let s = scene.shape();
        let n = s.h;
        assert_eq!(
            (s.h, s.w),
            (d.scene.rows(), d.scene.cols()),
            "scene geometry changed under the delta caches"
        );
        let k = cols.len();
        if k == 0 {
            return;
        }
        match self {
            Acquisition::Lens { .. } => {
                // the lens "measurement" is the image itself: changed
                // columns arrive clean (event readouts carry no fresh
                // exposure noise), unchanged columns keep the primed
                // exposure
                for &c in cols {
                    for r in 0..n {
                        let v = scene.at(0, 0, r, c) as f64;
                        *d.y.at_mut(r, c) = v;
                        *d.scene.at_mut(r, c) = v;
                    }
                }
                if update_recon {
                    d.x.copy_from(&d.y);
                }
            }
            Acquisition::FlatCam {
                camera,
                reconstructor,
            } => {
                // ΔX[:,cols] against the diff base, advancing the base
                d.dx.reset(n, k);
                for (j, &c) in cols.iter().enumerate() {
                    for r in 0..n {
                        let v = scene.at(0, 0, r, c) as f64;
                        *d.dx.at_mut(r, j) = v - d.scene.at(r, c);
                        *d.scene.at_mut(r, c) = v;
                    }
                }
                // measurement-domain factors: A = Φ_L·ΔX[:,cols],
                // B = Φ_R[:,cols] — ΔY = A·Bᵀ exactly (capture is linear)
                let phi_l = camera.mask().phi_l();
                let phi_r = camera.mask().phi_r();
                phi_l.matmul_into(&d.dx, &mut d.fa);
                d.fb.reset(phi_r.rows(), k);
                for (j, &c) in cols.iter().enumerate() {
                    for r in 0..phi_r.rows() {
                        *d.fb.at_mut(r, j) = phi_r.at(r, c);
                    }
                }
                // clean measurement delta accumulated into the cache
                d.fa.matmul_transposed_b_into(&d.fb, &mut d.dy);
                for (y, dy) in d.y.as_mut_slice().iter_mut().zip(d.dy.as_slice()) {
                    *y += dy;
                }
                if update_recon {
                    reconstructor.update_columns_into(&d.fa, &d.fb, &mut d.dws, &mut d.x);
                }
            }
        }
    }

    /// The event-driven twin of [`Acquisition::acquire_faulted_into`]:
    /// instead of re-sensing the full scene, folds the changed columns
    /// (from [`Acquisition::detect_changes`]) into the cached measurement
    /// and applies the matching sparse-column correction to the cached
    /// reconstruction, writing the updated image into `out`. The cost is
    /// `O(k)` capture columns plus an `O(n²·k)`-light spectral update —
    /// not the full dense solve. Allocation-free once primed.
    ///
    /// # Panics
    ///
    /// Panics if the caches are not primed or the geometry changed.
    pub fn sense_delta_into(
        &self,
        scene: &Tensor,
        cols: &[usize],
        scratch: &mut AcquireScratch,
        out: &mut Tensor,
    ) {
        self.apply_delta(scene, cols, scratch, true);
        scratch.delta.x.write_tensor(out);
    }

    /// The measurement-domain delta twin of [`Acquisition::sense_into`]
    /// (for the recon-free latent backend): folds the changed columns into
    /// the cached transported signal only — no reconstruction update — and
    /// writes the updated raw signal into `out`. Allocation-free once
    /// primed.
    ///
    /// # Panics
    ///
    /// Panics if the caches are not primed or the geometry changed.
    pub fn sense_delta_meas_into(
        &self,
        scene: &Tensor,
        cols: &[usize],
        scratch: &mut AcquireScratch,
        out: &mut Tensor,
    ) {
        self.apply_delta(scene, cols, scratch, false);
        scratch.delta.y.write_tensor(out);
    }

    /// [`Acquisition::detect_changes`] staging the changed columns into the
    /// scratch-internal column buffer instead of a caller-owned one — the
    /// form a tracker frame uses so the detect → apply hand-off needs no
    /// extra per-session state. Returns the super-threshold pixel count.
    ///
    /// # Panics
    ///
    /// Panics if the caches are not primed or `scene` changed geometry.
    pub fn detect_changes_cached(
        &self,
        scene: &Tensor,
        scratch: &mut AcquireScratch,
        threshold: f64,
    ) -> usize {
        let mut cols = std::mem::take(&mut scratch.delta.cols);
        let changed_px = self.detect_changes(scene, scratch, threshold, &mut cols);
        scratch.delta.cols = cols;
        changed_px
    }

    /// [`Acquisition::sense_delta_into`] over the columns staged by the
    /// last [`Acquisition::detect_changes_cached`] call on this scratch.
    ///
    /// # Panics
    ///
    /// Panics if the caches are not primed or the geometry changed.
    pub fn sense_delta_cached_into(
        &self,
        scene: &Tensor,
        scratch: &mut AcquireScratch,
        out: &mut Tensor,
    ) {
        let cols = std::mem::take(&mut scratch.delta.cols);
        self.sense_delta_into(scene, &cols, scratch, out);
        scratch.delta.cols = cols;
    }

    /// [`Acquisition::sense_delta_meas_into`] over the columns staged by
    /// the last [`Acquisition::detect_changes_cached`] call on this
    /// scratch.
    ///
    /// # Panics
    ///
    /// Panics if the caches are not primed or the geometry changed.
    pub fn sense_delta_meas_cached_into(
        &self,
        scene: &Tensor,
        scratch: &mut AcquireScratch,
        out: &mut Tensor,
    ) {
        let cols = std::mem::take(&mut scratch.delta.cols);
        self.sense_delta_meas_into(scene, &cols, scratch, out);
        scratch.delta.cols = cols;
    }

    /// Allocating convenience form of [`Acquisition::sense_delta_into`].
    pub fn sense_delta(
        &self,
        scene: &Tensor,
        cols: &[usize],
        scratch: &mut AcquireScratch,
    ) -> Tensor {
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        self.sense_delta_into(scene, cols, scratch, &mut out);
        out
    }

    /// Side length of the square raw transported signal: the measurement
    /// size for a FlatCam, the scene size for the lens baseline.
    pub fn sense_size(&self, scene: usize) -> usize {
        match self {
            Acquisition::Lens { .. } => scene,
            Acquisition::FlatCam { camera, .. } => camera.measurement_size(),
        }
    }

    /// True for the FlatCam path.
    pub fn is_flatcam(&self) -> bool {
        matches!(self, Acquisition::FlatCam { .. })
    }

    /// Bytes the camera must push to the processor per frame (the raw
    /// measurement for a FlatCam, the full image for a lens camera).
    pub fn bytes_per_frame(&self, scene: usize) -> u64 {
        match self {
            Acquisition::Lens { .. } => (scene * scene) as u64,
            Acquisition::FlatCam { camera, .. } => camera.measurement_pixels() as u64,
        }
    }
}

/// Applies the plan's link-plane transport faults to a transported buffer
/// in place: tail truncation (the remainder of an aborted transfer reads
/// as zeros) and per-value exponent-bit flips. A flipped high bit blows
/// the value up to something the pipeline can detect after reconstruction;
/// a flipped low bit shrinks it silently — both are realistic outcomes of
/// an unprotected camera link. Returns the injected event count.
fn apply_link_faults(plan: &FaultPlan, m: &mut Mat, frame: u64, salt: u64) -> u32 {
    let mut injected = 0u32;
    let n = m.rows() * m.cols();
    if plan.fires_with(FaultSite::LinkTruncate, frame, salt) {
        let lost = ((n as f64 * plan.link.truncate_fraction) as usize).min(n);
        for v in &mut m.as_mut_slice()[n - lost..] {
            *v = 0.0;
        }
        injected += 1;
    }
    if plan.fires_with(FaultSite::LinkCorrupt, frame, salt) && plan.link.corrupt_values > 0 {
        let data = m.as_mut_slice();
        for j in 0..plan.link.corrupt_values as u64 {
            let idx = plan.index(FaultSite::LinkCorrupt, frame, salt * 131 + 2 * j + 1, n);
            let bit =
                52 + plan.index(FaultSite::LinkCorrupt, frame, salt * 131 + 2 * j + 2, 11) as u32;
            data[idx] = f64::from_bits(data[idx].to_bits() ^ (1u64 << bit));
        }
        injected += 1;
    }
    injected
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyecod_eyedata::render::{render_eye, EyeParams};
    use eyecod_optics::metrics::psnr;

    #[test]
    fn lens_path_is_near_identity() {
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let out = Acquisition::lens().acquire(&s.image, 1);
        let p = psnr(&Mat::from_tensor(&s.image), &Mat::from_tensor(&out));
        assert!(p > 30.0, "lens PSNR {p:.1}");
    }

    #[test]
    fn flatcam_reconstruction_resembles_the_scene() {
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let acq = Acquisition::flatcam(48, 64, 1e-4, 7);
        let out = acq.acquire(&s.image, 1);
        let p = psnr(&Mat::from_tensor(&s.image), &Mat::from_tensor(&out));
        assert!(p > 12.0, "FlatCam reconstruction PSNR {p:.1}");
        assert!(acq.is_flatcam());
    }

    #[test]
    fn flatcam_is_noisier_than_lens() {
        // Table 3's observation: FlatCam images have lower SNR than origin
        // images, which costs segmentation accuracy.
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let lens = Acquisition::lens().acquire(&s.image, 1);
        let flat = Acquisition::flatcam(48, 64, 1e-4, 7).acquire(&s.image, 1);
        let ref_m = Mat::from_tensor(&s.image);
        assert!(psnr(&ref_m, &Mat::from_tensor(&lens)) > psnr(&ref_m, &Mat::from_tensor(&flat)));
    }

    #[test]
    fn flatcam_transmits_measurement_not_image() {
        let acq = Acquisition::flatcam(48, 64, 1e-4, 7);
        assert_eq!(acq.bytes_per_frame(48), 64 * 64);
        assert_eq!(Acquisition::lens().bytes_per_frame(48), 48 * 48);
    }

    #[test]
    fn no_fault_plan_matches_plain_acquire_exactly() {
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let plan = FaultPlan::none();
        for acq in [Acquisition::lens(), Acquisition::flatcam(48, 64, 1e-4, 7)] {
            let clean = acq.acquire(&s.image, 5);
            let (faulted, injected) = acq.acquire_faulted(&s.image, 5, &plan, 3, 0);
            assert_eq!(injected, 0);
            assert_eq!(
                clean.as_slice(),
                faulted.as_slice(),
                "must be byte-identical"
            );
        }
    }

    #[test]
    fn acquire_faulted_into_reuses_scratch_across_paths() {
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let mut plan = FaultPlan::none();
        plan.seed = 4;
        plan.link.corrupt_ppm = 1_000_000;
        plan.link.corrupt_values = 2;
        // one scratch serves lens and FlatCam geometries back to back; every
        // acquisition must be byte-identical to the allocating path
        let mut scratch = AcquireScratch::new();
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        for acq in [Acquisition::lens(), Acquisition::flatcam(48, 64, 1e-4, 7)] {
            for frame in 0..3u64 {
                let (want, want_injected) = acq.acquire_faulted(&s.image, 5, &plan, frame, 0);
                let injected =
                    acq.acquire_faulted_into(&s.image, 5, &plan, frame, 0, &mut scratch, &mut out);
                assert_eq!(injected, want_injected);
                assert_eq!(out.shape(), want.shape());
                assert_eq!(out.as_slice(), want.as_slice(), "must be byte-identical");
            }
        }
    }

    #[test]
    fn link_truncation_zeroes_the_measurement_tail() {
        let mut plan = FaultPlan::none();
        plan.seed = 2;
        plan.link.truncate_ppm = 1_000_000;
        plan.link.truncate_fraction = 0.25;
        let acq = Acquisition::flatcam(48, 64, 1e-4, 7);
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let (faulted, injected) = acq.acquire_faulted(&s.image, 5, &plan, 3, 0);
        assert_eq!(injected, 1);
        // the truncated transfer still reconstructs to finite values but
        // differs from the clean capture
        assert!(!faulted.has_non_finite());
        assert!(faulted.sub(&acq.acquire(&s.image, 5)).max_abs() > 0.0);
    }

    #[test]
    fn delta_update_matches_full_solve_of_the_updated_measurement() {
        let acq = Acquisition::flatcam(48, 64, 1e-4, 7);
        let s0 = render_eye(&EyeParams::centered(48), 48, 0);
        let mut scratch = AcquireScratch::new();
        let mut img = Tensor::zeros(Shape::new(1, 1, 1, 1));
        let plan = FaultPlan::none();
        acq.capture_faulted_into(&s0.image, 5, &plan, 0, 0, &mut scratch);
        acq.recon_into(&mut scratch, &mut img);
        assert!(!scratch.delta_primed());
        acq.prime_delta(&s0.image, &mut scratch);
        assert!(scratch.delta_primed());
        // perturb three columns well above the detection threshold
        let mut s1 = s0.image.clone();
        for &c in &[5usize, 6, 20] {
            for r in 0..48 {
                s1.as_mut_slice()[r * 48 + c] += 0.3;
            }
        }
        let mut cols = Vec::new();
        let px = acq.detect_changes(&s1, &scratch, 0.05, &mut cols);
        assert_eq!(cols, vec![5, 6, 20]);
        assert_eq!(px, 3 * 48);
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        acq.sense_delta_into(&s1, &cols, &mut scratch, &mut out);
        // the incrementally updated reconstruction must match a fresh full
        // solve of the incrementally updated cached measurement
        let Acquisition::FlatCam { reconstructor, .. } = &acq else {
            unreachable!()
        };
        let mut ws = ReconWorkspace::new();
        let mut full = Mat::zeros(1, 1);
        reconstructor.reconstruct_into(&scratch.delta.y, &mut ws, &mut full);
        let err = full.sub(&scratch.delta.x).max_abs();
        assert!(err < 1e-9, "incremental recon diverged: {err:e}");
        assert_eq!(out.as_slice(), scratch.delta.x.to_tensor().as_slice());
        // the diff base advanced: re-diffing the same scene is now quiet
        assert_eq!(acq.detect_changes(&s1, &scratch, 0.05, &mut cols), 0);
        assert!(cols.is_empty());
    }

    #[test]
    fn sub_threshold_changes_accumulate_against_the_same_base() {
        let acq = Acquisition::flatcam(48, 64, 1e-4, 7);
        let s0 = render_eye(&EyeParams::centered(48), 48, 0);
        let mut scratch = AcquireScratch::new();
        acq.capture_faulted_into(&s0.image, 5, &FaultPlan::none(), 0, 0, &mut scratch);
        let mut img = Tensor::zeros(Shape::new(1, 1, 1, 1));
        acq.recon_into(&mut scratch, &mut img);
        acq.prime_delta(&s0.image, &mut scratch);
        let mut cols = Vec::new();
        // one sub-threshold step: nothing detected, base does not move
        let mut s1 = s0.image.clone();
        s1.as_mut_slice()[3 * 48 + 7] += 0.03;
        assert_eq!(acq.detect_changes(&s1, &scratch, 0.05, &mut cols), 0);
        // a second sub-threshold step on top crosses the threshold because
        // the diff base never advanced
        s1.as_mut_slice()[3 * 48 + 7] += 0.03;
        assert_eq!(acq.detect_changes(&s1, &scratch, 0.05, &mut cols), 1);
        assert_eq!(cols, vec![7]);
    }

    #[test]
    fn lens_delta_updates_changed_columns_cleanly() {
        let acq = Acquisition::lens();
        let s0 = render_eye(&EyeParams::centered(48), 48, 0);
        let mut scratch = AcquireScratch::new();
        acq.capture_faulted_into(&s0.image, 5, &FaultPlan::none(), 0, 0, &mut scratch);
        let mut img = Tensor::zeros(Shape::new(1, 1, 1, 1));
        acq.recon_into(&mut scratch, &mut img);
        acq.prime_delta(&s0.image, &mut scratch);
        let mut s1 = s0.image.clone();
        for r in 0..48 {
            s1.as_mut_slice()[r * 48 + 9] = 0.25;
        }
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        acq.sense_delta_into(&s1, &[9], &mut scratch, &mut out);
        for r in 0..48 {
            // changed column: the clean scene value (event readout)
            assert_eq!(out.at(0, 0, r, 9), 0.25);
            // untouched column: the primed noisy exposure
            assert_eq!(out.at(0, 0, r, 3), img.at(0, 0, r, 3));
        }
    }

    #[test]
    #[should_panic(expected = "delta caches not primed")]
    fn unprimed_delta_sense_panics() {
        let acq = Acquisition::flatcam(48, 64, 1e-4, 7);
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let mut scratch = AcquireScratch::new();
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        acq.sense_delta_into(&s.image, &[0], &mut scratch, &mut out);
    }

    #[test]
    fn link_corruption_replays_and_varies_by_attempt() {
        let mut plan = FaultPlan::none();
        plan.seed = 4;
        plan.link.corrupt_ppm = 1_000_000;
        plan.link.corrupt_values = 4;
        let acq = Acquisition::flatcam(48, 64, 1e-4, 7);
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let (a, ia) = acq.acquire_faulted(&s.image, 5, &plan, 3, 0);
        let (b, ib) = acq.acquire_faulted(&s.image, 5, &plan, 3, 0);
        assert_eq!(ia, ib);
        assert_eq!(a.as_slice(), b.as_slice(), "corruption must replay exactly");
        // a re-requested transfer draws a different corruption pattern
        let (c, _) = acq.acquire_faulted(&s.image, 5, &plan, 3, 1);
        assert_ne!(a.as_slice(), c.as_slice());
    }
}
