//! Image acquisition: lens camera vs lensless FlatCam.

use eyecod_optics::imaging::FlatCam;
use eyecod_optics::mask::SeparableMask;
use eyecod_optics::mat::Mat;
use eyecod_optics::recon::TikhonovReconstructor;
use eyecod_optics::sensor::SensorModel;
use eyecod_tensor::Tensor;

/// How frames are acquired before entering the processing pipeline.
///
/// The FlatCam variant is much larger than the lens variant (it owns the
/// mask SVD factors); acquisitions are constructed once per tracker, so the
/// size imbalance is irrelevant in practice.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Acquisition {
    /// An ideal(ised) lens camera: the scene arrives focused, with only
    /// mild sensor noise. The baseline of Tables 2 and 3 ("Origin Image").
    Lens {
        /// Sensor model applied to the focused image.
        sensor: SensorModel,
    },
    /// A FlatCam: coded capture followed by Tikhonov reconstruction. The
    /// reconstruction carries the noise amplification and artefacts that
    /// make the FlatCam columns of Tables 2/3 slightly harder.
    FlatCam {
        /// The camera (mask + sensor model).
        camera: FlatCam,
        /// The matching precomputed reconstructor.
        reconstructor: TikhonovReconstructor,
    },
}

impl Acquisition {
    /// Builds a FlatCam acquisition for `scene`-sized square images with a
    /// `sensor`-sized measurement and regularisation `epsilon`.
    pub fn flatcam(scene: usize, sensor: usize, epsilon: f64, seed: u32) -> Self {
        // the differential (calibrated complementary-capture) model with an
        // NIR-illuminated sensor — the operating point of a VR/AR eye camera
        let mask = SeparableMask::mls_differential(sensor, scene, seed);
        let reconstructor = TikhonovReconstructor::new(&mask, epsilon);
        Acquisition::FlatCam {
            camera: FlatCam::new(mask, SensorModel::nir_eye_tracking()),
            reconstructor,
        }
    }

    /// Builds the lens baseline with the same NIR-illuminated sensor
    /// operating point as the FlatCam path (so the comparison isolates the
    /// optics).
    pub fn lens() -> Self {
        Acquisition::Lens {
            sensor: SensorModel::nir_eye_tracking(),
        }
    }

    /// Acquires a scene: returns the image the processing pipeline sees.
    ///
    /// `scene` is a `(1, 1, S, S)` grayscale ground-truth image; `seed`
    /// drives the per-frame sensor noise.
    ///
    /// # Panics
    ///
    /// Panics if the scene is not square or does not match the FlatCam
    /// geometry.
    pub fn acquire(&self, scene: &Tensor, seed: u64) -> Tensor {
        let s = scene.shape();
        assert_eq!(s.h, s.w, "scenes must be square, got {s}");
        match self {
            Acquisition::Lens { sensor } => {
                let m = Mat::from_tensor(scene);
                sensor.apply(&m, seed).to_tensor()
            }
            Acquisition::FlatCam {
                camera,
                reconstructor,
            } => {
                let m = Mat::from_tensor(scene);
                let y = camera.capture(&m, seed);
                reconstructor.reconstruct(&y).to_tensor()
            }
        }
    }

    /// True for the FlatCam path.
    pub fn is_flatcam(&self) -> bool {
        matches!(self, Acquisition::FlatCam { .. })
    }

    /// Bytes the camera must push to the processor per frame (the raw
    /// measurement for a FlatCam, the full image for a lens camera).
    pub fn bytes_per_frame(&self, scene: usize) -> u64 {
        match self {
            Acquisition::Lens { .. } => (scene * scene) as u64,
            Acquisition::FlatCam { camera, .. } => camera.measurement_pixels() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyecod_eyedata::render::{render_eye, EyeParams};
    use eyecod_optics::metrics::psnr;

    #[test]
    fn lens_path_is_near_identity() {
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let out = Acquisition::lens().acquire(&s.image, 1);
        let p = psnr(&Mat::from_tensor(&s.image), &Mat::from_tensor(&out));
        assert!(p > 30.0, "lens PSNR {p:.1}");
    }

    #[test]
    fn flatcam_reconstruction_resembles_the_scene() {
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let acq = Acquisition::flatcam(48, 64, 1e-4, 7);
        let out = acq.acquire(&s.image, 1);
        let p = psnr(&Mat::from_tensor(&s.image), &Mat::from_tensor(&out));
        assert!(p > 12.0, "FlatCam reconstruction PSNR {p:.1}");
        assert!(acq.is_flatcam());
    }

    #[test]
    fn flatcam_is_noisier_than_lens() {
        // Table 3's observation: FlatCam images have lower SNR than origin
        // images, which costs segmentation accuracy.
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let lens = Acquisition::lens().acquire(&s.image, 1);
        let flat = Acquisition::flatcam(48, 64, 1e-4, 7).acquire(&s.image, 1);
        let ref_m = Mat::from_tensor(&s.image);
        assert!(psnr(&ref_m, &Mat::from_tensor(&lens)) > psnr(&ref_m, &Mat::from_tensor(&flat)));
    }

    #[test]
    fn flatcam_transmits_measurement_not_image() {
        let acq = Acquisition::flatcam(48, 64, 1e-4, 7);
        assert_eq!(acq.bytes_per_frame(48), 64 * 64);
        assert_eq!(Acquisition::lens().bytes_per_frame(48), 48 * 48);
    }
}
