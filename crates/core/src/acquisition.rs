//! Image acquisition: lens camera vs lensless FlatCam.

use eyecod_faults::{FaultPlan, FaultSite};
use eyecod_optics::degrade::degrade_measurement;
use eyecod_optics::imaging::FlatCam;
use eyecod_optics::mask::SeparableMask;
use eyecod_optics::mat::Mat;
use eyecod_optics::recon::{ReconWorkspace, TikhonovReconstructor};
use eyecod_optics::sensor::SensorModel;
use eyecod_tensor::{Shape, Tensor};

/// Reusable buffers for [`Acquisition::acquire_faulted_into`]: the scene
/// staging matrix, the FlatCam capture temporaries, and the reconstruction
/// workspace. Buffers are sized on first use and then reused verbatim, so a
/// steady-state acquisition performs zero heap allocations.
#[derive(Debug, Clone)]
pub struct AcquireScratch {
    /// Scene staged as a matrix (the faulted image itself on the lens path).
    m: Mat,
    /// FlatCam capture temporary (`Φ_L · scene`).
    tmp: Mat,
    /// FlatCam measurement, degraded in place.
    y: Mat,
    /// Reconstructed image.
    recon: Mat,
    /// Tikhonov reconstruction intermediates.
    ws: ReconWorkspace,
}

impl AcquireScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        AcquireScratch {
            m: Mat::zeros(1, 1),
            tmp: Mat::zeros(1, 1),
            y: Mat::zeros(1, 1),
            recon: Mat::zeros(1, 1),
            ws: ReconWorkspace::new(),
        }
    }
}

impl Default for AcquireScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// How frames are acquired before entering the processing pipeline.
///
/// The FlatCam variant is much larger than the lens variant (it owns the
/// mask SVD factors); acquisitions are constructed once per tracker, so the
/// size imbalance is irrelevant in practice.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Acquisition {
    /// An ideal(ised) lens camera: the scene arrives focused, with only
    /// mild sensor noise. The baseline of Tables 2 and 3 ("Origin Image").
    Lens {
        /// Sensor model applied to the focused image.
        sensor: SensorModel,
    },
    /// A FlatCam: coded capture followed by Tikhonov reconstruction. The
    /// reconstruction carries the noise amplification and artefacts that
    /// make the FlatCam columns of Tables 2/3 slightly harder.
    FlatCam {
        /// The camera (mask + sensor model).
        camera: FlatCam,
        /// The matching precomputed reconstructor.
        reconstructor: TikhonovReconstructor,
    },
}

impl Acquisition {
    /// Builds a FlatCam acquisition for `scene`-sized square images with a
    /// `sensor`-sized measurement and regularisation `epsilon`.
    pub fn flatcam(scene: usize, sensor: usize, epsilon: f64, seed: u32) -> Self {
        // the differential (calibrated complementary-capture) model with an
        // NIR-illuminated sensor — the operating point of a VR/AR eye camera
        let mask = SeparableMask::mls_differential(sensor, scene, seed);
        let reconstructor = TikhonovReconstructor::new(&mask, epsilon);
        Acquisition::FlatCam {
            camera: FlatCam::new(mask, SensorModel::nir_eye_tracking()),
            reconstructor,
        }
    }

    /// Builds the lens baseline with the same NIR-illuminated sensor
    /// operating point as the FlatCam path (so the comparison isolates the
    /// optics).
    pub fn lens() -> Self {
        Acquisition::Lens {
            sensor: SensorModel::nir_eye_tracking(),
        }
    }

    /// Acquires a scene: returns the image the processing pipeline sees.
    ///
    /// `scene` is a `(1, 1, S, S)` grayscale ground-truth image; `seed`
    /// drives the per-frame sensor noise.
    ///
    /// # Panics
    ///
    /// Panics if the scene is not square or does not match the FlatCam
    /// geometry.
    pub fn acquire(&self, scene: &Tensor, seed: u64) -> Tensor {
        let s = scene.shape();
        assert_eq!(s.h, s.w, "scenes must be square, got {s}");
        match self {
            Acquisition::Lens { sensor } => {
                let m = Mat::from_tensor(scene);
                sensor.apply(&m, seed).to_tensor()
            }
            Acquisition::FlatCam {
                camera,
                reconstructor,
            } => {
                let m = Mat::from_tensor(scene);
                let y = camera.capture(&m, seed);
                reconstructor.reconstruct(&y).to_tensor()
            }
        }
    }

    /// [`Acquisition::acquire`] with the plan's sensor- and link-plane
    /// faults applied to the transported signal: pixel-mask / readout /
    /// noise degradation on the raw capture (the FlatCam measurement, or
    /// the focused image for the lens baseline), then transport-tail
    /// truncation and exponent-bit corruption on the link.
    ///
    /// `attempt` salts the link-plane draws so a re-requested transfer can
    /// arrive clean, and re-draws the sensor noise (a retry is a fresh
    /// exposure); static pixel defects and per-frame sensor events replay
    /// identically across attempts. With a no-fault plan and `attempt` 0
    /// the result is byte-identical to [`Acquisition::acquire`].
    ///
    /// Returns the acquired image and the number of injected fault events.
    pub fn acquire_faulted(
        &self,
        scene: &Tensor,
        seed: u64,
        plan: &FaultPlan,
        frame: u64,
        attempt: u64,
    ) -> (Tensor, u32) {
        let mut scratch = AcquireScratch::new();
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        let injected =
            self.acquire_faulted_into(scene, seed, plan, frame, attempt, &mut scratch, &mut out);
        (out, injected)
    }

    /// [`Acquisition::acquire_faulted`] writing the acquired image into a
    /// caller-owned tensor through reusable scratch buffers — the
    /// allocation-free variant the steady-state frame path uses. Every step
    /// runs the in-place twin of the allocating chain (`assign_tensor` /
    /// `apply_inplace` / `capture_into` / `reconstruct_into` /
    /// `write_tensor`), each of which is byte-identical to its allocating
    /// counterpart, so both variants produce identical images.
    ///
    /// Implemented as [`Acquisition::capture_faulted_into`] followed by
    /// [`Acquisition::recon_into`]: the columnar serve scheduler runs those
    /// two halves as separate column sweeps, and this composition is the
    /// conformance reference that keeps them byte-identical.
    ///
    /// Returns the number of injected fault events.
    #[allow(clippy::too_many_arguments)]
    pub fn acquire_faulted_into(
        &self,
        scene: &Tensor,
        seed: u64,
        plan: &FaultPlan,
        frame: u64,
        attempt: u64,
        scratch: &mut AcquireScratch,
        out: &mut Tensor,
    ) -> u32 {
        let injected = self.capture_faulted_into(scene, seed, plan, frame, attempt, scratch);
        self.recon_into(scratch, out);
        injected
    }

    /// The capture half of [`Acquisition::acquire_faulted_into`]: sensor
    /// exposure, sensor-plane degradation, and link-plane transport faults,
    /// leaving the transported signal staged inside `scratch` (the FlatCam
    /// measurement in `y`, or the focused image in `m` for the lens
    /// baseline). [`Acquisition::recon_into`] turns the staged signal into
    /// the image the pipeline sees.
    ///
    /// Returns the number of injected fault events.
    pub fn capture_faulted_into(
        &self,
        scene: &Tensor,
        seed: u64,
        plan: &FaultPlan,
        frame: u64,
        attempt: u64,
        scratch: &mut AcquireScratch,
    ) -> u32 {
        let s = scene.shape();
        assert_eq!(s.h, s.w, "scenes must be square, got {s}");
        let capture_seed = seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        match self {
            Acquisition::Lens { sensor } => {
                scratch.m.assign_tensor(scene);
                sensor.apply_inplace(&mut scratch.m, capture_seed);
                let mut injected =
                    degrade_measurement(plan, &mut scratch.m, frame, sensor.saturation);
                injected += apply_link_faults(plan, &mut scratch.m, frame, attempt);
                injected
            }
            Acquisition::FlatCam { camera, .. } => {
                scratch.m.assign_tensor(scene);
                camera.capture_into(&scratch.m, capture_seed, &mut scratch.tmp, &mut scratch.y);
                let mut injected =
                    degrade_measurement(plan, &mut scratch.y, frame, camera.sensor().saturation);
                injected += apply_link_faults(plan, &mut scratch.y, frame, attempt);
                injected
            }
        }
    }

    /// The reconstruction half of [`Acquisition::acquire_faulted_into`]:
    /// reads the signal a matching [`Acquisition::capture_faulted_into`]
    /// staged in `scratch` and writes the image the processing pipeline
    /// sees into `out` (Tikhonov reconstruction for the FlatCam, a plain
    /// copy for the lens baseline). Allocation-free once buffers are sized.
    pub fn recon_into(&self, scratch: &mut AcquireScratch, out: &mut Tensor) {
        match self {
            Acquisition::Lens { .. } => scratch.m.write_tensor(out),
            Acquisition::FlatCam { reconstructor, .. } => {
                reconstructor.reconstruct_into(&scratch.y, &mut scratch.ws, &mut scratch.recon);
                scratch.recon.write_tensor(out);
            }
        }
    }

    /// The latent twin of [`Acquisition::recon_into`]: reads the signal a
    /// matching [`Acquisition::capture_faulted_into`] staged in `scratch`
    /// and writes the **raw transported signal** — the FlatCam measurement
    /// itself, or the focused image for the lens baseline — into `out`,
    /// skipping the Tikhonov solve entirely. This is what the latent gaze
    /// backend consumes on steady-state frames. Allocation-free once
    /// buffers are sized.
    pub fn sense_into(&self, scratch: &AcquireScratch, out: &mut Tensor) {
        match self {
            Acquisition::Lens { .. } => scratch.m.write_tensor(out),
            Acquisition::FlatCam { .. } => scratch.y.write_tensor(out),
        }
    }

    /// Allocating variant of [`Acquisition::sense_into`] for the training
    /// path: captures `scene` (no fault plan, attempt 0) and returns the
    /// raw transported signal. Uses the same capture seed derivation as
    /// [`Acquisition::acquire`], so for equal seeds the measurement is the
    /// one underneath the image `acquire` would reconstruct.
    pub fn sense(&self, scene: &Tensor, seed: u64) -> Tensor {
        let mut scratch = AcquireScratch::new();
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        self.capture_faulted_into(scene, seed, &FaultPlan::none(), 0, 0, &mut scratch);
        self.sense_into(&scratch, &mut out);
        out
    }

    /// Side length of the square raw transported signal: the measurement
    /// size for a FlatCam, the scene size for the lens baseline.
    pub fn sense_size(&self, scene: usize) -> usize {
        match self {
            Acquisition::Lens { .. } => scene,
            Acquisition::FlatCam { camera, .. } => camera.measurement_size(),
        }
    }

    /// True for the FlatCam path.
    pub fn is_flatcam(&self) -> bool {
        matches!(self, Acquisition::FlatCam { .. })
    }

    /// Bytes the camera must push to the processor per frame (the raw
    /// measurement for a FlatCam, the full image for a lens camera).
    pub fn bytes_per_frame(&self, scene: usize) -> u64 {
        match self {
            Acquisition::Lens { .. } => (scene * scene) as u64,
            Acquisition::FlatCam { camera, .. } => camera.measurement_pixels() as u64,
        }
    }
}

/// Applies the plan's link-plane transport faults to a transported buffer
/// in place: tail truncation (the remainder of an aborted transfer reads
/// as zeros) and per-value exponent-bit flips. A flipped high bit blows
/// the value up to something the pipeline can detect after reconstruction;
/// a flipped low bit shrinks it silently — both are realistic outcomes of
/// an unprotected camera link. Returns the injected event count.
fn apply_link_faults(plan: &FaultPlan, m: &mut Mat, frame: u64, salt: u64) -> u32 {
    let mut injected = 0u32;
    let n = m.rows() * m.cols();
    if plan.fires_with(FaultSite::LinkTruncate, frame, salt) {
        let lost = ((n as f64 * plan.link.truncate_fraction) as usize).min(n);
        for v in &mut m.as_mut_slice()[n - lost..] {
            *v = 0.0;
        }
        injected += 1;
    }
    if plan.fires_with(FaultSite::LinkCorrupt, frame, salt) && plan.link.corrupt_values > 0 {
        let data = m.as_mut_slice();
        for j in 0..plan.link.corrupt_values as u64 {
            let idx = plan.index(FaultSite::LinkCorrupt, frame, salt * 131 + 2 * j + 1, n);
            let bit =
                52 + plan.index(FaultSite::LinkCorrupt, frame, salt * 131 + 2 * j + 2, 11) as u32;
            data[idx] = f64::from_bits(data[idx].to_bits() ^ (1u64 << bit));
        }
        injected += 1;
    }
    injected
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyecod_eyedata::render::{render_eye, EyeParams};
    use eyecod_optics::metrics::psnr;

    #[test]
    fn lens_path_is_near_identity() {
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let out = Acquisition::lens().acquire(&s.image, 1);
        let p = psnr(&Mat::from_tensor(&s.image), &Mat::from_tensor(&out));
        assert!(p > 30.0, "lens PSNR {p:.1}");
    }

    #[test]
    fn flatcam_reconstruction_resembles_the_scene() {
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let acq = Acquisition::flatcam(48, 64, 1e-4, 7);
        let out = acq.acquire(&s.image, 1);
        let p = psnr(&Mat::from_tensor(&s.image), &Mat::from_tensor(&out));
        assert!(p > 12.0, "FlatCam reconstruction PSNR {p:.1}");
        assert!(acq.is_flatcam());
    }

    #[test]
    fn flatcam_is_noisier_than_lens() {
        // Table 3's observation: FlatCam images have lower SNR than origin
        // images, which costs segmentation accuracy.
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let lens = Acquisition::lens().acquire(&s.image, 1);
        let flat = Acquisition::flatcam(48, 64, 1e-4, 7).acquire(&s.image, 1);
        let ref_m = Mat::from_tensor(&s.image);
        assert!(psnr(&ref_m, &Mat::from_tensor(&lens)) > psnr(&ref_m, &Mat::from_tensor(&flat)));
    }

    #[test]
    fn flatcam_transmits_measurement_not_image() {
        let acq = Acquisition::flatcam(48, 64, 1e-4, 7);
        assert_eq!(acq.bytes_per_frame(48), 64 * 64);
        assert_eq!(Acquisition::lens().bytes_per_frame(48), 48 * 48);
    }

    #[test]
    fn no_fault_plan_matches_plain_acquire_exactly() {
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let plan = FaultPlan::none();
        for acq in [Acquisition::lens(), Acquisition::flatcam(48, 64, 1e-4, 7)] {
            let clean = acq.acquire(&s.image, 5);
            let (faulted, injected) = acq.acquire_faulted(&s.image, 5, &plan, 3, 0);
            assert_eq!(injected, 0);
            assert_eq!(
                clean.as_slice(),
                faulted.as_slice(),
                "must be byte-identical"
            );
        }
    }

    #[test]
    fn acquire_faulted_into_reuses_scratch_across_paths() {
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let mut plan = FaultPlan::none();
        plan.seed = 4;
        plan.link.corrupt_ppm = 1_000_000;
        plan.link.corrupt_values = 2;
        // one scratch serves lens and FlatCam geometries back to back; every
        // acquisition must be byte-identical to the allocating path
        let mut scratch = AcquireScratch::new();
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        for acq in [Acquisition::lens(), Acquisition::flatcam(48, 64, 1e-4, 7)] {
            for frame in 0..3u64 {
                let (want, want_injected) = acq.acquire_faulted(&s.image, 5, &plan, frame, 0);
                let injected =
                    acq.acquire_faulted_into(&s.image, 5, &plan, frame, 0, &mut scratch, &mut out);
                assert_eq!(injected, want_injected);
                assert_eq!(out.shape(), want.shape());
                assert_eq!(out.as_slice(), want.as_slice(), "must be byte-identical");
            }
        }
    }

    #[test]
    fn link_truncation_zeroes_the_measurement_tail() {
        let mut plan = FaultPlan::none();
        plan.seed = 2;
        plan.link.truncate_ppm = 1_000_000;
        plan.link.truncate_fraction = 0.25;
        let acq = Acquisition::flatcam(48, 64, 1e-4, 7);
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let (faulted, injected) = acq.acquire_faulted(&s.image, 5, &plan, 3, 0);
        assert_eq!(injected, 1);
        // the truncated transfer still reconstructs to finite values but
        // differs from the clean capture
        assert!(!faulted.has_non_finite());
        assert!(faulted.sub(&acq.acquire(&s.image, 5)).max_abs() > 0.0);
    }

    #[test]
    fn link_corruption_replays_and_varies_by_attempt() {
        let mut plan = FaultPlan::none();
        plan.seed = 4;
        plan.link.corrupt_ppm = 1_000_000;
        plan.link.corrupt_values = 4;
        let acq = Acquisition::flatcam(48, 64, 1e-4, 7);
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let (a, ia) = acq.acquire_faulted(&s.image, 5, &plan, 3, 0);
        let (b, ib) = acq.acquire_faulted(&s.image, 5, &plan, 3, 0);
        assert_eq!(ia, ib);
        assert_eq!(a.as_slice(), b.as_slice(), "corruption must replay exactly");
        // a re-requested transfer draws a different corruption pattern
        let (c, _) = acq.acquire_faulted(&s.image, 5, &plan, 3, 1);
        assert_ne!(a.as_slice(), c.as_slice());
    }
}
