//! Aggregate tracking metrics.

use crate::tracker::TrackedFrame;
use eyecod_eyedata::GazeVector;
use eyecod_faults::{FaultStats, FrameQuality};

/// Accumulated statistics of a tracking run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrackingStats {
    /// Frames processed.
    pub frames: usize,
    /// Frames shed by a serving layer's bounded ingress queue before they
    /// entered the pipeline (accounted separately from `frames`: no stage
    /// ran on them).
    pub frames_shed: usize,
    /// Sum of per-frame angular errors (degrees).
    sum_error: f64,
    /// Frames that contributed to `sum_error` (those recorded against a
    /// ground-truth label).
    error_frames: usize,
    /// Maximum per-frame angular error (degrees).
    pub max_error_deg: f32,
    /// Number of ROI refreshes performed.
    pub roi_refreshes: usize,
    /// Frames where the gaze network emitted a degenerate vector and the
    /// tracker fell back to the previous direction.
    pub degenerate_frames: usize,
    /// Frames whose gaze forward was skipped by the motion gate (scene
    /// static within the change threshold, last-good gaze served).
    pub skipped_frames: usize,
    /// Frames graded [`FrameQuality::Ok`].
    pub frames_ok: usize,
    /// Frames graded [`FrameQuality::Degraded`].
    pub frames_degraded: usize,
    /// Frames graded [`FrameQuality::Lost`].
    pub frames_lost: usize,
    /// Cumulative fault accounting over the recorded frames.
    pub faults: FaultStats,
}

impl TrackingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one tracked frame's outcome against the ground truth,
    /// including its quality grade and fault accounting.
    pub fn record(&mut self, frame: &TrackedFrame, truth: &GazeVector) {
        self.record_parts(
            &frame.gaze,
            truth,
            frame.roi_refreshed,
            frame.gaze_degenerate,
        );
        if frame.gaze_skipped {
            self.skipped_frames += 1;
        }
        match frame.quality {
            FrameQuality::Ok => self.frames_ok += 1,
            FrameQuality::Degraded => self.frames_degraded += 1,
            FrameQuality::Lost => self.frames_lost += 1,
        }
        self.faults.absorb(&frame.faults);
    }

    /// Lower-level recording from the individual outcome parts. Quality
    /// and fault accounting are untouched — only [`TrackingStats::record`]
    /// tracks those.
    pub fn record_parts(
        &mut self,
        predicted: &GazeVector,
        truth: &GazeVector,
        roi_refreshed: bool,
        gaze_degenerate: bool,
    ) {
        let err = predicted.angular_error_degrees(truth);
        self.frames += 1;
        self.sum_error += err as f64;
        self.error_frames += 1;
        self.max_error_deg = self.max_error_deg.max(err);
        if roi_refreshed {
            self.roi_refreshes += 1;
        }
        if gaze_degenerate {
            self.degenerate_frames += 1;
        }
    }

    /// Records a tracked frame for which no ground-truth label exists (a
    /// served production frame): everything except the error terms.
    pub fn record_unlabeled(&mut self, frame: &TrackedFrame) {
        self.frames += 1;
        if frame.roi_refreshed {
            self.roi_refreshes += 1;
        }
        if frame.gaze_degenerate {
            self.degenerate_frames += 1;
        }
        if frame.gaze_skipped {
            self.skipped_frames += 1;
        }
        match frame.quality {
            FrameQuality::Ok => self.frames_ok += 1,
            FrameQuality::Degraded => self.frames_degraded += 1,
            FrameQuality::Lost => self.frames_lost += 1,
        }
        self.faults.absorb(&frame.faults);
    }

    /// Accounts one shed frame (dropped by a bounded ingress queue before
    /// any stage ran). Shed frames are not part of [`TrackingStats::frames`].
    pub fn record_shed(&mut self) {
        self.frames_shed += 1;
    }

    /// Mean angular error in degrees, over the frames recorded with a
    /// ground-truth label.
    pub fn mean_error_deg(&self) -> f32 {
        if self.error_frames == 0 {
            return 0.0;
        }
        (self.sum_error / self.error_frames as f64) as f32
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &TrackingStats) {
        self.frames += other.frames;
        self.frames_shed += other.frames_shed;
        self.sum_error += other.sum_error;
        self.error_frames += other.error_frames;
        self.max_error_deg = self.max_error_deg.max(other.max_error_deg);
        self.roi_refreshes += other.roi_refreshes;
        self.degenerate_frames += other.degenerate_frames;
        self.skipped_frames += other.skipped_frames;
        self.frames_ok += other.frames_ok;
        self.frames_degraded += other.frames_degraded;
        self.frames_lost += other.frames_lost;
        self.faults.merge(&other.faults);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_averages() {
        let mut s = TrackingStats::new();
        let a = GazeVector::from_angles(0.0, 0.0);
        let b = GazeVector::from_angles(10f32.to_radians(), 0.0);
        s.record_parts(&a, &a, true, false);
        s.record_parts(&b, &a, false, true);
        assert_eq!(s.frames, 2);
        assert_eq!(s.roi_refreshes, 1);
        assert_eq!(s.degenerate_frames, 1);
        assert!((s.mean_error_deg() - 5.0).abs() < 0.01);
        assert!((s.max_error_deg - 10.0).abs() < 0.01);
    }

    #[test]
    fn merge_combines_runs() {
        let a0 = GazeVector::from_angles(0.0, 0.0);
        let b = GazeVector::from_angles(0.1, 0.0);
        let mut a = TrackingStats::new();
        a.record_parts(&a0, &b, true, false);
        let mut c = TrackingStats::new();
        c.record_parts(&a0, &a0, false, true);
        a.merge(&c);
        assert_eq!(a.frames, 2);
        assert_eq!(a.roi_refreshes, 1);
        assert_eq!(a.degenerate_frames, 1);
    }

    #[test]
    fn merge_into_empty_accumulator_copies_the_run() {
        let a0 = GazeVector::from_angles(0.0, 0.0);
        let b = GazeVector::from_angles(12f32.to_radians(), 0.0);
        let mut run = TrackingStats::new();
        run.record_parts(&b, &a0, true, false);
        run.record_parts(&a0, &a0, false, false);

        // empty += run: identical to the run itself
        let mut acc = TrackingStats::new();
        acc.merge(&run);
        assert_eq!(acc, run);
        assert!((acc.max_error_deg - 12.0).abs() < 0.01);

        // run += empty: a no-op, max_error_deg must not regress to 0
        let before = run.clone();
        run.merge(&TrackingStats::new());
        assert_eq!(run, before);

        // max_error_deg takes the larger side regardless of merge order
        let mut small = TrackingStats::new();
        small.record_parts(&GazeVector::from_angles(0.02, 0.0), &a0, false, false);
        let mut big = before.clone();
        big.merge(&small);
        let mut other_way = small.clone();
        other_way.merge(&before);
        assert_eq!(big.max_error_deg, other_way.max_error_deg);
        assert!((big.max_error_deg - 12.0).abs() < 0.01);
        assert_eq!(big.frames, 3);
    }

    #[test]
    fn empty_stats_are_zero() {
        assert_eq!(TrackingStats::new().mean_error_deg(), 0.0);
        assert_eq!(TrackingStats::new().degenerate_frames, 0);
        assert_eq!(TrackingStats::new().frames_lost, 0);
        assert_eq!(TrackingStats::new().faults, FaultStats::default());
    }

    #[test]
    fn quality_and_fault_accounting_accumulates_and_merges() {
        use crate::roi::RoiRect;
        use eyecod_faults::FrameFaults;
        let truth = GazeVector::from_angles(0.0, 0.0);
        let frame = |quality, faults| TrackedFrame {
            gaze: truth,
            roi: RoiRect::centered(48, 48, 24, 32),
            roi_refreshed: false,
            frame: 0,
            gaze_degenerate: false,
            gaze_skipped: false,
            quality,
            faults,
        };
        let mut s = TrackingStats::new();
        s.record(&frame(FrameQuality::Ok, FrameFaults::default()), &truth);
        s.record(
            &frame(
                FrameQuality::Degraded,
                FrameFaults {
                    injected: 2,
                    recovered: 2,
                    unrecovered: 0,
                },
            ),
            &truth,
        );
        s.record(
            &frame(
                FrameQuality::Lost,
                FrameFaults {
                    injected: 1,
                    recovered: 0,
                    unrecovered: 1,
                },
            ),
            &truth,
        );
        assert_eq!(
            (s.frames_ok, s.frames_degraded, s.frames_lost),
            (1, 1, 1),
            "each grade counted once"
        );
        assert_eq!(s.faults.injected, 3);
        assert_eq!(s.faults.recovered, 2);
        assert_eq!(s.faults.unrecovered, 1);
        let mut merged = TrackingStats::new();
        merged.merge(&s);
        merged.merge(&s);
        assert_eq!(merged.frames_degraded, 2);
        assert_eq!(merged.faults.injected, 6);
    }
}
