//! Aggregate tracking metrics.

use eyecod_eyedata::GazeVector;

/// Accumulated statistics of a tracking run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrackingStats {
    /// Frames processed.
    pub frames: usize,
    /// Sum of per-frame angular errors (degrees).
    sum_error: f64,
    /// Maximum per-frame angular error (degrees).
    pub max_error_deg: f32,
    /// Number of ROI refreshes performed.
    pub roi_refreshes: usize,
}

impl TrackingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one frame's outcome.
    pub fn record(&mut self, predicted: &GazeVector, truth: &GazeVector, roi_refreshed: bool) {
        let err = predicted.angular_error_degrees(truth);
        self.frames += 1;
        self.sum_error += err as f64;
        self.max_error_deg = self.max_error_deg.max(err);
        if roi_refreshed {
            self.roi_refreshes += 1;
        }
    }

    /// Mean angular error in degrees.
    pub fn mean_error_deg(&self) -> f32 {
        if self.frames == 0 {
            return 0.0;
        }
        (self.sum_error / self.frames as f64) as f32
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &TrackingStats) {
        self.frames += other.frames;
        self.sum_error += other.sum_error;
        self.max_error_deg = self.max_error_deg.max(other.max_error_deg);
        self.roi_refreshes += other.roi_refreshes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_averages() {
        let mut s = TrackingStats::new();
        let a = GazeVector::from_angles(0.0, 0.0);
        let b = GazeVector::from_angles(10f32.to_radians(), 0.0);
        s.record(&a, &a, true);
        s.record(&b, &a, false);
        assert_eq!(s.frames, 2);
        assert_eq!(s.roi_refreshes, 1);
        assert!((s.mean_error_deg() - 5.0).abs() < 0.01);
        assert!((s.max_error_deg - 10.0).abs() < 0.01);
    }

    #[test]
    fn merge_combines_runs() {
        let a0 = GazeVector::from_angles(0.0, 0.0);
        let b = GazeVector::from_angles(0.1, 0.0);
        let mut a = TrackingStats::new();
        a.record(&a0, &b, true);
        let mut c = TrackingStats::new();
        c.record(&a0, &a0, false);
        a.merge(&c);
        assert_eq!(a.frames, 2);
        assert_eq!(a.roi_refreshes, 1);
    }

    #[test]
    fn empty_stats_are_zero() {
        assert_eq!(TrackingStats::new().mean_error_deg(), 0.0);
    }
}
