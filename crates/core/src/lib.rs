//! # eyecod-core
//!
//! The EyeCoD predict-then-focus eye-tracking pipeline (paper §4, Fig. 3),
//! assembled from the workspace substrates:
//!
//! 1. **Acquisition** — a lensless FlatCam captures the eye
//!    (`eyecod-optics`); the measurement is reconstructed by Tikhonov
//!    least squares. A lens-camera acquisition path exists for baselines.
//! 2. **ROI prediction ("predict")** — once every `roi_period` frames a
//!    segmentation network labels pupil/iris/sclera; the ROI is a rectangle
//!    anchored on the **pupil centroid** (the robust landmark, §4.3) and
//!    sized 1.5× the sclera extent.
//! 3. **Gaze estimation ("focus")** — every frame, a compact gaze network
//!    runs on the cropped ROI only and outputs a 3-D gaze vector.
//!
//! Training of the proxy networks happens in [`training`]; the synthetic
//! data comes from `eyecod-eyedata`; the hardware-side costs of the exact
//! same pipeline are simulated by `eyecod-accel`/`eyecod-platforms`.
//!
//! # Example
//!
//! ```no_run
//! use eyecod_core::tracker::{EyeTracker, TrackerConfig};
//! use eyecod_core::training::{train_tracker_models, TrainingSetup};
//!
//! let config = TrackerConfig::small();
//! let models = train_tracker_models(&TrainingSetup::quick(), &config);
//! let mut tracker = EyeTracker::new(config, models);
//! let frame = eyecod_eyedata::render::render_eye(
//!     &eyecod_eyedata::EyeParams::centered(48), 48, 7);
//! let out = tracker.process_frame(&frame.image, 0);
//! println!("gaze: {:?}, error {:.2}°",
//!          out.gaze, out.gaze.angular_error_degrees(&frame.gaze));
//! ```

pub mod acquisition;
pub mod alloc_counter;
pub mod env;
pub mod interface;
pub mod metrics;
pub mod parallel;
pub mod pool;
pub mod roi;
pub mod tracker;
pub mod training;

pub use roi::{CropStrategy, RoiRect};
pub use tracker::{EyeTracker, GazeBackend, TrackedFrame, TrackerConfig};
