//! The sensing–processing interface in the pipeline (paper §4.2).
//!
//! Instead of *reconstruct → segment*, the coded mask's optical response is
//! designed to be the segmentation model's first layer: the sensor emits a
//! small stack of strided edge/intensity feature maps, and a segmentation
//! network with a multi-channel input consumes them directly. Benefits, as
//! the paper argues: (1) the first layer's FLOPs — which run at the highest
//! resolution in UNet-style models — move into the optics, and (2) the
//! sensor→processor link carries the small feature stack rather than the
//! raw measurement.

use crate::training::{downsample_labels, TrainingSetup};
use eyecod_eyedata::render::{render_eye, EyeParams};
use eyecod_models::proxy::{predict_seg, train_seg, ProxySegNet, TrainConfig};
use eyecod_optics::interface::OpticalFirstLayer;
use eyecod_optics::mat::Mat;
use eyecod_optics::sensor::SensorModel;
use eyecod_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A segmentation pipeline whose first layer lives in the FlatCam mask.
pub struct InterfaceSegPipeline {
    optical: OpticalFirstLayer,
    sensor: SensorModel,
    net: ProxySegNet,
    scene: usize,
}

impl InterfaceSegPipeline {
    /// Builds the pipeline: a 4-channel optical edge bank striding
    /// `scene → out_res`, feeding a multi-channel segmentation proxy.
    ///
    /// # Panics
    ///
    /// Panics if `out_res` does not divide `scene` (see
    /// [`OpticalFirstLayer::edge_bank`]).
    pub fn new(scene: usize, out_res: usize, width: usize, rng: &mut StdRng) -> Self {
        let optical = OpticalFirstLayer::edge_bank(scene, out_res);
        let net = ProxySegNet::with_input_channels(optical.num_channels(), width, rng);
        InterfaceSegPipeline {
            optical,
            sensor: SensorModel::nir_eye_tracking(),
            net,
            scene,
        }
    }

    /// The optical front end.
    pub fn optical(&self) -> &OpticalFirstLayer {
        &self.optical
    }

    /// Applies the optical bank plus per-channel sensor noise — what the
    /// processor receives. Edge channels carry much smaller amplitudes
    /// than the intensity channel, so the readout applies fixed per-channel
    /// gains (a one-time analog calibration) to balance their dynamic
    /// range before the network sees them.
    pub fn sense(&self, scene_img: &Tensor, seed: u64) -> Tensor {
        const GAINS: [f32; 4] = [1.0, 4.0, 4.0, 8.0];
        let m = Mat::from_tensor(scene_img);
        let features = self.optical.apply(&m);
        let s = features.shape();
        let mut noisy = Tensor::zeros(s);
        for c in 0..s.c {
            let plane = Mat::from_fn(s.h, s.w, |y, x| features.at(0, c, y, x) as f64);
            let n = self.sensor.apply(&plane, seed.wrapping_add(c as u64));
            let gain = GAINS.get(c).copied().unwrap_or(1.0);
            for y in 0..s.h {
                for x in 0..s.w {
                    *noisy.at_mut(0, c, y, x) = n.at(y, x) as f32 * gain;
                }
            }
        }
        noisy
    }

    /// Segments a scene through the optical interface.
    pub fn segment(&mut self, scene_img: &Tensor, seed: u64) -> Vec<u8> {
        let features = self.sense(scene_img, seed);
        predict_seg(&mut self.net, &features)
    }

    /// Bytes transmitted per frame (the strided feature stack).
    pub fn bytes_per_frame(&self) -> u64 {
        (self.optical.num_channels() * self.optical.output_extent().pow(2)) as u64
    }

    /// First-layer FLOPs moved into the optics.
    pub fn flops_saved(&self) -> u64 {
        self.optical.flops_saved()
    }

    /// Trains the segmentation network on optically sensed features.
    /// Returns the per-epoch loss history.
    pub fn train(&mut self, setup: &TrainingSetup) -> Vec<f32> {
        let out = self.optical.output_extent();
        let factor = self.scene / out;
        let mut rng = StdRng::seed_from_u64(setup.seed);
        let mut features = Vec::new();
        let mut labels: Vec<usize> = Vec::new();
        for i in 0..setup.n_samples {
            let p = EyeParams::random(&mut rng);
            let s = render_eye(&p, self.scene, i as u64);
            features.push(self.sense(&s.image, 300 + i as u64));
            labels.extend(
                downsample_labels(&s.labels, self.scene, factor)
                    .into_iter()
                    .map(|v| v as usize),
            );
        }
        let features = Tensor::stack(&features);
        train_seg(
            &mut self.net,
            &features,
            &labels,
            &TrainConfig {
                epochs: setup.seg_epochs * 2,
                batch: setup.batch,
                lr: setup.seg_lr,
                seed: setup.seed,
            },
        )
    }

    /// Evaluates mIOU at feature resolution on held-out samples.
    pub fn eval_miou(&mut self, n_eval: usize) -> f32 {
        let out = self.optical.output_extent();
        let factor = self.scene / out;
        let mut rng = StdRng::seed_from_u64(8888);
        let mut sum = 0.0f32;
        for i in 0..n_eval {
            let p = EyeParams::random(&mut rng);
            let s = render_eye(&p, self.scene, 40_000 + i as u64);
            let pred = self.segment(&s.image, 41_000 + i as u64);
            let truth = downsample_labels(&s.labels, self.scene, factor);
            sum += eyecod_eyedata::labels::mean_iou(&pred, &truth);
        }
        sum / n_eval as f32
    }

    /// Shape of the sensed feature stack.
    pub fn feature_shape(&self) -> Shape {
        Shape::new(
            1,
            self.optical.num_channels(),
            self.optical.output_extent(),
            self.optical.output_extent(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_pipeline_learns_to_segment() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut pipe = InterfaceSegPipeline::new(48, 24, 8, &mut rng);
        let mut setup = TrainingSetup::quick();
        setup.n_samples = 24;
        setup.seg_epochs = 10;
        let history = pipe.train(&setup);
        assert!(
            history.last().unwrap() < history.first().unwrap(),
            "loss did not drop: {history:?}"
        );
        let miou = pipe.eval_miou(12);
        assert!(miou > 0.40, "interface segmentation mIOU {miou:.3}");
    }

    #[test]
    fn interface_shrinks_communication() {
        let mut rng = StdRng::seed_from_u64(1);
        let pipe = InterfaceSegPipeline::new(48, 12, 8, &mut rng);
        // raw measurement for a 64x64 sensor vs 4x12x12 features
        assert!(pipe.bytes_per_frame() < 64 * 64);
        assert_eq!(pipe.bytes_per_frame(), 4 * 12 * 12);
        assert!(pipe.flops_saved() > 0);
        assert_eq!(pipe.feature_shape().dims(), (1, 4, 12, 12));
    }

    #[test]
    fn sensing_is_noise_seeded() {
        let mut rng = StdRng::seed_from_u64(2);
        let pipe = InterfaceSegPipeline::new(48, 24, 8, &mut rng);
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let a = pipe.sense(&s.image, 1);
        let b = pipe.sense(&s.image, 1);
        let c = pipe.sense(&s.image, 2);
        assert_eq!(a, b);
        assert!(a.sub(&c).max_abs() > 0.0);
    }
}
