//! Region-of-interest prediction (paper §4.3).
//!
//! The pupil is the one structure the segmentation model finds reliably in
//! noisy FlatCam reconstructions (a dark disc with high contrast), so the
//! ROI is a rectangle **anchored on the pupil centroid** and sized at 1.5×
//! the average segmented sclera extent — enough to cover pupil, iris and
//! sclera, little enough to drop the uninformative skin.

use eyecod_eyedata::labels::{class_bbox, class_centroid, SegClass};
use eyecod_tensor::{ops, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

/// A rectangular crop in pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoiRect {
    /// Top row.
    pub y0: usize,
    /// Left column.
    pub x0: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl RoiRect {
    /// A centred rectangle of the given size inside an `img × img` image.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle does not fit.
    pub fn centered(img_h: usize, img_w: usize, h: usize, w: usize) -> Self {
        assert!(
            h <= img_h && w <= img_w,
            "ROI {h}x{w} exceeds image {img_h}x{img_w}"
        );
        RoiRect {
            y0: (img_h - h) / 2,
            x0: (img_w - w) / 2,
            h,
            w,
        }
    }

    /// A rectangle of size `(h, w)` centred as close to `(cy, cx)` as the
    /// image bounds allow.
    pub fn around(cy: f32, cx: f32, h: usize, w: usize, img_h: usize, img_w: usize) -> Self {
        assert!(
            h <= img_h && w <= img_w,
            "ROI {h}x{w} exceeds image {img_h}x{img_w}"
        );
        let y0 = (cy - h as f32 / 2.0).round().max(0.0) as usize;
        let x0 = (cx - w as f32 / 2.0).round().max(0.0) as usize;
        RoiRect {
            y0: y0.min(img_h - h),
            x0: x0.min(img_w - w),
            h,
            w,
        }
    }

    /// Crops this rectangle out of an image tensor.
    pub fn crop(&self, image: &Tensor) -> Tensor {
        ops::crop(image, self.y0, self.x0, self.h, self.w)
    }

    /// [`RoiRect::crop`] writing into a caller-owned tensor
    /// (allocation-free once the output buffer is warm).
    pub fn crop_into(&self, image: &Tensor, out: &mut Tensor) {
        ops::crop_into(image, self.y0, self.x0, self.h, self.w, out);
    }

    /// Scales the rectangle from one square image resolution to another
    /// (the segmentation runs at a lower resolution than the crop source).
    pub fn rescale(&self, from: usize, to: usize) -> RoiRect {
        assert!(from > 0, "source resolution must be non-zero");
        let s = to as f64 / from as f64;
        RoiRect {
            y0: (self.y0 as f64 * s).round() as usize,
            x0: (self.x0 as f64 * s).round() as usize,
            h: (self.h as f64 * s).round() as usize,
            w: (self.w as f64 * s).round() as usize,
        }
    }
}

/// The crop strategies compared in the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CropStrategy {
    /// A uniformly random rectangle (ablation lower bound).
    Random,
    /// A fixed central rectangle.
    Central,
    /// EyeCoD's pupil-anchored, sclera-sized ROI.
    PupilAnchored,
}

/// Predicts the ROI from a dense segmentation label map of an
/// `seg_size × seg_size` image.
///
/// Follows §4.3: anchor at the pupil centroid; size = 1.5× the sclera
/// bounding-box extent, clamped to `[min_frac, 1.0]` of the image. When the
/// pupil is absent (blink, blackout, all-skin frame) the sclera centroid is
/// tried; failing that, a central fallback covers the plausible eye area —
/// the failure-handling the pipeline needs on bad frames.
pub fn predict_roi(labels: &[u8], seg_size: usize, target_h: usize, target_w: usize) -> RoiRect {
    assert_eq!(labels.len(), seg_size * seg_size, "label map size mismatch");
    assert!(
        target_h <= seg_size && target_w <= seg_size,
        "ROI {target_h}x{target_w} exceeds segmentation extent {seg_size}"
    );
    let anchor = class_centroid(labels, seg_size, seg_size, SegClass::Pupil)
        .or_else(|| class_centroid(labels, seg_size, seg_size, SegClass::Sclera));
    match anchor {
        Some((cy, cx)) => RoiRect::around(cy, cx, target_h, target_w, seg_size, seg_size),
        None => RoiRect::centered(seg_size, seg_size, target_h, target_w),
    }
}

/// The 1.5×-sclera-extent ROI sizing rule of §4.3, returning `(h, w)`
/// clamped to the image and rounded to even numbers.
pub fn roi_size_from_sclera(labels: &[u8], seg_size: usize) -> (usize, usize) {
    let clamp_even = |v: usize| -> usize {
        let v = v.clamp(seg_size / 4, seg_size);
        v & !1
    };
    match class_bbox(labels, seg_size, seg_size, SegClass::Sclera) {
        Some((y0, x0, y1, x1)) => {
            let h = ((y1 - y0 + 1) as f32 * 1.5).round() as usize;
            let w = ((x1 - x0 + 1) as f32 * 1.5).round() as usize;
            (clamp_even(h), clamp_even(w))
        }
        None => (clamp_even(seg_size / 2), clamp_even(seg_size * 3 / 4)),
    }
}

/// Produces a crop rectangle according to a [`CropStrategy`] (Table 4).
pub fn crop_by_strategy(
    strategy: CropStrategy,
    labels: &[u8],
    seg_size: usize,
    target_h: usize,
    target_w: usize,
    rng: &mut StdRng,
) -> RoiRect {
    match strategy {
        CropStrategy::Random => {
            let y0 = rng.gen_range(0..=(seg_size - target_h));
            let x0 = rng.gen_range(0..=(seg_size - target_w));
            RoiRect {
                y0,
                x0,
                h: target_h,
                w: target_w,
            }
        }
        CropStrategy::Central => RoiRect::centered(seg_size, seg_size, target_h, target_w),
        CropStrategy::PupilAnchored => predict_roi(labels, seg_size, target_h, target_w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyecod_eyedata::render::{render_eye, EyeParams};
    use rand::SeedableRng;

    #[test]
    fn roi_centers_on_the_pupil() {
        let mut p = EyeParams::centered(64);
        p.yaw = 15f32.to_radians();
        let s = render_eye(&p, 64, 0);
        let roi = predict_roi(&s.labels, 64, 32, 40);
        let (pcy, pcx) =
            eyecod_eyedata::labels::class_centroid(&s.labels, 64, 64, SegClass::Pupil).unwrap();
        let roi_cy = roi.y0 as f32 + roi.h as f32 / 2.0;
        let roi_cx = roi.x0 as f32 + roi.w as f32 / 2.0;
        assert!((roi_cy - pcy).abs() < 3.0, "roi_cy {roi_cy} vs pupil {pcy}");
        assert!((roi_cx - pcx).abs() < 3.0, "roi_cx {roi_cx} vs pupil {pcx}");
    }

    #[test]
    fn roi_falls_back_when_pupil_missing() {
        // an all-skin frame (closed eye / blackout)
        let labels = vec![0u8; 32 * 32];
        let roi = predict_roi(&labels, 32, 16, 20);
        assert_eq!(roi, RoiRect::centered(32, 32, 16, 20));
    }

    #[test]
    fn roi_stays_inside_bounds_for_extreme_gaze() {
        let mut p = EyeParams::centered(48);
        p.center_x = 0.6;
        p.center_y = 0.4;
        p.yaw = 25f32.to_radians();
        p.pitch = -25f32.to_radians();
        let s = render_eye(&p, 48, 1);
        let roi = predict_roi(&s.labels, 48, 24, 40);
        assert!(roi.y0 + roi.h <= 48 && roi.x0 + roi.w <= 48);
    }

    #[test]
    fn sclera_sizing_tracks_eye_size() {
        let mut small = EyeParams::centered(64);
        small.eye_radius = 0.26;
        let mut large = EyeParams::centered(64);
        large.eye_radius = 0.34;
        let (sh, sw) = roi_size_from_sclera(&render_eye(&small, 64, 0).labels, 64);
        let (lh, lw) = roi_size_from_sclera(&render_eye(&large, 64, 0).labels, 64);
        assert!(lh >= sh && lw >= sw);
        assert!(sw > sh, "eye opening is wider than tall");
    }

    #[test]
    fn crop_strategies_differ() {
        let s = render_eye(&EyeParams::centered(48), 48, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let roi = crop_by_strategy(CropStrategy::PupilAnchored, &s.labels, 48, 20, 28, &mut rng);
        let central = crop_by_strategy(CropStrategy::Central, &s.labels, 48, 20, 28, &mut rng);
        // centred eye: pupil-anchored ≈ central here
        assert!((roi.y0 as i64 - central.y0 as i64).abs() < 4);
        // random crops vary
        let r1 = crop_by_strategy(CropStrategy::Random, &s.labels, 48, 20, 28, &mut rng);
        let r2 = crop_by_strategy(CropStrategy::Random, &s.labels, 48, 20, 28, &mut rng);
        assert!(r1 != r2 || r1 != central);
    }

    #[test]
    fn rescale_scales_geometry() {
        let r = RoiRect {
            y0: 8,
            x0: 4,
            h: 16,
            w: 24,
        };
        let up = r.rescale(32, 64);
        assert_eq!(
            up,
            RoiRect {
                y0: 16,
                x0: 8,
                h: 32,
                w: 48
            }
        );
    }

    #[test]
    #[should_panic(expected = "exceeds image")]
    fn oversized_roi_is_rejected() {
        RoiRect::centered(16, 16, 20, 8);
    }
}
