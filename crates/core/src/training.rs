//! Training of the tracker's proxy models on the synthetic dataset.
//!
//! Training follows the paper's recipe shape: the segmentation model learns
//! on downsampled acquired images (paper: 512→128) with per-pixel
//! cross-entropy; the gaze model learns on pupil-anchored ROI crops with the
//! angular loss; both use Adam. Crucially, training images pass through the
//! *configured acquisition* (FlatCam reconstruction or lens), so FlatCam
//! artefacts are part of the training distribution exactly as in the paper.

use crate::acquisition::Acquisition;
use crate::pool::parallel_map_chunked;
use crate::roi::predict_roi;
use crate::tracker::TrackerConfig;
use eyecod_eyedata::render::{render_eye, EyeParams};
use eyecod_models::latent::{train_latent_gaze, LatentGazeNet};
use eyecod_models::proxy::{
    train_gaze, train_seg, GazeFamily, ProxyGazeNet, ProxySegNet, TrainConfig,
};
use eyecod_tensor::ops::{downsample_avg, resize_bilinear};
use eyecod_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSetup {
    /// Number of synthetic samples to render.
    pub n_samples: usize,
    /// Segmentation training epochs.
    pub seg_epochs: usize,
    /// Gaze training epochs.
    pub gaze_epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Segmentation learning rate (paper: 1e-3).
    pub seg_lr: f32,
    /// Gaze learning rate (paper: 5e-4; proxies like it a bit higher).
    pub gaze_lr: f32,
    /// Gaze architecture family.
    pub gaze_family: GazeFamily,
    /// Mirror-augment the corpus (doubles it; exact for eye images — see
    /// `eyecod_eyedata::augment`).
    pub augment_flip: bool,
    /// Master seed.
    pub seed: u64,
}

impl TrainingSetup {
    /// A seconds-scale setup for tests and the quickstart example.
    pub fn quick() -> Self {
        TrainingSetup {
            n_samples: 32,
            seg_epochs: 12,
            gaze_epochs: 40,
            batch: 6,
            seg_lr: 3e-3,
            gaze_lr: 3e-3,
            gaze_family: GazeFamily::ResNetLike,
            augment_flip: false,
            seed: 0,
        }
    }

    /// A minutes-scale setup used by the benchmark harnesses.
    pub fn standard() -> Self {
        TrainingSetup {
            n_samples: 96,
            seg_epochs: 20,
            gaze_epochs: 60,
            batch: 8,
            seg_lr: 2e-3,
            gaze_lr: 2e-3,
            gaze_family: GazeFamily::FbnetLike,
            augment_flip: true,
            seed: 0,
        }
    }

    /// Same setup with a different gaze family (Table 2 comparisons).
    pub fn with_gaze_family(mut self, family: GazeFamily) -> Self {
        self.gaze_family = family;
        self
    }
}

/// The trained models an [`crate::tracker::EyeTracker`] runs.
#[derive(Clone)]
pub struct TrackerModels {
    /// The segmentation ("predict") network.
    pub seg: ProxySegNet,
    /// The gaze ("focus") network.
    pub gaze: ProxyGazeNet,
    /// The recon-free ("reconstruct-then-skip") gaze network, regressing
    /// from down-projected raw measurements instead of ROI crops.
    pub latent: LatentGazeNet,
}

impl TrackerModels {
    /// Clones the trained models (e.g. to drive several trackers).
    pub fn clone_models(&self) -> Self {
        self.clone()
    }
}

/// Nearest-neighbour label downsampling (block centre) from `size` to
/// `size / factor`.
pub fn downsample_labels(labels: &[u8], size: usize, factor: usize) -> Vec<u8> {
    assert_eq!(labels.len(), size * size, "label map size mismatch");
    assert!(
        factor > 0 && size.is_multiple_of(factor),
        "factor must divide size"
    );
    let out_size = size / factor;
    let mut out = Vec::with_capacity(out_size * out_size);
    for y in 0..out_size {
        for x in 0..out_size {
            let sy = y * factor + factor / 2;
            let sx = x * factor + factor / 2;
            out.push(labels[sy * size + sx]);
        }
    }
    out
}

/// Renders a training corpus, passes it through the configured acquisition,
/// and trains both proxy models.
///
/// Returns the trained models; training curves are deterministic in
/// `setup.seed`.
pub fn train_tracker_models(setup: &TrainingSetup, config: &TrackerConfig) -> TrackerModels {
    config.validate();
    assert!(setup.n_samples > 0, "need training samples");
    let mut rng = StdRng::seed_from_u64(setup.seed);
    let scene = config.scene_size;
    let factor = scene / config.seg_size;

    // Render + acquire in parallel (acquisition is the expensive part).
    let params: Vec<EyeParams> = (0..setup.n_samples)
        .map(|_| EyeParams::random(&mut rng))
        .collect();
    let acquisition = if config.flatcam {
        Acquisition::flatcam(scene, config.sensor_size, config.epsilon, config.mask_seed)
    } else {
        Acquisition::lens()
    };
    let seed0 = setup.seed;
    let flip = setup.augment_flip;
    // acquired image, segmentation labels, gaze target, raw measurement
    type TrainSample = (Tensor, Vec<u8>, Tensor, Tensor);
    // chunk = 1: each render+acquire is heavy and FlatCam/lens costs are
    // uneven, so fine-grained stealing balances the workers best
    let samples: Vec<Vec<TrainSample>> = parallel_map_chunked(&params, 1, |p| {
        let idx = p.texture_seed ^ seed0;
        let rendered = render_eye(p, scene, idx);
        let mut variants = vec![rendered.clone()];
        if flip {
            variants.push(eyecod_eyedata::augment::flip_horizontal(&rendered));
        }
        variants
            .into_iter()
            .map(|s| {
                // the same exposure seed as `acquire`, so the raw
                // measurement is the one underneath the acquired image
                let measurement = acquisition.sense(&s.image, idx.wrapping_add(1));
                let acquired = acquisition.acquire(&s.image, idx.wrapping_add(1));
                let gaze = eyecod_eyedata::GazeVector::batch_to_tensor(&[s.gaze]);
                (acquired, s.labels, gaze, measurement)
            })
            .collect()
    });
    let samples: Vec<TrainSample> = samples.into_iter().flatten().collect();

    // --- segmentation training set (downsampled) ---
    let seg_images: Vec<Tensor> = samples
        .iter()
        .map(|(img, _, _, _)| downsample_avg(img, factor))
        .collect();
    let seg_images = Tensor::stack(&seg_images);
    let seg_labels: Vec<usize> = samples
        .iter()
        .flat_map(|(_, l, _, _)| {
            downsample_labels(l, scene, factor)
                .into_iter()
                .map(|v| v as usize)
        })
        .collect();
    let mut seg = ProxySegNet::new(8, &mut rng);
    train_seg(
        &mut seg,
        &seg_images,
        &seg_labels,
        &TrainConfig {
            epochs: setup.seg_epochs,
            batch: setup.batch,
            lr: setup.seg_lr,
            seed: setup.seed ^ 0x5E6,
        },
    );

    // --- gaze training set (ground-truth-anchored ROI crops, plus a
    //     jittered copy so the model tolerates the few-pixel anchor error a
    //     predicted ROI carries at inference time) ---
    let (rh, rw) = config.roi;
    let mut crops = Vec::with_capacity(2 * samples.len());
    let mut gazes = Vec::with_capacity(2 * samples.len());
    use rand::Rng;
    for (img, labels, gaze, _) in &samples {
        let labels_seg = downsample_labels(labels, scene, factor);
        let roi_seg = predict_roi(
            &labels_seg,
            config.seg_size,
            (rh / factor).max(2),
            (rw / factor).max(2),
        );
        let mut roi = roi_seg.rescale(config.seg_size, scene);
        roi.h = rh;
        roi.w = rw;
        roi.y0 = roi.y0.min(scene - rh);
        roi.x0 = roi.x0.min(scene - rw);
        for jitter in 0..2 {
            let mut r = roi;
            if jitter == 1 {
                let dy: i64 = rng.gen_range(-2..=2);
                let dx: i64 = rng.gen_range(-2..=2);
                r.y0 = (r.y0 as i64 + dy).clamp(0, (scene - rh) as i64) as usize;
                r.x0 = (r.x0 as i64 + dx).clamp(0, (scene - rw) as i64) as usize;
            }
            let crop = r.crop(img);
            crops.push(resize_bilinear(
                &crop,
                config.gaze_input.0,
                config.gaze_input.1,
            ));
            gazes.push(gaze.clone());
        }
    }
    let crops = Tensor::stack(&crops);
    let gazes = Tensor::stack(&gazes);
    let mut gaze = ProxyGazeNet::new(setup.gaze_family, &mut rng);
    train_gaze(
        &mut gaze,
        &crops,
        &gazes,
        &TrainConfig {
            epochs: setup.gaze_epochs,
            batch: setup.batch,
            lr: setup.gaze_lr,
            seed: setup.seed ^ 0x6A2E,
        },
    );

    // --- latent gaze training set (raw transported measurements; the net
    //     projects + normalises internally). Built *after* every rng draw
    //     of the existing pipeline, so the seg/gaze weights stay
    //     bit-identical to pre-latent training runs. ---
    let measurements: Vec<Tensor> = samples.iter().map(|(_, _, _, m)| m.clone()).collect();
    let measurements = Tensor::stack(&measurements);
    let latent_gazes: Vec<Tensor> = samples.iter().map(|(_, _, g, _)| g.clone()).collect();
    let latent_gazes = Tensor::stack(&latent_gazes);
    let mut latent = LatentGazeNet::new(
        setup.gaze_family,
        config.gaze_input.0,
        config.gaze_input.1,
        &mut rng,
    );
    train_latent_gaze(
        &mut latent,
        &measurements,
        &latent_gazes,
        &TrainConfig {
            epochs: setup.gaze_epochs,
            batch: setup.batch,
            lr: setup.gaze_lr,
            seed: setup.seed ^ 0x1A7E,
        },
    );

    TrackerModels { seg, gaze, latent }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyecod_models::proxy::eval_gaze;

    #[test]
    fn downsample_labels_picks_block_centres() {
        // 4x4 -> 2x2 with factor 2: centres at (1,1), (1,3), (3,1), (3,3)
        let mut labels = vec![0u8; 16];
        labels[4 + 1] = 3; // row 1, col 1
        labels[3 * 4 + 3] = 2;
        assert_eq!(downsample_labels(&labels, 4, 2), vec![3, 0, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "factor must divide")]
    fn downsample_labels_checks_factor() {
        downsample_labels(&[0u8; 16], 4, 3);
    }

    #[test]
    fn quick_training_produces_working_models() {
        let config = TrackerConfig::small();
        let setup = TrainingSetup::quick();
        let models = train_tracker_models(&setup, &config);

        // evaluate the gaze net on a fresh ground-truth-ROI sample
        let mut rng = StdRng::seed_from_u64(99);
        let p = EyeParams::random(&mut rng);
        let s = render_eye(&p, config.scene_size, 7);
        let acq = Acquisition::flatcam(
            config.scene_size,
            config.sensor_size,
            config.epsilon,
            config.mask_seed,
        );
        let img = acq.acquire(&s.image, 8);
        let labels_seg = downsample_labels(&s.labels, config.scene_size, 2);
        let roi = predict_roi(&labels_seg, config.seg_size, 12, 16).rescale(config.seg_size, 48);
        let mut roi = roi;
        roi.h = 24;
        roi.w = 32;
        roi.y0 = roi.y0.min(48 - 24);
        roi.x0 = roi.x0.min(48 - 32);
        let crop = resize_bilinear(&roi.crop(&img), 24, 32);
        let truth = eyecod_eyedata::GazeVector::batch_to_tensor(&[s.gaze]);
        let mut gaze = models.gaze.clone();
        let err = eval_gaze(&mut gaze, &crop, &truth);
        assert!(err < 20.0, "unseen-sample gaze error {err:.1}°");
    }

    #[test]
    fn training_is_deterministic_in_the_seed() {
        let config = TrackerConfig::small();
        let mut setup = TrainingSetup::quick();
        setup.n_samples = 8;
        setup.seg_epochs = 2;
        setup.gaze_epochs = 2;
        let a = train_tracker_models(&setup, &config);
        let b = train_tracker_models(&setup, &config);
        let mut ga = a.gaze.clone();
        let mut gb = b.gaze.clone();
        use eyecod_tensor::Layer;
        let pa: Vec<f32> = ga
            .params_mut()
            .iter()
            .map(|p| p.value.as_slice()[0])
            .collect();
        let pb: Vec<f32> = gb
            .params_mut()
            .iter()
            .map(|p| p.value.as_slice()[0])
            .collect();
        assert_eq!(pa, pb);
    }
}
