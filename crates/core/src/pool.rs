//! The process-wide work-stealing pool and batch executor.
//!
//! Re-exports the `eyecod-pool` crate so pipeline code can say
//! `eyecod_core::pool::parallel_map` without depending on the pool crate
//! directly. The pool lives in its own crate (rather than in
//! `eyecod-core`) because lower layers — notably `eyecod-optics`' tiled
//! reconstruction — also run on it, and `eyecod-core` sits above them in
//! the dependency graph.

pub use eyecod_pool::*;
