//! Scoped-thread helpers for dataset-scale evaluations.
//!
//! Rendering, FlatCam reconstruction and per-sample evaluation are
//! embarrassingly parallel; the benchmark harnesses fan them out across
//! cores with `crossbeam` scoped threads collecting into a
//! `parking_lot`-guarded buffer.

use parking_lot::Mutex;

/// Applies `f` to every item, in parallel, preserving order.
///
/// Uses up to `std::thread::available_parallelism()` worker threads; falls
/// back to sequential execution for tiny inputs.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if threads <= 1 || items.len() < 4 {
        return items.iter().map(&f).collect();
    }
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                results.lock()[i] = Some(r);
            });
        }
    })
    .expect("worker thread panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn actually_uses_multiple_threads_for_large_inputs() {
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        let ids = StdMutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        parallel_map(&items, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        let n = ids.lock().unwrap().len();
        // at least 2 workers on any multi-core machine
        if std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) > 1 {
            assert!(n > 1, "expected multiple worker threads, saw {n}");
        }
    }
}
