//! Dataset-scale parallel evaluation, backed by the process-wide
//! work-stealing pool.
//!
//! Rendering, FlatCam reconstruction and per-sample evaluation are
//! embarrassingly parallel. Earlier revisions spawned fresh scoped threads
//! per call and collected results through a single mutex; this module now
//! delegates to [`crate::pool`] (the `eyecod-pool` crate), which reuses
//! one lazily-initialised worker pool for the whole process and writes
//! results into pre-allocated slots with no locks on the hot path.

/// Applies `f` to every item, in parallel, preserving order.
///
/// Runs on the [`crate::pool::global`] pool (sized from
/// `std::thread::available_parallelism()`, overridable via the
/// `EYECOD_THREADS` environment variable). Tiny inputs run inline on the
/// calling thread.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    crate::pool::parallel_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn actually_uses_multiple_threads_for_large_inputs() {
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        let ids = StdMutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        parallel_map(&items, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        let n = ids.lock().unwrap().len();
        // at least 2 participants on any multi-core machine (workers plus
        // the calling thread)
        if crate::pool::global().threads() > 0 {
            assert!(n > 1, "expected multiple worker threads, saw {n}");
        }
    }
}
