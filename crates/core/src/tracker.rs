//! The end-to-end predict-then-focus eye tracker.

use crate::acquisition::Acquisition;
use crate::metrics::TrackingStats;
use crate::roi::{predict_roi, roi_size_from_sclera, RoiRect};
use crate::training::TrackerModels;
use eyecod_eyedata::render::render_eye;
use eyecod_eyedata::sequence::EyeMotionGenerator;
use eyecod_eyedata::GazeVector;
use eyecod_models::proxy::predict_seg;
use eyecod_models::quantized::QuantizedGazeNet;
use eyecod_telemetry::{static_counter, static_histogram};
use eyecod_tensor::ops::{downsample_avg, resize_bilinear};
use eyecod_tensor::{Layer, Tensor};

/// Which numeric backend executes the per-frame gaze network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GazeBackend {
    /// The trained f32 proxy network, executed directly.
    #[default]
    F32,
    /// The deployed int8 path (paper Tables 2/3, "8-bit" rows): the first
    /// [`TrackerConfig::calibration_frames`] frames run through the f32
    /// network while their gaze crops are collected; the tracker then
    /// folds, calibrates and quantises the network once and every later
    /// frame runs entirely in int8.
    Int8,
}

impl GazeBackend {
    /// Parses a backend name (`"f32"`/`"float"` or `"int8"`/`"i8"`,
    /// case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "f32" | "float" | "fp32" => Some(GazeBackend::F32),
            "int8" | "i8" | "quantized" => Some(GazeBackend::Int8),
            _ => None,
        }
    }

    /// Reads `EYECOD_GAZE_BACKEND` from the environment, defaulting to
    /// [`GazeBackend::F32`] when unset or empty.
    ///
    /// # Panics
    ///
    /// Panics if the variable is set to an unrecognised value — a silent
    /// fallback would make CI's int8 job quietly test the wrong backend.
    pub fn from_env() -> Self {
        match std::env::var("EYECOD_GAZE_BACKEND") {
            Ok(v) if v.trim().is_empty() => GazeBackend::F32,
            Ok(v) => Self::parse(&v)
                .unwrap_or_else(|| panic!("unrecognised EYECOD_GAZE_BACKEND value: {v:?}")),
            Err(_) => GazeBackend::F32,
        }
    }
}

/// How the ROI size is chosen at each refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoiSizing {
    /// Use the configured `roi` size verbatim (the paper's adopted 96×160).
    #[default]
    Fixed,
    /// Re-derive the size from the segmented sclera extent × 1.5 at every
    /// refresh (the §4.3 sizing rule as a live mode) — adapts to eye size
    /// and blink state at the cost of a variable gaze-crop distribution.
    ScleraAdaptive,
}

/// Geometry and scheduling of the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerConfig {
    /// Square scene/reconstruction resolution.
    pub scene_size: usize,
    /// FlatCam sensor resolution (≥ scene).
    pub sensor_size: usize,
    /// Segmentation input resolution (scene downsampled by an integer
    /// factor; paper: 512→128).
    pub seg_size: usize,
    /// ROI size `(h, w)` in scene coordinates (paper: 96×160 at 256).
    pub roi: (usize, usize),
    /// Gaze-network input size `(h, w)` the ROI is resized to.
    pub gaze_input: (usize, usize),
    /// Frames between ROI refreshes (N = 50 in the paper).
    pub roi_period: usize,
    /// Tikhonov regularisation for the reconstruction.
    pub epsilon: f64,
    /// FlatCam acquisition (true) or lens baseline (false).
    pub flatcam: bool,
    /// Mask seed for the FlatCam.
    pub mask_seed: u32,
    /// ROI sizing policy.
    pub roi_sizing: RoiSizing,
    /// Numeric backend for the gaze network.
    pub gaze_backend: GazeBackend,
    /// With [`GazeBackend::Int8`]: how many warm-up frames run through the
    /// f32 network while their gaze crops are collected as the calibration
    /// batch. Ignored by the f32 backend.
    pub calibration_frames: usize,
}

impl TrackerConfig {
    /// A laptop-scale configuration used by tests and the quickstart:
    /// 48×48 scenes, 24×24 segmentation, 24×32 ROI, refresh every 10
    /// frames.
    pub fn small() -> Self {
        TrackerConfig {
            scene_size: 48,
            sensor_size: 64,
            seg_size: 24,
            roi: (24, 32),
            gaze_input: (24, 32),
            roi_period: 10,
            epsilon: 1e-3,
            flatcam: true,
            mask_seed: 17,
            roi_sizing: RoiSizing::Fixed,
            gaze_backend: GazeBackend::from_env(),
            calibration_frames: 8,
        }
    }

    /// Same geometry through a lens camera (the Table 2/3 baseline).
    pub fn small_lens() -> Self {
        TrackerConfig {
            flatcam: false,
            ..Self::small()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if extents are inconsistent (ROI larger than the scene,
    /// segmentation size not dividing the scene, zero period, …).
    pub fn validate(&self) {
        assert!(
            self.scene_size > 0 && self.seg_size > 0,
            "extents must be non-zero"
        );
        assert!(
            self.roi.0 > 0 && self.roi.1 > 0,
            "ROI must be non-empty, got {:?}",
            self.roi
        );
        assert!(
            self.gaze_input.0 > 0 && self.gaze_input.1 > 0,
            "gaze input must be non-empty, got {:?}",
            self.gaze_input
        );
        assert!(
            self.scene_size.is_multiple_of(self.seg_size),
            "segmentation size {} must divide scene size {}",
            self.seg_size,
            self.scene_size
        );
        assert!(
            self.seg_size.is_multiple_of(2),
            "segmentation net needs an even input size"
        );
        assert!(
            self.roi.0 <= self.scene_size && self.roi.1 <= self.scene_size,
            "ROI {:?} exceeds scene {}",
            self.roi,
            self.scene_size
        );
        assert!(self.roi_period > 0, "ROI period must be non-zero");
        if self.gaze_backend == GazeBackend::Int8 {
            assert!(
                self.calibration_frames > 0,
                "int8 backend needs at least one calibration frame"
            );
        }
        if self.flatcam {
            assert!(self.sensor_size > 0, "sensor size must be non-zero");
            assert!(
                self.sensor_size >= self.scene_size,
                "sensor must cover the scene"
            );
        }
    }
}

/// Output of processing one frame.
#[derive(Debug, Clone)]
pub struct TrackedFrame {
    /// Estimated 3-D gaze direction (unit vector).
    pub gaze: GazeVector,
    /// The ROI used for this frame, in scene coordinates.
    pub roi: RoiRect,
    /// Whether the segmentation model ran on this frame.
    pub roi_refreshed: bool,
    /// Frame index since tracker construction.
    pub frame: u64,
    /// True when the gaze network emitted a (near-)zero vector and `gaze`
    /// is the previous frame's direction instead (straight ahead on frame
    /// 0). Downstream consumers can discount such frames.
    pub gaze_degenerate: bool,
}

/// The EyeCoD eye tracker: acquisition → periodic segmentation + ROI →
/// per-frame gaze estimation.
pub struct EyeTracker {
    config: TrackerConfig,
    acquisition: Acquisition,
    models: TrackerModels,
    current_roi: RoiRect,
    frame_counter: u64,
    last_labels: Option<Vec<u8>>,
    /// Fallback gaze when the model output is degenerate: the previous
    /// frame's direction (straight ahead before any frame was tracked).
    last_gaze: GazeVector,
    /// Gaze crops collected during int8 warm-up, pending calibration.
    calib_inputs: Vec<Tensor>,
    /// The deployed int8 network, once calibrated.
    quantized_gaze: Option<QuantizedGazeNet>,
}

impl EyeTracker {
    /// Assembles a tracker from a configuration and trained models.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: TrackerConfig, models: TrackerModels) -> Self {
        config.validate();
        let acquisition = if config.flatcam {
            Acquisition::flatcam(
                config.scene_size,
                config.sensor_size,
                config.epsilon,
                config.mask_seed,
            )
        } else {
            Acquisition::lens()
        };
        let current_roi = RoiRect::centered(
            config.scene_size,
            config.scene_size,
            config.roi.0,
            config.roi.1,
        );
        EyeTracker {
            config,
            acquisition,
            models,
            current_roi,
            frame_counter: 0,
            last_labels: None,
            last_gaze: GazeVector::from_angles(0.0, 0.0),
            calib_inputs: Vec::new(),
            quantized_gaze: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// The ROI currently in use (scene coordinates).
    pub fn current_roi(&self) -> RoiRect {
        self.current_roi
    }

    /// The most recent segmentation label map (segmentation resolution),
    /// if a refresh has happened.
    pub fn last_labels(&self) -> Option<&[u8]> {
        self.last_labels.as_deref()
    }

    /// The calibrated int8 gaze network, once the warm-up window has
    /// completed under [`GazeBackend::Int8`] (`None` before that, and
    /// always `None` under the f32 backend).
    pub fn quantized_gaze(&self) -> Option<&QuantizedGazeNet> {
        self.quantized_gaze.as_ref()
    }

    /// Processes one frame: acquires the scene, refreshes the ROI if due,
    /// and estimates gaze from the ROI crop.
    ///
    /// If the gaze network emits a degenerate (near-zero) vector, the
    /// previous frame's gaze is reused and the output is flagged via
    /// [`TrackedFrame::gaze_degenerate`] instead of panicking.
    ///
    /// Each stage records a latency histogram (`tracker/acquire_ns`,
    /// `tracker/segment_ns`, `tracker/crop_resize_ns`,
    /// `tracker/gaze_forward_ns`, `tracker/frame_ns`) into the global
    /// telemetry registry while telemetry is enabled.
    ///
    /// # Panics
    ///
    /// Panics if the scene resolution does not match the configuration.
    pub fn process_frame(&mut self, scene: &Tensor, noise_seed: u64) -> TrackedFrame {
        static_counter!("tracker/frames").inc();
        let _frame_timer = static_histogram!("tracker/frame_ns").timer();
        let s = scene.shape();
        assert_eq!(
            (s.h, s.w),
            (self.config.scene_size, self.config.scene_size),
            "scene must be {0}x{0}",
            self.config.scene_size
        );
        let image = static_histogram!("tracker/acquire_ns")
            .time(|| self.acquisition.acquire(scene, noise_seed));

        let due = self
            .frame_counter
            .is_multiple_of(self.config.roi_period as u64);
        if due {
            static_counter!("tracker/roi_refreshes").inc();
            static_histogram!("tracker/segment_ns").time(|| self.refresh_roi(&image));
        }

        let gaze_in = static_histogram!("tracker/crop_resize_ns").time(|| {
            let crop = self.current_roi.crop(&image);
            resize_bilinear(&crop, self.config.gaze_input.0, self.config.gaze_input.1)
        });
        let pred =
            static_histogram!("tracker/gaze_forward_ns").time(|| self.gaze_forward(&gaze_in));
        let (gaze, gaze_degenerate) = match GazeVector::from_tensor(&pred, 0).try_normalized() {
            Some(g) => (g, false),
            None => {
                static_counter!("tracker/gaze_degenerate").inc();
                (self.last_gaze, true)
            }
        };
        self.last_gaze = gaze;

        let frame = self.frame_counter;
        self.frame_counter += 1;
        TrackedFrame {
            gaze,
            roi: self.current_roi,
            roi_refreshed: due,
            frame,
            gaze_degenerate,
        }
    }

    /// Runs the gaze network on one ROI crop through the configured
    /// backend.
    ///
    /// Under [`GazeBackend::Int8`] the first `calibration_frames` frames
    /// execute the f32 network while their crops are collected; when the
    /// window fills, the network is folded, calibrated on the collected
    /// batch and quantised (`tracker/int8_calibrations` counts this, and
    /// `tracker/int8_frames` counts every frame served by the int8 chain).
    /// The switch is deterministic in the frame sequence, so parallel and
    /// sequential runs still agree bit-for-bit.
    fn gaze_forward(&mut self, gaze_in: &Tensor) -> Tensor {
        match self.config.gaze_backend {
            GazeBackend::F32 => self.models.gaze.forward(gaze_in, false),
            GazeBackend::Int8 => {
                if let Some(qnet) = &self.quantized_gaze {
                    static_counter!("tracker/int8_frames").inc();
                    return qnet.forward(gaze_in);
                }
                self.calib_inputs.push(gaze_in.clone());
                let pred = self.models.gaze.forward(gaze_in, false);
                if self.calib_inputs.len() >= self.config.calibration_frames {
                    let calib = Tensor::stack(&self.calib_inputs);
                    self.quantized_gaze =
                        Some(QuantizedGazeNet::from_calibrated(&self.models.gaze, &calib));
                    self.calib_inputs = Vec::new();
                    static_counter!("tracker/int8_calibrations").inc();
                }
                pred
            }
        }
    }

    /// Runs the segmentation model and re-anchors the ROI (the "predict"
    /// stage).
    fn refresh_roi(&mut self, image: &Tensor) {
        let factor = self.config.scene_size / self.config.seg_size;
        let scene = self.config.scene_size;
        let seg_in = downsample_avg(image, factor);
        let labels = predict_seg(&mut self.models.seg, &seg_in);
        // choose the target ROI size per the configured policy
        let (rh, rw) = match self.config.roi_sizing {
            RoiSizing::Fixed => self.config.roi,
            RoiSizing::ScleraAdaptive => {
                let (sh, sw) = roi_size_from_sclera(&labels, self.config.seg_size);
                ((sh * factor).min(scene), (sw * factor).min(scene))
            }
        };
        let roi_at_seg_h = (rh / factor).max(2);
        let roi_at_seg_w = (rw / factor).max(2);
        let roi_seg = predict_roi(&labels, self.config.seg_size, roi_at_seg_h, roi_at_seg_w);
        let mut roi = roi_seg.rescale(self.config.seg_size, scene);
        // rounding guard: pin exactly to the chosen ROI size
        roi.h = rh;
        roi.w = rw;
        roi.y0 = roi.y0.min(scene - roi.h);
        roi.x0 = roi.x0.min(scene - roi.w);
        self.current_roi = roi;
        self.last_labels = Some(labels);
    }

    /// Evaluates several independent motion sequences concurrently on the
    /// process-wide work-stealing pool, one sequence per seed.
    ///
    /// Trackers are stateful (ROI schedule, frame counter), so each job
    /// builds its own tracker from the shared trained models; results are
    /// bit-identical to running [`EyeTracker::run_sequence`] on fresh
    /// trackers sequentially, in seed order.
    pub fn run_sequences_parallel(
        config: &TrackerConfig,
        models: &TrackerModels,
        seeds: &[u64],
        frames: usize,
    ) -> Vec<TrackingStats> {
        crate::pool::parallel_map_chunked(seeds, 1, |&seed| {
            let mut tracker = EyeTracker::new(config.clone(), models.clone_models());
            let mut generator = EyeMotionGenerator::with_seed(seed);
            tracker.run_sequence(&mut generator, frames)
        })
    }

    /// Tracks a synthetic eye-motion sequence for `frames` frames,
    /// rendering each frame at the configured scene size, and returns the
    /// accumulated statistics.
    pub fn run_sequence(
        &mut self,
        generator: &mut EyeMotionGenerator,
        frames: usize,
    ) -> TrackingStats {
        let mut stats = TrackingStats::new();
        for i in 0..frames {
            let params = generator.next_frame();
            let sample = render_eye(&params, self.config.scene_size, 1000 + i as u64);
            let out = self.process_frame(&sample.image, 2000 + i as u64);
            stats.record(&out, &sample.gaze);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train_tracker_models, TrainingSetup};
    use eyecod_eyedata::render::EyeParams;
    use std::sync::OnceLock;

    /// Train once, share across tests (training is the expensive part).
    fn tracker() -> EyeTracker {
        static MODELS: OnceLock<(TrackerConfig, TrackerModels)> = OnceLock::new();
        let (cfg, models) = MODELS.get_or_init(|| {
            let cfg = TrackerConfig::small();
            let models = train_tracker_models(&TrainingSetup::quick(), &cfg);
            (cfg, models)
        });
        EyeTracker::new(cfg.clone(), models.clone_models())
    }

    #[test]
    fn tracks_a_centered_eye_reasonably() {
        let mut t = tracker();
        let mut params = EyeParams::centered(48);
        params.yaw = 0.15;
        params.pitch = -0.1;
        let sample = render_eye(&params, 48, 3);
        let out = t.process_frame(&sample.image, 4);
        let err = out.gaze.angular_error_degrees(&sample.gaze);
        // a quick-trained proxy on one frame: just demand it is far better
        // than chance (random guessing in the ±25° cone averages >15°)
        assert!(err < 15.0, "single-frame error {err:.1}°");
        assert!(out.roi_refreshed, "first frame must refresh the ROI");
    }

    #[test]
    fn roi_refresh_happens_on_schedule() {
        let mut t = tracker();
        let sample = render_eye(&EyeParams::centered(48), 48, 0);
        let mut refreshes = 0;
        for i in 0..25 {
            let out = t.process_frame(&sample.image, i);
            if out.roi_refreshed {
                refreshes += 1;
            }
        }
        // period 10 over 25 frames -> frames 0, 10, 20
        assert_eq!(refreshes, 3);
        assert!(t.last_labels().is_some());
    }

    #[test]
    fn roi_follows_the_eye_after_refresh() {
        let mut t = tracker();
        let mut left = EyeParams::centered(48);
        left.center_x = 0.42;
        let mut right = EyeParams::centered(48);
        right.center_x = 0.58;
        let sl = render_eye(&left, 48, 1);
        let sr = render_eye(&right, 48, 2);
        t.process_frame(&sl.image, 1);
        let roi_left = t.current_roi();
        // advance to the next refresh frame with the eye moved right
        for i in 0..t.config().roi_period {
            t.process_frame(&sr.image, 10 + i as u64);
        }
        let roi_right = t.current_roi();
        assert!(
            roi_right.x0 > roi_left.x0,
            "ROI should move right: {roi_left:?} -> {roi_right:?}"
        );
    }

    #[test]
    fn sequence_tracking_beats_chance() {
        let mut t = tracker();
        let mut gen = EyeMotionGenerator::with_seed(5);
        let stats = t.run_sequence(&mut gen, 30);
        assert_eq!(stats.frames, 30);
        assert!(stats.roi_refreshes >= 3);
        assert!(
            stats.mean_error_deg() < 18.0,
            "sequence mean error {:.1}°",
            stats.mean_error_deg()
        );
    }

    #[test]
    fn parallel_sequences_match_sequential_runs() {
        let t = tracker();
        let (config, models) = (t.config().clone(), t.models.clone_models());
        let seeds = [5u64, 6, 7, 8, 9];
        let parallel = EyeTracker::run_sequences_parallel(&config, &models, &seeds, 12);
        assert_eq!(parallel.len(), seeds.len());
        for (&seed, stats) in seeds.iter().zip(&parallel) {
            let mut fresh = EyeTracker::new(config.clone(), models.clone_models());
            let sequential = fresh.run_sequence(&mut EyeMotionGenerator::with_seed(seed), 12);
            assert_eq!(stats.frames, sequential.frames);
            assert_eq!(stats.roi_refreshes, sequential.roi_refreshes);
            assert_eq!(stats.mean_error_deg(), sequential.mean_error_deg());
        }
    }

    #[test]
    fn adaptive_roi_plumbing_changes_size_and_stays_in_bounds() {
        // the sizing rule itself is unit-tested on ground-truth labels in
        // roi.rs; here we verify the live policy plumbing: the adaptive
        // mode derives a (generally different) size from predicted labels
        // and the ROI always stays inside the scene
        let mut t = tracker();
        t.config.roi_sizing = RoiSizing::ScleraAdaptive;
        let s = render_eye(&EyeParams::centered(48), 48, 3);
        let out = t.process_frame(&s.image, 4);
        let r = out.roi;
        assert!(
            r.y0 + r.h <= 48 && r.x0 + r.w <= 48,
            "ROI out of bounds: {r:?}"
        );
        assert!(r.h >= 12 && r.w >= 12, "adaptive ROI degenerate: {r:?}");
        // fixed mode pins the configured size
        let mut tf = tracker();
        let out_fixed = tf.process_frame(&s.image, 4);
        assert_eq!((out_fixed.roi.h, out_fixed.roi.w), tf.config().roi);
    }

    #[test]
    #[should_panic(expected = "must divide scene size")]
    fn config_validation_catches_bad_seg_size() {
        let mut cfg = TrackerConfig::small();
        cfg.seg_size = 20;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "ROI must be non-empty")]
    fn config_validation_catches_zero_roi() {
        let mut cfg = TrackerConfig::small();
        cfg.roi = (0, 32);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "gaze input must be non-empty")]
    fn config_validation_catches_zero_gaze_input() {
        let mut cfg = TrackerConfig::small();
        cfg.gaze_input = (24, 0);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "sensor size must be non-zero")]
    fn config_validation_catches_zero_sensor() {
        let mut cfg = TrackerConfig::small();
        cfg.sensor_size = 0;
        cfg.validate();
    }

    #[test]
    fn degenerate_gaze_falls_back_instead_of_panicking() {
        let mut t = tracker();
        // zero every gaze parameter: the network now emits an exact zero
        // vector for any input
        for p in t.models.gaze.params_mut() {
            p.value = Tensor::zeros(p.value.shape());
        }
        let sample = render_eye(&EyeParams::centered(48), 48, 7);
        let out = t.process_frame(&sample.image, 8);
        assert!(out.gaze_degenerate, "zero output must be flagged");
        // frame 0 falls back to straight ahead
        let ahead = GazeVector::from_angles(0.0, 0.0);
        assert!(out.gaze.angular_error_degrees(&ahead) < 1e-3);
        // a whole sequence completes and every frame is counted
        let mut gen = EyeMotionGenerator::with_seed(11);
        let stats = t.run_sequence(&mut gen, 12);
        assert_eq!(stats.frames, 12);
        assert_eq!(stats.degenerate_frames, 12);
        assert_eq!(t.frame_counter, 13);
    }

    #[test]
    fn gaze_backend_parses_names_case_insensitively() {
        assert_eq!(GazeBackend::parse("f32"), Some(GazeBackend::F32));
        assert_eq!(GazeBackend::parse("FLOAT"), Some(GazeBackend::F32));
        assert_eq!(GazeBackend::parse("int8"), Some(GazeBackend::Int8));
        assert_eq!(GazeBackend::parse("I8"), Some(GazeBackend::Int8));
        assert_eq!(GazeBackend::parse("fp16"), None);
        assert_eq!(GazeBackend::default(), GazeBackend::F32);
    }

    #[test]
    #[should_panic(expected = "at least one calibration frame")]
    fn config_validation_catches_zero_calibration_frames() {
        let mut cfg = TrackerConfig::small();
        cfg.gaze_backend = GazeBackend::Int8;
        cfg.calibration_frames = 0;
        cfg.validate();
    }

    #[test]
    fn int8_backend_switches_over_after_warmup() {
        let mut t = tracker();
        t.config.gaze_backend = GazeBackend::Int8;
        t.config.calibration_frames = 4;
        let mut gen = EyeMotionGenerator::with_seed(9);
        for i in 0..3 {
            let params = gen.next_frame();
            let s = render_eye(&params, 48, 100 + i);
            t.process_frame(&s.image, 200 + i);
            assert!(t.quantized_gaze().is_none(), "still warming up");
        }
        let params = gen.next_frame();
        let s = render_eye(&params, 48, 103);
        t.process_frame(&s.image, 203);
        let qnet = t.quantized_gaze().expect("calibrated after 4 frames");
        assert!(qnet.input_scale() > 0.0);
        // int8 frames keep tracking sensibly (not degenerate, sane error)
        let params = gen.next_frame();
        let s = render_eye(&params, 48, 104);
        let out = t.process_frame(&s.image, 204);
        assert!(!out.gaze_degenerate);
        assert!(out.gaze.angular_error_degrees(&s.gaze) < 20.0);
    }

    #[test]
    fn f32_backend_never_quantizes() {
        let mut t = tracker();
        // pin the backend: tracker() inherits EYECOD_GAZE_BACKEND, and this
        // test is specifically about the f32 path
        t.config.gaze_backend = GazeBackend::F32;
        let mut gen = EyeMotionGenerator::with_seed(12);
        t.run_sequence(&mut gen, 12);
        assert!(t.quantized_gaze().is_none());
    }

    #[test]
    fn healthy_frames_are_not_flagged_degenerate() {
        let mut t = tracker();
        let sample = render_eye(&EyeParams::centered(48), 48, 3);
        let out = t.process_frame(&sample.image, 4);
        assert!(!out.gaze_degenerate);
        let mut gen = EyeMotionGenerator::with_seed(5);
        assert_eq!(t.run_sequence(&mut gen, 10).degenerate_frames, 0);
    }
}
