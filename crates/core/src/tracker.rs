//! The end-to-end predict-then-focus eye tracker.

use crate::acquisition::{AcquireScratch, Acquisition};
use crate::metrics::TrackingStats;
use crate::roi::{predict_roi, roi_size_from_sclera, RoiRect};
use crate::training::TrackerModels;
use eyecod_eyedata::render::render_eye;
use eyecod_eyedata::sequence::EyeMotionGenerator;
use eyecod_eyedata::GazeVector;
use eyecod_faults::{FaultPlan, FaultSite, FaultStats, FrameFaults, FrameQuality, RecoveryPolicy};
use eyecod_models::infer::GazeInferWorkspace;
use eyecod_models::proxy::predict_seg;
use eyecod_models::quantized::QuantizedGazeNet;
use eyecod_telemetry::{static_counter, static_histogram};
use eyecod_tensor::ops::{downsample_avg, resize_bilinear_into};
use eyecod_tensor::{Shape, Tensor};

/// Which numeric backend executes the per-frame gaze network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GazeBackend {
    /// The trained f32 proxy network, executed directly.
    #[default]
    F32,
    /// The deployed int8 path (paper Tables 2/3, "8-bit" rows): the first
    /// [`TrackerConfig::calibration_frames`] frames run through the f32
    /// network while their gaze crops are collected; the tracker then
    /// folds, calibrates and quantises the network once and every later
    /// frame runs entirely in int8.
    Int8,
    /// The recon-free latent path (FlatTrack, arXiv 2501.15450): on
    /// steady-state frames the gaze is regressed straight from the
    /// down-projected raw FlatCam measurement — no Tikhonov solve, no
    /// segmentation, no ROI crop — while the every-N ROI-refresh frames
    /// still run full reconstruction + segmentation and the recon-path f32
    /// gaze network, keeping the ROI anchored and refresh outputs
    /// byte-identical to the f32 backend.
    Latent,
}

impl GazeBackend {
    /// Parses a backend name (`"f32"`/`"float"`, `"int8"`/`"i8"`, or
    /// `"latent"`/`"recon-free"`, case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "f32" | "float" | "fp32" => Some(GazeBackend::F32),
            "int8" | "i8" | "quantized" => Some(GazeBackend::Int8),
            "latent" | "recon-free" | "reconfree" => Some(GazeBackend::Latent),
            _ => None,
        }
    }

    /// Reads `EYECOD_GAZE_BACKEND` from the environment, defaulting to
    /// [`GazeBackend::F32`] only when the variable is genuinely absent.
    ///
    /// # Panics
    ///
    /// Panics if the variable is set to an unrecognised or non-unicode
    /// value — any silent fallback would make CI's backend jobs quietly
    /// test the wrong backend.
    pub fn from_env() -> Self {
        match std::env::var("EYECOD_GAZE_BACKEND") {
            Ok(v) => Self::from_env_value(&v),
            Err(std::env::VarError::NotPresent) => GazeBackend::F32,
            Err(std::env::VarError::NotUnicode(raw)) => panic!(
                "EYECOD_GAZE_BACKEND is set to a non-unicode value {raw:?}; \
                 expected one of f32 | int8 | latent"
            ),
        }
    }

    /// Interprets a *set* `EYECOD_GAZE_BACKEND` value: empty / whitespace
    /// means the default ([`GazeBackend::F32`], matching an unset
    /// variable); anything else must parse. Split out of
    /// [`GazeBackend::from_env`] so the rejection contract is testable
    /// without mutating the process environment.
    ///
    /// # Panics
    ///
    /// Panics with the offending value on anything [`GazeBackend::parse`]
    /// rejects.
    pub fn from_env_value(value: &str) -> Self {
        if value.trim().is_empty() {
            return GazeBackend::F32;
        }
        Self::parse(value).unwrap_or_else(|| {
            panic!(
                "unrecognised EYECOD_GAZE_BACKEND value: {value:?}; \
                 expected one of f32 | int8 | latent"
            )
        })
    }
}

/// How the ROI size is chosen at each refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoiSizing {
    /// Use the configured `roi` size verbatim (the paper's adopted 96×160).
    #[default]
    Fixed,
    /// Re-derive the size from the segmented sclera extent × 1.5 at every
    /// refresh (the §4.3 sizing rule as a live mode) — adapts to eye size
    /// and blink state at the cost of a variable gaze-crop distribution.
    ScleraAdaptive,
}

/// Geometry and scheduling of the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerConfig {
    /// Square scene/reconstruction resolution.
    pub scene_size: usize,
    /// FlatCam sensor resolution (≥ scene).
    pub sensor_size: usize,
    /// Segmentation input resolution (scene downsampled by an integer
    /// factor; paper: 512→128).
    pub seg_size: usize,
    /// ROI size `(h, w)` in scene coordinates (paper: 96×160 at 256).
    pub roi: (usize, usize),
    /// Gaze-network input size `(h, w)` the ROI is resized to.
    pub gaze_input: (usize, usize),
    /// Frames between ROI refreshes (N = 50 in the paper).
    pub roi_period: usize,
    /// Tikhonov regularisation for the reconstruction.
    pub epsilon: f64,
    /// FlatCam acquisition (true) or lens baseline (false).
    pub flatcam: bool,
    /// Mask seed for the FlatCam.
    pub mask_seed: u32,
    /// ROI sizing policy.
    pub roi_sizing: RoiSizing,
    /// Numeric backend for the gaze network.
    pub gaze_backend: GazeBackend,
    /// With [`GazeBackend::Int8`]: how many warm-up frames run through the
    /// f32 network while their gaze crops are collected as the calibration
    /// batch. Ignored by the f32 backend.
    pub calibration_frames: usize,
    /// Event-driven sparse acquisition: steady-state frames diff the scene
    /// against the last fully-sensed base and fold only the changed
    /// columns into the cached measurement/reconstruction instead of
    /// re-sensing the full scene; scheduled ROI-refresh frames still run
    /// the dense path and re-prime the caches. (`EYECOD_DELTA`.)
    pub delta: bool,
    /// Motion gate for the delta path: when fewer than this many pixels
    /// changed, the whole gaze forward is skipped and the frame is served
    /// from the last-good gaze. `0` disables the gate (every changed frame
    /// runs the sparse update). (`EYECOD_DELTA_THRESHOLD`.)
    pub delta_threshold: usize,
    /// Per-pixel magnitude a scene value must move by to count as changed
    /// (≈4σ of the render's sensor noise, so pure noise rarely registers).
    pub delta_epsilon: f64,
}

impl TrackerConfig {
    /// A laptop-scale configuration used by tests and the quickstart:
    /// 48×48 scenes, 24×24 segmentation, 24×32 ROI, refresh every 10
    /// frames.
    pub fn small() -> Self {
        TrackerConfig {
            scene_size: 48,
            sensor_size: 64,
            seg_size: 24,
            roi: (24, 32),
            gaze_input: (24, 32),
            roi_period: 10,
            epsilon: 1e-3,
            flatcam: true,
            mask_seed: 17,
            roi_sizing: RoiSizing::Fixed,
            gaze_backend: GazeBackend::from_env(),
            calibration_frames: 8,
            delta: crate::env::bool_or("EYECOD_DELTA", false),
            delta_threshold: crate::env::usize_or("EYECOD_DELTA_THRESHOLD", 16),
            delta_epsilon: 0.05,
        }
    }

    /// Same geometry through a lens camera (the Table 2/3 baseline).
    pub fn small_lens() -> Self {
        TrackerConfig {
            flatcam: false,
            ..Self::small()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if extents are inconsistent (ROI larger than the scene,
    /// segmentation size not dividing the scene, zero period, …).
    pub fn validate(&self) {
        assert!(
            self.scene_size > 0 && self.seg_size > 0,
            "extents must be non-zero"
        );
        assert!(
            self.roi.0 > 0 && self.roi.1 > 0,
            "ROI must be non-empty, got {:?}",
            self.roi
        );
        assert!(
            self.gaze_input.0 > 0 && self.gaze_input.1 > 0,
            "gaze input must be non-empty, got {:?}",
            self.gaze_input
        );
        assert!(
            self.scene_size.is_multiple_of(self.seg_size),
            "segmentation size {} must divide scene size {}",
            self.seg_size,
            self.scene_size
        );
        assert!(
            self.seg_size.is_multiple_of(2),
            "segmentation net needs an even input size"
        );
        assert!(
            self.roi.0 <= self.scene_size && self.roi.1 <= self.scene_size,
            "ROI {:?} exceeds scene {}",
            self.roi,
            self.scene_size
        );
        assert!(self.roi_period > 0, "ROI period must be non-zero");
        if self.gaze_backend == GazeBackend::Int8 {
            assert!(
                self.calibration_frames > 0,
                "int8 backend needs at least one calibration frame"
            );
        }
        if self.flatcam {
            assert!(self.sensor_size > 0, "sensor size must be non-zero");
            assert!(
                self.sensor_size >= self.scene_size,
                "sensor must cover the scene"
            );
        }
        if self.delta {
            assert!(
                self.delta_epsilon > 0.0,
                "delta change-detection epsilon must be positive"
            );
        }
    }
}

/// Output of processing one frame.
#[derive(Debug, Clone)]
pub struct TrackedFrame {
    /// Estimated 3-D gaze direction (unit vector).
    pub gaze: GazeVector,
    /// The ROI used for this frame, in scene coordinates.
    pub roi: RoiRect,
    /// Whether the segmentation model ran on this frame.
    pub roi_refreshed: bool,
    /// Frame index since tracker construction.
    pub frame: u64,
    /// True when the gaze network emitted a (near-)zero vector and `gaze`
    /// is the previous frame's direction instead (straight ahead on frame
    /// 0). Downstream consumers can discount such frames.
    pub gaze_degenerate: bool,
    /// True when the motion gate skipped the gaze forward for this frame:
    /// change detection found fewer than
    /// [`TrackerConfig::delta_threshold`] changed pixels, so `gaze` is the
    /// last-good direction and no acquisition, reconstruction or network
    /// work ran. Always false with the delta path disabled.
    pub gaze_skipped: bool,
    /// How much this frame can be trusted: `Ok` when every stage ran on
    /// fresh data, `Degraded` when a retry or last-good fallback was used,
    /// `Lost` when the recovery budget or the policy's staleness limits
    /// were exhausted.
    pub quality: FrameQuality,
    /// Fault events injected into / recovered while producing this frame.
    pub faults: FrameFaults,
}

/// The EyeCoD eye tracker: acquisition → periodic segmentation + ROI →
/// per-frame gaze estimation.
pub struct EyeTracker {
    config: TrackerConfig,
    acquisition: Acquisition,
    models: TrackerModels,
    current_roi: RoiRect,
    frame_counter: u64,
    last_labels: Option<Vec<u8>>,
    /// Fallback gaze when the model output is degenerate: the previous
    /// frame's direction (straight ahead before any frame was tracked).
    last_gaze: GazeVector,
    /// Gaze crops collected during int8 warm-up, pending calibration.
    calib_inputs: Vec<Tensor>,
    /// The deployed int8 network, once calibrated.
    quantized_gaze: Option<QuantizedGazeNet>,
    /// The active fault-injection plan ([`FaultPlan::none`] in production;
    /// `EYECOD_FAULT_PLAN` or [`EyeTracker::with_faults`] enable it).
    faults: FaultPlan,
    /// Retry budgets and staleness limits for graceful degradation.
    recovery: RecoveryPolicy,
    /// Cumulative fault accounting since construction.
    fault_stats: FaultStats,
    /// Last successfully acquired image: the fallback for dropped, delayed
    /// or unrecoverably corrupted frames.
    last_image: Option<Tensor>,
    /// Last sane raw measurement, maintained only under
    /// [`GazeBackend::Latent`]: the fallback the recon-free fast path
    /// serves when a steady-state frame is dropped, delayed or
    /// unrecoverably corrupted (it must fall back to a *measurement*, not
    /// a reconstructed image — the latent net never sees reconstructions).
    last_meas: Option<Tensor>,
    /// Consecutive frames served from `last_image` instead of a fresh
    /// capture.
    image_staleness: u32,
    /// Consecutive scheduled ROI refreshes that fell back to the last-good
    /// ROI.
    roi_staleness: u32,
    /// Consecutive frames on which the gaze output fell back to
    /// `last_gaze`.
    gaze_staleness: u32,
    /// Per-frame scratch buffers, taken out at frame start and restored at
    /// the end (so stage helpers can borrow them alongside `&mut self`).
    /// `None` only before the first frame and transiently inside
    /// [`EyeTracker::process_frame`].
    scratch: Option<Box<FrameScratch>>,
}

/// Tracker-owned buffers reused on every frame — the software analogue of
/// the accelerator's fixed on-chip buffers (weights resident, activations
/// ping-ponged between two global buffers, nothing allocated per frame).
/// Every buffer grows to its steady size during the first frames and is
/// then reused verbatim, which is what makes a steady-state
/// [`EyeTracker::process_frame`] allocation-free.
struct FrameScratch {
    /// Acquisition staging (scene/measurement matrices, reconstruction
    /// workspace).
    acquire: AcquireScratch,
    /// The acquired (or last-good fallback) image for the current frame.
    image: Tensor,
    /// ROI crop of `image`.
    crop: Tensor,
    /// The resized gaze-network input.
    gaze_in: Tensor,
    /// The gaze-network output.
    pred: Tensor,
    /// Arena buffers for the gaze forward passes (both backends).
    infer: GazeInferWorkspace,
}

impl FrameScratch {
    fn new() -> Self {
        FrameScratch {
            acquire: AcquireScratch::new(),
            image: Tensor::zeros(Shape::new(1, 1, 1, 1)),
            crop: Tensor::zeros(Shape::new(1, 1, 1, 1)),
            gaze_in: Tensor::zeros(Shape::new(1, 1, 1, 1)),
            pred: Tensor::zeros(Shape::new(1, 1, 1, 1)),
            infer: GazeInferWorkspace::new(),
        }
    }
}

/// A frame that has run through acquisition, the (possibly due) ROI
/// refresh, and the crop/resize stage, but not yet the gaze network — the
/// hand-off point where a serving layer can lift the gaze forward out of
/// the tracker and batch it across sessions.
///
/// Produced by [`EyeTracker::prepare_frame`]; consumed by exactly one of
/// [`EyeTracker::complete_frame`] (tracker-owned gaze forward) or
/// [`EyeTracker::complete_frame_with_pred`] (externally computed
/// prediction). It owns the tracker's scratch buffers for the duration, so
/// the split adds no allocation and no copying over the fused
/// [`EyeTracker::process_frame`] path.
pub struct PreparedFrame {
    scratch: Box<FrameScratch>,
    cur: StageCursor,
}

impl PreparedFrame {
    /// Whether an image made it through acquisition and a gaze input is
    /// staged in [`PreparedFrame::gaze_input`]. When `false`, completion
    /// takes the missing-frame fallback path and no gaze forward is
    /// needed.
    pub fn has_gaze_input(&self) -> bool {
        self.cur.has_image
    }

    /// The resized gaze-network input staged for this frame
    /// (`(1, 1, gaze_h, gaze_w)`). Only meaningful while
    /// [`PreparedFrame::has_gaze_input`] is true.
    pub fn gaze_input(&self) -> &Tensor {
        &self.scratch.gaze_in
    }

    /// Frame index this preparation belongs to.
    pub fn frame(&self) -> u64 {
        self.cur.frame
    }

    /// Whether the segmentation model ran and re-anchored the ROI during
    /// preparation.
    pub fn roi_refreshed(&self) -> bool {
        self.cur.refreshed
    }

    /// Whether this frame was a scheduled ROI-refresh frame. Under
    /// [`GazeBackend::Latent`] this is also the routing key for the gaze
    /// forward: refresh frames carry a recon-path ROI crop (f32 network),
    /// steady-state frames carry a projected raw measurement (latent
    /// network).
    pub fn refresh_due(&self) -> bool {
        self.cur.due
    }

    /// Whether the motion gate skipped this frame's gaze forward (no gaze
    /// input is staged; completion serves the last-good direction).
    pub fn gaze_skipped(&self) -> bool {
        self.cur.skipped
    }
}

/// What the capture stage staged for the reconstruction stage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CaptureOutcome {
    /// The capture stage has not run yet.
    Pending,
    /// Frame lost in transit (drop or missed deadline): reconstruction
    /// serves the last-good fallback instead.
    Missing,
    /// Silent sensor duplicate: reconstruction re-serves the last-good
    /// image (only declared when one exists).
    Duplicate,
    /// A fresh attempt-0 capture is staged in the acquisition scratch.
    Fresh,
    /// Event-driven sparse capture: the changed columns are staged in the
    /// acquisition scratch's delta caches; the reconstruction stage folds
    /// them in incrementally instead of running a dense solve.
    Delta,
    /// Motion-gated: change detection found too few changed pixels to
    /// matter. No image is produced and completion serves the last-good
    /// gaze.
    Skipped,
}

/// Per-frame control state threaded through the per-stage entry points
/// ([`EyeTracker::begin_frame`] → [`EyeTracker::capture_stage`] →
/// [`EyeTracker::recon_stage`] → [`EyeTracker::roi_stage`] →
/// [`EyeTracker::crop_stage`] → [`EyeTracker::complete_stage`]).
///
/// The cursor carries everything a frame accumulates between stages —
/// fault plan, fault accounting, degradation flags, the ROI-refresh
/// schedule decision — while the image/crop/prediction buffers themselves
/// are borrowed from the caller at each stage. That inversion is what lets
/// a columnar serving layer keep those buffers in per-stage columns and
/// sweep one stage across many sessions; [`EyeTracker::prepare_frame`] is
/// re-expressed on the same entry points over the tracker-owned
/// [`FrameScratch`], so both layouts execute identical code and stay
/// byte-identical by construction.
pub struct StageCursor {
    frame: u64,
    plan: FaultPlan,
    ff: FrameFaults,
    degraded: bool,
    capture: CaptureOutcome,
    has_image: bool,
    due: bool,
    refreshed: bool,
    /// Motion gate verdict: the gaze forward is skipped and completion
    /// serves the last-good direction.
    skipped: bool,
    /// Super-threshold changed pixels found by change detection (0 on
    /// dense frames).
    changed_px: usize,
    allocs_before: u64,
    started: std::time::Instant,
}

impl StageCursor {
    /// Frame index this cursor belongs to — the conformance key a
    /// columnar scheduler checks at every stage boundary (no stage may
    /// consume a previous stage's output from a different frame index).
    pub fn frame(&self) -> u64 {
        self.frame
    }

    /// Whether acquisition produced an image and a gaze input will be
    /// staged by the crop stage.
    pub fn has_gaze_input(&self) -> bool {
        self.has_image
    }

    /// Whether this frame is a scheduled ROI-refresh frame.
    pub fn due(&self) -> bool {
        self.due
    }

    /// Whether the segmentation model ran and re-anchored the ROI.
    pub fn roi_refreshed(&self) -> bool {
        self.refreshed
    }

    /// Whether the motion gate skipped this frame's gaze forward.
    pub fn gaze_skipped(&self) -> bool {
        self.skipped
    }

    /// Super-threshold changed pixels found by change detection (0 on
    /// dense frames).
    pub fn changed_px(&self) -> usize {
        self.changed_px
    }
}

impl EyeTracker {
    /// Assembles a tracker from a configuration and trained models.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: TrackerConfig, models: TrackerModels) -> Self {
        let acquisition = Self::build_acquisition(&config);
        Self::with_acquisition(config, models, acquisition)
    }

    /// Builds the acquisition front-end a configuration implies (FlatCam
    /// mask + Tikhonov reconstruction, or the lens baseline). A serving
    /// layer hosting many identically configured sessions builds this once
    /// and clones it per session instead of re-deriving the mask and
    /// pseudo-inverses for each tracker.
    pub fn build_acquisition(config: &TrackerConfig) -> Acquisition {
        if config.flatcam {
            Acquisition::flatcam(
                config.scene_size,
                config.sensor_size,
                config.epsilon,
                config.mask_seed,
            )
        } else {
            Acquisition::lens()
        }
    }

    /// [`EyeTracker::new`] with a caller-supplied acquisition front-end.
    /// The acquisition must match the configuration's geometry (as
    /// produced by [`EyeTracker::build_acquisition`] for the same config —
    /// the intended source); results are then bit-identical to
    /// [`EyeTracker::new`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_acquisition(
        config: TrackerConfig,
        models: TrackerModels,
        acquisition: Acquisition,
    ) -> Self {
        config.validate();
        let current_roi = RoiRect::centered(
            config.scene_size,
            config.scene_size,
            config.roi.0,
            config.roi.1,
        );
        EyeTracker {
            config,
            acquisition,
            models,
            current_roi,
            frame_counter: 0,
            last_labels: None,
            last_gaze: GazeVector::from_angles(0.0, 0.0),
            calib_inputs: Vec::new(),
            quantized_gaze: None,
            faults: FaultPlan::from_env(),
            recovery: RecoveryPolicy::default(),
            fault_stats: FaultStats::default(),
            last_image: None,
            last_meas: None,
            image_staleness: 0,
            roi_staleness: 0,
            gaze_staleness: 0,
            scratch: None,
        }
    }

    /// Replaces the fault-injection plan (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Replaces the recovery policy (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        policy.validate();
        self.recovery = policy;
        self
    }

    /// The active fault-injection plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The active recovery policy.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// Cumulative fault accounting since construction.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// The active configuration.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// The ROI currently in use (scene coordinates).
    pub fn current_roi(&self) -> RoiRect {
        self.current_roi
    }

    /// Frames accounted so far (processed + shed) — the index the next
    /// frame will carry. A serving layer uses this to predict whether the
    /// next frame is a scheduled ROI-refresh frame before any stage runs.
    pub fn frames_processed(&self) -> u64 {
        self.frame_counter
    }

    /// The most recent segmentation label map (segmentation resolution),
    /// if a refresh has happened.
    pub fn last_labels(&self) -> Option<&[u8]> {
        self.last_labels.as_deref()
    }

    /// The calibrated int8 gaze network, once the warm-up window has
    /// completed under [`GazeBackend::Int8`] (`None` before that, and
    /// always `None` under the f32 backend).
    pub fn quantized_gaze(&self) -> Option<&QuantizedGazeNet> {
        self.quantized_gaze.as_ref()
    }

    /// Processes one frame: acquires the scene, refreshes the ROI if due,
    /// and estimates gaze from the ROI crop.
    ///
    /// Under an active [`FaultPlan`], each stage detects what it can
    /// (missing/late frames, blown-up reconstructions, short label
    /// buffers, non-finite or degenerate gaze outputs, out-of-bounds ROI
    /// anchors) and recovers by retrying within the policy's budget or
    /// falling back to the last-good image / ROI / gaze; undetectable
    /// degradation passes through silently, as it would in a real system.
    /// The outcome is graded in [`TrackedFrame::quality`] and accounted in
    /// [`TrackedFrame::faults`] plus the
    /// `tracker/faults_{injected,recovered,unrecovered}` counters.
    ///
    /// If the gaze network emits a degenerate (near-zero) vector, the
    /// previous frame's gaze is reused and the output is flagged via
    /// [`TrackedFrame::gaze_degenerate`] instead of panicking.
    ///
    /// Each stage records a latency histogram (`tracker/acquire_ns`,
    /// `tracker/segment_ns`, `tracker/crop_resize_ns`,
    /// `tracker/gaze_forward_ns`, `tracker/frame_ns`) into the global
    /// telemetry registry while telemetry is enabled.
    ///
    /// Every stage runs through tracker-owned scratch buffers, so a
    /// steady-state frame (no scheduled ROI refresh, warm-up and int8
    /// calibration done) performs **zero** transient heap allocations. The
    /// `tracker/steady_state_allocs` counter records the per-frame
    /// allocation delta on such frames when the counting test allocator
    /// ([`crate::alloc_counter`]) is installed; in production it stays 0.
    ///
    /// # Panics
    ///
    /// Panics if the scene resolution does not match the configuration.
    pub fn process_frame(&mut self, scene: &Tensor, noise_seed: u64) -> TrackedFrame {
        let prep = self.prepare_frame(scene, noise_seed);
        self.complete_frame(prep)
    }

    /// The front half of [`EyeTracker::process_frame`]: acquisition, the
    /// scheduled ROI refresh, and the crop/resize that stages the gaze
    /// input — everything up to (but excluding) the gaze forward.
    ///
    /// The returned [`PreparedFrame`] must be handed back to exactly one
    /// of [`EyeTracker::complete_frame`] or
    /// [`EyeTracker::complete_frame_with_pred`] before the next frame is
    /// prepared (it carries the tracker's scratch buffers). The split
    /// exists so a serving layer can prepare many sessions in parallel and
    /// run all their gaze forwards as one batched GEMM;
    /// `process_frame(..) == complete_frame(prepare_frame(..))` exactly.
    ///
    /// # Panics
    ///
    /// Panics if the scene resolution does not match the configuration.
    pub fn prepare_frame(&mut self, scene: &Tensor, noise_seed: u64) -> PreparedFrame {
        let mut cur = self.begin_frame(scene);
        let mut scratch = self
            .scratch
            .take()
            .unwrap_or_else(|| Box::new(FrameScratch::new()));

        static_histogram!("tracker/acquire_ns").time(|| {
            self.capture_stage(&mut cur, scene, noise_seed, &mut scratch.acquire);
            self.recon_stage(
                &mut cur,
                scene,
                noise_seed,
                &mut scratch.acquire,
                &mut scratch.image,
            );
        });

        if cur.has_image {
            if cur.due {
                static_histogram!("tracker/segment_ns")
                    .time(|| self.roi_stage(&mut cur, &scratch.image));
            }
            static_histogram!("tracker/crop_resize_ns").time(|| {
                let FrameScratch {
                    image,
                    crop,
                    gaze_in,
                    ..
                } = &mut *scratch;
                self.crop_stage(&cur, image, crop, gaze_in);
            });
        }

        PreparedFrame { scratch, cur }
    }

    /// Opens a frame for per-stage processing: validates the scene shape,
    /// accounts the frame, snapshots the fault plan and the ROI-refresh
    /// schedule decision, and returns the [`StageCursor`] the remaining
    /// stage entry points thread through. The first stage of the
    /// decomposed pipeline a columnar scheduler drives directly;
    /// [`EyeTracker::prepare_frame`] is exactly `begin_frame` +
    /// [`EyeTracker::capture_stage`] + [`EyeTracker::recon_stage`] +
    /// [`EyeTracker::roi_stage`] + [`EyeTracker::crop_stage`] over the
    /// tracker-owned scratch.
    ///
    /// # Panics
    ///
    /// Panics if the scene resolution does not match the configuration.
    pub fn begin_frame(&mut self, scene: &Tensor) -> StageCursor {
        let allocs_before = crate::alloc_counter::allocations();
        static_counter!("tracker/frames").inc();
        let started = std::time::Instant::now();
        let s = scene.shape();
        assert_eq!(
            (s.h, s.w),
            (self.config.scene_size, self.config.scene_size),
            "scene must be {0}x{0}",
            self.config.scene_size
        );
        let frame = self.frame_counter;
        StageCursor {
            frame,
            plan: self.faults.clone(),
            ff: FrameFaults::default(),
            degraded: false,
            capture: CaptureOutcome::Pending,
            has_image: false,
            due: frame.is_multiple_of(self.config.roi_period as u64),
            refreshed: false,
            skipped: false,
            changed_px: 0,
            allocs_before,
            started,
        }
    }

    /// The capture stage: decides the sensor-plane outcome for this frame
    /// (drop, deadline miss, silent duplicate, or a fresh exposure) and,
    /// for a fresh exposure, runs the attempt-0 capture — sensor noise,
    /// sensor-plane degradation and link-plane transport faults — leaving
    /// the transported measurement staged in `acquire`.
    /// [`EyeTracker::recon_stage`] consumes the staged outcome.
    pub fn capture_stage(
        &mut self,
        cur: &mut StageCursor,
        scene: &Tensor,
        noise_seed: u64,
        acquire: &mut AcquireScratch,
    ) {
        // a dropped frame never arrives; a delayed one misses its deadline
        // — the real-time pipeline treats both as a missing frame
        let dropped = cur.plan.fires(FaultSite::SensorFrameDrop, cur.frame);
        let delayed = !dropped && cur.plan.fires(FaultSite::LinkDelay, cur.frame);
        if dropped || delayed {
            cur.ff.injected += 1;
            if dropped {
                static_counter!("tracker/frames_dropped").inc();
            } else {
                static_counter!("tracker/frames_delayed").inc();
            }
            cur.degraded = true;
            cur.capture = CaptureOutcome::Missing;
            return;
        }
        // a silent duplicate: the camera re-delivers the previous frame
        // and the pipeline cannot tell — it simply processes stale data
        if cur.plan.fires(FaultSite::SensorFrameDuplicate, cur.frame) && self.last_image.is_some() {
            cur.ff.injected += 1;
            static_counter!("tracker/frames_duplicated").inc();
            cur.capture = CaptureOutcome::Duplicate;
            return;
        }
        // event-driven sparse path: a steady-state frame with primed delta
        // caches diffs the scene against the last fully-sensed base
        // instead of re-sensing. Scheduled refresh frames always run the
        // dense path, which keeps them bit-identical to dense mode and
        // re-primes the caches (bounding how long clean-event deltas can
        // drift from a noisy dense re-capture).
        if self.config.delta && !cur.due && acquire.delta_primed() {
            let changed =
                self.acquisition
                    .detect_changes_cached(scene, acquire, self.config.delta_epsilon);
            cur.changed_px = changed;
            static_counter!("tracker/changed_px").add(changed as u64);
            // the int8 backend collects its calibration batch from the
            // frames that run the gaze crop — gating during warm-up would
            // starve calibration on static scenes (a fixating user would
            // never reach the quantised chain), so those frames take the
            // sparse-update path instead of skipping
            let calibrating =
                self.config.gaze_backend == GazeBackend::Int8 && self.quantized_gaze.is_none();
            if changed < self.config.delta_threshold && !calibrating {
                // motion gate: too few pixels moved to shift the gaze —
                // skip acquisition, reconstruction and the gaze forward
                // entirely; completion serves the last-good direction.
                // The diff base stays put, so sub-threshold drift keeps
                // accumulating until it crosses the gate.
                static_counter!("tracker/gaze_skipped").inc();
                cur.skipped = true;
                cur.capture = CaptureOutcome::Skipped;
                return;
            }
            static_counter!("tracker/delta_frames").inc();
            cur.capture = CaptureOutcome::Delta;
            return;
        }
        let injected = self
            .acquisition
            .capture_faulted_into(scene, noise_seed, &cur.plan, cur.frame, 0, acquire);
        cur.ff.injected += injected;
        cur.capture = CaptureOutcome::Fresh;
    }

    /// The reconstruction stage: turns the capture stage's staged outcome
    /// into the image the rest of the pipeline sees, written into `image`.
    /// A fresh capture is reconstructed and sanity-checked; detected
    /// transport corruption is re-requested within the recovery policy's
    /// retry budget (each attempt re-draws the link faults with its own
    /// salt, re-running capture + reconstruction); a missing frame falls
    /// back to the last-good image. After this stage
    /// [`StageCursor::has_gaze_input`] is final.
    ///
    /// # Panics
    ///
    /// Panics if called before [`EyeTracker::capture_stage`] for the same
    /// cursor.
    pub fn recon_stage(
        &mut self,
        cur: &mut StageCursor,
        scene: &Tensor,
        noise_seed: u64,
        acquire: &mut AcquireScratch,
        image: &mut Tensor,
    ) {
        if self.latent_fast(cur) {
            // recon-free fast path: no Tikhonov solve — `image` receives
            // the raw (transported) measurement itself
            self.sense_stage(cur, scene, noise_seed, acquire, image);
            return;
        }
        match cur.capture {
            CaptureOutcome::Pending => panic!("recon_stage called before capture_stage"),
            CaptureOutcome::Missing => {
                cur.has_image = match &self.last_image {
                    Some(prev) => {
                        cur.ff.recovered += 1;
                        self.image_staleness += 1;
                        image.copy_from(prev);
                        true
                    }
                    None => {
                        cur.ff.unrecovered += 1;
                        false
                    }
                };
            }
            CaptureOutcome::Duplicate => {
                let prev = self
                    .last_image
                    .as_ref()
                    .expect("duplicate needs last image");
                image.copy_from(prev);
                cur.has_image = true;
            }
            CaptureOutcome::Skipped => {
                // motion-gated: nothing moved enough to matter, no image
                // is produced; completion serves the last-good gaze (the
                // cursor's skip flag routes it past the lost-frame path)
            }
            CaptureOutcome::Delta => {
                // event-driven sparse update: fold the staged changed
                // columns into the cached measurement and apply the
                // matching sparse-column correction to the cached
                // reconstruction — no dense capture, no dense solve
                self.acquisition
                    .sense_delta_cached_into(scene, acquire, image);
                if let Some(buf) = self.last_image.as_mut() {
                    buf.copy_from(image);
                } else {
                    self.last_image = Some(image.clone());
                }
                self.image_staleness = 0;
                cur.has_image = true;
            }
            CaptureOutcome::Fresh => {
                // attempt 0 reconstructs the already-staged measurement;
                // detected corruption is re-requested within budget (each
                // retry is a full fresh capture + reconstruction)
                let budget = self.recovery.max_stage_retries as u64;
                for attempt in 0..=budget {
                    if attempt == 0 {
                        self.acquisition.recon_into(acquire, image);
                    } else {
                        let injected = self.acquisition.acquire_faulted_into(
                            scene, noise_seed, &cur.plan, cur.frame, attempt, acquire, image,
                        );
                        cur.ff.injected += injected;
                    }
                    if image_is_sane(image) {
                        if attempt > 0 {
                            cur.ff.recovered += 1;
                            cur.degraded = true;
                            static_counter!("tracker/acquire_retries").add(attempt);
                        }
                        if let Some(buf) = self.last_image.as_mut() {
                            buf.copy_from(image);
                        } else {
                            self.last_image = Some(image.clone());
                        }
                        if self.config.gaze_backend == GazeBackend::Latent {
                            // a refresh frame's capture also carries the
                            // raw measurement this reconstruction came
                            // from — keep it as the fast path's fallback
                            self.stash_measurement(acquire);
                        }
                        if self.config.delta {
                            // a sane dense capture + solve is the new
                            // delta base: re-prime, resetting any drift
                            // the clean-event updates accumulated
                            self.acquisition.prime_delta(scene, acquire);
                        }
                        self.image_staleness = 0;
                        cur.has_image = true;
                        return;
                    }
                    static_counter!("tracker/acquire_corrupt").inc();
                }
                // budget exhausted on a corrupt transfer
                cur.degraded = true;
                cur.has_image = match &self.last_image {
                    Some(prev) => {
                        cur.ff.recovered += 1;
                        self.image_staleness += 1;
                        image.copy_from(prev);
                        true
                    }
                    None => {
                        // nothing good has ever arrived: flush the
                        // corruption to finite values and limp on with a
                        // best-effort image
                        cur.ff.unrecovered += 1;
                        let _ = self.acquisition.acquire_faulted_into(
                            scene, noise_seed, &cur.plan, cur.frame, 0, acquire, image,
                        );
                        sanitize_image_inplace(image);
                        true
                    }
                };
            }
        }
    }

    /// Whether this cursor's frame takes the recon-free latent fast path:
    /// the latent backend is configured and the frame is *not* a scheduled
    /// ROI-refresh frame (refresh frames still run the full recon +
    /// segmentation pipeline to keep the ROI anchored).
    fn latent_fast(&self, cur: &StageCursor) -> bool {
        self.config.gaze_backend == GazeBackend::Latent && !cur.due
    }

    /// Copies the raw measurement staged in `acquire` into `last_meas`
    /// (allocating only the first time).
    fn stash_measurement(&mut self, acquire: &AcquireScratch) {
        match self.last_meas.as_mut() {
            Some(buf) => self.acquisition.sense_into(acquire, buf),
            None => {
                let mut buf = Tensor::zeros(Shape::new(1, 1, 1, 1));
                self.acquisition.sense_into(acquire, &mut buf);
                self.last_meas = Some(buf);
            }
        }
    }

    /// The latent fast path's replacement for the reconstruction stage:
    /// serves the raw transported measurement into `image` with **zero**
    /// reconstruction solves. Fault handling mirrors
    /// [`EyeTracker::recon_stage`] exactly — sanity check, bounded
    /// re-capture retries, last-good fallback, staleness accounting — but
    /// the last-good buffer is `last_meas` (a measurement), never
    /// `last_image` (a reconstruction the latent net was not trained on).
    fn sense_stage(
        &mut self,
        cur: &mut StageCursor,
        scene: &Tensor,
        noise_seed: u64,
        acquire: &mut AcquireScratch,
        image: &mut Tensor,
    ) {
        match cur.capture {
            CaptureOutcome::Pending => panic!("recon_stage called before capture_stage"),
            CaptureOutcome::Missing => {
                cur.has_image = match &self.last_meas {
                    Some(prev) => {
                        cur.ff.recovered += 1;
                        self.image_staleness += 1;
                        image.copy_from(prev);
                        true
                    }
                    None => {
                        cur.ff.unrecovered += 1;
                        false
                    }
                };
            }
            CaptureOutcome::Duplicate => {
                // the duplicate outcome is gated on `last_image`, which
                // under the latent backend is only refreshed on due
                // frames — the raw twin can lag by one fallback window
                cur.has_image = match &self.last_meas {
                    Some(prev) => {
                        image.copy_from(prev);
                        true
                    }
                    None => {
                        cur.ff.unrecovered += 1;
                        false
                    }
                };
            }
            CaptureOutcome::Skipped => {
                // motion-gated: completion serves the last-good gaze
            }
            CaptureOutcome::Delta => {
                // sparse update in the measurement domain only — the
                // recon-free fast path never consumes a reconstruction,
                // so the cached-reconstruction correction is skipped too
                self.acquisition
                    .sense_delta_meas_cached_into(scene, acquire, image);
                // keep the fallback twin current (the updated measurement
                // lives in the delta cache, not the dense capture scratch)
                match self.last_meas.as_mut() {
                    Some(buf) => buf.copy_from(image),
                    None => self.last_meas = Some(image.clone()),
                }
                self.image_staleness = 0;
                cur.has_image = true;
            }
            CaptureOutcome::Fresh => {
                let budget = self.recovery.max_stage_retries as u64;
                for attempt in 0..=budget {
                    if attempt > 0 {
                        let injected = self.acquisition.capture_faulted_into(
                            scene, noise_seed, &cur.plan, cur.frame, attempt, acquire,
                        );
                        cur.ff.injected += injected;
                    }
                    self.acquisition.sense_into(acquire, image);
                    if image_is_sane(image) {
                        if attempt > 0 {
                            cur.ff.recovered += 1;
                            cur.degraded = true;
                            static_counter!("tracker/acquire_retries").add(attempt);
                        }
                        self.stash_measurement(acquire);
                        if self.config.delta {
                            // re-prime the measurement-side caches; the
                            // reconstruction cache goes stale but is never
                            // read on the recon-free path and re-syncs at
                            // the next scheduled dense refresh
                            self.acquisition.prime_delta(scene, acquire);
                        }
                        self.image_staleness = 0;
                        cur.has_image = true;
                        return;
                    }
                    static_counter!("tracker/acquire_corrupt").inc();
                }
                // budget exhausted on a corrupt transfer
                cur.degraded = true;
                cur.has_image = match &self.last_meas {
                    Some(prev) => {
                        cur.ff.recovered += 1;
                        self.image_staleness += 1;
                        image.copy_from(prev);
                        true
                    }
                    None => {
                        // nothing sane has ever arrived: flush the
                        // corruption to finite values and limp on
                        cur.ff.unrecovered += 1;
                        self.acquisition.sense_into(acquire, image);
                        sanitize_image_inplace(image);
                        true
                    }
                };
            }
        }
    }

    /// The scheduled ROI-refresh stage: runs segmentation and re-anchors
    /// the ROI when this frame is due and an image arrived; a no-op
    /// otherwise. Retries, label validation and drift clamping follow the
    /// recovery policy exactly as in the fused path.
    pub fn roi_stage(&mut self, cur: &mut StageCursor, image: &Tensor) {
        if !(cur.has_image && cur.due) {
            return;
        }
        let StageCursor {
            frame,
            plan,
            ff,
            degraded,
            refreshed,
            ..
        } = cur;
        *refreshed = self.refresh_roi_with_recovery(image, plan, *frame, ff, degraded);
    }

    /// The crop/resize stage: crops the current ROI out of `image` and
    /// resizes it into the gaze-network input `gaze_in` (`crop` is the
    /// intermediate buffer). A no-op when acquisition lost the frame.
    ///
    /// On the latent fast path `image` holds a raw measurement, there is
    /// no ROI to crop, and the stage instead runs the latent net's
    /// separable down-projection straight into `gaze_in` — same output
    /// geometry, same stage slot, so the per-stage latency histograms keep
    /// an identical structure across backends.
    pub fn crop_stage(
        &self,
        cur: &StageCursor,
        image: &Tensor,
        crop: &mut Tensor,
        gaze_in: &mut Tensor,
    ) {
        if !cur.has_image {
            return;
        }
        if self.latent_fast(cur) {
            self.models.latent.project_into(image, gaze_in);
            return;
        }
        self.current_roi.crop_into(image, crop);
        resize_bilinear_into(
            crop,
            self.config.gaze_input.0,
            self.config.gaze_input.1,
            gaze_in,
        );
    }

    /// The back half of [`EyeTracker::process_frame`]: runs the tracker's
    /// own gaze forward (configured backend, including int8 warm-up
    /// calibration) on the prepared input, then grades and accounts the
    /// frame.
    pub fn complete_frame(&mut self, mut prep: PreparedFrame) -> TrackedFrame {
        if prep.cur.has_image {
            let fast = self.latent_fast(&prep.cur);
            let FrameScratch {
                gaze_in,
                infer,
                pred,
                ..
            } = &mut *prep.scratch;
            static_histogram!("tracker/gaze_forward_ns")
                .time(|| self.gaze_forward_into(fast, gaze_in, infer, pred));
        }
        self.finish_frame(prep)
    }

    /// Completes a prepared frame with an externally computed gaze
    /// prediction (the raw 3-component network output, before
    /// normalisation) instead of running the tracker's own forward — the
    /// hook a serving layer uses after batching this frame's gaze forward
    /// with other sessions'. Fault staging, degenerate-gaze fallback and
    /// quality grading all apply to `pred` exactly as they would to a
    /// tracker-computed output.
    ///
    /// `pred` is ignored when the frame has no gaze input (acquisition
    /// lost the frame); the missing-frame fallback runs instead.
    ///
    /// # Panics
    ///
    /// Panics if `pred` does not have exactly 3 components.
    pub fn complete_frame_with_pred(
        &mut self,
        mut prep: PreparedFrame,
        pred: &[f32],
    ) -> TrackedFrame {
        assert_eq!(pred.len(), 3, "gaze prediction must have 3 components");
        if prep.cur.has_image {
            let out = &mut prep.scratch.pred;
            out.reset(Shape::new(1, 3, 1, 1));
            out.as_mut_slice().copy_from_slice(pred);
        }
        self.finish_frame(prep)
    }

    /// The shared tail of frame completion over the tracker-owned scratch:
    /// runs [`EyeTracker::complete_stage`] on the staged prediction, then
    /// restores the scratch buffers.
    fn finish_frame(&mut self, prep: PreparedFrame) -> TrackedFrame {
        let PreparedFrame { mut scratch, cur } = prep;
        let out = self.complete_stage(cur, &mut scratch.pred);
        self.scratch = Some(scratch);
        out
    }

    /// The completion stage over a borrowed prediction buffer: stage
    /// faults on the network output, parse/normalise the gaze with the
    /// last-good fallback, grade quality against the recovery policy's
    /// staleness limits, and account telemetry. Consumes the cursor — the
    /// frame is finished and the tracker's frame counter advances.
    ///
    /// `pred` holds this frame's raw 3-component network output (only
    /// read when [`StageCursor::has_gaze_input`] is true) and may be
    /// mutated in place by stage-plane fault injection.
    pub fn complete_stage(&mut self, cur: StageCursor, pred: &mut Tensor) -> TrackedFrame {
        let StageCursor {
            frame,
            plan,
            mut ff,
            mut degraded,
            has_image,
            due,
            refreshed,
            skipped,
            allocs_before,
            started,
            ..
        } = cur;
        let (gaze, gaze_degenerate, roi_refreshed) = if has_image {
            // stage faults on the network output
            if plan.fires(FaultSite::StageGazeNan, frame) {
                ff.injected += 1;
                pred.as_mut_slice().fill(f32::NAN);
            } else if plan.fires(FaultSite::StageGazeZero, frame) {
                ff.injected += 1;
                pred.as_mut_slice().fill(0.0);
            }
            let parsed = if pred.has_non_finite() {
                None
            } else {
                GazeVector::from_tensor(pred, 0).try_normalized()
            };
            match parsed {
                Some(g) => {
                    self.gaze_staleness = 0;
                    (g, false, refreshed)
                }
                None => {
                    // non-finite or degenerate gaze: the fallback to
                    // the last-good direction is the recovery action,
                    // whether the fault was injected or the model's own
                    static_counter!("tracker/gaze_degenerate").inc();
                    self.gaze_staleness += 1;
                    ff.recovered += 1;
                    degraded = true;
                    (self.last_gaze, true, refreshed)
                }
            }
        } else if skipped {
            // the motion gate verified the scene static within threshold:
            // the last-good direction is *current*, not stale — serve it
            // without accruing recovery staleness (as with shed frames,
            // sustained fixation must keep serving good frames, not
            // escalate to Lost; the scheduled dense refresh still bounds
            // how long the gate can coast on its caches)
            (self.last_gaze, false, false)
        } else {
            // the frame never reached the pipeline and nothing is
            // available to serve it from: repeat the last answer
            if due {
                self.roi_staleness += 1;
            }
            self.gaze_staleness += 1;
            (self.last_gaze, false, false)
        };
        self.last_gaze = gaze;

        let over_stale = self.roi_staleness > self.recovery.max_roi_staleness
            || self.gaze_staleness > self.recovery.max_gaze_staleness
            || self.image_staleness > self.recovery.max_image_staleness;
        let quality = if (!has_image && !skipped) || ff.unrecovered > 0 || over_stale {
            FrameQuality::Lost
        } else if degraded {
            FrameQuality::Degraded
        } else {
            FrameQuality::Ok
        };
        static_counter!("tracker/faults_injected").add(ff.injected as u64);
        static_counter!("tracker/faults_recovered").add(ff.recovered as u64);
        static_counter!("tracker/faults_unrecovered").add(ff.unrecovered as u64);
        match quality {
            FrameQuality::Ok => {}
            FrameQuality::Degraded => static_counter!("tracker/frames_degraded").inc(),
            FrameQuality::Lost => static_counter!("tracker/frames_lost").inc(),
        }
        self.fault_stats.absorb(&ff);

        // steady-state frames (no scheduled segmentation refresh) must not
        // touch the heap: record the per-frame allocation delta so the
        // counting-allocator regression test can pin it to zero
        if !due {
            static_counter!("tracker/steady_state_allocs")
                .add(crate::alloc_counter::allocations() - allocs_before);
        }
        static_histogram!("tracker/frame_ns").record(started.elapsed().as_nanos() as u64);

        self.frame_counter += 1;
        TrackedFrame {
            gaze,
            roi: self.current_roi,
            roi_refreshed,
            frame,
            gaze_degenerate,
            gaze_skipped: skipped,
            quality,
            faults: ff,
        }
    }

    /// [`EyeTracker::complete_stage`] with an externally computed gaze
    /// prediction (the raw 3-component network output) staged into the
    /// borrowed `pred` buffer first — the columnar twin of
    /// [`EyeTracker::complete_frame_with_pred`], used after a scheduler
    /// batches this frame's gaze forward with other sessions'.
    ///
    /// # Panics
    ///
    /// Panics if `pred_src` does not have exactly 3 components.
    pub fn complete_stage_with_pred(
        &mut self,
        cur: StageCursor,
        pred_src: &[f32],
        pred: &mut Tensor,
    ) -> TrackedFrame {
        assert_eq!(pred_src.len(), 3, "gaze prediction must have 3 components");
        if cur.has_image {
            pred.reset(Shape::new(1, 3, 1, 1));
            pred.as_mut_slice().copy_from_slice(pred_src);
        }
        self.complete_stage(cur, pred)
    }

    /// Accounts a frame that was *shed* before it entered the pipeline — a
    /// capacity decision by a serving layer's bounded ingress queue, not a
    /// pipeline failure. The frame index advances and the last-good gaze
    /// is served, but no stage runs and (deliberately) no recovery
    /// staleness accrues: sustained overload should keep degrading frames,
    /// not escalate them to `Lost` the way genuine sensor loss does.
    ///
    /// The returned frame grades [`FrameQuality::Degraded`] once any image
    /// has been tracked (stale-but-plausible answer), and
    /// [`FrameQuality::Lost`] before the first one (nothing to serve).
    pub fn shed_frame(&mut self) -> TrackedFrame {
        static_counter!("tracker/frames_shed").inc();
        let frame = self.frame_counter;
        self.frame_counter += 1;
        let quality = if self.last_image.is_some() {
            FrameQuality::Degraded
        } else {
            FrameQuality::Lost
        };
        TrackedFrame {
            gaze: self.last_gaze,
            roi: self.current_roi,
            roi_refreshed: false,
            frame,
            gaze_degenerate: false,
            gaze_skipped: false,
            quality,
            faults: FrameFaults::default(),
        }
    }

    /// Runs the gaze network on one ROI crop through the configured
    /// backend, writing the prediction into `pred` through the workspace
    /// arena (allocation-free once the buffers are warm).
    ///
    /// The f32 backend executes [`ProxyGazeNet::forward_infer`] (blocked
    /// im2col GEMM, in-place norm/activation); the calibrated int8 backend
    /// executes [`QuantizedGazeNet::forward_into`], which is bit-identical
    /// to the allocating int8 chain.
    ///
    /// Under [`GazeBackend::Int8`] the first `calibration_frames` frames
    /// execute the f32 network while their crops are collected; when the
    /// window fills, the network is folded, calibrated on the collected
    /// batch and quantised (`tracker/int8_calibrations` counts this, and
    /// `tracker/int8_frames` counts every frame served by the int8 chain).
    /// The switch is deterministic in the frame sequence, so parallel and
    /// sequential runs still agree bit-for-bit.
    ///
    /// Under [`GazeBackend::Latent`] the dispatch follows `latent_fast`:
    /// steady-state frames run [`LatentGazeNet::forward_infer`] on the
    /// projected measurement (`tracker/latent_frames` counts them), while
    /// ROI-refresh frames run the recon-path f32 network on the staged
    /// ROI crop — making refresh outputs byte-identical to the f32
    /// backend's.
    ///
    /// [`ProxyGazeNet::forward_infer`]: eyecod_models::proxy::ProxyGazeNet::forward_infer
    /// [`LatentGazeNet::forward_infer`]: eyecod_models::latent::LatentGazeNet::forward_infer
    fn gaze_forward_into(
        &mut self,
        latent_fast: bool,
        gaze_in: &Tensor,
        ws: &mut GazeInferWorkspace,
        pred: &mut Tensor,
    ) {
        match self.config.gaze_backend {
            GazeBackend::F32 => self.models.gaze.forward_infer(gaze_in, ws, pred),
            GazeBackend::Latent => {
                if latent_fast {
                    static_counter!("tracker/latent_frames").inc();
                    self.models.latent.forward_infer(gaze_in, ws, pred);
                } else {
                    self.models.gaze.forward_infer(gaze_in, ws, pred);
                }
            }
            GazeBackend::Int8 => {
                if let Some(qnet) = &self.quantized_gaze {
                    static_counter!("tracker/int8_frames").inc();
                    qnet.forward_into(gaze_in, ws, pred);
                    return;
                }
                // never let a corrupted crop into the calibration batch —
                // one NaN would poison the quantisation ranges for good
                if !gaze_in.has_non_finite() {
                    self.calib_inputs.push(gaze_in.clone());
                }
                self.models.gaze.forward_infer(gaze_in, ws, pred);
                if self.calib_inputs.len() >= self.config.calibration_frames {
                    let calib = Tensor::stack(&self.calib_inputs);
                    self.quantized_gaze =
                        Some(QuantizedGazeNet::from_calibrated(&self.models.gaze, &calib));
                    self.calib_inputs = Vec::new();
                    static_counter!("tracker/int8_calibrations").inc();
                }
            }
        }
    }

    /// Runs the segmentation model and re-anchors the ROI (the "predict"
    /// stage) under the fault plan: spends the retry budget on injected
    /// stage timeouts, validates the labels buffer, and bounds-checks
    /// injected ROI drift. On any unretryable failure the last-good ROI
    /// and labels are kept and `roi_staleness` grows.
    ///
    /// Returns whether the segmentation model actually ran.
    fn refresh_roi_with_recovery(
        &mut self,
        image: &Tensor,
        plan: &FaultPlan,
        frame: u64,
        ff: &mut FrameFaults,
        degraded: &mut bool,
    ) -> bool {
        // stage timeouts: each attempt re-draws with its own salt — a
        // bounded retry-with-backoff budget without wall-clock sleeps
        let budget = self.recovery.max_stage_retries;
        let mut timeouts = 0u32;
        while timeouts <= budget
            && plan.fires_with(FaultSite::StageSegTimeout, frame, timeouts as u64)
        {
            timeouts += 1;
        }
        if timeouts > 0 {
            static_counter!("tracker/seg_timeouts").add(timeouts as u64);
            ff.injected += timeouts;
            ff.recovered += timeouts;
            *degraded = true;
        }
        if timeouts > budget {
            // budget exhausted: keep the last-good ROI and labels
            self.roi_staleness += 1;
            return false;
        }
        static_counter!("tracker/roi_refreshes").inc();
        let factor = self.config.scene_size / self.config.seg_size;
        let scene = self.config.scene_size;
        let seg_in = downsample_avg(image, factor);
        let mut labels = predict_seg(&mut self.models.seg, &seg_in);
        if plan.fires(FaultSite::StageSegTruncatedLabels, frame) {
            ff.injected += 1;
            labels.truncate(labels.len() / 2);
        }
        // a short (or oversized) labels buffer would silently anchor the
        // ROI on garbage; validate and fall back to the last-good ROI
        if labels.len() != self.config.seg_size * self.config.seg_size {
            static_counter!("tracker/seg_labels_invalid").inc();
            ff.recovered += 1;
            *degraded = true;
            self.roi_staleness += 1;
            return false;
        }
        // choose the target ROI size per the configured policy
        let (rh, rw) = match self.config.roi_sizing {
            RoiSizing::Fixed => self.config.roi,
            RoiSizing::ScleraAdaptive => {
                let (sh, sw) = roi_size_from_sclera(&labels, self.config.seg_size);
                ((sh * factor).min(scene), (sw * factor).min(scene))
            }
        };
        let roi_at_seg_h = (rh / factor).max(2);
        let roi_at_seg_w = (rw / factor).max(2);
        let roi_seg = predict_roi(&labels, self.config.seg_size, roi_at_seg_h, roi_at_seg_w);
        let mut roi = roi_seg.rescale(self.config.seg_size, scene);
        // rounding guard: pin exactly to the chosen ROI size
        roi.h = rh;
        roi.w = rw;
        roi.y0 = roi.y0.min(scene - roi.h);
        roi.x0 = roi.x0.min(scene - roi.w);
        if plan.fires(FaultSite::StageRoiDrift, frame) {
            ff.injected += 1;
            let d = plan.stage.roi_drift_pixels as i64;
            let dir = plan.word(FaultSite::StageRoiDrift, frame, 1);
            let dy = if dir & 1 == 0 { d } else { -d };
            let dx = if dir & 2 == 0 { d } else { -d };
            let wanted_y = roi.y0 as i64 + dy;
            let wanted_x = roi.x0 as i64 + dx;
            let y = wanted_y.clamp(0, (scene - roi.h) as i64);
            let x = wanted_x.clamp(0, (scene - roi.w) as i64);
            if y != wanted_y || x != wanted_x {
                // the drift pushed the ROI out of the scene: the bounds
                // guard detects and clamps it (in-bounds drift is silent)
                static_counter!("tracker/roi_drift_clamped").inc();
                ff.recovered += 1;
                *degraded = true;
            }
            roi.y0 = y as usize;
            roi.x0 = x as usize;
        }
        self.current_roi = roi;
        self.last_labels = Some(labels);
        self.roi_staleness = 0;
        true
    }

    /// Evaluates several independent motion sequences concurrently on the
    /// process-wide work-stealing pool, one sequence per seed.
    ///
    /// Trackers are stateful (ROI schedule, frame counter), so each job
    /// builds its own tracker from the shared trained models; results are
    /// bit-identical to running [`EyeTracker::run_sequence`] on fresh
    /// trackers sequentially, in seed order.
    pub fn run_sequences_parallel(
        config: &TrackerConfig,
        models: &TrackerModels,
        seeds: &[u64],
        frames: usize,
    ) -> Vec<TrackingStats> {
        crate::pool::parallel_map_chunked(seeds, 1, |&seed| {
            let mut tracker = EyeTracker::new(config.clone(), models.clone_models());
            let mut generator = EyeMotionGenerator::with_seed(seed);
            tracker.run_sequence(&mut generator, frames)
        })
    }

    /// Tracks a synthetic eye-motion sequence for `frames` frames,
    /// rendering each frame at the configured scene size, and returns the
    /// accumulated statistics.
    pub fn run_sequence(
        &mut self,
        generator: &mut EyeMotionGenerator,
        frames: usize,
    ) -> TrackingStats {
        self.run_sequence_traced(generator, frames).0
    }

    /// [`EyeTracker::run_sequence`] that also returns every per-frame
    /// output — the golden-trace hook of the fault conformance suite
    /// (quality grades and fault accounting per frame, in order).
    pub fn run_sequence_traced(
        &mut self,
        generator: &mut EyeMotionGenerator,
        frames: usize,
    ) -> (TrackingStats, Vec<TrackedFrame>) {
        let mut stats = TrackingStats::new();
        let mut trace = Vec::with_capacity(frames);
        for i in 0..frames {
            let params = generator.next_frame();
            let sample = render_eye(&params, self.config.scene_size, 1000 + i as u64);
            let out = self.process_frame(&sample.image, 2000 + i as u64);
            stats.record(&out, &sample.gaze);
            trace.push(out);
        }
        (stats, trace)
    }

    /// [`EyeTracker::run_sequences_parallel`] under an explicit fault plan
    /// and recovery policy. Sequence jobs whose index appears in
    /// `plan.exec.worker_panic_jobs` panic on their first execution
    /// attempt; the pool's panic isolation catches the poison and the job
    /// re-runs inline, so the returned statistics are byte-identical to a
    /// sequential, panic-free run (the panic shows up only in the
    /// `tracker/worker_panics_{injected,recovered}` counters).
    pub fn run_sequences_parallel_with(
        config: &TrackerConfig,
        models: &TrackerModels,
        seeds: &[u64],
        frames: usize,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
    ) -> Vec<TrackingStats> {
        let run_one = |job: u64, seed: u64, attempt: u32| -> TrackingStats {
            if plan.worker_panics(job, attempt) {
                static_counter!("tracker/worker_panics_injected").inc();
                panic!("injected worker panic: sequence job {job}");
            }
            let mut tracker = EyeTracker::new(config.clone(), models.clone_models())
                .with_faults(plan.clone())
                .with_recovery(*policy);
            tracker.run_sequence(&mut EyeMotionGenerator::with_seed(seed), frames)
        };
        let jobs: Vec<(u64, u64)> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u64, s))
            .collect();
        let first = crate::pool::try_parallel_map(&jobs, 1, |&(job, seed)| run_one(job, seed, 0));
        first
            .into_iter()
            .zip(&jobs)
            .map(|(result, &(job, seed))| match result {
                Ok(stats) => stats,
                Err(_) => {
                    // the worker died mid-job; re-run the job inline
                    // (killed jobs only panic on attempt 0, so this
                    // converges; a genuine bug would re-panic and surface)
                    static_counter!("tracker/worker_panics_recovered").inc();
                    run_one(job, seed, 1)
                }
            })
            .collect()
    }
}

/// Reconstructions of sane captures stay within single digits; values
/// beyond this (or non-finite ones) mark a corrupted transfer.
const SANE_IMAGE_MAX: f32 = 1.0e4;

fn image_is_sane(t: &Tensor) -> bool {
    !t.has_non_finite() && t.max_abs() <= SANE_IMAGE_MAX
}

fn sanitize_image_inplace(t: &mut Tensor) {
    for v in t.as_mut_slice() {
        *v = if v.is_finite() {
            v.clamp(-SANE_IMAGE_MAX, SANE_IMAGE_MAX)
        } else {
            0.0
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train_tracker_models, TrainingSetup};
    use eyecod_eyedata::render::EyeParams;
    use eyecod_tensor::Layer;
    use std::sync::OnceLock;

    /// Train once, share across tests (training is the expensive part).
    fn tracker() -> EyeTracker {
        static MODELS: OnceLock<(TrackerConfig, TrackerModels)> = OnceLock::new();
        let (cfg, models) = MODELS.get_or_init(|| {
            let cfg = TrackerConfig::small();
            let models = train_tracker_models(&TrainingSetup::quick(), &cfg);
            (cfg, models)
        });
        EyeTracker::new(cfg.clone(), models.clone_models())
    }

    #[test]
    fn tracks_a_centered_eye_reasonably() {
        let mut t = tracker();
        let mut params = EyeParams::centered(48);
        params.yaw = 0.15;
        params.pitch = -0.1;
        let sample = render_eye(&params, 48, 3);
        let out = t.process_frame(&sample.image, 4);
        let err = out.gaze.angular_error_degrees(&sample.gaze);
        // a quick-trained proxy on one frame: just demand it is far better
        // than chance (random guessing in the ±25° cone averages >15°)
        assert!(err < 15.0, "single-frame error {err:.1}°");
        assert!(out.roi_refreshed, "first frame must refresh the ROI");
    }

    #[test]
    fn roi_refresh_happens_on_schedule() {
        let mut t = tracker();
        let sample = render_eye(&EyeParams::centered(48), 48, 0);
        let mut refreshes = 0;
        for i in 0..25 {
            let out = t.process_frame(&sample.image, i);
            if out.roi_refreshed {
                refreshes += 1;
            }
        }
        // period 10 over 25 frames -> frames 0, 10, 20
        assert_eq!(refreshes, 3);
        assert!(t.last_labels().is_some());
    }

    #[test]
    fn roi_follows_the_eye_after_refresh() {
        let mut t = tracker();
        let mut left = EyeParams::centered(48);
        left.center_x = 0.42;
        let mut right = EyeParams::centered(48);
        right.center_x = 0.58;
        let sl = render_eye(&left, 48, 1);
        let sr = render_eye(&right, 48, 2);
        t.process_frame(&sl.image, 1);
        let roi_left = t.current_roi();
        // advance to the next refresh frame with the eye moved right
        for i in 0..t.config().roi_period {
            t.process_frame(&sr.image, 10 + i as u64);
        }
        let roi_right = t.current_roi();
        assert!(
            roi_right.x0 > roi_left.x0,
            "ROI should move right: {roi_left:?} -> {roi_right:?}"
        );
    }

    #[test]
    fn sequence_tracking_beats_chance() {
        let mut t = tracker();
        let mut gen = EyeMotionGenerator::with_seed(5);
        let stats = t.run_sequence(&mut gen, 30);
        assert_eq!(stats.frames, 30);
        assert!(stats.roi_refreshes >= 3);
        assert!(
            stats.mean_error_deg() < 18.0,
            "sequence mean error {:.1}°",
            stats.mean_error_deg()
        );
    }

    #[test]
    fn parallel_sequences_match_sequential_runs() {
        let t = tracker();
        let (config, models) = (t.config().clone(), t.models.clone_models());
        let seeds = [5u64, 6, 7, 8, 9];
        let parallel = EyeTracker::run_sequences_parallel(&config, &models, &seeds, 12);
        assert_eq!(parallel.len(), seeds.len());
        for (&seed, stats) in seeds.iter().zip(&parallel) {
            let mut fresh = EyeTracker::new(config.clone(), models.clone_models());
            let sequential = fresh.run_sequence(&mut EyeMotionGenerator::with_seed(seed), 12);
            assert_eq!(stats.frames, sequential.frames);
            assert_eq!(stats.roi_refreshes, sequential.roi_refreshes);
            assert_eq!(stats.mean_error_deg(), sequential.mean_error_deg());
        }
    }

    #[test]
    fn adaptive_roi_plumbing_changes_size_and_stays_in_bounds() {
        // the sizing rule itself is unit-tested on ground-truth labels in
        // roi.rs; here we verify the live policy plumbing: the adaptive
        // mode derives a (generally different) size from predicted labels
        // and the ROI always stays inside the scene
        let mut t = tracker();
        t.config.roi_sizing = RoiSizing::ScleraAdaptive;
        let s = render_eye(&EyeParams::centered(48), 48, 3);
        let out = t.process_frame(&s.image, 4);
        let r = out.roi;
        assert!(
            r.y0 + r.h <= 48 && r.x0 + r.w <= 48,
            "ROI out of bounds: {r:?}"
        );
        assert!(r.h >= 12 && r.w >= 12, "adaptive ROI degenerate: {r:?}");
        // fixed mode pins the configured size
        let mut tf = tracker();
        let out_fixed = tf.process_frame(&s.image, 4);
        assert_eq!((out_fixed.roi.h, out_fixed.roi.w), tf.config().roi);
    }

    #[test]
    #[should_panic(expected = "must divide scene size")]
    fn config_validation_catches_bad_seg_size() {
        let mut cfg = TrackerConfig::small();
        cfg.seg_size = 20;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "ROI must be non-empty")]
    fn config_validation_catches_zero_roi() {
        let mut cfg = TrackerConfig::small();
        cfg.roi = (0, 32);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "gaze input must be non-empty")]
    fn config_validation_catches_zero_gaze_input() {
        let mut cfg = TrackerConfig::small();
        cfg.gaze_input = (24, 0);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "sensor size must be non-zero")]
    fn config_validation_catches_zero_sensor() {
        let mut cfg = TrackerConfig::small();
        cfg.sensor_size = 0;
        cfg.validate();
    }

    #[test]
    fn degenerate_gaze_falls_back_instead_of_panicking() {
        let mut t = tracker();
        // every frame must reach the gaze forward for the degenerate flag
        // to be observable — run dense even under ambient EYECOD_DELTA=1
        t.config.delta = false;
        // zero every gaze parameter: the network now emits an exact zero
        // vector for any input
        for p in t.models.gaze.params_mut() {
            p.value = Tensor::zeros(p.value.shape());
        }
        let sample = render_eye(&EyeParams::centered(48), 48, 7);
        let out = t.process_frame(&sample.image, 8);
        assert!(out.gaze_degenerate, "zero output must be flagged");
        // frame 0 falls back to straight ahead
        let ahead = GazeVector::from_angles(0.0, 0.0);
        assert!(out.gaze.angular_error_degrees(&ahead) < 1e-3);
        // a whole sequence completes and every frame is counted
        let mut gen = EyeMotionGenerator::with_seed(11);
        let stats = t.run_sequence(&mut gen, 12);
        assert_eq!(stats.frames, 12);
        assert_eq!(stats.degenerate_frames, 12);
        assert_eq!(t.frame_counter, 13);
    }

    #[test]
    fn motion_gate_skips_static_scenes_and_serves_the_last_gaze() {
        let mut t = tracker();
        t.config.delta = true;
        t.config.delta_threshold = 16;
        let s = render_eye(&EyeParams::centered(48), 48, 3);
        // frame 0 (due) runs the dense path and primes the delta caches
        let first = t.process_frame(&s.image, 4);
        assert!(!first.gaze_skipped);
        assert!(first.roi_refreshed);
        // an identical scene diffs to zero changed pixels: every steady
        // frame until the next refresh is motion-gated and serves the
        // frame-0 gaze bit-for-bit, graded Ok
        for i in 1..10u64 {
            let out = t.process_frame(&s.image, 4 + i);
            assert!(out.gaze_skipped, "frame {i} should be gated");
            assert_eq!(out.quality, FrameQuality::Ok);
            assert!(!out.roi_refreshed);
            assert_eq!(out.gaze.x.to_bits(), first.gaze.x.to_bits());
            assert_eq!(out.gaze.y.to_bits(), first.gaze.y.to_bits());
            assert_eq!(out.gaze.z.to_bits(), first.gaze.z.to_bits());
        }
        // the scheduled refresh frame always runs dense and re-anchors
        let refresh = t.process_frame(&s.image, 14);
        assert!(!refresh.gaze_skipped);
        assert!(refresh.roi_refreshed);
    }

    #[test]
    fn delta_frames_track_a_moving_eye_without_dense_solves() {
        let mut t = tracker();
        t.config.delta = true;
        t.config.delta_threshold = 0; // gate off: every change runs sparse
        let mut gen = EyeMotionGenerator::with_seed(31);
        let stats = t.run_sequence(&mut gen, 25);
        assert_eq!(stats.frames, 25);
        assert!(
            stats.mean_error_deg() < 20.0,
            "delta tracking off the rails: {} deg",
            stats.mean_error_deg()
        );
        // a dense-mode twin of the same sequence agrees on refresh frames
        let mut td = tracker();
        let (_, dense) = td.run_sequence_traced(&mut EyeMotionGenerator::with_seed(31), 25);
        let mut te = tracker();
        te.config.delta = true;
        te.config.delta_threshold = 0;
        let (_, delta) = te.run_sequence_traced(&mut EyeMotionGenerator::with_seed(31), 25);
        for (d, e) in dense.iter().zip(&delta) {
            if d.frame.is_multiple_of(10) {
                assert_eq!(
                    d.gaze.x.to_bits(),
                    e.gaze.x.to_bits(),
                    "refresh frame {} diverged",
                    d.frame
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "delta change-detection epsilon must be positive")]
    fn config_validation_catches_non_positive_delta_epsilon() {
        let mut cfg = TrackerConfig::small();
        cfg.delta = true;
        cfg.delta_epsilon = 0.0;
        cfg.validate();
    }

    #[test]
    fn gaze_backend_parses_names_case_insensitively() {
        assert_eq!(GazeBackend::parse("f32"), Some(GazeBackend::F32));
        assert_eq!(GazeBackend::parse("FLOAT"), Some(GazeBackend::F32));
        assert_eq!(GazeBackend::parse("int8"), Some(GazeBackend::Int8));
        assert_eq!(GazeBackend::parse("I8"), Some(GazeBackend::Int8));
        assert_eq!(GazeBackend::parse("latent"), Some(GazeBackend::Latent));
        assert_eq!(GazeBackend::parse("LATENT"), Some(GazeBackend::Latent));
        assert_eq!(GazeBackend::parse("recon-free"), Some(GazeBackend::Latent));
        assert_eq!(GazeBackend::parse("fp16"), None);
        assert_eq!(GazeBackend::default(), GazeBackend::F32);
    }

    #[test]
    fn gaze_backend_env_values_parse_or_reject_loudly() {
        // empty / whitespace mirror an unset variable
        assert_eq!(GazeBackend::from_env_value(""), GazeBackend::F32);
        assert_eq!(GazeBackend::from_env_value("  "), GazeBackend::F32);
        assert_eq!(GazeBackend::from_env_value("Int8"), GazeBackend::Int8);
        assert_eq!(GazeBackend::from_env_value("latent"), GazeBackend::Latent);
    }

    #[test]
    #[should_panic(expected = "unrecognised EYECOD_GAZE_BACKEND")]
    fn gaze_backend_env_rejects_unknown_values_instead_of_falling_back() {
        // regression: this used to silently fall back to f32, making CI
        // backend jobs quietly test the wrong backend
        GazeBackend::from_env_value("int4");
    }

    #[test]
    fn latent_backend_never_quantizes_and_tracks_reasonably() {
        let mut t = tracker();
        t.config.gaze_backend = GazeBackend::Latent;
        let mut gen = EyeMotionGenerator::with_seed(21);
        let stats = t.run_sequence(&mut gen, 25);
        assert_eq!(stats.frames, 25);
        assert!(
            t.quantized_gaze().is_none(),
            "latent path must not quantize"
        );
        assert!(
            stats.mean_error_deg() < 25.0,
            "latent tracking off the rails: {} deg",
            stats.mean_error_deg()
        );
    }

    #[test]
    fn latent_refresh_frames_match_the_f32_backend_exactly() {
        // scheduled refresh frames run the full recon + segmentation +
        // recon-path gaze net even under the latent backend, so frame 0
        // (always due) must be byte-identical to the f32 backend's
        let s = render_eye(&EyeParams::centered(48), 48, 3);
        let mut tf = tracker();
        tf.config.gaze_backend = GazeBackend::F32;
        let mut tl = tracker();
        tl.config.gaze_backend = GazeBackend::Latent;
        let of = tf.process_frame(&s.image, 4);
        let ol = tl.process_frame(&s.image, 4);
        assert_eq!(of.gaze.x.to_bits(), ol.gaze.x.to_bits());
        assert_eq!(of.gaze.y.to_bits(), ol.gaze.y.to_bits());
        assert_eq!(of.gaze.z.to_bits(), ol.gaze.z.to_bits());
        assert_eq!(of.roi_refreshed, ol.roi_refreshed);
    }

    #[test]
    #[should_panic(expected = "at least one calibration frame")]
    fn config_validation_catches_zero_calibration_frames() {
        let mut cfg = TrackerConfig::small();
        cfg.gaze_backend = GazeBackend::Int8;
        cfg.calibration_frames = 0;
        cfg.validate();
    }

    #[test]
    fn int8_backend_switches_over_after_warmup() {
        let mut t = tracker();
        t.config.gaze_backend = GazeBackend::Int8;
        t.config.calibration_frames = 4;
        let mut gen = EyeMotionGenerator::with_seed(9);
        for i in 0..3 {
            let params = gen.next_frame();
            let s = render_eye(&params, 48, 100 + i);
            t.process_frame(&s.image, 200 + i);
            assert!(t.quantized_gaze().is_none(), "still warming up");
        }
        let params = gen.next_frame();
        let s = render_eye(&params, 48, 103);
        t.process_frame(&s.image, 203);
        let qnet = t.quantized_gaze().expect("calibrated after 4 frames");
        assert!(qnet.input_scale() > 0.0);
        // int8 frames keep tracking sensibly (not degenerate, sane error)
        let params = gen.next_frame();
        let s = render_eye(&params, 48, 104);
        let out = t.process_frame(&s.image, 204);
        assert!(!out.gaze_degenerate);
        assert!(out.gaze.angular_error_degrees(&s.gaze) < 20.0);
    }

    #[test]
    fn f32_backend_never_quantizes() {
        let mut t = tracker();
        // pin the backend: tracker() inherits EYECOD_GAZE_BACKEND, and this
        // test is specifically about the f32 path
        t.config.gaze_backend = GazeBackend::F32;
        let mut gen = EyeMotionGenerator::with_seed(12);
        t.run_sequence(&mut gen, 12);
        assert!(t.quantized_gaze().is_none());
    }

    #[test]
    fn healthy_frames_are_not_flagged_degenerate() {
        let mut t = tracker();
        let sample = render_eye(&EyeParams::centered(48), 48, 3);
        let out = t.process_frame(&sample.image, 4);
        assert!(!out.gaze_degenerate);
        let mut gen = EyeMotionGenerator::with_seed(5);
        assert_eq!(t.run_sequence(&mut gen, 10).degenerate_frames, 0);
    }

    #[test]
    fn clean_plan_grades_every_frame_ok() {
        let mut t = tracker().with_faults(FaultPlan::none());
        let (stats, trace) = t.run_sequence_traced(&mut EyeMotionGenerator::with_seed(5), 10);
        assert_eq!(stats.frames_ok, 10);
        assert_eq!(stats.frames_degraded + stats.frames_lost, 0);
        assert_eq!(t.fault_stats(), FaultStats::default());
        assert!(trace
            .iter()
            .all(|f| f.quality == FrameQuality::Ok && f.faults.is_clean()));
    }

    #[test]
    fn heavy_plan_run_is_deterministic_and_survives() {
        let plan = FaultPlan::heavy(0xEC0D);
        let run = || {
            let mut t = tracker().with_faults(plan.clone());
            t.run_sequence_traced(&mut EyeMotionGenerator::with_seed(7), 30)
        };
        let (s1, t1) = run();
        let (s2, t2) = run();
        assert_eq!(s1, s2, "stats must replay identically");
        let codes = |tr: &[TrackedFrame]| tr.iter().map(|f| f.quality.code()).collect::<String>();
        assert_eq!(codes(&t1), codes(&t2), "quality trace must replay");
        assert_eq!(s1.frames, 30);
        assert!(s1.faults.injected > 0, "heavy plan must inject faults");
        assert!(s1.faults.recovered > 0, "recovery must engage");
    }

    #[test]
    fn truncated_labels_fall_back_to_last_good_roi() {
        let mut plan = FaultPlan::none();
        plan.seed = 3;
        plan.stage.seg_truncated_labels_ppm = 1_000_000; // every refresh
        let mut t = tracker().with_faults(plan);
        let before = t.current_roi();
        let s = render_eye(&EyeParams::centered(48), 48, 3);
        // frame 0 is a scheduled refresh, but its labels come back short
        let out = t.process_frame(&s.image, 4);
        assert!(
            !out.roi_refreshed,
            "rejected labels must not count as a refresh"
        );
        assert!(t.last_labels().is_none(), "short labels must not be kept");
        assert_eq!(out.quality, FrameQuality::Degraded);
        assert_eq!((out.faults.injected, out.faults.recovered), (1, 1));
        let r = t.current_roi();
        assert_eq!(
            (r.y0, r.x0, r.h, r.w),
            (before.y0, before.x0, before.h, before.w),
            "ROI must stay at the last-good anchor"
        );
    }

    #[test]
    fn injected_gaze_nan_falls_back_to_last_gaze() {
        let mut plan = FaultPlan::none();
        plan.stage.gaze_nan_ppm = 1_000_000;
        let mut t = tracker().with_faults(plan);
        let s = render_eye(&EyeParams::centered(48), 48, 3);
        let out = t.process_frame(&s.image, 4);
        assert!(out.gaze_degenerate, "NaN output must be detected");
        let ahead = GazeVector::from_angles(0.0, 0.0);
        assert!(out.gaze.angular_error_degrees(&ahead) < 1e-3);
        assert_eq!(out.quality, FrameQuality::Degraded);
        assert_eq!((out.faults.injected, out.faults.recovered), (1, 1));
    }

    #[test]
    fn dropped_frames_grade_lost_then_degraded_once_a_fallback_exists() {
        let mut plan = FaultPlan::none();
        plan.sensor.frame_drop_ppm = 1_000_000;
        let mut t = tracker().with_faults(plan.clone());
        let s = render_eye(&EyeParams::centered(48), 48, 3);
        let out = t.process_frame(&s.image, 4);
        assert_eq!(out.quality, FrameQuality::Lost, "no fallback on frame 0");
        assert_eq!(out.faults.unrecovered, 1);
        assert!(!out.roi_refreshed);
        // a tracker that saw one good frame first degrades instead
        let mut t2 = tracker();
        t2.process_frame(&s.image, 4);
        t2.faults = plan;
        let out2 = t2.process_frame(&s.image, 5);
        assert_eq!(out2.quality, FrameQuality::Degraded);
        assert_eq!(out2.faults.recovered, 1);
        // sustained drops exhaust the image staleness limit and grade Lost
        let mut last = out2.quality;
        for i in 0..6 {
            last = t2.process_frame(&s.image, 6 + i).quality;
        }
        assert_eq!(last, FrameQuality::Lost);
    }

    #[test]
    fn worker_panic_is_recovered_and_results_match_sequential() {
        let t = tracker();
        let (config, models) = (t.config().clone(), t.models.clone_models());
        let mut plan = FaultPlan::light(3);
        plan.exec.worker_panic_jobs = vec![1];
        let policy = RecoveryPolicy::default();
        let seeds = [5u64, 6, 7];
        let parallel =
            EyeTracker::run_sequences_parallel_with(&config, &models, &seeds, 8, &plan, &policy);
        assert_eq!(parallel.len(), seeds.len());
        for (&seed, stats) in seeds.iter().zip(&parallel) {
            let mut fresh = EyeTracker::new(config.clone(), models.clone_models())
                .with_faults(plan.clone())
                .with_recovery(policy);
            let sequential = fresh.run_sequence(&mut EyeMotionGenerator::with_seed(seed), 8);
            assert_eq!(stats, &sequential, "job results must be byte-identical");
        }
    }
}
