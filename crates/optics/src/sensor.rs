//! Image-sensor noise and quantisation model.
//!
//! FlatCam measurements are corrupted by the `e` term of the paper's Eq. 1.
//! We model the dominant contributors: photon shot noise (variance
//! proportional to signal), additive Gaussian read noise, ADC quantisation
//! and full-well saturation.

use crate::mat::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A parametric sensor model applied to noiseless measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorModel {
    /// Photon count corresponding to a measurement value of 1.0. Higher
    /// means brighter scenes / less relative shot noise. `0` disables shot
    /// noise.
    pub full_scale_electrons: f64,
    /// Standard deviation of additive read noise, in measurement units.
    pub read_noise_std: f64,
    /// ADC bit depth; `0` disables quantisation.
    pub adc_bits: u32,
    /// Saturation level in measurement units (values clip here). `inf`
    /// disables clipping.
    pub saturation: f64,
    /// Common-mode photon level for differential (complementary-capture)
    /// measurements, in measurement units. Differential values are the
    /// difference of two raw captures riding on this DC level, so shot
    /// noise scales with `|v| + dc_level` and values may be negative
    /// (clipping becomes symmetric). `0` models a single raw capture.
    pub dc_level: f64,
}

impl SensorModel {
    /// An ideal, noiseless sensor (useful for tests and upper bounds).
    pub fn noiseless() -> Self {
        SensorModel {
            full_scale_electrons: 0.0,
            read_noise_std: 0.0,
            adc_bits: 0,
            saturation: f64::INFINITY,
            dc_level: 0.0,
        }
    }

    /// A realistic low-light VR/AR eye-camera operating point: limited
    /// photon budget, moderate read noise, 10-bit ADC.
    pub fn low_light() -> Self {
        SensorModel {
            full_scale_electrons: 2_000.0,
            read_noise_std: 2e-3,
            adc_bits: 10,
            saturation: 4.0,
            dc_level: 0.5,
        }
    }

    /// The EyeCoD operating point: a near-infrared-illuminated eye camera.
    /// VR/AR eye trackers use active NIR LEDs, so the sensor is not
    /// photon-starved even though the scene is enclosed (paper §2 notes
    /// FlatCams suit this regime thanks to their ~50 % open masks).
    pub fn nir_eye_tracking() -> Self {
        SensorModel {
            full_scale_electrons: 10_000.0,
            read_noise_std: 1e-3,
            adc_bits: 10,
            saturation: 4.0,
            dc_level: 0.5,
        }
    }

    /// A bright, well-exposed operating point.
    pub fn bright() -> Self {
        SensorModel {
            full_scale_electrons: 20_000.0,
            read_noise_std: 5e-4,
            adc_bits: 12,
            saturation: 4.0,
            dc_level: 0.5,
        }
    }

    /// Returns true if this model adds no noise and no quantisation.
    pub fn is_noiseless(&self) -> bool {
        self.full_scale_electrons == 0.0 && self.read_noise_std == 0.0 && self.adc_bits == 0
    }

    /// Applies the sensor model to a noiseless measurement, seeded for
    /// reproducibility.
    pub fn apply(&self, clean: &Mat, seed: u64) -> Mat {
        let mut out = clean.clone();
        self.apply_inplace(&mut out, seed);
        out
    }

    /// [`SensorModel::apply`] operating on the measurement in place — the
    /// allocation-free variant the steady-state frame path uses. Draws the
    /// noise stream in the exact element order of [`SensorModel::apply`],
    /// so both variants are byte-identical for equal seeds.
    pub fn apply_inplace(&self, out: &mut Mat, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                let v = out.at(r, c);
                let mut noisy = v;
                if self.full_scale_electrons > 0.0 {
                    // Gaussian approximation of Poisson shot noise:
                    // std in measurement units = sqrt(v * FS) / FS, with the
                    // common-mode level added for differential captures.
                    let electrons = (v.abs() + self.dc_level) * self.full_scale_electrons;
                    let shot_std = electrons.sqrt() / self.full_scale_electrons;
                    noisy += shot_std * gaussian(&mut rng);
                }
                if self.read_noise_std > 0.0 {
                    noisy += self.read_noise_std * gaussian(&mut rng);
                }
                if self.saturation.is_finite() {
                    let lo = if self.dc_level > 0.0 {
                        -self.saturation
                    } else {
                        0.0
                    };
                    noisy = noisy.clamp(lo, self.saturation);
                }
                if self.adc_bits > 0 {
                    let levels = ((1u64 << self.adc_bits) - 1) as f64;
                    let full = if self.saturation.is_finite() {
                        self.saturation
                    } else {
                        1.0
                    };
                    noisy = (noisy / full * levels).round() / levels * full;
                }
                *out.at_mut(r, c) = noisy;
            }
        }
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_is_identity() {
        let m = Mat::from_fn(8, 8, |r, c| (r * c) as f64 / 64.0);
        let out = SensorModel::noiseless().apply(&m, 0);
        assert!(out.sub(&m).max_abs() < 1e-15);
        assert!(SensorModel::noiseless().is_noiseless());
    }

    #[test]
    fn noise_is_seed_reproducible() {
        let m = Mat::from_fn(8, 8, |_, _| 0.5);
        let s = SensorModel::low_light();
        assert_eq!(s.apply(&m, 7).as_slice(), s.apply(&m, 7).as_slice());
        assert!(s.apply(&m, 7).sub(&s.apply(&m, 8)).max_abs() > 0.0);
    }

    #[test]
    fn shot_noise_scales_with_signal() {
        let lo = Mat::from_fn(64, 64, |_, _| 0.01);
        let hi = Mat::from_fn(64, 64, |_, _| 1.0);
        let s = SensorModel {
            full_scale_electrons: 1_000.0,
            read_noise_std: 0.0,
            adc_bits: 0,
            saturation: f64::INFINITY,
            dc_level: 0.0,
        };
        let res_lo = s.apply(&lo, 1).sub(&lo).fro_norm();
        let res_hi = s.apply(&hi, 1).sub(&hi).fro_norm();
        // absolute shot noise grows with signal (std ~ sqrt(signal))
        assert!(res_hi > res_lo * 2.0, "lo={res_lo} hi={res_hi}");
    }

    #[test]
    fn saturation_clips() {
        let m = Mat::from_fn(4, 4, |_, _| 10.0);
        let s = SensorModel {
            full_scale_electrons: 0.0,
            read_noise_std: 0.0,
            adc_bits: 0,
            saturation: 2.0,
            dc_level: 0.0,
        };
        assert!(s.apply(&m, 0).max_abs() <= 2.0);
    }

    #[test]
    fn adc_quantizes_to_levels() {
        let m = Mat::from_fn(4, 4, |r, c| (r * 4 + c) as f64 / 16.0);
        let s = SensorModel {
            full_scale_electrons: 0.0,
            read_noise_std: 0.0,
            adc_bits: 2,
            saturation: 1.0,
            dc_level: 0.0,
        };
        let out = s.apply(&m, 0);
        for &v in out.as_slice() {
            let scaled = v * 3.0;
            assert!(
                (scaled - scaled.round()).abs() < 1e-12,
                "value {v} not on 2-bit grid"
            );
        }
    }
}
