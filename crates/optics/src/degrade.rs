//! Sensor-plane fault injection: degraded FlatCam measurements.
//!
//! The sensor faults a fielded eye camera actually develops — pixels stuck
//! dark or at saturation, a readout row dropping out, noise escalating
//! with temperature — applied to a measurement *deterministically* from an
//! [`eyecod_faults::FaultPlan`]. Every decision is a pure hash of
//! `(plan seed, site, frame/pixel)`, so a faulted capture replays
//! byte-identically regardless of threading or call order.
//!
//! These faults model physical damage the pipeline cannot detect from one
//! frame (there is no ground truth at the sensor), so they degrade
//! reconstruction quality silently rather than triggering recovery; the
//! recovery-visible faults (drops, link corruption) live in
//! `eyecod-core`'s acquisition layer.

use crate::mat::Mat;
use eyecod_faults::{FaultPlan, FaultSite};

/// Applies the plan's sensor-plane faults to one measurement in place and
/// returns the number of injected fault *events* (pixel masks count as one
/// event per frame while present; row dropout and noise escalation count
/// when they fire).
///
/// `frame` indexes the plan's per-frame streams; `saturation` is the
/// sensor's full-scale level, used for hot (stuck-high) pixels.
pub fn degrade_measurement(plan: &FaultPlan, m: &mut Mat, frame: u64, saturation: f64) -> u32 {
    let mut injected = 0u32;
    let rows = m.rows();
    let cols = m.cols();

    // static pixel defects: a property of the die, identical every frame
    if plan.sensor.dead_pixel_ppm > 0 || plan.sensor.hot_pixel_ppm > 0 {
        let stuck_high = if saturation.is_finite() {
            saturation
        } else {
            1.0
        };
        let mut dead = 0u32;
        let mut hot = 0u32;
        for r in 0..rows {
            for c in 0..cols {
                let idx = r * cols + c;
                // dead wins over hot when both masks hit the same pixel
                if plan.pixel_faulty(FaultSite::SensorHotPixel, idx) {
                    *m.at_mut(r, c) = stuck_high;
                    hot += 1;
                }
                if plan.pixel_faulty(FaultSite::SensorDeadPixel, idx) {
                    *m.at_mut(r, c) = 0.0;
                    dead += 1;
                }
            }
        }
        injected += (dead > 0) as u32 + (hot > 0) as u32;
    }

    // one readout row goes dark this frame
    if plan.fires(FaultSite::SensorRowDropout, frame) {
        let row = plan.index(FaultSite::SensorRowDropout, frame, 1, rows);
        for c in 0..cols {
            *m.at_mut(row, c) = 0.0;
        }
        injected += 1;
    }

    // escalated Gaussian + shot-like noise (hash-driven, not an RNG — the
    // draw for pixel idx never depends on other pixels)
    if plan.sensor.noise_std > 0.0 && plan.fires(FaultSite::SensorNoise, frame) {
        for r in 0..rows {
            for c in 0..cols {
                let idx = (r * cols + c) as u64;
                let g = plan.gaussian(FaultSite::SensorNoise, frame, idx + 7);
                let v = m.at(r, c);
                // shot-like term: escalated noise grows with signal level
                let std = plan.sensor.noise_std * (1.0 + v.abs().sqrt());
                *m.at_mut(r, c) = v + std * g;
            }
        }
        injected += 1;
    }

    injected
}

/// The static dead-pixel indices of a `pixels`-sized sensor under `plan`
/// (row-major). Exposed for tests and for reporting mask coverage.
pub fn dead_pixels(plan: &FaultPlan, pixels: usize) -> Vec<usize> {
    (0..pixels)
        .filter(|&i| plan.pixel_faulty(FaultSite::SensorDeadPixel, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(n: usize) -> Mat {
        Mat::from_fn(n, n, |r, c| 0.2 + ((r * n + c) % 7) as f64 * 0.1)
    }

    #[test]
    fn none_plan_leaves_measurement_untouched() {
        let mut m = measurement(16);
        let before = m.clone();
        let injected = degrade_measurement(&FaultPlan::none(), &mut m, 3, 4.0);
        assert_eq!(injected, 0);
        assert!(m.sub(&before).max_abs() == 0.0);
    }

    #[test]
    fn faulted_capture_is_deterministic() {
        let plan = FaultPlan::heavy(5);
        let mut a = measurement(24);
        let mut b = measurement(24);
        let ia = degrade_measurement(&plan, &mut a, 9, 4.0);
        let ib = degrade_measurement(&plan, &mut b, 9, 4.0);
        assert_eq!(ia, ib);
        assert_eq!(a.as_slice(), b.as_slice(), "must replay byte-identically");
        // with a guaranteed per-frame fault, different frames draw
        // different degradations
        let mut always = FaultPlan::none();
        always.seed = 5;
        always.sensor.noise_ppm = 1_000_000;
        always.sensor.noise_std = 0.05;
        let mut c = measurement(24);
        let mut d = measurement(24);
        degrade_measurement(&always, &mut c, 9, 4.0);
        degrade_measurement(&always, &mut d, 10, 4.0);
        assert!(c.sub(&d).max_abs() > 0.0);
    }

    #[test]
    fn dead_pixels_go_dark_and_hot_pixels_saturate() {
        let mut plan = FaultPlan::none();
        plan.seed = 11;
        plan.sensor.dead_pixel_ppm = 100_000; // 10 %
        plan.sensor.hot_pixel_ppm = 50_000;
        let n = 32;
        let mut m = measurement(n);
        degrade_measurement(&plan, &mut m, 0, 4.0);
        let dead = dead_pixels(&plan, n * n);
        assert!(!dead.is_empty());
        for &idx in &dead {
            assert_eq!(m.at(idx / n, idx % n), 0.0, "dead pixel {idx} not dark");
        }
        let hot = (0..n * n)
            .filter(|&i| {
                plan.pixel_faulty(FaultSite::SensorHotPixel, i)
                    && !plan.pixel_faulty(FaultSite::SensorDeadPixel, i)
            })
            .collect::<Vec<_>>();
        assert!(!hot.is_empty());
        for &idx in &hot {
            assert_eq!(
                m.at(idx / n, idx % n),
                4.0,
                "hot pixel {idx} not stuck high"
            );
        }
    }

    #[test]
    fn row_dropout_zeroes_exactly_one_row() {
        let mut plan = FaultPlan::none();
        plan.seed = 3;
        plan.sensor.row_dropout_ppm = 1_000_000;
        let mut m = measurement(16);
        let injected = degrade_measurement(&plan, &mut m, 4, 4.0);
        assert_eq!(injected, 1);
        let dark_rows = (0..16)
            .filter(|&r| (0..16).all(|c| m.at(r, c) == 0.0))
            .count();
        assert_eq!(dark_rows, 1);
    }

    #[test]
    fn noise_escalation_perturbs_without_blowing_up() {
        let mut plan = FaultPlan::none();
        plan.seed = 8;
        plan.sensor.noise_ppm = 1_000_000;
        plan.sensor.noise_std = 0.05;
        let mut m = measurement(24);
        let clean = m.clone();
        degrade_measurement(&plan, &mut m, 2, 4.0);
        let delta = m.sub(&clean);
        assert!(delta.max_abs() > 0.0, "noise must perturb");
        assert!(delta.max_abs() < 1.0, "noise must stay bounded");
        assert!(m.as_slice().iter().all(|v| v.is_finite()));
    }
}
