//! Tikhonov-regularised FlatCam image reconstruction (the paper's Eq. 2).
//!
//! The reconstruction solves
//!
//! ```text
//! argmin_X ‖Φ_L · X · Φ_Rᵀ − Y‖² + ε‖X‖²
//! ```
//!
//! in closed form using the SVDs `Φ_L = U₁ S₁ V₁ᵀ`, `Φ_R = U₂ S₂ V₂ᵀ`:
//! with `Ŷ = U₁ᵀ Y U₂`, the minimiser is `X = V₁ · Z · V₂ᵀ` where
//! `Z_ij = s₁ᵢ s₂ⱼ Ŷ_ij / (s₁ᵢ² s₂ⱼ² + ε)`.
//!
//! The SVDs depend only on the mask, so a [`TikhonovReconstructor`] is
//! precomputed once per camera and amortised over every frame — exactly how
//! the reconstruction stage of the paper's pipeline runs on the accelerator
//! (the mask SVD factors live in the weight global buffer).

use crate::mask::SeparableMask;
use crate::mat::Mat;
use crate::svd::Svd;
use eyecod_telemetry::{static_counter, static_histogram};

/// A precomputed FlatCam reconstructor for a specific mask.
#[derive(Debug, Clone)]
pub struct TikhonovReconstructor {
    svd_l: Svd,
    svd_r: Svd,
    /// `U₁ᵀ`, hoisted out of the per-frame solve (the factors are
    /// mask-constant — the software mirror of the paper keeping the SVD
    /// factors resident in the weight global buffer).
    u_l_t: Mat,
    /// `V₂ᵀ`, hoisted likewise.
    v_r_t: Mat,
    epsilon: f64,
    scene: usize,
}

/// Reusable intermediate buffers for [`TikhonovReconstructor::reconstruct_into`].
///
/// Sized lazily on first use; after that, a steady-state solve performs no
/// heap allocation.
#[derive(Debug, Clone)]
pub struct ReconWorkspace {
    t1: Mat,
    yhat: Mat,
    t2: Mat,
}

impl ReconWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        ReconWorkspace {
            t1: Mat::zeros(1, 1),
            yhat: Mat::zeros(1, 1),
            t2: Mat::zeros(1, 1),
        }
    }
}

impl Default for ReconWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl TikhonovReconstructor {
    /// Precomputes the SVD factors for `mask` with regularisation `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon < 0`.
    pub fn new(mask: &SeparableMask, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "regularisation must be non-negative");
        let svd_l = Svd::compute(mask.phi_l());
        let svd_r = Svd::compute(mask.phi_r());
        let u_l_t = svd_l.u.transpose();
        let v_r_t = svd_r.v.transpose();
        TikhonovReconstructor {
            svd_l,
            svd_r,
            u_l_t,
            v_r_t,
            epsilon,
            scene: mask.scene_size(),
        }
    }

    /// The regularisation strength.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Returns a reconstructor with the same factors and a new epsilon
    /// (cheap; reuses the SVDs — useful for the ε sweep ablation).
    pub fn with_epsilon(&self, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "regularisation must be non-negative");
        let mut r = self.clone();
        r.epsilon = epsilon;
        r
    }

    /// Reconstructs a scene from a measurement.
    ///
    /// # Panics
    ///
    /// Panics if the measurement shape does not match the mask's sensor
    /// geometry.
    pub fn reconstruct(&self, measurement: &Mat) -> Mat {
        static_counter!("optics/recon_solves").inc();
        let _solve_timer = static_histogram!("optics/recon_solve_ns").timer();
        let (mh, mw) = (self.svd_l.u.rows(), self.svd_r.u.rows());
        assert_eq!(
            (measurement.rows(), measurement.cols()),
            (mh, mw),
            "measurement must be {mh}x{mw}, got {}x{}",
            measurement.rows(),
            measurement.cols()
        );
        // Ŷ = U₁ᵀ · Y · U₂  (n × n); both products run tiled over rows on
        // the process pool at paper-scale geometries
        let yhat = self
            .u_l_t
            .matmul_parallel(measurement)
            .matmul_parallel(&self.svd_r.u);
        // Z_ij = s1_i s2_j Ŷ_ij / (s1_i² s2_j² + ε)
        let n = self.scene;
        let z = Mat::from_fn(n, n, |i, j| {
            let s1 = self.svd_l.s[i];
            let s2 = self.svd_r.s[j];
            let denom = s1 * s1 * s2 * s2 + self.epsilon;
            if denom == 0.0 {
                0.0
            } else {
                s1 * s2 * yhat.at(i, j) / denom
            }
        });
        // X = V₁ · Z · V₂ᵀ
        self.svd_l
            .v
            .matmul_parallel(&z)
            .matmul_parallel(&self.v_r_t)
    }

    /// [`TikhonovReconstructor::reconstruct`] through caller-owned buffers:
    /// all four matrix products and the spectral filter run in `ws` and
    /// `out`, so a warm workspace makes the whole solve allocation-free
    /// (the per-frame regime of the paper's accelerator, which ping-pongs
    /// activations between two global buffers instead of allocating).
    ///
    /// Numerically identical to [`TikhonovReconstructor::reconstruct`]:
    /// same kernels, same accumulation order, same spectral filter.
    ///
    /// # Panics
    ///
    /// Panics if the measurement shape does not match the mask's sensor
    /// geometry.
    pub fn reconstruct_into(&self, measurement: &Mat, ws: &mut ReconWorkspace, out: &mut Mat) {
        static_counter!("optics/recon_solves").inc();
        let _solve_timer = static_histogram!("optics/recon_solve_ns").timer();
        let (mh, mw) = (self.svd_l.u.rows(), self.svd_r.u.rows());
        assert_eq!(
            (measurement.rows(), measurement.cols()),
            (mh, mw),
            "measurement must be {mh}x{mw}, got {}x{}",
            measurement.rows(),
            measurement.cols()
        );
        // Ŷ = U₁ᵀ · Y · U₂
        self.u_l_t.matmul_into(measurement, &mut ws.t1);
        ws.t1.matmul_into(&self.svd_r.u, &mut ws.yhat);
        // the spectral filter runs in place on Ŷ (no `z` materialisation)
        let n = self.scene;
        for i in 0..n {
            let s1 = self.svd_l.s[i];
            for j in 0..n {
                let s2 = self.svd_r.s[j];
                let denom = s1 * s1 * s2 * s2 + self.epsilon;
                let v = ws.yhat.at(i, j);
                *ws.yhat.at_mut(i, j) = if denom == 0.0 {
                    0.0
                } else {
                    s1 * s2 * v / denom
                };
            }
        }
        // X = V₁ · Z · V₂ᵀ
        self.svd_l.v.matmul_into(&ws.yhat, &mut ws.t2);
        ws.t2.matmul_into(&self.v_r_t, out);
    }

    /// Rank-truncated reconstruction: only the top `rank` singular
    /// components per side contribute (see
    /// [`crate::calibrate::TruncatedReconstructor`] for the cost model).
    ///
    /// # Panics
    ///
    /// Panics on a measurement shape mismatch or `rank` outside
    /// `1..=scene`.
    pub fn reconstruct_truncated(&self, measurement: &Mat, rank: usize) -> Mat {
        static_counter!("optics/recon_solves").inc();
        let _solve_timer = static_histogram!("optics/recon_solve_ns").timer();
        let n = self.scene;
        assert!(
            rank >= 1 && rank <= n,
            "rank {rank} out of range for scene {n}"
        );
        let (mh, mw) = (self.svd_l.u.rows(), self.svd_r.u.rows());
        assert_eq!(
            (measurement.rows(), measurement.cols()),
            (mh, mw),
            "measurement must be {mh}x{mw}"
        );
        let yhat = self
            .u_l_t
            .matmul_parallel(measurement)
            .matmul_parallel(&self.svd_r.u);
        let z = Mat::from_fn(n, n, |i, j| {
            if i >= rank || j >= rank {
                return 0.0;
            }
            let s1 = self.svd_l.s[i];
            let s2 = self.svd_r.s[j];
            let denom = s1 * s1 * s2 * s2 + self.epsilon;
            if denom == 0.0 {
                0.0
            } else {
                s1 * s2 * yhat.at(i, j) / denom
            }
        });
        self.svd_l
            .v
            .matmul_parallel(&z)
            .matmul_parallel(&self.v_r_t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imaging::FlatCam;
    use crate::sensor::SensorModel;

    fn test_scene(n: usize) -> Mat {
        // A smooth blob plus an edge — structure similar to an eye image.
        Mat::from_fn(n, n, |r, c| {
            let dr = r as f64 - n as f64 / 2.0;
            let dc = c as f64 - n as f64 / 2.0;
            let blob = (-(dr * dr + dc * dc) / (n as f64)).exp();
            let edge = if c > n / 2 { 0.3 } else { 0.0 };
            blob + edge
        })
    }

    #[test]
    fn noiseless_reconstruction_is_near_exact() {
        let mask = SeparableMask::mls(48, 32, 11);
        let cam = FlatCam::new(mask, SensorModel::noiseless());
        let scene = test_scene(32);
        let y = cam.capture(&scene, 0);
        let recon = TikhonovReconstructor::new(cam.mask(), 1e-9);
        let xhat = recon.reconstruct(&y);
        let rel = xhat.sub(&scene).fro_norm() / scene.fro_norm();
        assert!(rel < 1e-3, "relative error {rel}");
    }

    #[test]
    fn regularisation_suppresses_noise() {
        let mask = SeparableMask::mls(48, 32, 11);
        let cam = FlatCam::new(mask.clone(), SensorModel::low_light());
        let scene = test_scene(32);
        let y = cam.capture(&scene, 42);
        let recon = TikhonovReconstructor::new(&mask, 0.0);
        let err_unreg = recon.reconstruct(&y).sub(&scene).fro_norm();
        let err_reg = recon
            .with_epsilon(1e-4)
            .reconstruct(&y)
            .sub(&scene)
            .fro_norm();
        assert!(
            err_reg < err_unreg,
            "regularised {err_reg} should beat unregularised {err_unreg}"
        );
    }

    #[test]
    fn heavy_regularisation_shrinks_towards_zero() {
        let mask = SeparableMask::mls(40, 32, 3);
        let cam = FlatCam::new(mask.clone(), SensorModel::noiseless());
        let scene = test_scene(32);
        let y = cam.capture(&scene, 0);
        let strong = TikhonovReconstructor::new(&mask, 1e6).reconstruct(&y);
        assert!(strong.fro_norm() < 0.01 * scene.fro_norm());
    }

    #[test]
    fn reconstruction_is_linear() {
        let mask = SeparableMask::mls(40, 32, 5);
        let recon = TikhonovReconstructor::new(&mask, 1e-6);
        let cam = FlatCam::new(mask, SensorModel::noiseless());
        let a = test_scene(32);
        let b = Mat::from_fn(32, 32, |r, _| r as f64 / 32.0);
        let xa = recon.reconstruct(&cam.capture(&a, 0));
        let xb = recon.reconstruct(&cam.capture(&b, 0));
        let xab = recon.reconstruct(&cam.capture(&a.add(&b), 0));
        assert!(xab.sub(&xa.add(&xb)).max_abs() < 1e-9);
    }

    #[test]
    fn reconstruct_into_matches_reconstruct_exactly() {
        let mask = SeparableMask::mls(48, 32, 11);
        let cam = FlatCam::new(mask.clone(), SensorModel::low_light());
        let recon = TikhonovReconstructor::new(&mask, 1e-4);
        let mut ws = ReconWorkspace::new();
        let mut out = Mat::zeros(1, 1);
        // two different measurements through the same workspace
        for seed in [3u64, 9] {
            let y = cam.capture(&test_scene(32), seed);
            recon.reconstruct_into(&y, &mut ws, &mut out);
            assert_eq!(
                out.as_slice(),
                recon.reconstruct(&y).as_slice(),
                "workspace solve must be bit-identical (seed {seed})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "measurement must be")]
    fn reconstruct_into_rejects_wrong_shape() {
        let mask = SeparableMask::mls(40, 32, 5);
        let recon = TikhonovReconstructor::new(&mask, 1e-6);
        recon.reconstruct_into(
            &Mat::zeros(32, 32),
            &mut ReconWorkspace::new(),
            &mut Mat::zeros(1, 1),
        );
    }

    #[test]
    #[should_panic(expected = "measurement must be")]
    fn rejects_wrong_measurement_shape() {
        let mask = SeparableMask::mls(40, 32, 5);
        TikhonovReconstructor::new(&mask, 1e-6).reconstruct(&Mat::zeros(32, 32));
    }
}
