//! Tikhonov-regularised FlatCam image reconstruction (the paper's Eq. 2).
//!
//! The reconstruction solves
//!
//! ```text
//! argmin_X ‖Φ_L · X · Φ_Rᵀ − Y‖² + ε‖X‖²
//! ```
//!
//! in closed form using the SVDs `Φ_L = U₁ S₁ V₁ᵀ`, `Φ_R = U₂ S₂ V₂ᵀ`:
//! with `Ŷ = U₁ᵀ Y U₂`, the minimiser is `X = V₁ · Z · V₂ᵀ` where
//! `Z_ij = s₁ᵢ s₂ⱼ Ŷ_ij / (s₁ᵢ² s₂ⱼ² + ε)`.
//!
//! The SVDs depend only on the mask, so a [`TikhonovReconstructor`] is
//! precomputed once per camera and amortised over every frame — exactly how
//! the reconstruction stage of the paper's pipeline runs on the accelerator
//! (the mask SVD factors live in the weight global buffer).

use crate::mask::SeparableMask;
use crate::mat::Mat;
use crate::svd::Svd;
use eyecod_telemetry::{static_counter, static_histogram};

/// A precomputed FlatCam reconstructor for a specific mask.
#[derive(Debug, Clone)]
pub struct TikhonovReconstructor {
    svd_l: Svd,
    svd_r: Svd,
    /// `U₁ᵀ`, hoisted out of the per-frame solve (the factors are
    /// mask-constant — the software mirror of the paper keeping the SVD
    /// factors resident in the weight global buffer).
    u_l_t: Mat,
    /// `V₂ᵀ`, hoisted likewise.
    v_r_t: Mat,
    /// `U₂ᵀ`, hoisted for the sparse-column incremental update (which
    /// projects measurement-domain factors through `U₂ᵀ` directly instead
    /// of multiplying by `U₂` on the right).
    u_r_t: Mat,
    epsilon: f64,
    scene: usize,
}

/// Reusable intermediate buffers for [`TikhonovReconstructor::reconstruct_into`].
///
/// Sized lazily on first use; after that, a steady-state solve performs no
/// heap allocation.
#[derive(Debug, Clone)]
pub struct ReconWorkspace {
    t1: Mat,
    yhat: Mat,
    t2: Mat,
}

impl ReconWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        ReconWorkspace {
            t1: Mat::zeros(1, 1),
            yhat: Mat::zeros(1, 1),
            t2: Mat::zeros(1, 1),
        }
    }
}

impl Default for ReconWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

/// Reusable buffers for [`TikhonovReconstructor::update_columns_into`].
///
/// All buffers are sized by `reset` on each call, which reuses the
/// existing allocation whenever its capacity suffices — pre-warming the
/// workspace once at the maximum column count makes every subsequent
/// update (any `k ≤` the warmed `k`) allocation-free.
#[derive(Debug, Clone)]
pub struct DeltaReconWorkspace {
    c_hat: Mat,
    d_hat: Mat,
    g: Mat,
    t: Mat,
    x: Mat,
}

impl DeltaReconWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        DeltaReconWorkspace {
            c_hat: Mat::zeros(1, 1),
            d_hat: Mat::zeros(1, 1),
            g: Mat::zeros(1, 1),
            t: Mat::zeros(1, 1),
            x: Mat::zeros(1, 1),
        }
    }

    /// Pre-sizes every buffer for updates of up to `k` columns on an
    /// `n`-sized scene, so every subsequent
    /// [`TikhonovReconstructor::update_columns_into`] with column count
    /// `≤ k` is allocation-free.
    pub fn warm(&mut self, n: usize, k: usize) {
        self.c_hat.reset(n, k);
        self.d_hat.reset(n, k);
        self.g.reset(n, n);
        self.t.reset(n, n);
        self.x.reset(n, n);
    }
}

impl Default for DeltaReconWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl TikhonovReconstructor {
    /// Precomputes the SVD factors for `mask` with regularisation `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon < 0`.
    pub fn new(mask: &SeparableMask, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "regularisation must be non-negative");
        let svd_l = Svd::compute(mask.phi_l());
        let svd_r = Svd::compute(mask.phi_r());
        let u_l_t = svd_l.u.transpose();
        let v_r_t = svd_r.v.transpose();
        let u_r_t = svd_r.u.transpose();
        TikhonovReconstructor {
            svd_l,
            svd_r,
            u_l_t,
            v_r_t,
            u_r_t,
            epsilon,
            scene: mask.scene_size(),
        }
    }

    /// The regularisation strength.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Returns a reconstructor with the same factors and a new epsilon
    /// (cheap; reuses the SVDs — useful for the ε sweep ablation).
    pub fn with_epsilon(&self, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "regularisation must be non-negative");
        let mut r = self.clone();
        r.epsilon = epsilon;
        r
    }

    /// Reconstructs a scene from a measurement.
    ///
    /// # Panics
    ///
    /// Panics if the measurement shape does not match the mask's sensor
    /// geometry.
    pub fn reconstruct(&self, measurement: &Mat) -> Mat {
        static_counter!("optics/recon_solves").inc();
        let _solve_timer = static_histogram!("optics/recon_solve_ns").timer();
        let (mh, mw) = (self.svd_l.u.rows(), self.svd_r.u.rows());
        assert_eq!(
            (measurement.rows(), measurement.cols()),
            (mh, mw),
            "measurement must be {mh}x{mw}, got {}x{}",
            measurement.rows(),
            measurement.cols()
        );
        // Ŷ = U₁ᵀ · Y · U₂  (n × n); both products run tiled over rows on
        // the process pool at paper-scale geometries
        let yhat = self
            .u_l_t
            .matmul_parallel(measurement)
            .matmul_parallel(&self.svd_r.u);
        // Z_ij = s1_i s2_j Ŷ_ij / (s1_i² s2_j² + ε)
        let n = self.scene;
        let z = Mat::from_fn(n, n, |i, j| {
            let s1 = self.svd_l.s[i];
            let s2 = self.svd_r.s[j];
            let denom = s1 * s1 * s2 * s2 + self.epsilon;
            if denom == 0.0 {
                0.0
            } else {
                s1 * s2 * yhat.at(i, j) / denom
            }
        });
        // X = V₁ · Z · V₂ᵀ
        self.svd_l
            .v
            .matmul_parallel(&z)
            .matmul_parallel(&self.v_r_t)
    }

    /// [`TikhonovReconstructor::reconstruct`] through caller-owned buffers:
    /// all four matrix products and the spectral filter run in `ws` and
    /// `out`, so a warm workspace makes the whole solve allocation-free
    /// (the per-frame regime of the paper's accelerator, which ping-pongs
    /// activations between two global buffers instead of allocating).
    ///
    /// Numerically identical to [`TikhonovReconstructor::reconstruct`]:
    /// same kernels, same accumulation order, same spectral filter.
    ///
    /// # Panics
    ///
    /// Panics if the measurement shape does not match the mask's sensor
    /// geometry.
    pub fn reconstruct_into(&self, measurement: &Mat, ws: &mut ReconWorkspace, out: &mut Mat) {
        static_counter!("optics/recon_solves").inc();
        let _solve_timer = static_histogram!("optics/recon_solve_ns").timer();
        let (mh, mw) = (self.svd_l.u.rows(), self.svd_r.u.rows());
        assert_eq!(
            (measurement.rows(), measurement.cols()),
            (mh, mw),
            "measurement must be {mh}x{mw}, got {}x{}",
            measurement.rows(),
            measurement.cols()
        );
        // Ŷ = U₁ᵀ · Y · U₂
        self.u_l_t.matmul_into(measurement, &mut ws.t1);
        ws.t1.matmul_into(&self.svd_r.u, &mut ws.yhat);
        // the spectral filter runs in place on Ŷ (no `z` materialisation)
        let n = self.scene;
        for i in 0..n {
            let s1 = self.svd_l.s[i];
            for j in 0..n {
                let s2 = self.svd_r.s[j];
                let denom = s1 * s1 * s2 * s2 + self.epsilon;
                let v = ws.yhat.at(i, j);
                *ws.yhat.at_mut(i, j) = if denom == 0.0 {
                    0.0
                } else {
                    s1 * s2 * v / denom
                };
            }
        }
        // X = V₁ · Z · V₂ᵀ
        self.svd_l.v.matmul_into(&ws.yhat, &mut ws.t2);
        ws.t2.matmul_into(&self.v_r_t, out);
    }

    /// Rank-truncated reconstruction: only the top `rank` singular
    /// components per side contribute (see
    /// [`crate::calibrate::TruncatedReconstructor`] for the cost model).
    ///
    /// # Panics
    ///
    /// Panics on a measurement shape mismatch or `rank` outside
    /// `1..=scene`.
    pub fn reconstruct_truncated(&self, measurement: &Mat, rank: usize) -> Mat {
        static_counter!("optics/recon_solves").inc();
        let _solve_timer = static_histogram!("optics/recon_solve_ns").timer();
        let n = self.scene;
        assert!(
            rank >= 1 && rank <= n,
            "rank {rank} out of range for scene {n}"
        );
        let (mh, mw) = (self.svd_l.u.rows(), self.svd_r.u.rows());
        assert_eq!(
            (measurement.rows(), measurement.cols()),
            (mh, mw),
            "measurement must be {mh}x{mw}"
        );
        let yhat = self
            .u_l_t
            .matmul_parallel(measurement)
            .matmul_parallel(&self.svd_r.u);
        let z = Mat::from_fn(n, n, |i, j| {
            if i >= rank || j >= rank {
                return 0.0;
            }
            let s1 = self.svd_l.s[i];
            let s2 = self.svd_r.s[j];
            let denom = s1 * s1 * s2 * s2 + self.epsilon;
            if denom == 0.0 {
                0.0
            } else {
                s1 * s2 * yhat.at(i, j) / denom
            }
        });
        self.svd_l
            .v
            .matmul_parallel(&z)
            .matmul_parallel(&self.v_r_t)
    }

    /// [`TikhonovReconstructor::reconstruct_truncated`] through
    /// caller-owned buffers — the rank-truncated analogue of
    /// [`TikhonovReconstructor::reconstruct_into`]. Bit-identical to the
    /// allocating form (same kernels, same accumulation order); a warm
    /// workspace makes the whole truncated solve allocation-free.
    ///
    /// # Panics
    ///
    /// Panics on a measurement shape mismatch or `rank` outside
    /// `1..=scene`.
    pub fn reconstruct_truncated_into(
        &self,
        measurement: &Mat,
        rank: usize,
        ws: &mut ReconWorkspace,
        out: &mut Mat,
    ) {
        static_counter!("optics/recon_solves").inc();
        let _solve_timer = static_histogram!("optics/recon_solve_ns").timer();
        let n = self.scene;
        assert!(
            rank >= 1 && rank <= n,
            "rank {rank} out of range for scene {n}"
        );
        let (mh, mw) = (self.svd_l.u.rows(), self.svd_r.u.rows());
        assert_eq!(
            (measurement.rows(), measurement.cols()),
            (mh, mw),
            "measurement must be {mh}x{mw}"
        );
        self.u_l_t.matmul_into(measurement, &mut ws.t1);
        ws.t1.matmul_into(&self.svd_r.u, &mut ws.yhat);
        // truncated spectral filter in place on Ŷ: components beyond the
        // retained rank are zeroed instead of filtered
        for i in 0..n {
            let s1 = self.svd_l.s[i];
            for j in 0..n {
                *ws.yhat.at_mut(i, j) = if i >= rank || j >= rank {
                    0.0
                } else {
                    let s2 = self.svd_r.s[j];
                    let denom = s1 * s1 * s2 * s2 + self.epsilon;
                    if denom == 0.0 {
                        0.0
                    } else {
                        s1 * s2 * ws.yhat.at(i, j) / denom
                    }
                };
            }
        }
        self.svd_l.v.matmul_into(&ws.yhat, &mut ws.t2);
        ws.t2.matmul_into(&self.v_r_t, out);
    }

    /// Applies a sparse-column measurement update to a cached
    /// reconstruction in place: given the rank-`k` measurement delta
    /// `ΔY = A·Bᵀ` (with `A = Φ_L·ΔX[:,cols]` of shape `mh×k` and
    /// `B = Φ_R[:,cols]` of shape `mw×k`), accumulates the corresponding
    /// scene correction `ΔX̂` into `out`:
    ///
    /// ```text
    /// out += V₁ · (C ∘ (U₁ᵀA)(U₂ᵀB)ᵀ) · V₂ᵀ,   C_ij = s₁ᵢs₂ⱼ/(s₁ᵢ²s₂ⱼ²+ε)
    /// ```
    ///
    /// Because the spectral filter is elementwise-linear in `Ŷ`, this is
    /// algebraically exact: applied after a full solve of the cached
    /// measurement `Y`, the result equals a full solve of `Y + ΔY` up to
    /// floating-point reassociation. The cost is `O(n·k)`-dominated
    /// products instead of the full `O(n²·m)` solve — the temporal
    /// analogue of the paper's predict-then-focus spatial skip.
    ///
    /// # Panics
    ///
    /// Panics if the factor shapes disagree with the sensor geometry or
    /// with each other, or if `out` is not `scene × scene`.
    pub fn update_columns_into(
        &self,
        a: &Mat,
        b: &Mat,
        ws: &mut DeltaReconWorkspace,
        out: &mut Mat,
    ) {
        static_counter!("optics/recon_delta_updates").inc();
        let _timer = static_histogram!("optics/recon_delta_ns").timer();
        let (mh, mw) = (self.svd_l.u.rows(), self.svd_r.u.rows());
        let k = a.cols();
        assert_eq!(a.rows(), mh, "A must have {mh} rows, got {}", a.rows());
        assert_eq!(b.rows(), mw, "B must have {mw} rows, got {}", b.rows());
        assert_eq!(
            b.cols(),
            k,
            "A and B must share the column count: {k} vs {}",
            b.cols()
        );
        let n = self.scene;
        assert_eq!(
            (out.rows(), out.cols()),
            (n, n),
            "out must be {n}x{n}, got {}x{}",
            out.rows(),
            out.cols()
        );
        // Ĉ = U₁ᵀ·A (n×k), D̂ = U₂ᵀ·B (n×k)
        self.u_l_t.matmul_into(a, &mut ws.c_hat);
        self.u_r_t.matmul_into(b, &mut ws.d_hat);
        // G = Ĉ·D̂ᵀ (n×n) — the spectral-domain image of ΔY
        ws.c_hat.matmul_transposed_b_into(&ws.d_hat, &mut ws.g);
        // elementwise spectral filter in place on G
        for i in 0..n {
            let s1 = self.svd_l.s[i];
            for j in 0..n {
                let s2 = self.svd_r.s[j];
                let denom = s1 * s1 * s2 * s2 + self.epsilon;
                let v = ws.g.at(i, j);
                *ws.g.at_mut(i, j) = if denom == 0.0 {
                    0.0
                } else {
                    s1 * s2 * v / denom
                };
            }
        }
        // ΔX̂ = V₁ · G · V₂ᵀ, accumulated into the cached reconstruction
        self.svd_l.v.matmul_into(&ws.g, &mut ws.t);
        ws.t.matmul_into(&self.v_r_t, &mut ws.x);
        for (o, d) in out.as_mut_slice().iter_mut().zip(ws.x.as_slice()) {
            *o += d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imaging::FlatCam;
    use crate::sensor::SensorModel;

    fn test_scene(n: usize) -> Mat {
        // A smooth blob plus an edge — structure similar to an eye image.
        Mat::from_fn(n, n, |r, c| {
            let dr = r as f64 - n as f64 / 2.0;
            let dc = c as f64 - n as f64 / 2.0;
            let blob = (-(dr * dr + dc * dc) / (n as f64)).exp();
            let edge = if c > n / 2 { 0.3 } else { 0.0 };
            blob + edge
        })
    }

    #[test]
    fn noiseless_reconstruction_is_near_exact() {
        let mask = SeparableMask::mls(48, 32, 11);
        let cam = FlatCam::new(mask, SensorModel::noiseless());
        let scene = test_scene(32);
        let y = cam.capture(&scene, 0);
        let recon = TikhonovReconstructor::new(cam.mask(), 1e-9);
        let xhat = recon.reconstruct(&y);
        let rel = xhat.sub(&scene).fro_norm() / scene.fro_norm();
        assert!(rel < 1e-3, "relative error {rel}");
    }

    #[test]
    fn regularisation_suppresses_noise() {
        let mask = SeparableMask::mls(48, 32, 11);
        let cam = FlatCam::new(mask.clone(), SensorModel::low_light());
        let scene = test_scene(32);
        let y = cam.capture(&scene, 42);
        let recon = TikhonovReconstructor::new(&mask, 0.0);
        let err_unreg = recon.reconstruct(&y).sub(&scene).fro_norm();
        let err_reg = recon
            .with_epsilon(1e-4)
            .reconstruct(&y)
            .sub(&scene)
            .fro_norm();
        assert!(
            err_reg < err_unreg,
            "regularised {err_reg} should beat unregularised {err_unreg}"
        );
    }

    #[test]
    fn heavy_regularisation_shrinks_towards_zero() {
        let mask = SeparableMask::mls(40, 32, 3);
        let cam = FlatCam::new(mask.clone(), SensorModel::noiseless());
        let scene = test_scene(32);
        let y = cam.capture(&scene, 0);
        let strong = TikhonovReconstructor::new(&mask, 1e6).reconstruct(&y);
        assert!(strong.fro_norm() < 0.01 * scene.fro_norm());
    }

    #[test]
    fn reconstruction_is_linear() {
        let mask = SeparableMask::mls(40, 32, 5);
        let recon = TikhonovReconstructor::new(&mask, 1e-6);
        let cam = FlatCam::new(mask, SensorModel::noiseless());
        let a = test_scene(32);
        let b = Mat::from_fn(32, 32, |r, _| r as f64 / 32.0);
        let xa = recon.reconstruct(&cam.capture(&a, 0));
        let xb = recon.reconstruct(&cam.capture(&b, 0));
        let xab = recon.reconstruct(&cam.capture(&a.add(&b), 0));
        assert!(xab.sub(&xa.add(&xb)).max_abs() < 1e-9);
    }

    #[test]
    fn reconstruct_into_matches_reconstruct_exactly() {
        let mask = SeparableMask::mls(48, 32, 11);
        let cam = FlatCam::new(mask.clone(), SensorModel::low_light());
        let recon = TikhonovReconstructor::new(&mask, 1e-4);
        let mut ws = ReconWorkspace::new();
        let mut out = Mat::zeros(1, 1);
        // two different measurements through the same workspace
        for seed in [3u64, 9] {
            let y = cam.capture(&test_scene(32), seed);
            recon.reconstruct_into(&y, &mut ws, &mut out);
            assert_eq!(
                out.as_slice(),
                recon.reconstruct(&y).as_slice(),
                "workspace solve must be bit-identical (seed {seed})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "measurement must be")]
    fn reconstruct_into_rejects_wrong_shape() {
        let mask = SeparableMask::mls(40, 32, 5);
        let recon = TikhonovReconstructor::new(&mask, 1e-6);
        recon.reconstruct_into(
            &Mat::zeros(32, 32),
            &mut ReconWorkspace::new(),
            &mut Mat::zeros(1, 1),
        );
    }

    #[test]
    #[should_panic(expected = "measurement must be")]
    fn rejects_wrong_measurement_shape() {
        let mask = SeparableMask::mls(40, 32, 5);
        TikhonovReconstructor::new(&mask, 1e-6).reconstruct(&Mat::zeros(32, 32));
    }

    #[test]
    fn reconstruct_truncated_into_matches_allocating_form() {
        let mask = SeparableMask::mls(48, 32, 11);
        let cam = FlatCam::new(mask.clone(), SensorModel::low_light());
        let recon = TikhonovReconstructor::new(&mask, 1e-4);
        let mut ws = ReconWorkspace::new();
        let mut out = Mat::zeros(1, 1);
        for rank in [32usize, 20, 4] {
            let y = cam.capture(&test_scene(32), rank as u64);
            recon.reconstruct_truncated_into(&y, rank, &mut ws, &mut out);
            assert_eq!(
                out.as_slice(),
                recon.reconstruct_truncated(&y, rank).as_slice(),
                "truncated workspace solve must be bit-identical (rank {rank})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reconstruct_truncated_into_rejects_zero_rank() {
        let mask = SeparableMask::mls(40, 32, 5);
        TikhonovReconstructor::new(&mask, 1e-6).reconstruct_truncated_into(
            &Mat::zeros(40, 40),
            0,
            &mut ReconWorkspace::new(),
            &mut Mat::zeros(1, 1),
        );
    }

    /// Gathers `cols` of `m` into an owned `rows × cols.len()` factor.
    fn gather_cols(m: &Mat, cols: &[usize]) -> Mat {
        Mat::from_fn(m.rows(), cols.len(), |r, j| m.at(r, cols[j]))
    }

    #[test]
    fn update_columns_matches_full_solve_on_changed_columns() {
        let mask = SeparableMask::mls(48, 32, 11);
        let cam = FlatCam::new(mask.clone(), SensorModel::noiseless());
        let recon = TikhonovReconstructor::new(&mask, 1e-4);
        let x0 = test_scene(32);
        // perturb a sparse set of columns
        let cols = [3usize, 4, 17, 30];
        let mut x1 = x0.clone();
        for &c in &cols {
            for r in 0..32 {
                *x1.at_mut(r, c) += 0.1 + 0.01 * (r as f64) - 0.005 * (c as f64);
            }
        }
        let y0 = cam.capture(&x0, 0);
        let y1 = cam.capture(&x1, 0);
        // measurement-domain factors: A = Φ_L·ΔX[:,cols], B = Φ_R[:,cols]
        let dx_cols = gather_cols(&x1.sub(&x0), &cols);
        let a = mask.phi_l().matmul(&dx_cols);
        let b = gather_cols(mask.phi_r(), &cols);
        // the factors really do reproduce ΔY (noiseless capture is linear)
        let mut dy = Mat::zeros(1, 1);
        a.matmul_transposed_b_into(&b, &mut dy);
        assert!(y0.add(&dy).sub(&y1).max_abs() < 1e-12, "ΔY factorisation");
        // incremental update of the cached solve vs the fresh full solve
        let mut ws = ReconWorkspace::new();
        let mut dws = DeltaReconWorkspace::new();
        let mut cached = Mat::zeros(1, 1);
        recon.reconstruct_into(&y0, &mut ws, &mut cached);
        recon.update_columns_into(&a, &b, &mut dws, &mut cached);
        let mut full = Mat::zeros(1, 1);
        recon.reconstruct_into(&y1, &mut ws, &mut full);
        let err = cached.sub(&full).max_abs();
        assert!(
            err < 1e-9,
            "incremental column update diverged from full solve: {err:e}"
        );
    }

    #[test]
    fn update_columns_with_zero_delta_is_exactly_additive_noise_free() {
        // A zero delta must leave the cached reconstruction numerically
        // unchanged (G is exactly zero, so the accumulate adds 0.0).
        let mask = SeparableMask::mls(40, 32, 7);
        let cam = FlatCam::new(mask.clone(), SensorModel::noiseless());
        let recon = TikhonovReconstructor::new(&mask, 1e-4);
        let y = cam.capture(&test_scene(32), 0);
        let mut ws = ReconWorkspace::new();
        let mut dws = DeltaReconWorkspace::new();
        let mut cached = Mat::zeros(1, 1);
        recon.reconstruct_into(&y, &mut ws, &mut cached);
        let before = cached.clone();
        let a = Mat::zeros(40, 2);
        let b = Mat::zeros(40, 2);
        recon.update_columns_into(&a, &b, &mut dws, &mut cached);
        assert_eq!(cached.as_slice(), before.as_slice());
    }

    #[test]
    #[should_panic(expected = "A and B must share the column count")]
    fn update_columns_rejects_mismatched_factors() {
        let mask = SeparableMask::mls(40, 32, 5);
        let recon = TikhonovReconstructor::new(&mask, 1e-6);
        recon.update_columns_into(
            &Mat::zeros(40, 3),
            &Mat::zeros(40, 2),
            &mut DeltaReconWorkspace::new(),
            &mut Mat::zeros(32, 32),
        );
    }
}
