//! A small dense `f64` matrix type sized for FlatCam optics (≤ a few hundred
//! rows/columns), plus conversions to the `f32` NCHW tensors used by the
//! neural pipeline.

use eyecod_tensor::{Shape, Tensor};
use std::fmt;

/// A dense row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use eyecod_optics::mat::Mat;
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = a.matmul(&Mat::identity(2));
/// assert_eq!(a, b);
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Register-tile height of the blocked GEMM microkernel (output rows per
/// tile). A 4×4 f64 accumulator tile fits the 16 baseline x86-64 (SSE2)
/// vector registers with room for the `B` panel and the broadcast `A`
/// value, so the tile never spills even without AVX.
const MR: usize = 4;
/// Register-tile width of the blocked GEMM microkernel (output columns)
/// in the portable instantiation; the AVX2 instantiation widens to 8.
const NR: usize = 4;

/// One blocked GEMM pass over output rows `rows` of `A · B` (see
/// [`Mat::matmul`] for the accumulation-order contract). Generic over the
/// register-tile width `NRT` so the AVX2 instantiation can use the full
/// 16-ymm budget (4×8 tile) while the baseline build stays within SSE2's
/// registers (4×4). The per-element math is the identical ascending-`l`
/// IEEE mul-then-add sequence for every `NRT`, so all instantiations
/// produce bit-identical results.
#[inline(always)]
fn gemm_rows_body<const NRT: usize>(
    a: &[f64],
    b: &[f64],
    k: usize,
    n: usize,
    rows: std::ops::Range<usize>,
    out: &mut [f64],
) {
    let row0 = rows.start;
    let mut i = rows.start;
    while i < rows.end {
        let mr = MR.min(rows.end - i);
        let mut j = 0;
        if mr == MR {
            // full MR×NRT tiles: fixed-size loops over fixed-size arrays,
            // so the whole accumulator tile lives in vector registers and
            // the inner body unrolls to MR·NRT FMAs per `l` with only
            // MR + NRT loads
            let a0 = &a[i * k..(i + 1) * k];
            let a1 = &a[(i + 1) * k..(i + 2) * k];
            let a2 = &a[(i + 2) * k..(i + 3) * k];
            let a3 = &a[(i + 3) * k..(i + 4) * k];
            while j + NRT <= n {
                let mut acc = [[0.0f64; NRT]; MR];
                for l in 0..k {
                    let bv: &[f64; NRT] = b[l * n + j..l * n + j + NRT].try_into().unwrap();
                    let av = [a0[l], a1[l], a2[l], a3[l]];
                    for ii in 0..MR {
                        for jj in 0..NRT {
                            acc[ii][jj] += av[ii] * bv[jj];
                        }
                    }
                }
                for (ii, accr) in acc.iter().enumerate() {
                    let o0 = (i + ii - row0) * n + j;
                    out[o0..o0 + NRT].copy_from_slice(accr);
                }
                j += NRT;
            }
        }
        // edge tiles (ragged rows and/or the column remainder)
        while j < n {
            let nr = NRT.min(n - j);
            let mut acc = [[0.0f64; NRT]; MR];
            for l in 0..k {
                let brow = &b[l * n + j..l * n + j + nr];
                for (ii, accr) in acc.iter_mut().enumerate().take(mr) {
                    let av = a[(i + ii) * k + l];
                    for (jj, &bval) in brow.iter().enumerate() {
                        accr[jj] += av * bval;
                    }
                }
            }
            for (ii, accr) in acc.iter().enumerate().take(mr) {
                let o0 = (i + ii - row0) * n + j;
                out[o0..o0 + nr].copy_from_slice(&accr[..nr]);
            }
            j += nr;
        }
        i += mr;
    }
}

/// [`gemm_rows_body`] compiled for AVX2 (256-bit lanes, 16 ymm registers),
/// where a full 4×8 f64 accumulator tile stays resident in registers. Same
/// IEEE operation sequence as the portable instantiation — only the
/// instruction selection differs — so results are bit-identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn gemm_rows_avx2(
    a: &[f64],
    b: &[f64],
    k: usize,
    n: usize,
    rows: std::ops::Range<usize>,
    out: &mut [f64],
) {
    gemm_rows_body::<8>(a, b, k, n, rows, out)
}

impl Mat {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` everywhere.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Read-only view of the row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |r, c| self.at(c, r))
    }

    /// Reshapes this matrix in place without preserving contents, reusing
    /// the existing allocation when its capacity suffices. All kernels that
    /// write through `reset` matrices overwrite every element, so the zero
    /// fill is only a safety net for direct slice access.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Makes this matrix an element-wise copy of `other`, reusing the
    /// existing allocation when possible.
    pub fn copy_from(&mut self, other: &Mat) {
        self.reset(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Mat::zeros(self.rows, other.cols);
        self.matmul_rows(other, 0..self.rows, &mut out.data);
        out
    }

    /// [`Mat::matmul`] writing into a caller-owned output matrix, which is
    /// resized (allocation-free once warm) rather than freshly allocated.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree or `out` aliases an operand.
    pub fn matmul_into(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset(self.rows, other.cols);
        self.matmul_rows(other, 0..self.rows, &mut out.data);
    }

    /// Matrix product `self · bᵀ` where `b` is handed over in its natural
    /// row-major layout — each output element is a dot product of two
    /// contiguous rows, so no transposed copy of `b` is ever materialised.
    /// The per-element accumulation order (ascending `k`) matches
    /// [`Mat::matmul`] against an explicit `b.transpose()`, keeping results
    /// bit-compatible with the allocating path.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions (`self.cols` vs `b.cols`) disagree.
    pub fn matmul_transposed_b_into(&self, b: &Mat, out: &mut Mat) {
        assert_eq!(
            self.cols, b.cols,
            "matmul_transposed_b dimension mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, b.rows, b.cols
        );
        out.reset(self.rows, b.rows);
        let (k, n) = (self.cols, b.rows);
        let mut i = 0;
        while i < self.rows {
            let mr = MR.min(self.rows - i);
            let mut j = 0;
            while j < n {
                let nr = NR.min(n - j);
                let mut acc = [[0.0f64; NR]; MR];
                for l in 0..k {
                    for (ii, accr) in acc.iter_mut().enumerate().take(mr) {
                        let a = self.data[(i + ii) * k + l];
                        for (jj, accv) in accr.iter_mut().enumerate().take(nr) {
                            *accv += a * b.data[(j + jj) * k + l];
                        }
                    }
                }
                for (ii, accr) in acc.iter().enumerate().take(mr) {
                    out.data[(i + ii) * n + j..(i + ii) * n + j + nr].copy_from_slice(&accr[..nr]);
                }
                j += nr;
            }
            i += mr;
        }
    }

    /// The pre-blocking reference GEMM: a streaming row-major kernel with
    /// no register tiling. Kept public as the differential baseline the
    /// blocked kernels are pinned against (and benchmarked against).
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_naive(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for l in 0..self.cols {
                let a = self.data[i * self.cols + l];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[l * other.cols..(l + 1) * other.cols];
                for j in 0..other.cols {
                    orow[j] += a * brow[j];
                }
            }
        }
        out
    }

    /// Computes output rows `rows` of `self · other` into `out`
    /// (row-major, `rows.len() * other.cols` long) with the cache-blocked
    /// register-tiled kernel.
    ///
    /// Each `MR × NR` output tile is accumulated in registers across the
    /// *full* `k` loop in ascending order, so every output element sees
    /// exactly the ascending-`k` addition sequence of the naive kernel and
    /// the results agree bit for bit (the naive kernel's skip of zero `a`
    /// values can at most flip the sign of a ±0.0 result, which `==`
    /// cannot observe). Tiling only reorders *which elements* are worked
    /// on, never the per-element accumulation order — while the `B` panel
    /// is streamed once per `MR` output rows instead of once per row.
    fn matmul_rows(&self, other: &Mat, rows: std::ops::Range<usize>, out: &mut [f64]) {
        let (k, n) = (self.cols, other.cols);
        debug_assert_eq!(out.len(), rows.len() * n);
        #[cfg(target_arch = "x86_64")]
        if eyecod_tensor::simd::avx2_enabled() {
            // SAFETY: avx2_enabled() returns true only when the host
            // supports AVX2 (and the EYECOD_NO_SIMD kill-switch is not
            // set); the probe result is cached, so after the first call
            // this is a single predictable load.
            unsafe { gemm_rows_avx2(&self.data, &other.data, k, n, rows, out) };
            return;
        }
        gemm_rows_body::<NR>(&self.data, &other.data, k, n, rows, out)
    }

    /// Matrix product `self · other`, computed over row tiles on the
    /// process-wide work-stealing pool.
    ///
    /// Each pool job owns a contiguous tile of output rows, so writes are
    /// disjoint and lock-free. Small products (where threading overhead
    /// would dominate) fall back to the sequential kernel, making this a
    /// safe default for the per-frame reconstruction path.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_parallel(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        // below ~64³ multiply-accumulates the sequential kernel wins
        const MIN_PARALLEL_MACS: usize = 64 * 64 * 64;
        let participants = eyecod_pool::global().threads() + 1;
        if participants == 1 || self.rows * self.cols * other.cols < MIN_PARALLEL_MACS {
            return self.matmul(other);
        }
        let cols = other.cols;
        let mut data = vec![0.0f64; self.rows * cols];

        struct RowPtr(*mut f64);
        impl RowPtr {
            // method (not field) access, so closures capture &RowPtr —
            // which is Sync — rather than the raw pointer itself
            fn get(&self) -> *mut f64 {
                self.0
            }
        }
        // Soundness: each pool job writes only the rows of its own tile.
        unsafe impl Send for RowPtr {}
        unsafe impl Sync for RowPtr {}
        let out = RowPtr(data.as_mut_ptr());

        // a few tiles per participant so stealing can rebalance
        let tile = (self.rows / (participants * 4)).max(1);
        eyecod_pool::parallel_for_chunked(self.rows.div_ceil(tile), 1, |t| {
            let r0 = t * tile;
            let r1 = ((t + 1) * tile).min(self.rows);
            let slice = unsafe {
                std::slice::from_raw_parts_mut(out.get().add(r0 * cols), (r1 - r0) * cols)
            };
            self.matmul_rows(other, r0..r1, slice);
        });
        Mat {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Mat) -> Mat {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch in sub"
        );
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Mat) -> Mat {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch in add"
        );
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Scales every element.
    pub fn scale(&self, s: f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Mean element value.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Converts a single-channel `(1, 1, H, W)` (or any single-plane) tensor
    /// into a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one batch item or channel.
    pub fn from_tensor(t: &Tensor) -> Mat {
        let s = t.shape();
        assert_eq!(
            (s.n, s.c),
            (1, 1),
            "expected a single-plane tensor, got {s}"
        );
        Mat {
            rows: s.h,
            cols: s.w,
            data: t.as_slice().iter().map(|&x| x as f64).collect(),
        }
    }

    /// Converts this matrix to a `(1, 1, rows, cols)` tensor.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(
            Shape::new(1, 1, self.rows, self.cols),
            self.data.iter().map(|&x| x as f32).collect(),
        )
    }

    /// [`Mat::from_tensor`] writing into an existing matrix (reusing its
    /// allocation when possible).
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one batch item or channel.
    pub fn assign_tensor(&mut self, t: &Tensor) {
        let s = t.shape();
        assert_eq!(
            (s.n, s.c),
            (1, 1),
            "expected a single-plane tensor, got {s}"
        );
        self.reset(s.h, s.w);
        for (d, &x) in self.data.iter_mut().zip(t.as_slice()) {
            *d = x as f64;
        }
    }

    /// [`Mat::to_tensor`] writing into an existing tensor (reusing its
    /// allocation when possible).
    pub fn write_tensor(&self, out: &mut Tensor) {
        out.reset(Shape::new(1, 1, self.rows, self.cols));
        for (o, &x) in out.as_mut_slice().iter_mut().zip(&self.data) {
            *o = x as f32;
        }
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Mat({}x{}, fro={:.4}, max|.|={:.4})",
            self.rows,
            self.cols,
            self.fro_norm(),
            self.max_abs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matmul_matches_sequential() {
        // one size below the parallel gate, one comfortably above it
        for (m, k, n) in [(8usize, 12usize, 10usize), (80, 96, 72)] {
            let a = Mat::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f64 - 6.0);
            let b = Mat::from_fn(k, n, |r, c| ((r * 17 + c * 3) % 11) as f64 - 5.0);
            let seq = a.matmul(&b);
            let par = a.matmul_parallel(&b);
            assert_eq!(seq.as_slice(), par.as_slice(), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_naive() {
        // edge sizes straddling the 4x8 register tile, plus tile multiples
        for (m, k, n) in [
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (48, 64, 48),
            (13, 1, 9),
        ] {
            let a = Mat::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f64 / 3.0 - 2.0);
            let b = Mat::from_fn(k, n, |r, c| ((r * 17 + c * 3) % 11) as f64 / 5.0 - 1.0);
            let blocked = a.matmul(&b);
            let naive = a.matmul_naive(&b);
            assert_eq!(
                blocked.as_slice(),
                naive.as_slice(),
                "blocked != naive at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matmul_into_matches_and_reuses_the_buffer() {
        let a = Mat::from_fn(5, 7, |r, c| (r * 7 + c) as f64 * 0.25);
        let b = Mat::from_fn(7, 9, |r, c| (r as f64) - (c as f64) * 0.5);
        let mut out = Mat::zeros(1, 1);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.as_slice(), a.matmul(&b).as_slice());
        // a second, smaller product through the same buffer
        let c = Mat::from_fn(7, 2, |r, c| (r + c) as f64);
        a.matmul_into(&c, &mut out);
        assert_eq!(out.as_slice(), a.matmul(&c).as_slice());
    }

    #[test]
    fn transposed_b_product_matches_explicit_transpose() {
        for (m, k, n) in [(3usize, 5usize, 4usize), (9, 17, 13), (48, 64, 64)] {
            let a = Mat::from_fn(m, k, |r, c| ((r * 13 + c * 5) % 7) as f64 - 3.0);
            let b = Mat::from_fn(n, k, |r, c| ((r * 3 + c * 11) % 9) as f64 * 0.5);
            let mut out = Mat::zeros(1, 1);
            a.matmul_transposed_b_into(&b, &mut out);
            assert_eq!(
                out.as_slice(),
                a.matmul(&b.transpose()).as_slice(),
                "mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn reset_and_copy_reuse_capacity() {
        let mut m = Mat::zeros(8, 8);
        m.reset(4, 4);
        assert_eq!((m.rows(), m.cols()), (4, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        let src = Mat::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        m.copy_from(&src);
        assert_eq!(m, src);
    }

    #[test]
    fn tensor_assign_and_write_round_trip() {
        let m = Mat::from_fn(4, 6, |r, c| (r as f64) - (c as f64) * 0.5);
        let mut t = Tensor::zeros(Shape::new(1, 1, 1, 1));
        m.write_tensor(&mut t);
        assert_eq!(t.as_slice(), m.to_tensor().as_slice());
        let mut back = Mat::zeros(1, 1);
        back.assign_tensor(&t);
        assert_eq!(back.as_slice(), Mat::from_tensor(&t).as_slice());
    }

    #[test]
    fn identity_is_neutral() {
        let a = Mat::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(a.matmul(&Mat::identity(3)), a);
        assert_eq!(Mat::identity(3).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(&[&[1., 2.], &[3., 4.]]);
        let b = Mat::from_rows(&[&[5., 6.], &[7., 8.]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_fn(2, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(3, 1), a.at(1, 3));
    }

    #[test]
    fn arithmetic_and_norms() {
        let a = Mat::from_rows(&[&[3., 4.]]);
        assert_eq!(a.fro_norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.scale(2.0).as_slice(), &[6., 8.]);
        assert_eq!(a.sub(&a).fro_norm(), 0.0);
        assert_eq!(a.add(&a).mean(), 7.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_mismatch() {
        Mat::zeros(2, 3).matmul(&Mat::zeros(2, 3));
    }

    #[test]
    fn tensor_round_trip() {
        let m = Mat::from_fn(4, 6, |r, c| (r as f64) - (c as f64) * 0.5);
        let t = m.to_tensor();
        assert_eq!(t.shape().dims(), (1, 1, 4, 6));
        let m2 = Mat::from_tensor(&t);
        assert!(m.sub(&m2).max_abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        Mat::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }
}
