//! A small dense `f64` matrix type sized for FlatCam optics (≤ a few hundred
//! rows/columns), plus conversions to the `f32` NCHW tensors used by the
//! neural pipeline.

use eyecod_tensor::{Shape, Tensor};
use std::fmt;

/// A dense row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use eyecod_optics::mat::Mat;
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = a.matmul(&Mat::identity(2));
/// assert_eq!(a, b);
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` everywhere.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Read-only view of the row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |r, c| self.at(c, r))
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Mat::zeros(self.rows, other.cols);
        self.matmul_rows(other, 0..self.rows, &mut out.data);
        out
    }

    /// Computes output rows `rows` of `self · other` into `out`
    /// (row-major, `rows.len() * other.cols` long).
    fn matmul_rows(&self, other: &Mat, rows: std::ops::Range<usize>, out: &mut [f64]) {
        debug_assert_eq!(out.len(), rows.len() * other.cols);
        for (oi, i) in rows.enumerate() {
            let orow = &mut out[oi * other.cols..(oi + 1) * other.cols];
            for l in 0..self.cols {
                let a = self.data[i * self.cols + l];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[l * other.cols..(l + 1) * other.cols];
                for j in 0..other.cols {
                    orow[j] += a * brow[j];
                }
            }
        }
    }

    /// Matrix product `self · other`, computed over row tiles on the
    /// process-wide work-stealing pool.
    ///
    /// Each pool job owns a contiguous tile of output rows, so writes are
    /// disjoint and lock-free. Small products (where threading overhead
    /// would dominate) fall back to the sequential kernel, making this a
    /// safe default for the per-frame reconstruction path.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_parallel(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        // below ~64³ multiply-accumulates the sequential kernel wins
        const MIN_PARALLEL_MACS: usize = 64 * 64 * 64;
        let participants = eyecod_pool::global().threads() + 1;
        if participants == 1 || self.rows * self.cols * other.cols < MIN_PARALLEL_MACS {
            return self.matmul(other);
        }
        let cols = other.cols;
        let mut data = vec![0.0f64; self.rows * cols];

        struct RowPtr(*mut f64);
        impl RowPtr {
            // method (not field) access, so closures capture &RowPtr —
            // which is Sync — rather than the raw pointer itself
            fn get(&self) -> *mut f64 {
                self.0
            }
        }
        // Soundness: each pool job writes only the rows of its own tile.
        unsafe impl Send for RowPtr {}
        unsafe impl Sync for RowPtr {}
        let out = RowPtr(data.as_mut_ptr());

        // a few tiles per participant so stealing can rebalance
        let tile = (self.rows / (participants * 4)).max(1);
        eyecod_pool::parallel_for_chunked(self.rows.div_ceil(tile), 1, |t| {
            let r0 = t * tile;
            let r1 = ((t + 1) * tile).min(self.rows);
            let slice = unsafe {
                std::slice::from_raw_parts_mut(out.get().add(r0 * cols), (r1 - r0) * cols)
            };
            self.matmul_rows(other, r0..r1, slice);
        });
        Mat {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Mat) -> Mat {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch in sub"
        );
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Mat) -> Mat {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch in add"
        );
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Scales every element.
    pub fn scale(&self, s: f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Mean element value.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Converts a single-channel `(1, 1, H, W)` (or any single-plane) tensor
    /// into a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one batch item or channel.
    pub fn from_tensor(t: &Tensor) -> Mat {
        let s = t.shape();
        assert_eq!(
            (s.n, s.c),
            (1, 1),
            "expected a single-plane tensor, got {s}"
        );
        Mat {
            rows: s.h,
            cols: s.w,
            data: t.as_slice().iter().map(|&x| x as f64).collect(),
        }
    }

    /// Converts this matrix to a `(1, 1, rows, cols)` tensor.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(
            Shape::new(1, 1, self.rows, self.cols),
            self.data.iter().map(|&x| x as f32).collect(),
        )
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Mat({}x{}, fro={:.4}, max|.|={:.4})",
            self.rows,
            self.cols,
            self.fro_norm(),
            self.max_abs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matmul_matches_sequential() {
        // one size below the parallel gate, one comfortably above it
        for (m, k, n) in [(8usize, 12usize, 10usize), (80, 96, 72)] {
            let a = Mat::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f64 - 6.0);
            let b = Mat::from_fn(k, n, |r, c| ((r * 17 + c * 3) % 11) as f64 - 5.0);
            let seq = a.matmul(&b);
            let par = a.matmul_parallel(&b);
            assert_eq!(seq.as_slice(), par.as_slice(), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = Mat::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(a.matmul(&Mat::identity(3)), a);
        assert_eq!(Mat::identity(3).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(&[&[1., 2.], &[3., 4.]]);
        let b = Mat::from_rows(&[&[5., 6.], &[7., 8.]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_fn(2, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(3, 1), a.at(1, 3));
    }

    #[test]
    fn arithmetic_and_norms() {
        let a = Mat::from_rows(&[&[3., 4.]]);
        assert_eq!(a.fro_norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.scale(2.0).as_slice(), &[6., 8.]);
        assert_eq!(a.sub(&a).fro_norm(), 0.0);
        assert_eq!(a.add(&a).mean(), 7.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_mismatch() {
        Mat::zeros(2, 3).matmul(&Mat::zeros(2, 3));
    }

    #[test]
    fn tensor_round_trip() {
        let m = Mat::from_fn(4, 6, |r, c| (r as f64) - (c as f64) * 0.5);
        let t = m.to_tensor();
        assert_eq!(t.shape().dims(), (1, 1, 4, 6));
        let m2 = Mat::from_tensor(&t);
        assert!(m.sub(&m2).max_abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        Mat::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }
}
