//! The FlatCam forward capture model.

use crate::mask::SeparableMask;
use crate::mat::Mat;
use crate::sensor::SensorModel;

/// A lensless FlatCam: a separable coded mask over a bare sensor.
///
/// Physical geometry (paper Fig. 2): the mask sits < 2 mm above the sensor,
/// versus the 10–20 mm focal stack of a lens-based module — the form-factor
/// win that lets the eye-tracking processor sit next to the camera.
#[derive(Debug, Clone)]
pub struct FlatCam {
    mask: SeparableMask,
    sensor: SensorModel,
}

impl FlatCam {
    /// Assembles a camera from a mask and a sensor model.
    pub fn new(mask: SeparableMask, sensor: SensorModel) -> Self {
        FlatCam { mask, sensor }
    }

    /// The camera's coded mask.
    pub fn mask(&self) -> &SeparableMask {
        &self.mask
    }

    /// The camera's sensor model.
    pub fn sensor(&self) -> &SensorModel {
        &self.sensor
    }

    /// Captures a scene: `Y = Φ_L · X · Φ_Rᵀ + E`, with `E` drawn by the
    /// sensor model using `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the scene size does not match the mask geometry.
    pub fn capture(&self, scene: &Mat, seed: u64) -> Mat {
        let n = self.mask.scene_size();
        assert_eq!(
            (scene.rows(), scene.cols()),
            (n, n),
            "scene must be {n}x{n} for this mask, got {}x{}",
            scene.rows(),
            scene.cols()
        );
        let clean = self
            .mask
            .phi_l()
            .matmul(scene)
            .matmul(&self.mask.phi_r().transpose());
        self.sensor.apply(&clean, seed)
    }

    /// [`FlatCam::capture`] through caller-owned buffers: the intermediate
    /// product lands in `tmp`, the measurement in `out`, and `Φ_Rᵀ` is
    /// consumed in its stored layout instead of being re-transposed per
    /// frame — a warm pair of buffers makes the capture allocation-free.
    /// Byte-identical to [`FlatCam::capture`] for equal seeds.
    ///
    /// # Panics
    ///
    /// Panics if the scene size does not match the mask geometry.
    pub fn capture_into(&self, scene: &Mat, seed: u64, tmp: &mut Mat, out: &mut Mat) {
        let n = self.mask.scene_size();
        assert_eq!(
            (scene.rows(), scene.cols()),
            (n, n),
            "scene must be {n}x{n} for this mask, got {}x{}",
            scene.rows(),
            scene.cols()
        );
        self.mask.phi_l().matmul_into(scene, tmp);
        tmp.matmul_transposed_b_into(self.mask.phi_r(), out);
        self.sensor.apply_inplace(out, seed);
    }

    /// The raw measurement size in pixels — what must be communicated from
    /// sensor to processor when the first layer is *not* folded into the
    /// mask.
    pub fn measurement_pixels(&self) -> usize {
        let (h, w) = self.mask.sensor_size();
        h * w
    }

    /// Side length of the (square) raw measurement.
    pub fn measurement_size(&self) -> usize {
        let (h, w) = self.mask.sensor_size();
        assert_eq!(h, w, "separable FlatCam measurements are square");
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::SeparableMask;

    #[test]
    fn capture_is_linear_in_the_scene() {
        let cam = FlatCam::new(SeparableMask::mls(40, 32, 3), SensorModel::noiseless());
        let a = Mat::from_fn(32, 32, |r, c| (r + c) as f64 / 64.0);
        let b = Mat::from_fn(32, 32, |r, c| (r as f64 - c as f64) / 32.0);
        let ya = cam.capture(&a, 0);
        let yb = cam.capture(&b, 0);
        let yab = cam.capture(&a.add(&b), 0);
        assert!(yab.sub(&ya.add(&yb)).max_abs() < 1e-12);
    }

    #[test]
    fn measurement_is_scrambled_not_a_copy() {
        let cam = FlatCam::new(SeparableMask::mls(32, 32, 3), SensorModel::noiseless());
        // an impulse scene spreads over the whole measurement (visual privacy)
        let mut scene = Mat::zeros(32, 32);
        *scene.at_mut(16, 16) = 1.0;
        let y = cam.capture(&scene, 0);
        let nonzero = y.as_slice().iter().filter(|&&v| v.abs() > 1e-12).count();
        assert!(
            nonzero > 200,
            "impulse should spread over many sensor pixels, got {nonzero}"
        );
    }

    #[test]
    fn capture_into_is_byte_identical_to_capture() {
        let cam = FlatCam::new(
            SeparableMask::mls(40, 32, 3),
            crate::sensor::SensorModel::low_light(),
        );
        let scene = Mat::from_fn(32, 32, |r, c| (r + c) as f64 / 64.0);
        let (mut tmp, mut out) = (Mat::zeros(1, 1), Mat::zeros(1, 1));
        for seed in [0u64, 7] {
            cam.capture_into(&scene, seed, &mut tmp, &mut out);
            assert_eq!(out.as_slice(), cam.capture(&scene, seed).as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "scene must be")]
    fn rejects_mismatched_scene() {
        let cam = FlatCam::new(SeparableMask::mls(40, 32, 3), SensorModel::noiseless());
        cam.capture(&Mat::zeros(16, 16), 0);
    }

    #[test]
    fn measurement_pixels_reflect_sensor() {
        let cam = FlatCam::new(SeparableMask::mls(48, 32, 1), SensorModel::noiseless());
        assert_eq!(cam.measurement_pixels(), 48 * 48);
    }
}
