//! EyeCoD's sensing–processing interface (paper §4.2).
//!
//! Instead of reconstructing the raw image and running the DNN's first layer
//! electronically, the coded mask's optical response is designed to *be* the
//! first layer: each output channel corresponds to a separable optical
//! filter, so the sensor emits a small stack of strided feature maps rather
//! than a full-resolution image. This saves (1) the first layer's FLOPs —
//! significant for UNet-style models whose first layer runs at the highest
//! resolution — and (2) sensor→processor communication volume, since the
//! strided feature maps are smaller than the raw capture.

use crate::mat::Mat;
use eyecod_tensor::{Shape, Tensor};

/// One separable optical filter channel: `out = A · X · Bᵀ`.
#[derive(Debug, Clone)]
struct OpticalChannel {
    a: Mat,
    b: Mat,
}

/// A bank of separable optical filters emulating a DNN first layer.
#[derive(Debug, Clone)]
pub struct OpticalFirstLayer {
    channels: Vec<OpticalChannel>,
    scene: usize,
    out: usize,
}

/// 1-D separable kernels the optics can realise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel1d {
    /// Binomial smoothing `[1, 2, 1] / 4`.
    Smooth,
    /// Central derivative `[-1, 0, 1] / 2` (edge response).
    Derivative,
}

impl Kernel1d {
    fn taps(self) -> [f64; 3] {
        match self {
            Kernel1d::Smooth => [0.25, 0.5, 0.25],
            Kernel1d::Derivative => [-0.5, 0.0, 0.5],
        }
    }
}

impl OpticalFirstLayer {
    /// Builds the standard 4-channel edge bank used by EyeCoD's interface:
    /// smooth×smooth (intensity), derivative×smooth (horizontal edges),
    /// smooth×derivative (vertical edges) and derivative×derivative
    /// (corners), each strided from `scene` down to `out` samples.
    ///
    /// # Panics
    ///
    /// Panics if `out` is zero, exceeds `scene`, or does not divide it.
    pub fn edge_bank(scene: usize, out: usize) -> Self {
        use Kernel1d::{Derivative, Smooth};
        let pairs = [
            (Smooth, Smooth),
            (Derivative, Smooth),
            (Smooth, Derivative),
            (Derivative, Derivative),
        ];
        Self::from_kernels(scene, out, &pairs)
    }

    /// Builds a bank from explicit separable kernel pairs `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty or the geometry is invalid (see
    /// [`OpticalFirstLayer::edge_bank`]).
    pub fn from_kernels(scene: usize, out: usize, pairs: &[(Kernel1d, Kernel1d)]) -> Self {
        assert!(!pairs.is_empty(), "need at least one optical channel");
        assert!(
            out > 0 && out <= scene,
            "invalid output extent {out} for scene {scene}"
        );
        assert_eq!(scene % out, 0, "output extent must divide the scene extent");
        let channels = pairs
            .iter()
            .map(|&(kr, kc)| OpticalChannel {
                a: strided_filter_matrix(scene, out, kr),
                b: strided_filter_matrix(scene, out, kc),
            })
            .collect();
        OpticalFirstLayer {
            channels,
            scene,
            out,
        }
    }

    /// Number of output channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Output spatial extent per channel.
    pub fn output_extent(&self) -> usize {
        self.out
    }

    /// Applies the optical bank to a scene, producing `(1, C, out, out)`
    /// feature maps — what the sensor transmits to the processor.
    ///
    /// # Panics
    ///
    /// Panics if the scene size does not match.
    pub fn apply(&self, scene: &Mat) -> Tensor {
        assert_eq!(
            (scene.rows(), scene.cols()),
            (self.scene, self.scene),
            "scene must be {0}x{0}",
            self.scene
        );
        let c = self.channels.len();
        let mut out = Tensor::zeros(Shape::new(1, c, self.out, self.out));
        for (ci, ch) in self.channels.iter().enumerate() {
            let fm = ch.a.matmul(scene).matmul(&ch.b.transpose());
            for r in 0..self.out {
                for cc in 0..self.out {
                    *out.at_mut(0, ci, r, cc) = fm.at(r, cc) as f32;
                }
            }
        }
        out
    }

    /// Multiply–accumulate operations the optical layer removes from the
    /// electronic pipeline: a K×K first conv layer over the full scene, per
    /// output channel (K = 3 for the kernel bank realised here).
    pub fn flops_saved(&self) -> u64 {
        let k = 3u64;
        2 * (self.scene as u64).pow(2) * k * k * self.channels.len() as u64
    }

    /// Ratio of raw-measurement pixels to transmitted feature-map values:
    /// the sensor→processor communication reduction factor.
    pub fn communication_reduction(&self, raw_sensor_pixels: usize) -> f64 {
        let transmitted = self.channels.len() * self.out * self.out;
        raw_sensor_pixels as f64 / transmitted as f64
    }
}

/// Builds the `out × scene` matrix combining a 3-tap filter with striding:
/// row `i` applies the kernel centred at scene position `i * stride`,
/// clamping at the borders.
fn strided_filter_matrix(scene: usize, out: usize, kernel: Kernel1d) -> Mat {
    let stride = scene / out;
    let taps = kernel.taps();
    let mut m = Mat::zeros(out, scene);
    for i in 0..out {
        let center = i * stride + stride / 2;
        for (t, &tap) in taps.iter().enumerate() {
            if tap == 0.0 {
                continue;
            }
            let pos = center as isize + t as isize - 1;
            let pos = pos.clamp(0, scene as isize - 1) as usize;
            *m.at_mut(i, pos) += tap;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_bank_shapes() {
        let layer = OpticalFirstLayer::edge_bank(32, 16);
        assert_eq!(layer.num_channels(), 4);
        assert_eq!(layer.output_extent(), 16);
        let fm = layer.apply(&Mat::from_fn(32, 32, |r, c| (r + c) as f64));
        assert_eq!(fm.shape().dims(), (1, 4, 16, 16));
    }

    #[test]
    fn derivative_channel_responds_to_edges_only() {
        let layer =
            OpticalFirstLayer::from_kernels(32, 16, &[(Kernel1d::Derivative, Kernel1d::Smooth)]);
        // constant scene -> zero edge response
        let flat = layer.apply(&Mat::from_fn(32, 32, |_, _| 0.7));
        assert!(flat.max_abs() < 1e-6);
        // vertical step -> strong response somewhere
        let step = Mat::from_fn(32, 32, |r, _| if r >= 16 { 1.0 } else { 0.0 });
        let resp = layer.apply(&step);
        assert!(resp.max_abs() > 0.1);
    }

    #[test]
    fn smooth_channel_preserves_mean_intensity() {
        let layer =
            OpticalFirstLayer::from_kernels(32, 16, &[(Kernel1d::Smooth, Kernel1d::Smooth)]);
        let fm = layer.apply(&Mat::from_fn(32, 32, |_, _| 0.5));
        // smoothing kernel sums to 1, so a constant passes through
        assert!((fm.mean() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn communication_reduction_counts_pixels() {
        let layer = OpticalFirstLayer::edge_bank(64, 16);
        // raw 80x80 sensor vs 4 x 16 x 16 features
        let r = layer.communication_reduction(80 * 80);
        assert!((r - 6400.0 / 1024.0).abs() < 1e-9);
        assert!(layer.flops_saved() > 0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_non_dividing_output() {
        OpticalFirstLayer::edge_bank(32, 12);
    }
}
