//! Reconstruction calibration: regularisation tuning and low-rank
//! truncation.
//!
//! Two deployment knobs the paper's system implies but does not spell out:
//!
//! * **ε tuning** — the Tikhonov weight trades noise suppression against
//!   bias; we tune it on calibration captures by golden-section search over
//!   reconstruction PSNR (what a real FlatCam bring-up does against a test
//!   chart).
//! * **rank truncation** — dropping the smallest singular components cuts
//!   the reconstruction matmul FLOPs on the accelerator (the `V·Z·Vᵀ`
//!   products shrink from `n²` to `n·r` per stage). Because m-sequence
//!   masks carry a deliberately flat singular spectrum, aggressive
//!   truncation costs real image quality; it is a quality/compute dial
//!   (useful for preview or coarse ROI passes), not a free lunch.

use crate::imaging::FlatCam;
use crate::mask::SeparableMask;
use crate::mat::Mat;
use crate::metrics::psnr;
use crate::recon::TikhonovReconstructor;

/// Tunes the Tikhonov ε on calibration scenes by golden-section search
/// over mean reconstruction PSNR in `log10(ε) ∈ [lo, hi]`.
///
/// Returns `(best_epsilon, best_psnr)`.
///
/// # Panics
///
/// Panics if `scenes` is empty or the bracket is inverted.
pub fn tune_epsilon(
    camera: &FlatCam,
    scenes: &[Mat],
    log10_lo: f64,
    log10_hi: f64,
    iterations: usize,
) -> (f64, f64) {
    assert!(!scenes.is_empty(), "need at least one calibration scene");
    assert!(log10_lo < log10_hi, "inverted epsilon bracket");
    let base = TikhonovReconstructor::new(camera.mask(), 1.0);
    let captures: Vec<Mat> = scenes
        .iter()
        .enumerate()
        .map(|(i, s)| camera.capture(s, 1000 + i as u64))
        .collect();
    let quality = |log_eps: f64| -> f64 {
        let recon = base.with_epsilon(10f64.powf(log_eps));
        scenes
            .iter()
            .zip(&captures)
            .map(|(s, y)| psnr(s, &recon.reconstruct(y)))
            .sum::<f64>()
            / scenes.len() as f64
    };
    // golden-section search (unimodal in practice: bias vs variance)
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (log10_lo, log10_hi);
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let mut fc = quality(c);
    let mut fd = quality(d);
    for _ in 0..iterations {
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = quality(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = quality(d);
        }
    }
    let log_best = (a + b) / 2.0;
    (10f64.powf(log_best), quality(log_best))
}

/// A rank-truncated Tikhonov reconstructor: keeps only the top `rank`
/// singular components per side.
#[derive(Debug, Clone)]
pub struct TruncatedReconstructor {
    inner: TikhonovReconstructor,
    rank: usize,
    scene: usize,
    sensor: (usize, usize),
}

impl TruncatedReconstructor {
    /// Builds a truncated reconstructor.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is zero or exceeds the scene size.
    pub fn new(mask: &SeparableMask, epsilon: f64, rank: usize) -> Self {
        assert!(
            rank > 0 && rank <= mask.scene_size(),
            "rank {rank} out of range for scene {}",
            mask.scene_size()
        );
        TruncatedReconstructor {
            inner: TikhonovReconstructor::new(mask, epsilon),
            rank,
            scene: mask.scene_size(),
            sensor: mask.sensor_size(),
        }
    }

    /// The retained rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Reconstructs with the truncated spectrum.
    pub fn reconstruct(&self, measurement: &Mat) -> Mat {
        self.inner.reconstruct_truncated(measurement, self.rank)
    }

    /// [`TruncatedReconstructor::reconstruct`] through caller-owned
    /// buffers — allocation-free once the workspace is warm, bit-identical
    /// to the allocating form.
    pub fn reconstruct_into(
        &self,
        measurement: &Mat,
        ws: &mut crate::recon::ReconWorkspace,
        out: &mut Mat,
    ) {
        self.inner
            .reconstruct_truncated_into(measurement, self.rank, ws, out);
    }

    /// Multiply–accumulate count of one truncated reconstruction versus the
    /// full-rank count — the accelerator-side saving.
    pub fn macs(&self) -> (u64, u64) {
        let n = self.scene as u64;
        let (mh, mw) = (self.sensor.0 as u64, self.sensor.1 as u64);
        let r = self.rank as u64;
        // truncated: Û_r = U1_rᵀ Y U2_r (r·mh·mw + r·r·mw), X = V1_r Z V2_rᵀ
        // (n·r·r + n·r·n)
        let truncated = r * mh * mw + r * r * mw + n * r * r + n * r * n;
        let full = n * mh * mw + n * n * mw + n * n * n + n * n * n;
        (truncated, full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::SensorModel;

    fn scene(n: usize) -> Mat {
        Mat::from_fn(n, n, |r, c| {
            let d =
                ((r as f64 - n as f64 / 2.0).powi(2) + (c as f64 - n as f64 / 2.0).powi(2)).sqrt();
            if d < n as f64 / 8.0 {
                0.1
            } else {
                0.7
            }
        })
    }

    #[test]
    fn tuned_epsilon_beats_bad_choices() {
        let mask = SeparableMask::mls_differential(48, 32, 5);
        let cam = FlatCam::new(mask.clone(), SensorModel::nir_eye_tracking());
        let scenes = vec![scene(32)];
        let (eps, tuned_psnr) = tune_epsilon(&cam, &scenes, -8.0, 0.0, 16);
        let y = cam.capture(&scenes[0], 1000);
        let too_small = psnr(
            &scenes[0],
            &TikhonovReconstructor::new(&mask, 1e-9).reconstruct(&y),
        );
        let too_big = psnr(
            &scenes[0],
            &TikhonovReconstructor::new(&mask, 1.0).reconstruct(&y),
        );
        assert!(
            tuned_psnr >= too_small - 0.5,
            "tuned {tuned_psnr:.1} vs tiny-eps {too_small:.1}"
        );
        assert!(
            tuned_psnr >= too_big - 0.5,
            "tuned {tuned_psnr:.1} vs huge-eps {too_big:.1}"
        );
        assert!(eps > 1e-9 && eps < 1.0);
    }

    #[test]
    fn full_rank_truncation_matches_tikhonov() {
        let mask = SeparableMask::mls_differential(40, 32, 7);
        let cam = FlatCam::new(mask.clone(), SensorModel::noiseless());
        let x = scene(32);
        let y = cam.capture(&x, 0);
        let full = TikhonovReconstructor::new(&mask, 1e-6).reconstruct(&y);
        let trunc = TruncatedReconstructor::new(&mask, 1e-6, 32).reconstruct(&y);
        assert!(full.sub(&trunc).max_abs() < 1e-9);
    }

    #[test]
    fn truncation_quality_is_monotone_in_rank_and_saves_macs() {
        // m-sequence masks have a deliberately *flat* singular spectrum, so
        // truncation costs real quality (unlike DCT-like operators); the
        // useful property is a monotone quality/compute dial.
        let mask = SeparableMask::mls_differential(48, 32, 7);
        let cam = FlatCam::new(mask.clone(), SensorModel::nir_eye_tracking());
        let x = scene(32);
        let y = cam.capture(&x, 3);
        let q_full = psnr(
            &x,
            &TruncatedReconstructor::new(&mask, 1e-3, 32).reconstruct(&y),
        );
        let q_half = psnr(
            &x,
            &TruncatedReconstructor::new(&mask, 1e-3, 24).reconstruct(&y),
        );
        let q_tiny = psnr(
            &x,
            &TruncatedReconstructor::new(&mask, 1e-3, 4).reconstruct(&y),
        );
        assert!(
            q_full > q_half,
            "full ({q_full:.1}) must beat rank 24 ({q_half:.1})"
        );
        assert!(
            q_half > q_tiny,
            "rank 24 ({q_half:.1}) should beat rank 4 ({q_tiny:.1})"
        );
        let (t, f) = TruncatedReconstructor::new(&mask, 1e-3, 16).macs();
        assert!(t * 2 < f, "rank-16 should at least halve the recon MACs");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_rank_rejected() {
        let mask = SeparableMask::mls_differential(40, 32, 7);
        TruncatedReconstructor::new(&mask, 1e-3, 0);
    }
}
