//! Thin singular value decomposition via one-sided Jacobi rotations.
//!
//! The FlatCam reconstructor needs the SVDs of the two transfer matrices
//! (a few hundred rows/columns at most), for which cyclic one-sided Jacobi
//! is simple, numerically robust and plenty fast.

use crate::mat::Mat;

/// A thin SVD `A = U · diag(S) · Vᵀ` with `U: m×n`, `S: n`, `V: n×n`
/// (for `m ≥ n`; taller-than-wide inputs are required — transpose first
/// otherwise).
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (m×n, orthonormal columns for full-rank input).
    pub u: Mat,
    /// Singular values in decreasing order.
    pub s: Vec<f64>,
    /// Right singular vectors (n×n, orthonormal columns).
    pub v: Mat,
}

impl Svd {
    /// Computes the thin SVD of `a` using cyclic one-sided Jacobi.
    ///
    /// # Panics
    ///
    /// Panics if `a` has fewer rows than columns (callers transpose first;
    /// FlatCam transfer matrices are tall).
    pub fn compute(a: &Mat) -> Svd {
        let m = a.rows();
        let n = a.cols();
        assert!(
            m >= n,
            "Svd::compute requires rows ≥ cols ({m} < {n}); transpose first"
        );

        // Work on columns of a copy of A; accumulate rotations into V.
        let mut w = a.clone();
        let mut v = Mat::identity(n);
        let eps = 1e-14;
        let max_sweeps = 60;

        for _ in 0..max_sweeps {
            let mut off = 0.0f64;
            for p in 0..n {
                for q in (p + 1)..n {
                    // Compute the 2x2 Gram entries for columns p, q.
                    let (mut app, mut aqq, mut apq) = (0.0f64, 0.0f64, 0.0f64);
                    for i in 0..m {
                        let wp = w.at(i, p);
                        let wq = w.at(i, q);
                        app += wp * wp;
                        aqq += wq * wq;
                        apq += wp * wq;
                    }
                    if apq.abs() <= eps * (app * aqq).sqrt() || apq == 0.0 {
                        continue;
                    }
                    off += apq.abs();
                    // Jacobi rotation zeroing the (p,q) Gram entry.
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for i in 0..m {
                        let wp = w.at(i, p);
                        let wq = w.at(i, q);
                        *w.at_mut(i, p) = c * wp - s * wq;
                        *w.at_mut(i, q) = s * wp + c * wq;
                    }
                    for i in 0..n {
                        let vp = v.at(i, p);
                        let vq = v.at(i, q);
                        *v.at_mut(i, p) = c * vp - s * vq;
                        *v.at_mut(i, q) = s * vp + c * vq;
                    }
                }
            }
            if off < 1e-12 {
                break;
            }
        }

        // Singular values are the column norms; normalise to get U.
        let mut order: Vec<usize> = (0..n).collect();
        let mut sing = vec![0.0f64; n];
        for (j, s) in sing.iter_mut().enumerate() {
            let mut norm = 0.0;
            for i in 0..m {
                norm += w.at(i, j) * w.at(i, j);
            }
            *s = norm.sqrt();
        }
        order.sort_by(|&a, &b| {
            sing[b]
                .partial_cmp(&sing[a])
                .expect("non-NaN singular values")
        });

        let mut u = Mat::zeros(m, n);
        let mut v_sorted = Mat::zeros(n, n);
        let mut s_sorted = vec![0.0f64; n];
        for (dst, &src) in order.iter().enumerate() {
            let sv = sing[src];
            s_sorted[dst] = sv;
            if sv > 1e-300 {
                for i in 0..m {
                    *u.at_mut(i, dst) = w.at(i, src) / sv;
                }
            }
            for i in 0..n {
                *v_sorted.at_mut(i, dst) = v.at(i, src);
            }
        }
        Svd {
            u,
            s: s_sorted,
            v: v_sorted,
        }
    }

    /// Reconstructs `U · diag(S) · Vᵀ` (for testing / condition analysis).
    pub fn reconstruct(&self) -> Mat {
        let n = self.s.len();
        let us = Mat::from_fn(self.u.rows(), n, |i, j| self.u.at(i, j) * self.s[j]);
        us.matmul(&self.v.transpose())
    }

    /// Condition number `σ_max / σ_min` (infinite for singular inputs).
    pub fn condition_number(&self) -> f64 {
        let smax = self.s.first().copied().unwrap_or(0.0);
        let smin = self.s.last().copied().unwrap_or(0.0);
        if smin == 0.0 {
            f64::INFINITY
        } else {
            smax / smin
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_mat(m: usize, n: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        Mat::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn orthonormality_defect(m: &Mat) -> f64 {
        let g = m.transpose().matmul(m);
        g.sub(&Mat::identity(m.cols())).max_abs()
    }

    #[test]
    fn reconstructs_random_square() {
        let a = rand_mat(24, 24, 1);
        let svd = Svd::compute(&a);
        assert!(svd.reconstruct().sub(&a).max_abs() < 1e-9);
        assert!(orthonormality_defect(&svd.u) < 1e-9);
        assert!(orthonormality_defect(&svd.v) < 1e-9);
    }

    #[test]
    fn reconstructs_tall_matrix() {
        let a = rand_mat(40, 16, 2);
        let svd = Svd::compute(&a);
        assert!(svd.reconstruct().sub(&a).max_abs() < 1e-9);
        assert!(orthonormality_defect(&svd.u) < 1e-9);
    }

    #[test]
    fn singular_values_sorted_and_match_diagonal() {
        // Build a matrix with known singular values 3, 2, 1.
        let d = Mat::from_rows(&[&[3., 0., 0.], &[0., 1., 0.], &[0., 0., 2.]]);
        let svd = Svd::compute(&d);
        assert!((svd.s[0] - 3.0).abs() < 1e-12);
        assert!((svd.s[1] - 2.0).abs() < 1e-12);
        assert!((svd.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_deficient_matrix_has_zero_singular_value() {
        // Two identical columns -> rank 1.
        let a = Mat::from_rows(&[&[1., 1.], &[2., 2.], &[3., 3.]]);
        let svd = Svd::compute(&a);
        assert!(svd.s[1] < 1e-10);
        assert!(svd.reconstruct().sub(&a).max_abs() < 1e-10);
        assert!(svd.condition_number().is_infinite());
    }

    #[test]
    #[should_panic(expected = "transpose first")]
    fn rejects_wide_matrices() {
        Svd::compute(&Mat::zeros(2, 5));
    }

    #[test]
    fn condition_number_of_identity_is_one() {
        let svd = Svd::compute(&Mat::identity(8));
        assert!((svd.condition_number() - 1.0).abs() < 1e-12);
    }
}
