//! Image-quality metrics for reconstruction evaluation.

use crate::mat::Mat;

/// Mean squared error between two equal-shaped images.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse(a: &Mat, b: &Mat) -> f64 {
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "mse shape mismatch"
    );
    let d = a.sub(b);
    let n = (a.rows() * a.cols()) as f64;
    d.as_slice().iter().map(|x| x * x).sum::<f64>() / n
}

/// Peak signal-to-noise ratio in dB, with the peak taken as the maximum
/// absolute value of the reference image `a`.
///
/// Returns `f64::INFINITY` for identical images.
pub fn psnr(reference: &Mat, estimate: &Mat) -> f64 {
    let err = mse(reference, estimate);
    if err == 0.0 {
        return f64::INFINITY;
    }
    let peak = reference.max_abs().max(f64::MIN_POSITIVE);
    10.0 * (peak * peak / err).log10()
}

/// Signal-to-noise ratio in dB of `estimate` against `reference`.
pub fn snr(reference: &Mat, estimate: &Mat) -> f64 {
    let err = mse(reference, estimate);
    if err == 0.0 {
        return f64::INFINITY;
    }
    let n = (reference.rows() * reference.cols()) as f64;
    let sig = reference.as_slice().iter().map(|x| x * x).sum::<f64>() / n;
    10.0 * (sig / err).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_infinite_psnr() {
        let a = Mat::from_fn(8, 8, |r, c| (r * c) as f64);
        assert!(psnr(&a, &a).is_infinite());
        assert!(snr(&a, &a).is_infinite());
        assert_eq!(mse(&a, &a), 0.0);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let a = Mat::from_fn(16, 16, |r, c| (r + c) as f64 / 32.0);
        let small = a.add(&Mat::from_fn(16, 16, |_, _| 0.001));
        let large = a.add(&Mat::from_fn(16, 16, |_, _| 0.1));
        assert!(psnr(&a, &small) > psnr(&a, &large));
    }

    #[test]
    fn known_mse() {
        let a = Mat::zeros(2, 2);
        let b = Mat::from_fn(2, 2, |_, _| 2.0);
        assert_eq!(mse(&a, &b), 4.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mse_rejects_shape_mismatch() {
        mse(&Mat::zeros(2, 2), &Mat::zeros(3, 3));
    }
}
