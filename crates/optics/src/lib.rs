//! # eyecod-optics
//!
//! The lensless **FlatCam** optics substrate of the EyeCoD reproduction.
//!
//! A FlatCam replaces the focusing lens of a conventional camera with a thin
//! separable coded mask directly above a bare sensor. Imaging follows the
//! separable model of Asif et al. (the paper's Eq. 1):
//!
//! ```text
//! Y = Φ_L · X · Φ_Rᵀ + E
//! ```
//!
//! where `X` is the scene, `Φ_L`/`Φ_R` are transfer matrices induced by the
//! mask rows/columns and `E` is sensor noise. The scene is recovered by
//! Tikhonov-regularised least squares (the paper's Eq. 2), solved in closed
//! form via the SVDs of the transfer matrices.
//!
//! Provided here:
//! * [`mat::Mat`] — a small dense `f64` matrix type with a one-sided Jacobi
//!   [`svd`], so no external linear-algebra dependency is needed;
//! * [`lfsr`] — maximum-length sequences used to code the masks;
//! * [`mask`] — separable mask/transfer-matrix construction;
//! * [`sensor`] — shot/read-noise and quantisation models;
//! * [`imaging`] — the forward capture model;
//! * [`recon`] — the regularised reconstructor;
//! * [`interface`] — the sensing–processing interface that folds the first
//!   DNN layer into the optical mask (paper §4.2);
//! * [`metrics`] — PSNR and friends.
//!
//! # Example
//!
//! ```
//! use eyecod_optics::imaging::FlatCam;
//! use eyecod_optics::mask::SeparableMask;
//! use eyecod_optics::recon::TikhonovReconstructor;
//! use eyecod_optics::mat::Mat;
//! use eyecod_optics::sensor::SensorModel;
//!
//! let mask = SeparableMask::mls(40, 32, 42);
//! let cam = FlatCam::new(mask, SensorModel::noiseless());
//! let scene = Mat::from_fn(32, 32, |r, c| ((r + c) % 7) as f64 / 7.0);
//! let y = cam.capture(&scene, 0);
//! let recon = TikhonovReconstructor::new(cam.mask(), 1e-6);
//! let xhat = recon.reconstruct(&y);
//! assert!(xhat.sub(&scene).fro_norm() / scene.fro_norm() < 0.05);
//! ```

pub mod calibrate;
pub mod degrade;
pub mod imaging;
pub mod interface;
pub mod lfsr;
pub mod mask;
pub mod mat;
pub mod metrics;
pub mod recon;
pub mod sensor;
pub mod svd;

pub use imaging::FlatCam;
pub use mask::SeparableMask;
pub use recon::TikhonovReconstructor;
pub use sensor::SensorModel;
