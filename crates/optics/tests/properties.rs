//! Property-based tests of the optics crate's public contracts.

use eyecod_optics::imaging::FlatCam;
use eyecod_optics::mask::SeparableMask;
use eyecod_optics::mat::Mat;
use eyecod_optics::recon::TikhonovReconstructor;
use eyecod_optics::sensor::SensorModel;
use eyecod_optics::svd::Svd;
use proptest::prelude::*;

fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-1.0f64..1.0, rows * cols)
        .prop_map(move |v| Mat::from_fn(rows, cols, |r, c| v[r * cols + c]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SVD reconstructs and orders singular values for any tall matrix.
    #[test]
    fn svd_contract(m in mat_strategy(14, 9)) {
        let svd = Svd::compute(&m);
        prop_assert!(svd.reconstruct().sub(&m).max_abs() < 1e-8);
        for w in svd.s.windows(2) {
            prop_assert!(w[0] >= w[1] && w[1] >= 0.0);
        }
        // Frobenius norm equals the singular-value l2 norm
        let fro = m.fro_norm();
        let snorm = svd.s.iter().map(|s| s * s).sum::<f64>().sqrt();
        prop_assert!((fro - snorm).abs() < 1e-8);
    }

    /// Noiseless capture→reconstruct is near-exact for any scene, for any
    /// mask seed (full-rank differential masks).
    #[test]
    fn noiseless_roundtrip_any_seed(
        seed in 0u32..200,
        scene_vals in proptest::collection::vec(0.0f64..1.0, 16 * 16),
    ) {
        let mask = SeparableMask::mls_differential(24, 16, seed);
        let cam = FlatCam::new(mask.clone(), SensorModel::noiseless());
        let scene = Mat::from_fn(16, 16, |r, c| scene_vals[r * 16 + c]);
        let y = cam.capture(&scene, 0);
        let xhat = TikhonovReconstructor::new(&mask, 1e-10).reconstruct(&y);
        prop_assert!(xhat.sub(&scene).max_abs() < 1e-4);
    }

    /// Rank truncation error decreases monotonically in rank (Eckart–Young
    /// flavoured, through the regularised inverse).
    #[test]
    fn truncation_error_monotone(scene_vals in proptest::collection::vec(0.0f64..1.0, 16 * 16)) {
        let mask = SeparableMask::mls_differential(24, 16, 5);
        let cam = FlatCam::new(mask.clone(), SensorModel::noiseless());
        let scene = Mat::from_fn(16, 16, |r, c| scene_vals[r * 16 + c]);
        let y = cam.capture(&scene, 0);
        let recon = TikhonovReconstructor::new(&mask, 1e-10);
        let mut prev = f64::INFINITY;
        for rank in [4usize, 8, 12, 16] {
            let err = recon.reconstruct_truncated(&y, rank).sub(&scene).fro_norm();
            prop_assert!(err <= prev + 1e-9, "rank {rank}: {err} vs {prev}");
            prev = err;
        }
    }

    /// The sensor model is deterministic per seed and bounded by
    /// saturation.
    #[test]
    fn sensor_contract(vals in proptest::collection::vec(0.0f64..2.0, 36), seed in 0u64..100) {
        let m = Mat::from_fn(6, 6, |r, c| vals[r * 6 + c]);
        let s = SensorModel::nir_eye_tracking();
        let a = s.apply(&m, seed);
        let b = s.apply(&m, seed);
        prop_assert!(a.sub(&b).max_abs() == 0.0);
        prop_assert!(a.max_abs() <= s.saturation + 1e-12);
    }

    /// Capture is linear for any pair of scenes.
    #[test]
    fn capture_linearity(
        a_vals in proptest::collection::vec(0.0f64..1.0, 12 * 12),
        b_vals in proptest::collection::vec(0.0f64..1.0, 12 * 12),
    ) {
        let mask = SeparableMask::mls_differential(16, 12, 9);
        let cam = FlatCam::new(mask, SensorModel::noiseless());
        let a = Mat::from_fn(12, 12, |r, c| a_vals[r * 12 + c]);
        let b = Mat::from_fn(12, 12, |r, c| b_vals[r * 12 + c]);
        let lhs = cam.capture(&a.add(&b), 0);
        let rhs = cam.capture(&a, 0).add(&cam.capture(&b, 0));
        prop_assert!(lhs.sub(&rhs).max_abs() < 1e-10);
    }
}
