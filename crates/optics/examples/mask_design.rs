//! Mask design-space exploration: raw 0/1 amplitude masks vs differential
//! (calibrated complementary-capture) ±1 masks, across sensor oversampling
//! ratios — conditioning, light throughput and reconstruction quality under
//! realistic sensor noise.
//!
//! Run with:
//! ```text
//! cargo run --release -p eyecod-optics --example mask_design
//! ```

use eyecod_optics::calibrate::tune_epsilon;
use eyecod_optics::imaging::FlatCam;
use eyecod_optics::mask::SeparableMask;
use eyecod_optics::mat::Mat;
use eyecod_optics::sensor::SensorModel;

fn test_scene(n: usize) -> Mat {
    Mat::from_fn(n, n, |r, c| {
        let d = ((r as f64 - n as f64 / 2.0).powi(2) + (c as f64 - n as f64 / 2.0).powi(2)).sqrt();
        if d < n as f64 / 9.0 {
            0.08
        } else if d < n as f64 / 5.0 {
            0.35
        } else {
            0.75
        }
    })
}

fn main() {
    let scene_size = 48;
    let scene = test_scene(scene_size);
    println!("mask design space for a {scene_size}x{scene_size} scene\n");
    println!(
        "{:<14} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "mask", "sensor", "cond(L)", "open frac", "tuned eps", "PSNR (dB)"
    );
    for (label, differential) in [("raw 0/1", false), ("differential", true)] {
        for sensor_size in [56usize, 64, 96] {
            let mask = if differential {
                SeparableMask::mls_differential(sensor_size, scene_size, 11)
            } else {
                SeparableMask::mls(sensor_size, scene_size, 11)
            };
            let (cond, _) = mask.condition_numbers();
            let open = mask.open_fraction();
            let cam = FlatCam::new(mask, SensorModel::nir_eye_tracking());
            let (eps, psnr) = tune_epsilon(&cam, std::slice::from_ref(&scene), -8.0, 0.0, 14);
            println!(
                "{label:<14} {sensor_size:>8} {cond:>10.1} {open:>12.2} {eps:>12.1e} {psnr:>10.1}"
            );
        }
    }
    println!("\ndifferential (zero-mean) codes flatten the singular spectrum,");
    println!("which is what keeps the Tikhonov inverse robust to sensor noise —");
    println!("the conditioning story behind the FlatCam's usable eye images.");
}
