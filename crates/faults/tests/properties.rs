//! Property tests for the fault plan: determinism, group isolation and
//! exact serde round-trips — the contracts every conformance fixture in
//! the workspace leans on.

use eyecod_faults::{FaultGroup, FaultPlan, FaultSite, PPM_SCALE};
use proptest::prelude::*;

/// Builds a plan with arbitrary (bounded) rates from raw draws. Rates stay
/// below 30 % so statistical assertions have headroom; structural fields
/// (fractions, counts) take small sane values.
fn plan_from(seed: u64, rates: &[u32], frac: f64) -> FaultPlan {
    let r = |i: usize| rates[i % rates.len()] % 300_000;
    let mut p = FaultPlan::none();
    p.seed = seed;
    p.sensor.dead_pixel_ppm = r(0);
    p.sensor.hot_pixel_ppm = r(1);
    p.sensor.row_dropout_ppm = r(2);
    p.sensor.noise_ppm = r(3);
    p.sensor.noise_std = frac * 0.1;
    p.sensor.frame_drop_ppm = r(4);
    p.sensor.frame_duplicate_ppm = r(5);
    p.link.delay_ppm = r(6);
    p.link.truncate_ppm = r(7);
    p.link.truncate_fraction = frac;
    p.link.corrupt_ppm = r(8);
    p.link.corrupt_values = 1 + r(9) % 8;
    p.stage.seg_timeout_ppm = r(10);
    p.stage.seg_truncated_labels_ppm = r(11);
    p.stage.gaze_nan_ppm = r(12);
    p.stage.gaze_zero_ppm = r(13);
    p.stage.roi_drift_ppm = r(14);
    p.stage.roi_drift_pixels = 1 + r(15) % 16;
    p.exec.worker_panic_jobs = vec![r(16) as u64 % 8];
    p.exec.swpr_conflict_ppm = r(17);
    p.exec.swpr_conflict_penalty = 1 + r(18) % 8;
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed and rates ⇒ byte-identical injection schedule, however
    /// many times it is derived.
    #[test]
    fn same_seed_means_identical_schedule(
        seed in any::<u64>(),
        rates in collection::vec(0u32..PPM_SCALE as u32, 19),
        frac in 0.0f64..0.9,
    ) {
        let a = plan_from(seed, &rates, frac);
        let b = plan_from(seed, &rates, frac);
        prop_assert_eq!(a.schedule(128), b.schedule(128));
        // per-decision purity, including salted retry draws
        for frame in 0..32u64 {
            for &site in FaultSite::ALL.iter() {
                for salt in 0..3u64 {
                    prop_assert_eq!(
                        a.fires_with(site, frame, salt),
                        b.fires_with(site, frame, salt)
                    );
                }
            }
        }
    }

    /// A plan with exactly one group enabled only ever fires sites of that
    /// group: disjoint stage masks never cross-fire.
    #[test]
    fn disjoint_groups_never_cross_fire(
        seed in any::<u64>(),
        which in 0usize..4,
        rate in 50_000u32..900_000,
    ) {
        let group = [
            FaultGroup::Sensor,
            FaultGroup::Link,
            FaultGroup::Stage,
            FaultGroup::Exec,
        ][which];
        let mut p = FaultPlan::none();
        p.seed = seed;
        match group {
            FaultGroup::Sensor => {
                p.sensor.row_dropout_ppm = rate;
                p.sensor.frame_drop_ppm = rate;
                p.sensor.noise_ppm = rate;
            }
            FaultGroup::Link => {
                p.link.delay_ppm = rate;
                p.link.truncate_ppm = rate;
                p.link.corrupt_ppm = rate;
            }
            FaultGroup::Stage => {
                p.stage.seg_timeout_ppm = rate;
                p.stage.gaze_nan_ppm = rate;
                p.stage.roi_drift_ppm = rate;
            }
            FaultGroup::Exec => {
                p.exec.swpr_conflict_ppm = rate;
            }
        }
        let events = p.schedule(256);
        prop_assert!(!events.is_empty(), "a {rate} ppm rate over 256 frames must fire");
        for e in &events {
            prop_assert_eq!(e.site.group(), group);
        }
        // the static pixel masks belong to the sensor plane only
        for idx in 0..512usize {
            let dead = p.pixel_faulty(FaultSite::SensorDeadPixel, idx);
            let hot = p.pixel_faulty(FaultSite::SensorHotPixel, idx);
            if group != FaultGroup::Sensor {
                prop_assert!(!dead && !hot);
            }
        }
    }

    /// Serde JSON round-trip is exact for any plan.
    #[test]
    fn serde_json_round_trip_is_exact(
        seed in any::<u64>(),
        rates in collection::vec(0u32..PPM_SCALE as u32, 19),
        frac in 0.0f64..0.9,
    ) {
        let p = plan_from(seed, &rates, frac);
        let back = FaultPlan::from_json(&p.to_json()).unwrap();
        prop_assert_eq!(&back, &p);
        // and the round-tripped plan drives the identical schedule
        prop_assert_eq!(back.schedule(64), p.schedule(64));
    }

    /// Zero-rate sites never fire; saturated-rate sites always fire.
    #[test]
    fn rate_extremes_are_exact(seed in any::<u64>(), frame in any::<u64>()) {
        let none = FaultPlan { seed, ..FaultPlan::none() };
        for &site in FaultSite::ALL.iter() {
            prop_assert!(!none.fires(site, frame));
        }
        let mut all = FaultPlan::none();
        all.seed = seed;
        all.sensor.frame_drop_ppm = PPM_SCALE as u32;
        all.link.corrupt_ppm = PPM_SCALE as u32;
        all.stage.gaze_nan_ppm = PPM_SCALE as u32;
        all.exec.swpr_conflict_ppm = PPM_SCALE as u32;
        prop_assert!(all.fires(FaultSite::SensorFrameDrop, frame));
        prop_assert!(all.fires(FaultSite::LinkCorrupt, frame));
        prop_assert!(all.fires(FaultSite::StageGazeNan, frame));
        prop_assert!(all.fires(FaultSite::ExecSwprConflict, frame));
    }

    /// The schedule is ordered frame-major and contains no duplicates —
    /// consumers can binary-search or replay it as a log.
    #[test]
    fn schedule_is_sorted_and_unique(
        seed in any::<u64>(),
        rates in collection::vec(0u32..400_000u32, 19),
    ) {
        let p = plan_from(seed, &rates, 0.3);
        let events = p.schedule(96);
        for w in events.windows(2) {
            let ordered = w[0].frame < w[1].frame
                || (w[0].frame == w[1].frame && w[0].site != w[1].site);
            prop_assert!(ordered, "events out of order: {:?} then {:?}", w[0], w[1]);
        }
    }
}

use proptest::collection;
