//! The seed-driven fault plan and its deterministic decision engine.

use serde::{Deserialize, Serialize};

/// Rates are expressed in parts-per-million of [`PPM_SCALE`]: a rate of
/// `100_000` fires on ~10 % of draws. Integer rates keep plans exactly
/// serialisable and the Bernoulli draws exactly reproducible.
pub const PPM_SCALE: u64 = 1_000_000;

/// One injection point in the pipeline.
///
/// Sites are grouped into four planes ([`FaultGroup`]); every site draws
/// from its own hash stream, so enabling one plane can never make another
/// fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// A sensor pixel permanently stuck dark (static per-pixel mask).
    SensorDeadPixel,
    /// A sensor pixel permanently stuck at saturation (static mask).
    SensorHotPixel,
    /// One full sensor row reads out dark for this frame.
    SensorRowDropout,
    /// Escalated Gaussian + shot noise on this frame's measurement.
    SensorNoise,
    /// The sensor delivers no frame at all.
    SensorFrameDrop,
    /// The sensor delivers the previous frame again.
    SensorFrameDuplicate,
    /// The camera→processor link delivers the measurement after the frame
    /// deadline (the processor must proceed with stale data).
    LinkDelay,
    /// The transfer is cut short; the tail of the measurement is lost.
    LinkTruncate,
    /// Bit corruption on the link: measurement values with flipped bits.
    LinkCorrupt,
    /// The segmentation stage misses its deadline.
    StageSegTimeout,
    /// The segmentation stage returns a short labels buffer.
    StageSegTruncatedLabels,
    /// The gaze network emits NaN outputs.
    StageGazeNan,
    /// The gaze network emits an all-zero output.
    StageGazeZero,
    /// The predicted ROI drifts away from the segmentation anchor
    /// (possibly out of scene bounds).
    StageRoiDrift,
    /// A pool worker dies while running a pipeline job.
    ExecWorkerPanic,
    /// An SWPR activation-buffer bank conflict stalls a compute round.
    ExecSwprConflict,
}

/// The four injection planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultGroup {
    /// Faults of the FlatCam sensor itself.
    Sensor,
    /// Faults of the camera→processor link.
    Link,
    /// Faults inside the pipeline's processing stages.
    Stage,
    /// Faults of the execution substrate (pool workers, accelerator).
    Exec,
}

impl FaultSite {
    /// Every site, in declaration order.
    pub const ALL: [FaultSite; 16] = [
        FaultSite::SensorDeadPixel,
        FaultSite::SensorHotPixel,
        FaultSite::SensorRowDropout,
        FaultSite::SensorNoise,
        FaultSite::SensorFrameDrop,
        FaultSite::SensorFrameDuplicate,
        FaultSite::LinkDelay,
        FaultSite::LinkTruncate,
        FaultSite::LinkCorrupt,
        FaultSite::StageSegTimeout,
        FaultSite::StageSegTruncatedLabels,
        FaultSite::StageGazeNan,
        FaultSite::StageGazeZero,
        FaultSite::StageRoiDrift,
        FaultSite::ExecWorkerPanic,
        FaultSite::ExecSwprConflict,
    ];

    /// The plane this site belongs to.
    pub fn group(self) -> FaultGroup {
        use FaultSite::*;
        match self {
            SensorDeadPixel | SensorHotPixel | SensorRowDropout | SensorNoise | SensorFrameDrop
            | SensorFrameDuplicate => FaultGroup::Sensor,
            LinkDelay | LinkTruncate | LinkCorrupt => FaultGroup::Link,
            StageSegTimeout
            | StageSegTruncatedLabels
            | StageGazeNan
            | StageGazeZero
            | StageRoiDrift => FaultGroup::Stage,
            ExecWorkerPanic | ExecSwprConflict => FaultGroup::Exec,
        }
    }

    /// Stable site index used to separate hash streams.
    fn stream_id(self) -> u64 {
        FaultSite::ALL
            .iter()
            .position(|&s| s == self)
            .expect("every site is listed in ALL") as u64
    }
}

/// Sensor-plane fault rates (FlatCam pixel/readout faults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorFaultConfig {
    /// Static probability (ppm) that a given sensor pixel is stuck dark.
    pub dead_pixel_ppm: u32,
    /// Static probability (ppm) that a given sensor pixel is stuck at
    /// saturation.
    pub hot_pixel_ppm: u32,
    /// Per-frame probability (ppm) that one readout row drops out.
    pub row_dropout_ppm: u32,
    /// Per-frame probability (ppm) of a noise-escalation event.
    pub noise_ppm: u32,
    /// Extra Gaussian noise std (measurement units) when escalation fires.
    pub noise_std: f64,
    /// Per-frame probability (ppm) that the frame is dropped entirely.
    pub frame_drop_ppm: u32,
    /// Per-frame probability (ppm) that the previous frame is re-delivered.
    pub frame_duplicate_ppm: u32,
}

/// Link-plane fault rates (camera→processor transport).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultConfig {
    /// Per-frame probability (ppm) the measurement arrives past deadline.
    pub delay_ppm: u32,
    /// Per-frame probability (ppm) the transfer is truncated.
    pub truncate_ppm: u32,
    /// Fraction of the measurement tail lost when truncation fires.
    pub truncate_fraction: f64,
    /// Per-frame probability (ppm) of bit corruption on the link.
    pub corrupt_ppm: u32,
    /// How many measurement values get a flipped bit per corruption event.
    pub corrupt_values: u32,
}

/// Stage-plane fault rates (processing stages misbehaving).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageFaultConfig {
    /// Per-attempt probability (ppm) the segmentation stage times out.
    pub seg_timeout_ppm: u32,
    /// Per-refresh probability (ppm) the labels buffer comes back short.
    pub seg_truncated_labels_ppm: u32,
    /// Per-frame probability (ppm) the gaze net emits NaNs.
    pub gaze_nan_ppm: u32,
    /// Per-frame probability (ppm) the gaze net emits an all-zero vector.
    pub gaze_zero_ppm: u32,
    /// Per-refresh probability (ppm) the ROI drifts from its anchor.
    pub roi_drift_ppm: u32,
    /// Drift magnitude in scene pixels when ROI drift fires.
    pub roi_drift_pixels: u32,
}

/// Execution-plane fault configuration (pool workers, accelerator).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecFaultConfig {
    /// Parallel-job indices whose *first* execution attempt panics
    /// (explicit so a plan can kill exactly one worker, deterministically).
    pub worker_panic_jobs: Vec<u64>,
    /// Per-round probability (ppm) of an SWPR bank conflict.
    pub swpr_conflict_ppm: u32,
    /// Multiplier on a conflicting round's load cycles (≥ 1).
    pub swpr_conflict_penalty: u32,
}

/// A deterministic, seed-driven fault-injection plan.
///
/// Every decision the plan makes is a pure function of
/// `(seed, site, frame, salt)`; there is no internal RNG state, so plans
/// can be shared, cloned and consulted from any thread in any order and
/// still replay byte-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed separating this plan's hash streams from other plans with the
    /// same rates.
    pub seed: u64,
    /// Sensor-plane rates.
    pub sensor: SensorFaultConfig,
    /// Link-plane rates.
    pub link: LinkFaultConfig,
    /// Stage-plane rates.
    pub stage: StageFaultConfig,
    /// Execution-plane configuration.
    pub exec: ExecFaultConfig,
}

/// One scheduled injection: site × frame (pixel masks are static and not
/// part of the per-frame schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Frame index at which the fault fires.
    pub frame: u64,
    /// The site that fires.
    pub site: FaultSite,
}

/// SplitMix64 finaliser: the avalanche core of every plan decision.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan that injects nothing (all rates zero).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            sensor: SensorFaultConfig {
                dead_pixel_ppm: 0,
                hot_pixel_ppm: 0,
                row_dropout_ppm: 0,
                noise_ppm: 0,
                noise_std: 0.0,
                frame_drop_ppm: 0,
                frame_duplicate_ppm: 0,
            },
            link: LinkFaultConfig {
                delay_ppm: 0,
                truncate_ppm: 0,
                truncate_fraction: 0.25,
                corrupt_ppm: 0,
                corrupt_values: 4,
            },
            stage: StageFaultConfig {
                seg_timeout_ppm: 0,
                seg_truncated_labels_ppm: 0,
                gaze_nan_ppm: 0,
                gaze_zero_ppm: 0,
                roi_drift_ppm: 0,
                roi_drift_pixels: 4,
            },
            exec: ExecFaultConfig {
                worker_panic_jobs: Vec::new(),
                swpr_conflict_ppm: 0,
                swpr_conflict_penalty: 2,
            },
        }
    }

    /// A mild field-failure preset: occasional pixel defects, rare drops
    /// and stage hiccups — the kind of background fault load a healthy
    /// deployed fleet sees.
    pub fn light(seed: u64) -> Self {
        let mut p = Self::none();
        p.seed = seed;
        p.sensor.dead_pixel_ppm = 10_000; // ~1 % of pixels
        p.sensor.hot_pixel_ppm = 2_000;
        p.sensor.row_dropout_ppm = 20_000;
        p.sensor.noise_ppm = 30_000;
        p.sensor.noise_std = 0.02;
        p.sensor.frame_drop_ppm = 20_000; // ~2 % of frames
        p.sensor.frame_duplicate_ppm = 10_000;
        p.link.delay_ppm = 10_000;
        p.link.truncate_ppm = 10_000;
        p.link.corrupt_ppm = 10_000;
        p.stage.seg_timeout_ppm = 20_000;
        p.stage.seg_truncated_labels_ppm = 10_000;
        p.stage.gaze_nan_ppm = 10_000;
        p.stage.gaze_zero_ppm = 10_000;
        p.stage.roi_drift_ppm = 20_000;
        p.exec.swpr_conflict_ppm = 20_000;
        p
    }

    /// A harsh preset: ≥10 % frame drop, ≥5 % dead pixels, injected gaze
    /// NaNs and one worker panic — the acceptance scenario of the
    /// conformance suite. A 60-frame sequence under this plan must finish
    /// with zero panics and ≥90 % frames graded `Ok`/`Degraded`.
    pub fn heavy(seed: u64) -> Self {
        let mut p = Self::none();
        p.seed = seed;
        p.sensor.dead_pixel_ppm = 60_000; // 6 % of pixels
        p.sensor.hot_pixel_ppm = 10_000;
        p.sensor.row_dropout_ppm = 80_000;
        p.sensor.noise_ppm = 100_000;
        p.sensor.noise_std = 0.05;
        p.sensor.frame_drop_ppm = 120_000; // 12 % of frames
        p.sensor.frame_duplicate_ppm = 30_000;
        p.link.delay_ppm = 40_000;
        p.link.truncate_ppm = 40_000;
        p.link.truncate_fraction = 0.25;
        p.link.corrupt_ppm = 60_000;
        p.link.corrupt_values = 6;
        p.stage.seg_timeout_ppm = 100_000;
        p.stage.seg_truncated_labels_ppm = 50_000;
        p.stage.gaze_nan_ppm = 80_000;
        p.stage.gaze_zero_ppm = 40_000;
        p.stage.roi_drift_ppm = 80_000;
        p.stage.roi_drift_pixels = 6;
        p.exec.worker_panic_jobs = vec![1];
        p.exec.swpr_conflict_ppm = 100_000;
        p.exec.swpr_conflict_penalty = 4;
        p
    }

    /// Loads a plan from the `EYECOD_FAULT_PLAN` environment variable.
    ///
    /// Accepted values: unset / empty / `none` / `off` / `0` (no faults),
    /// `light` or `heavy` (presets, optionally `light:<seed>`), or an
    /// inline JSON plan (starts with `{`).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value or malformed JSON — a silently
    /// ignored plan would make the CI fault-matrix job test nothing.
    pub fn from_env() -> Self {
        match std::env::var("EYECOD_FAULT_PLAN") {
            Err(_) => Self::none(),
            Ok(v) => Self::parse(&v)
                .unwrap_or_else(|| panic!("unrecognised EYECOD_FAULT_PLAN value: {v:?}")),
        }
    }

    /// Parses the `EYECOD_FAULT_PLAN` syntax (see [`FaultPlan::from_env`]).
    pub fn parse(value: &str) -> Option<Self> {
        let v = value.trim();
        if v.starts_with('{') {
            return serde_json::from_str(v).ok();
        }
        let (name, seed) = match v.split_once(':') {
            Some((n, s)) => (n, s.parse::<u64>().ok()?),
            None => (v, 0xEC0D),
        };
        match name.to_ascii_lowercase().as_str() {
            "" | "none" | "off" | "0" => Some(Self::none()),
            "light" => Some(Self::light(seed)),
            "heavy" => Some(Self::heavy(seed)),
            _ => None,
        }
    }

    /// True when this plan can never fire anything.
    pub fn is_none(&self) -> bool {
        let s = &self.sensor;
        let l = &self.link;
        let t = &self.stage;
        let e = &self.exec;
        s.dead_pixel_ppm == 0
            && s.hot_pixel_ppm == 0
            && s.row_dropout_ppm == 0
            && s.noise_ppm == 0
            && s.frame_drop_ppm == 0
            && s.frame_duplicate_ppm == 0
            && l.delay_ppm == 0
            && l.truncate_ppm == 0
            && l.corrupt_ppm == 0
            && t.seg_timeout_ppm == 0
            && t.seg_truncated_labels_ppm == 0
            && t.gaze_nan_ppm == 0
            && t.gaze_zero_ppm == 0
            && t.roi_drift_ppm == 0
            && e.worker_panic_jobs.is_empty()
            && e.swpr_conflict_ppm == 0
    }

    /// The configured rate (ppm) for a per-frame site. Pixel-mask sites
    /// return their static per-pixel rate; [`FaultSite::ExecWorkerPanic`]
    /// is list-driven and returns 0.
    pub fn rate_ppm(&self, site: FaultSite) -> u32 {
        use FaultSite::*;
        match site {
            SensorDeadPixel => self.sensor.dead_pixel_ppm,
            SensorHotPixel => self.sensor.hot_pixel_ppm,
            SensorRowDropout => self.sensor.row_dropout_ppm,
            SensorNoise => self.sensor.noise_ppm,
            SensorFrameDrop => self.sensor.frame_drop_ppm,
            SensorFrameDuplicate => self.sensor.frame_duplicate_ppm,
            LinkDelay => self.link.delay_ppm,
            LinkTruncate => self.link.truncate_ppm,
            LinkCorrupt => self.link.corrupt_ppm,
            StageSegTimeout => self.stage.seg_timeout_ppm,
            StageSegTruncatedLabels => self.stage.seg_truncated_labels_ppm,
            StageGazeNan => self.stage.gaze_nan_ppm,
            StageGazeZero => self.stage.gaze_zero_ppm,
            StageRoiDrift => self.stage.roi_drift_ppm,
            ExecWorkerPanic => 0,
            ExecSwprConflict => self.exec.swpr_conflict_ppm,
        }
    }

    /// The raw 64-bit decision word for `(site, frame, salt)`.
    #[inline]
    pub fn word(&self, site: FaultSite, frame: u64, salt: u64) -> u64 {
        mix(
            mix(self.seed ^ site.stream_id().wrapping_mul(0xD1B5_4A32_D192_ED03))
                ^ mix(frame.wrapping_mul(0x8CB9_2BA7_2F3D_8DD7))
                ^ mix(salt.wrapping_mul(0xA24B_AED4_963E_E407)),
        )
    }

    /// Whether `site` fires at `frame` (salt 0).
    #[inline]
    pub fn fires(&self, site: FaultSite, frame: u64) -> bool {
        self.fires_with(site, frame, 0)
    }

    /// Whether `site` fires at `frame` under an extra `salt` (used to give
    /// retry attempts independent draws).
    #[inline]
    pub fn fires_with(&self, site: FaultSite, frame: u64, salt: u64) -> bool {
        let rate = self.rate_ppm(site) as u64;
        if rate == 0 {
            return false;
        }
        if rate >= PPM_SCALE {
            return true;
        }
        self.word(site, frame, salt) % PPM_SCALE < rate
    }

    /// Whether sensor pixel `idx` is statically faulty for a pixel-mask
    /// site ([`FaultSite::SensorDeadPixel`] / [`FaultSite::SensorHotPixel`]).
    /// Frame-independent: the mask is a property of the sensor die.
    #[inline]
    pub fn pixel_faulty(&self, site: FaultSite, idx: usize) -> bool {
        // reuse the frame stream with a dedicated salt so pixel masks and
        // per-frame draws can never alias
        let rate = self.rate_ppm(site) as u64;
        if rate == 0 {
            return false;
        }
        self.word(site, idx as u64, 0x5052_4D41_534B) % PPM_SCALE < rate
    }

    /// A deterministic uniform draw in `[0, 1)`.
    #[inline]
    pub fn uniform(&self, site: FaultSite, frame: u64, salt: u64) -> f64 {
        (self.word(site, frame, salt) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A deterministic standard-normal draw (Box–Muller on two uniforms).
    pub fn gaussian(&self, site: FaultSite, frame: u64, salt: u64) -> f64 {
        let u1 = self.uniform(site, frame, salt.wrapping_mul(2).wrapping_add(1));
        let u2 = self.uniform(site, frame, salt.wrapping_mul(2).wrapping_add(2));
        let r = (-2.0 * (1.0 - u1).max(f64::MIN_POSITIVE).ln()).sqrt();
        r * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A deterministic index draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn index(&self, site: FaultSite, frame: u64, salt: u64, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty range");
        (self.word(site, frame, salt.wrapping_add(0x1D8)) % n as u64) as usize
    }

    /// Whether parallel job `job` panics on execution `attempt` (only the
    /// first attempt of explicitly listed jobs is killed, so retries are
    /// guaranteed to converge).
    pub fn worker_panics(&self, job: u64, attempt: u32) -> bool {
        attempt == 0 && self.exec.worker_panic_jobs.contains(&job)
    }

    /// The full per-frame injection schedule over `frames` frames: every
    /// `(frame, site)` pair that fires at salt 0, frame-major then in
    /// [`FaultSite::ALL`] order. Static pixel masks are not per-frame
    /// events and are excluded; so is the list-driven worker panic.
    pub fn schedule(&self, frames: u64) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        for frame in 0..frames {
            for &site in FaultSite::ALL.iter() {
                if matches!(
                    site,
                    FaultSite::SensorDeadPixel
                        | FaultSite::SensorHotPixel
                        | FaultSite::ExecWorkerPanic
                ) {
                    continue;
                }
                if self.fires(site, frame) {
                    events.push(FaultEvent { frame, site });
                }
            }
        }
        events
    }

    /// Serialises the plan to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fault plans always serialise")
    }

    /// Parses a plan from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("invalid fault plan JSON: {e:?}"))
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_fires() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        for &site in FaultSite::ALL.iter() {
            for frame in 0..50 {
                assert!(!p.fires(site, frame));
            }
        }
        assert!(p.schedule(100).is_empty());
        assert!(!p.worker_panics(0, 0));
    }

    #[test]
    fn rates_are_respected_statistically() {
        let mut p = FaultPlan::none();
        p.sensor.frame_drop_ppm = 100_000; // 10 %
        let fired = (0..20_000)
            .filter(|&f| p.fires(FaultSite::SensorFrameDrop, f))
            .count();
        let frac = fired as f64 / 20_000.0;
        assert!((0.08..0.12).contains(&frac), "drop fraction {frac}");
    }

    #[test]
    fn full_rate_always_fires_and_decisions_are_pure() {
        let mut p = FaultPlan::none();
        p.stage.gaze_nan_ppm = PPM_SCALE as u32;
        assert!(p.fires(FaultSite::StageGazeNan, 3));
        assert_eq!(
            p.word(FaultSite::LinkCorrupt, 9, 2),
            p.word(FaultSite::LinkCorrupt, 9, 2)
        );
        assert_ne!(
            p.word(FaultSite::LinkCorrupt, 9, 2),
            p.word(FaultSite::LinkCorrupt, 9, 3)
        );
        assert_ne!(
            p.word(FaultSite::LinkCorrupt, 9, 2),
            p.word(FaultSite::LinkTruncate, 9, 2)
        );
    }

    #[test]
    fn seeds_separate_streams() {
        let a = FaultPlan::heavy(1);
        let b = FaultPlan::heavy(2);
        assert_ne!(a.schedule(100), b.schedule(100));
    }

    #[test]
    fn pixel_masks_are_static_and_rate_bound() {
        let p = FaultPlan::heavy(7);
        let n = 64 * 64;
        let dead: Vec<usize> = (0..n)
            .filter(|&i| p.pixel_faulty(FaultSite::SensorDeadPixel, i))
            .collect();
        let again: Vec<usize> = (0..n)
            .filter(|&i| p.pixel_faulty(FaultSite::SensorDeadPixel, i))
            .collect();
        assert_eq!(dead, again, "pixel mask must be static");
        let frac = dead.len() as f64 / n as f64;
        assert!((0.03..0.09).contains(&frac), "dead fraction {frac}");
    }

    #[test]
    fn env_syntax_parses_presets_and_json() {
        assert!(FaultPlan::parse("none").unwrap().is_none());
        assert!(FaultPlan::parse("off").unwrap().is_none());
        assert_eq!(FaultPlan::parse("light:42").unwrap(), FaultPlan::light(42));
        assert_eq!(FaultPlan::parse("HEAVY:9").unwrap(), FaultPlan::heavy(9));
        let json = FaultPlan::heavy(3).to_json();
        assert_eq!(FaultPlan::parse(&json).unwrap(), FaultPlan::heavy(3));
        assert!(FaultPlan::parse("catastrophic").is_none());
    }

    #[test]
    fn json_round_trip_is_exact() {
        for plan in [FaultPlan::none(), FaultPlan::light(5), FaultPlan::heavy(11)] {
            let back = FaultPlan::from_json(&plan.to_json()).unwrap();
            assert_eq!(back, plan);
        }
    }

    #[test]
    fn worker_panics_only_on_first_attempt_of_listed_jobs() {
        let p = FaultPlan::heavy(0);
        assert!(p.worker_panics(1, 0));
        assert!(!p.worker_panics(1, 1));
        assert!(!p.worker_panics(0, 0));
    }

    #[test]
    fn uniform_and_index_are_in_range() {
        let p = FaultPlan::heavy(13);
        for f in 0..200 {
            let u = p.uniform(FaultSite::SensorNoise, f, 0);
            assert!((0.0..1.0).contains(&u));
            assert!(p.index(FaultSite::LinkCorrupt, f, 0, 17) < 17);
            assert!(p.gaussian(FaultSite::SensorNoise, f, 0).is_finite());
        }
    }
}
