//! # eyecod-faults
//!
//! The deterministic fault-injection plane for the EyeCoD pipeline.
//!
//! A production eye tracker serving millions of head-mounted devices must
//! survive faults the paper's lab setting never sees: saturated or dead
//! FlatCam sensor pixels, dropped or corrupted frames on the
//! camera→processor link, and stage-level stalls. This crate provides the
//! shared vocabulary for injecting those faults *reproducibly* and for
//! describing how the pipeline degraded in response:
//!
//! * [`FaultPlan`] — a serde round-trippable description of which faults
//!   fire at which rates. Every decision is a pure hash of
//!   `(plan seed, fault site, frame, salt)`, so a plan replays
//!   byte-identically across runs, thread counts and processes — every
//!   fault scenario is a reproducible test fixture. Plans load from the
//!   `EYECOD_FAULT_PLAN` environment variable (presets or inline JSON).
//! * [`FaultSite`] — the closed set of injection points, grouped into
//!   sensor, link, stage and execution planes. Disjoint groups can never
//!   cross-fire: each site draws from its own hash stream and its own
//!   configured rate.
//! * [`FrameQuality`] / [`FrameFaults`] / [`FaultStats`] — the degradation
//!   grade of one tracked frame and the injected/recovered/unrecovered
//!   accounting that makes degradation observable instead of silent.
//! * [`RecoveryPolicy`] — per-stage retry budgets and staleness limits for
//!   the tracker's fall-back-to-last-good recovery paths.
//!
//! The consumers live in `eyecod-optics` (sensor plane), `eyecod-core`
//! (link + stage planes and the recovery policy), `eyecod-pool`
//! (panic-isolating execution) and `eyecod-accel` (SWPR bank-conflict
//! stalls). This crate itself depends only on the serde shims, so every
//! layer of the workspace can speak the same fault vocabulary.

mod plan;
mod recovery;

pub use plan::{
    ExecFaultConfig, FaultEvent, FaultGroup, FaultPlan, FaultSite, LinkFaultConfig,
    SensorFaultConfig, StageFaultConfig, PPM_SCALE,
};
pub use recovery::{FaultStats, FrameFaults, FrameQuality, RecoveryPolicy};
