//! The degradation vocabulary: frame grades, fault accounting and the
//! recovery policy the tracker applies when stages fail.

use serde::{Deserialize, Serialize};

/// How much a tracked frame can be trusted.
///
/// Ordered: `Ok < Degraded < Lost`, so thresholds can be compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FrameQuality {
    /// Every stage ran on fresh data; no fallback was needed.
    Ok,
    /// At least one stage fell back to retried or last-good data; the
    /// output is usable but stale or noisier than normal.
    Degraded,
    /// The recovery budget was exhausted (no fallback available, or
    /// staleness beyond the policy limits); the output is a guess.
    Lost,
}

impl FrameQuality {
    /// Compact single-character code (`O`/`D`/`L`) for golden traces.
    pub fn code(self) -> char {
        match self {
            FrameQuality::Ok => 'O',
            FrameQuality::Degraded => 'D',
            FrameQuality::Lost => 'L',
        }
    }

    /// Whether downstream consumers can act on the frame at all: `Ok` and
    /// `Degraded` frames carry real (if stale) information, `Lost` frames
    /// are guesses. Load-shedding under overload is specified in these
    /// terms — a shed frame must stay usable.
    pub fn usable(self) -> bool {
        self != FrameQuality::Lost
    }
}

/// Per-frame fault accounting attached to a tracked frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameFaults {
    /// Fault events injected while producing this frame.
    pub injected: u32,
    /// Faults the pipeline recovered from (retry succeeded or a last-good
    /// fallback was substituted).
    pub recovered: u32,
    /// Faults with no recovery path (defaults substituted; the frame is
    /// typically graded [`FrameQuality::Lost`]).
    pub unrecovered: u32,
}

impl FrameFaults {
    /// True when nothing was injected and nothing had to be recovered.
    pub fn is_clean(&self) -> bool {
        self.injected == 0 && self.recovered == 0 && self.unrecovered == 0
    }
}

/// Cumulative fault accounting over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Total fault events injected.
    pub injected: u64,
    /// Total faults recovered from.
    pub recovered: u64,
    /// Total faults without a recovery path.
    pub unrecovered: u64,
}

impl FaultStats {
    /// Accumulates one frame's accounting.
    pub fn absorb(&mut self, frame: &FrameFaults) {
        self.injected += frame.injected as u64;
        self.recovered += frame.recovered as u64;
        self.unrecovered += frame.unrecovered as u64;
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.injected += other.injected;
        self.recovered += other.recovered;
        self.unrecovered += other.unrecovered;
    }
}

/// Per-stage retry budgets and staleness limits for graceful degradation.
///
/// "Backoff" in a deterministic simulation is modelled as a bounded retry
/// budget (each retry re-draws its fault with a fresh salt) rather than
/// wall-clock sleeps — the schedule stays byte-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Retries allowed per stage per frame before falling back.
    pub max_stage_retries: u32,
    /// Consecutive missed ROI refreshes tolerated before frames grade
    /// [`FrameQuality::Lost`].
    pub max_roi_staleness: u32,
    /// Consecutive gaze fallbacks tolerated before [`FrameQuality::Lost`].
    pub max_gaze_staleness: u32,
    /// Consecutive frames served from a stale image tolerated before
    /// [`FrameQuality::Lost`].
    pub max_image_staleness: u32,
}

impl RecoveryPolicy {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any staleness limit is zero (a zero limit would grade
    /// every first fallback `Lost`, defeating graceful degradation).
    pub fn validate(&self) {
        assert!(
            self.max_roi_staleness > 0
                && self.max_gaze_staleness > 0
                && self.max_image_staleness > 0,
            "staleness limits must be at least 1, got {self:?}"
        );
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_stage_retries: 2,
            max_roi_staleness: 3,
            max_gaze_staleness: 5,
            max_image_staleness: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_is_ordered_and_coded() {
        assert!(FrameQuality::Ok < FrameQuality::Degraded);
        assert!(FrameQuality::Degraded < FrameQuality::Lost);
        assert_eq!(FrameQuality::Ok.code(), 'O');
        assert_eq!(FrameQuality::Degraded.code(), 'D');
        assert_eq!(FrameQuality::Lost.code(), 'L');
    }

    #[test]
    fn stats_absorb_and_merge() {
        let mut s = FaultStats::default();
        s.absorb(&FrameFaults {
            injected: 3,
            recovered: 2,
            unrecovered: 1,
        });
        let mut t = FaultStats::default();
        t.merge(&s);
        t.merge(&s);
        assert_eq!(
            t,
            FaultStats {
                injected: 6,
                recovered: 4,
                unrecovered: 2
            }
        );
        assert!(FrameFaults::default().is_clean());
    }

    #[test]
    fn default_policy_is_valid() {
        RecoveryPolicy::default().validate();
    }

    #[test]
    #[should_panic(expected = "staleness limits")]
    fn zero_staleness_limit_is_rejected() {
        RecoveryPolicy {
            max_gaze_staleness: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn quality_serde_round_trips() {
        for q in [FrameQuality::Ok, FrameQuality::Degraded, FrameQuality::Lost] {
            let json = serde_json::to_string(&q).unwrap();
            let back: FrameQuality = serde_json::from_str(&json).unwrap();
            assert_eq!(back, q);
        }
    }
}
