//! Roofline-style baseline platform models.

use crate::comm::CommLink;
use eyecod_accel::workload::PipelineWorkload;
use serde::{Deserialize, Serialize};

/// The baseline platforms of Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// Raspberry Pi class edge CPU.
    EdgeCpu,
    /// AMD EPYC 7742 server CPU (batch 1).
    Cpu,
    /// Nvidia Jetson TX2 edge GPU.
    EdgeGpu,
    /// Nvidia RTX 2080 Ti GPU (batch 1).
    Gpu,
    /// The CIS-GEP eye-tracking ASIC (65 nm, Bong et al.).
    CisGep,
}

impl PlatformKind {
    /// All baselines in the paper's Fig. 14 order.
    pub const ALL: [PlatformKind; 5] = [
        PlatformKind::EdgeCpu,
        PlatformKind::Cpu,
        PlatformKind::EdgeGpu,
        PlatformKind::Gpu,
        PlatformKind::CisGep,
    ];

    /// Display name matching the paper's figure labels.
    pub fn label(&self) -> &'static str {
        match self {
            PlatformKind::EdgeCpu => "EdgeCPU",
            PlatformKind::Cpu => "CPU",
            PlatformKind::EdgeGpu => "EdgeGPU",
            PlatformKind::Gpu => "GPU",
            PlatformKind::CisGep => "CIS-GEP",
        }
    }
}

/// An analytical platform: sustained batch-1 throughput, system power and
/// its camera link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Which baseline this models.
    pub kind: PlatformKind,
    /// Peak MAC rate in GMAC/s (from spec sheets; FMA counted as one MAC).
    pub peak_gmacs: f64,
    /// Achievable fraction of peak for batch-1 eye-tracking inference.
    pub utilization: f64,
    /// System power draw while running, in watts.
    pub power_w: f64,
    /// Camera→processor link.
    pub link: CommLink,
}

impl Platform {
    /// Builds the model for a baseline platform.
    ///
    /// Parameter provenance (documented estimates, see DESIGN.md):
    /// peak rates from vendor spec sheets; utilisations from the typical
    /// batch-1 efficiency of small-image CNN inference on each platform
    /// class; powers are system-level. CIS-GEP's effective rate is set so a
    /// ~65 nm 2016-era gaze ASIC lands near its published 30 FPS on this
    /// class of workload.
    pub fn new(kind: PlatformKind) -> Self {
        let (peak_gmacs, utilization, power_w) = match kind {
            PlatformKind::EdgeCpu => (6.0, 0.016, 4.0),
            PlatformKind::Cpu => (1_150.0, 0.019, 225.0),
            PlatformKind::EdgeGpu => (665.0, 0.028, 10.0),
            PlatformKind::Gpu => (6_700.0, 0.016, 250.0),
            PlatformKind::CisGep => (24.0, 0.90, 0.130),
        };
        let link = match kind {
            // the ASIC integrates its CMOS sensor, everything else sits at
            // the end of a lens-camera module link
            PlatformKind::CisGep => CommLink::attached_sensor(),
            _ => CommLink::lens_module(),
        };
        Platform {
            kind,
            peak_gmacs,
            utilization,
            power_w,
            link,
        }
    }

    /// Sustained MAC rate in MAC/s.
    pub fn effective_macs_per_second(&self) -> f64 {
        self.peak_gmacs * 1e9 * self.utilization
    }

    /// Per-frame compute time in seconds for a workload (per-frame stages
    /// plus the amortised periodic stage).
    pub fn frame_compute_seconds(&self, workload: &PipelineWorkload) -> f64 {
        let macs_per_frame = workload.window_macs() as f64 / workload.window as f64;
        macs_per_frame / self.effective_macs_per_second()
    }

    /// Throughput on a workload, frames per second, with compute and
    /// communication pipelined (the slower stage bounds throughput).
    pub fn fps(&self, workload: &PipelineWorkload) -> f64 {
        let compute = self.frame_compute_seconds(workload);
        let comm = self.link.transfer_us(workload.offchip_bytes_per_frame) * 1e-6;
        1.0 / compute.max(comm)
    }

    /// Energy per frame in joules (compute power over the busy time plus
    /// link energy).
    pub fn energy_per_frame_j(&self, workload: &PipelineWorkload) -> f64 {
        self.power_w * self.frame_compute_seconds(workload)
            + self
                .link
                .transfer_energy_j(workload.offchip_bytes_per_frame)
    }

    /// Frames per joule.
    pub fn frames_per_joule(&self, workload: &PipelineWorkload) -> f64 {
        1.0 / self.energy_per_frame_j(workload)
    }

    /// Per-frame latency breakdown in milliseconds: `(compute, comm)`.
    /// The paper's system-level motivation is visible here — on fast
    /// platforms the camera link is a substantial share of frame time.
    pub fn latency_breakdown_ms(&self, workload: &PipelineWorkload) -> (f64, f64) {
        (
            self.frame_compute_seconds(workload) * 1e3,
            self.link.transfer_us(workload.offchip_bytes_per_frame) * 1e-3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyecod_accel::workload::EyeCodWorkload;

    fn lens_workload() -> PipelineWorkload {
        EyeCodWorkload::lens_based().into_workload()
    }

    #[test]
    fn ordering_matches_figure_14() {
        // Fig. 14 throughput ordering: GPU > CPU ≈ CIS-GEP ≈ EdgeGPU ≫ EdgeCPU
        let w = lens_workload();
        let fps: Vec<f64> = PlatformKind::ALL
            .iter()
            .map(|&k| Platform::new(k).fps(&w))
            .collect();
        let (edge_cpu, cpu, edge_gpu, gpu, cis) = (fps[0], fps[1], fps[2], fps[3], fps[4]);
        assert!(gpu > cpu && gpu > edge_gpu && gpu > cis);
        assert!(cpu > edge_cpu * 50.0);
        assert!(edge_gpu > edge_cpu * 50.0);
    }

    #[test]
    fn cis_gep_lands_near_its_published_30_fps() {
        // the real CIS-GEP chip reports ~30 FPS on its gaze pipeline
        let fps = Platform::new(PlatformKind::CisGep).fps(&lens_workload());
        assert!(
            (15.0..120.0).contains(&fps),
            "CIS-GEP model fps {fps:.1} strayed from its published class"
        );
    }

    #[test]
    fn asic_wins_energy_efficiency_among_baselines() {
        // Fig. 14 energy ordering: CIS-GEP is the most efficient baseline
        let w = lens_workload();
        let cis = Platform::new(PlatformKind::CisGep).frames_per_joule(&w);
        for k in [
            PlatformKind::EdgeCpu,
            PlatformKind::Cpu,
            PlatformKind::EdgeGpu,
            PlatformKind::Gpu,
        ] {
            let other = Platform::new(k).frames_per_joule(&w);
            assert!(
                cis > other,
                "CIS-GEP ({cis:.1} f/J) must beat {} ({other:.1} f/J)",
                k.label()
            );
        }
    }

    #[test]
    fn latency_breakdown_sums_to_serial_latency() {
        let w = EyeCodWorkload::paper_default().into_workload();
        for k in PlatformKind::ALL {
            let p = Platform::new(k);
            let (compute, comm) = p.latency_breakdown_ms(&w);
            assert!(compute > 0.0 && comm > 0.0);
            // pipelined fps is bounded by the slower of the two stages
            let fps = p.fps(&w);
            let bound = 1e3 / compute.max(comm);
            assert!((fps - bound).abs() / bound < 1e-9);
        }
    }

    #[test]
    fn comm_share_grows_with_platform_speed() {
        // the faster the compute, the more the camera link matters — the
        // system-level argument for attaching the processor to the sensor
        let w = EyeCodWorkload::paper_default().into_workload();
        let share = |k: PlatformKind| {
            let (c, m) = Platform::new(k).latency_breakdown_ms(&w);
            m / (c + m)
        };
        assert!(share(PlatformKind::Gpu) > share(PlatformKind::Cpu));
        assert!(share(PlatformKind::Cpu) > share(PlatformKind::EdgeCpu));
    }

    #[test]
    fn gpu_is_compute_bound_edge_is_not_comm_bound() {
        let w = EyeCodWorkload::paper_default().into_workload();
        let gpu = Platform::new(PlatformKind::Gpu);
        let comm = gpu.link.transfer_us(w.offchip_bytes_per_frame) * 1e-6;
        let compute = gpu.frame_compute_seconds(&w);
        // even the fastest baseline pays a non-trivial comm cost relative
        // to compute — the paper's system-level bottleneck argument
        assert!(comm > 0.2 * compute, "comm {comm} vs compute {compute}");
    }
}
