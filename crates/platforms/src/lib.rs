//! # eyecod-platforms
//!
//! Analytical models of the baseline computing platforms and of the
//! camera→processor communication links used in the paper's overall
//! comparison (Fig. 14): EdgeCPU (Raspberry Pi), CPU (AMD EPYC 7742),
//! EdgeGPU (Nvidia Jetson TX2), GPU (Nvidia RTX 2080 Ti) and the prior-art
//! eye-tracking ASIC CIS-GEP (Bong et al., JSSC 2016).
//!
//! None of that hardware is available in this environment, so each platform
//! is a roofline-style model: an *effective* sustained MAC rate for
//! batch-1 eye-tracking inference (peak × an achievable-utilisation factor
//! estimated from public spec sheets and the usual batch-1 efficiency of
//! small convolutions), a system power, and a communication link. The
//! EyeCoD row of the comparison comes from the cycle-level simulator in
//! `eyecod-accel`, not from a model of this kind.
//!
//! What the reproduction claims from these models is the *shape* of
//! Fig. 14 — who wins, by roughly what factor — not absolute FPS.

pub mod comm;
pub mod platform;
pub mod system;

pub use comm::CommLink;
pub use platform::{Platform, PlatformKind};
pub use system::{compare_all, PlatformResult};
