//! Camera→processor communication links.
//!
//! The paper's system-level argument: a lens camera's focal stack forces it
//! centimetres away from the processor, over a long flex/MIPI link; the
//! 2 mm-thin FlatCam lets the accelerator sit directly behind the sensor,
//! so measurements cross a short attached interface — and with the first
//! DNN layer folded into the mask, fewer bytes cross it.

use serde::{Deserialize, Serialize};

/// A point-to-point link carrying frames from the camera to the processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommLink {
    /// Usable bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// Fixed per-frame latency in microseconds (serialisation, protocol,
    /// buffering).
    pub fixed_latency_us: f64,
    /// Energy cost per transmitted byte in picojoules.
    pub energy_pj_per_byte: f64,
}

impl CommLink {
    /// A lens-based HMD camera module: a longer flex cable at MIPI-class
    /// rates with DMA/ISP buffering overhead.
    pub fn lens_module() -> Self {
        CommLink {
            bandwidth_mbps: 1_500.0,
            fixed_latency_us: 350.0,
            energy_pj_per_byte: 120.0,
        }
    }

    /// The FlatCam-attached EyeCoD interface: the accelerator sits directly
    /// behind the bare sensor.
    pub fn attached_sensor() -> Self {
        CommLink {
            bandwidth_mbps: 8_000.0,
            fixed_latency_us: 8.0,
            energy_pj_per_byte: 20.0,
        }
    }

    /// Per-frame transfer time in microseconds for `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the link has non-positive bandwidth.
    pub fn transfer_us(&self, bytes: u64) -> f64 {
        assert!(self.bandwidth_mbps > 0.0, "link bandwidth must be positive");
        self.fixed_latency_us + bytes as f64 * 8.0 / self.bandwidth_mbps
    }

    /// Per-frame transfer energy in joules for `bytes`.
    pub fn transfer_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_pj_per_byte * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attached_link_is_much_faster_for_a_frame() {
        let frame = 256 * 256; // bytes
        let lens = CommLink::lens_module().transfer_us(frame as u64);
        let flat = CommLink::attached_sensor().transfer_us((192 * 192) as u64);
        assert!(
            lens > 5.0 * flat,
            "lens comm {lens:.0}us should dwarf attached {flat:.0}us"
        );
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let l = CommLink::attached_sensor();
        let small = l.transfer_us(1_000);
        let large = l.transfer_us(1_000_000);
        assert!(large > small);
        // asymptotically linear
        let slope = (l.transfer_us(2_000_000) - large) / 1_000_000.0;
        assert!((slope - 8.0 / l.bandwidth_mbps).abs() < 1e-9);
    }

    #[test]
    fn energy_is_linear_in_bytes() {
        let l = CommLink::lens_module();
        assert!((l.transfer_energy_j(2_000) - 2.0 * l.transfer_energy_j(1_000)).abs() < 1e-18);
    }

    #[test]
    fn zero_bytes_still_pay_fixed_latency() {
        let l = CommLink::lens_module();
        assert_eq!(l.transfer_us(0), l.fixed_latency_us);
    }
}
