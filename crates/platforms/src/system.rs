//! End-to-end system comparison (paper Fig. 14).

use crate::comm::CommLink;
use crate::platform::{Platform, PlatformKind};
use eyecod_accel::config::AcceleratorConfig;
use eyecod_accel::schedule::WindowSimulator;
use eyecod_accel::workload::{EyeCodWorkload, PipelineWorkload};
use serde::{Deserialize, Serialize};

/// One row of the overall comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlatformResult {
    /// Platform label ("EdgeCPU", …, "EyeCoD").
    pub name: String,
    /// End-to-end throughput in frames per second.
    pub fps: f64,
    /// Frames per joule.
    pub frames_per_joule: f64,
    /// Energy efficiency normalised to the best entry (1.0 = best).
    pub norm_energy_eff: f64,
}

/// Runs the full Fig. 14 comparison. Every platform executes the same
/// EyeCoD algorithm pipeline at batch 1 (the paper's protocol); the
/// baselines run it on their roofline models behind a camera-module link,
/// while EyeCoD runs it on the cycle-level accelerator simulator directly
/// behind the sensor.
pub fn compare_all() -> Vec<PlatformResult> {
    let workload = EyeCodWorkload::paper_default().into_workload();
    compare_with(&workload, AcceleratorConfig::paper_default())
}

/// The comparison with an explicit workload/configuration (for ablations).
pub fn compare_with(
    eyecod_workload: &PipelineWorkload,
    config: AcceleratorConfig,
) -> Vec<PlatformResult> {
    let mut rows: Vec<PlatformResult> = PlatformKind::ALL
        .iter()
        .map(|&k| {
            let p = Platform::new(k);
            PlatformResult {
                name: p.kind.label().to_owned(),
                fps: p.fps(eyecod_workload),
                frames_per_joule: p.frames_per_joule(eyecod_workload),
                norm_energy_eff: 0.0,
            }
        })
        .collect();

    // EyeCoD: cycle-level simulation + attached link, pipelined.
    let sim = WindowSimulator::new(config);
    let report = sim.run_window(eyecod_workload);
    let link = CommLink::attached_sensor();
    let comm_s = link.transfer_us(eyecod_workload.offchip_bytes_per_frame) * 1e-6;
    let compute_s = 1.0 / report.fps;
    let fps = 1.0 / compute_s.max(comm_s);
    let energy_per_frame = report.energy_per_frame_mj * 1e-3
        + link.transfer_energy_j(eyecod_workload.offchip_bytes_per_frame);
    rows.push(PlatformResult {
        name: "EyeCoD".to_owned(),
        fps,
        frames_per_joule: 1.0 / energy_per_frame,
        norm_energy_eff: 0.0,
    });

    let best = rows
        .iter()
        .map(|r| r.frames_per_joule)
        .fold(f64::MIN, f64::max);
    for r in &mut rows {
        r.norm_energy_eff = r.frames_per_joule / best;
    }
    rows
}

/// Convenience lookup of a row by name.
///
/// # Panics
///
/// Panics if the name is absent.
pub fn row<'a>(rows: &'a [PlatformResult], name: &str) -> &'a PlatformResult {
    rows.iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("no row named {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eyecod_wins_throughput_and_energy() {
        let rows = compare_all();
        let eyecod = row(&rows, "EyeCoD");
        for r in &rows {
            if r.name != "EyeCoD" {
                assert!(
                    eyecod.fps > r.fps,
                    "EyeCoD {:.0} fps must beat {} {:.0} fps",
                    eyecod.fps,
                    r.name,
                    r.fps
                );
                assert!(eyecod.frames_per_joule > r.frames_per_joule);
            }
        }
        assert!((eyecod.norm_energy_eff - 1.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_factors_have_the_papers_shape() {
        // Fig. 14: EyeCoD/GPU ≈ 2.6x is the smallest gap, EyeCoD/EdgeCPU is
        // three orders of magnitude, CPU/EdgeGPU/CIS-GEP sit in the tens.
        let rows = compare_all();
        let e = row(&rows, "EyeCoD").fps;
        let gpu = e / row(&rows, "GPU").fps;
        let cpu = e / row(&rows, "CPU").fps;
        let edge_gpu = e / row(&rows, "EdgeGPU").fps;
        let edge_cpu = e / row(&rows, "EdgeCPU").fps;
        let cis = e / row(&rows, "CIS-GEP").fps;
        assert!((1.5..8.0).contains(&gpu), "GPU speedup {gpu:.2}");
        assert!((5.0..40.0).contains(&cpu), "CPU speedup {cpu:.2}");
        assert!(
            (5.0..45.0).contains(&edge_gpu),
            "EdgeGPU speedup {edge_gpu:.2}"
        );
        assert!((5.0..45.0).contains(&cis), "CIS-GEP speedup {cis:.2}");
        assert!(edge_cpu > 500.0, "EdgeCPU speedup {edge_cpu:.0}");
        // and the orderings among them
        assert!(gpu < cpu && gpu < edge_gpu && gpu < cis);
        assert!(edge_cpu > 20.0 * cpu);
    }

    #[test]
    fn cis_gep_is_the_closest_baseline_on_energy() {
        // Fig. 14: 8.81x over the most competitive baseline, CIS-GEP.
        let rows = compare_all();
        let e = row(&rows, "EyeCoD").frames_per_joule;
        let cis = row(&rows, "CIS-GEP").frames_per_joule;
        let ratio = e / cis;
        assert!(
            (2.0..30.0).contains(&ratio),
            "EyeCoD/CIS-GEP energy ratio {ratio:.2}"
        );
        for name in ["EdgeCPU", "CPU", "EdgeGPU", "GPU"] {
            assert!(cis > row(&rows, name).frames_per_joule);
        }
    }

    #[test]
    fn eyecod_meets_realtime_target() {
        let rows = compare_all();
        assert!(row(&rows, "EyeCoD").fps > 240.0);
    }
}
