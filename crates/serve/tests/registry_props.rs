//! Property suite for the registry lifecycle plus the serve tick's
//! worker-count invariance.
//!
//! The lifecycle tests drive random interleavings of
//! create/feed/snapshot/evict against a plain vector model and pin the
//! generational-id guarantees: an evicted id never resolves again (even
//! after its slot is reused), live ids always resolve, and the active
//! session count is exact at every step. The invariance test pins the
//! determinism claim from the crate docs: a registry on an N-worker pool
//! produces frame-for-frame identical output to a sequential one.

use std::sync::OnceLock;

use eyecod_core::tracker::{GazeBackend, TrackedFrame, TrackerConfig};
use eyecod_core::training::{train_tracker_models, TrackerModels, TrainingSetup};
use eyecod_eyedata::render::{render_eye, EyeParams};
use eyecod_faults::FaultPlan;
use eyecod_serve::{ServeConfig, ServeError, ServeRegistry, SessionId};
use eyecod_tensor::Tensor;
use proptest::prelude::*;

/// Train once and prerender a small scene pool; both are the expensive
/// parts and every test reuses them read-only.
fn shared() -> &'static (TrackerConfig, TrackerModels, Vec<Tensor>) {
    static SHARED: OnceLock<(TrackerConfig, TrackerModels, Vec<Tensor>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let cfg = TrackerConfig::small();
        let models = train_tracker_models(&TrainingSetup::quick(), &cfg);
        let scenes = (0..6u64)
            .map(|i| {
                let mut p = EyeParams::centered(cfg.scene_size);
                p.yaw = 0.05 * i as f32 - 0.12;
                p.pitch = 0.03 * i as f32 - 0.08;
                render_eye(&p, cfg.scene_size, i).image
            })
            .collect();
        (cfg, models, scenes)
    })
}

fn registry(mutate: impl FnOnce(&mut ServeConfig)) -> ServeRegistry {
    let (cfg, models, _) = shared();
    let mut sc = ServeConfig::new(cfg.clone());
    sc.threads = Some(0);
    mutate(&mut sc);
    ServeRegistry::new(sc, models.clone_models()).with_faults(FaultPlan::none())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random create/feed/tick/snapshot/evict interleavings against a
    /// vector model: counts exact, live ids resolve, dead ids never do.
    #[test]
    fn lifecycle_interleavings_keep_ids_generational(
        ops in collection::vec((0u8..5, 0usize..8), 4..40),
    ) {
        let (_, _, scenes) = shared();
        let mut reg = registry(|c| {
            c.max_sessions = 4;
            c.queue_capacity = 2;
        });
        let mut live: Vec<SessionId> = Vec::new();
        let mut dead: Vec<SessionId> = Vec::new();
        for (op, k) in ops {
            match op {
                0 => match reg.create() {
                    Ok(id) => {
                        prop_assert!(live.len() < 4, "create succeeded past the cap");
                        prop_assert!(!live.contains(&id));
                        live.push(id);
                    }
                    Err(e) => {
                        prop_assert_eq!(live.len(), 4, "create refused below the cap");
                        prop_assert_eq!(e, ServeError::AtCapacity(4));
                    }
                },
                1 if !live.is_empty() => {
                    let id = live.remove(k % live.len());
                    let snap = reg.evict(id);
                    prop_assert!(snap.is_ok());
                    dead.push(id);
                }
                2 if !live.is_empty() => {
                    let id = live[k % live.len()];
                    let fed = reg.feed(id, &scenes[k % scenes.len()], k as u64);
                    prop_assert!(fed.is_ok());
                }
                3 => {
                    let report = reg.tick();
                    prop_assert!(report.staged <= live.len());
                    prop_assert_eq!(report.staged, report.completed);
                }
                4 if !live.is_empty() => {
                    let id = live[k % live.len()];
                    let snap = reg.snapshot(id);
                    prop_assert!(snap.is_ok());
                    prop_assert_eq!(snap.unwrap().id, id);
                }
                _ => {}
            }
            // the core generational guarantees, checked after every op
            prop_assert_eq!(reg.sessions_active(), live.len());
            for id in &live {
                prop_assert!(reg.contains(*id), "live id {id:?} failed to resolve");
            }
            for id in &dead {
                prop_assert!(!reg.contains(*id), "evicted id {id:?} resolved");
                let refused = reg.snapshot(*id).unwrap_err();
                prop_assert!(
                    matches!(refused, ServeError::StaleSession(_) | ServeError::UnknownSession(_)),
                    "evicted id {id:?} refused with the wrong error: {refused:?}"
                );
            }
        }
    }

    /// Queue depth never exceeds capacity, shed accounting is exact, and
    /// `frames_ingested` counts every feed whatever its outcome.
    #[test]
    fn ingress_accounting_is_exact_under_any_feed_pattern(
        feeds in collection::vec(0usize..6, 1..30),
        capacity in 1usize..4,
    ) {
        let (_, _, scenes) = shared();
        let mut reg = registry(|c| c.queue_capacity = capacity);
        let id = reg.create().unwrap();
        let mut shed = 0u64;
        for (i, s) in feeds.iter().enumerate() {
            let out = reg.feed(id, &scenes[*s], i as u64).unwrap();
            if out.was_shed() {
                shed += 1;
            }
            let snap = reg.snapshot(id).unwrap();
            prop_assert!(snap.queue_depth <= capacity);
            prop_assert_eq!(snap.frames_ingested, i as u64 + 1);
            prop_assert_eq!(snap.stats.frames_shed as u64, shed);
        }
        prop_assert_eq!(shed, (feeds.len().saturating_sub(capacity)) as u64);
    }
}

/// One comparable line per completed frame (gaze compared bit-for-bit).
fn digest(id: SessionId, f: &TrackedFrame) -> String {
    format!(
        "{}:{} f{} gaze={:08x},{:08x},{:08x} q={:?} roi={:?} refreshed={} degenerate={} faults={:?}",
        id.index(),
        id.generation(),
        f.frame,
        f.gaze.x.to_bits(),
        f.gaze.y.to_bits(),
        f.gaze.z.to_bits(),
        f.quality,
        f.roi,
        f.roi_refreshed,
        f.gaze_degenerate,
        f.faults,
    )
}

/// Runs the same mixed-backend fleet schedule on a registry with `threads`
/// background workers and returns every completed frame's digest.
fn run_fleet(threads: usize) -> Vec<String> {
    let (_, _, scenes) = shared();
    let mut reg = registry(|c| c.threads = Some(threads));
    let mut ids = Vec::new();
    for s in 0..6usize {
        let backend = if s % 2 == 0 {
            GazeBackend::F32
        } else {
            GazeBackend::Int8
        };
        ids.push(reg.create_with_backend(backend).unwrap());
    }
    let mut out = Vec::new();
    for step in 0..30u64 {
        for (s, id) in ids.iter().enumerate() {
            // a ragged schedule: not every session gets a frame every tick
            if !(step + s as u64).is_multiple_of(3) {
                reg.feed(*id, &scenes[(step as usize + s) % scenes.len()], step)
                    .unwrap();
            }
        }
        let (_, trace) = reg.tick_traced();
        out.extend(trace.iter().map(|(id, f)| digest(*id, f)));
        // mid-run churn: evict one session and replace it, same backend
        if step == 17 {
            let victim = ids.remove(2);
            reg.evict(victim).unwrap();
            ids.insert(2, reg.create_with_backend(GazeBackend::F32).unwrap());
        }
    }
    out
}

/// The determinism pin: worker count is invisible in the output. Parallel
/// prepare touches disjoint sessions and the batched GEMM processes items
/// independently, so 0, 1 and 3 background workers must produce
/// byte-identical traces.
#[test]
fn worker_count_never_changes_any_frame() {
    let sequential = run_fleet(0);
    assert!(!sequential.is_empty());
    for threads in [1usize, 3] {
        let parallel = run_fleet(threads);
        assert_eq!(
            sequential.len(),
            parallel.len(),
            "{threads}-worker run completed a different frame count"
        );
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a, b, "{threads}-worker run diverged");
        }
    }
}
