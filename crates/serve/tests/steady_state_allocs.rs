//! Allocation regression for the serving layer: a steady-state serve tick
//! over a warm 16-session registry must not touch the heap — in the
//! batched tick *and* in the columnar scheduled tick.
//!
//! Everything on the feed+tick path is arena- or freelist-backed: ingress
//! scenes recycle through each session's spare-buffer list, staged work
//! lists and batch index vectors retain capacity across ticks, the batch
//! arenas reuse their gather/output tensors, and each hosted tracker's
//! frame path is the zero-allocation one pinned by the core suite. The
//! scheduled tick adds the store's stage columns (images, crops, gaze
//! inputs, predictions, acquisition scratch) and the scheduler's job /
//! flag / group buffers — all of which grow on session create or first
//! use only, never in a warm sweep. Once the fleet is warm — ROI scratch
//! built, int8 calibrated, the latent batch arena grown, every static
//! counter materialised — feeding and ticking 16 sessions (mixed
//! f32/int8/latent) performs **zero** transient heap allocations on
//! non-refresh frames.
//!
//! Kept as a single `#[test]` so no concurrent test pollutes the process-
//! wide allocation counter while a round is being measured.

use eyecod_core::alloc_counter::{allocations, CountingAllocator};
use eyecod_core::tracker::{GazeBackend, TrackerConfig};
use eyecod_core::training::{train_tracker_models, TrackerModels, TrainingSetup};
use eyecod_eyedata::render::{render_eye, EyeParams};
use eyecod_faults::FaultPlan;
use eyecod_serve::{ServeConfig, ServeRegistry, TickMode};
use eyecod_telemetry::static_counter;
use eyecod_tensor::Tensor;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn prove_zero_alloc(mode: TickMode, cfg: &TrackerConfig, models: &TrackerModels, scene: &Tensor) {
    let mut sc = ServeConfig::new(cfg.clone());
    // the sequential inline pool: parallel dispatch would hand jobs to
    // worker threads whose own bookkeeping is outside this test's scope
    sc.threads = Some(0);
    sc.mode = mode;
    let mut reg = ServeRegistry::new(sc, models.clone_models()).with_faults(FaultPlan::none());
    let ids: Vec<_> = (0..16)
        .map(|s| {
            let backend = match s % 3 {
                0 => GazeBackend::F32,
                1 => GazeBackend::Int8,
                _ => GazeBackend::Latent,
            };
            reg.create_with_backend(backend).unwrap()
        })
        .collect();

    // warm-up: per-session trackers see frames 0..12, covering both ROI
    // refreshes (`roi_period` 10), the fleet int8 calibration (8 warming
    // sessions fill the 8-crop window on the first tick), spare-buffer and
    // arena growth, column growth, and every telemetry static
    for round in 0..12u64 {
        for id in &ids {
            reg.feed(*id, scene, round).unwrap();
        }
        reg.tick();
    }
    assert!(
        reg.int8_calibrated(),
        "{mode:?}: fleet calibration must finish in warm-up"
    );

    // frames 12..18 per session: no ROI refresh falls in the window (next
    // is frame 20), so every feed+tick round must be allocation-free
    let steady_before = static_counter!("serve/steady_state_allocs").get();
    for round in 12..18u64 {
        let before = allocations();
        for id in &ids {
            reg.feed(*id, scene, round).unwrap();
        }
        let report = reg.tick();
        let delta = allocations() - before;
        assert_eq!(report.staged, 16);
        assert_eq!(
            delta, 0,
            "{mode:?}: steady-state serve round {round} made {delta} heap allocations"
        );
    }
    if mode == TickMode::Scheduled {
        // the scheduler's own telemetry must agree with the external proof
        let steady = static_counter!("serve/steady_state_allocs").get() - steady_before;
        assert_eq!(
            steady, 0,
            "serve/steady_state_allocs recorded {steady} allocations in warm scheduled ticks"
        );
    }
}

#[test]
fn steady_state_serve_ticks_do_not_allocate() {
    let cfg = TrackerConfig::small();
    let models = train_tracker_models(&TrainingSetup::quick(), &cfg);
    // rendered once, outside the measured window
    let scene = render_eye(&EyeParams::centered(cfg.scene_size), cfg.scene_size, 0).image;

    prove_zero_alloc(TickMode::Batched, &cfg, &models, &scene);
    prove_zero_alloc(TickMode::Scheduled, &cfg, &models, &scene);
}
