//! Overload + fault chaos: 256 sessions fed at an unsustainable rate
//! under the `heavy` fault preset.
//!
//! The serving layer's promise under abuse is *graceful, bounded, and
//! reproducible* degradation:
//!
//! * zero panics — the whole run completing is the assertion;
//! * queue depth never exceeds the configured capacity, on any session,
//!   at any point;
//! * the fleet `frames_shed` count is exactly the feed excess and only
//!   ever grows;
//! * once a session has produced one good frame, every frame it sheds is
//!   graded `Degraded` — a capacity decision, never `Lost` (which is
//!   reserved for pipeline failures);
//! * the entire scenario — faults, sheds, gaze outputs — replays
//!   byte-identically under the same seed.

use std::sync::OnceLock;

use eyecod_core::tracker::{GazeBackend, TrackerConfig};
use eyecod_core::training::{train_tracker_models, TrackerModels, TrainingSetup};
use eyecod_eyedata::render::{render_eye, EyeParams};
use eyecod_faults::{FaultPlan, FrameQuality};
use eyecod_serve::{ServeConfig, ServeRegistry, TickMode};
use eyecod_tensor::Tensor;

const SESSIONS: usize = 256;
const QUEUE: usize = 2;
/// Frames fed per session per tick; service rate is 1, so 2 of every 3
/// fed frames must be shed at steady state.
const OVERLOAD: usize = 3;
const CHAOS_TICKS: usize = 8;
const SEED: u64 = 0xC0FFEE;

fn shared() -> &'static (TrackerConfig, TrackerModels, Vec<Tensor>) {
    static SHARED: OnceLock<(TrackerConfig, TrackerModels, Vec<Tensor>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let cfg = TrackerConfig::small();
        let models = train_tracker_models(&TrainingSetup::quick(), &cfg);
        let scenes = (0..5u64)
            .map(|i| {
                let mut p = EyeParams::centered(cfg.scene_size);
                p.yaw = 0.05 * i as f32 - 0.1;
                render_eye(&p, cfg.scene_size, i).image
            })
            .collect();
        (cfg, models, scenes)
    })
}

/// One comparable line per observed event, for the replay digest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RunDigest {
    shed_events: Vec<String>,
    frames: Vec<String>,
    fleet: String,
}

/// Runs the full chaos scenario once and returns its digest, asserting
/// the graceful-degradation invariants along the way.
fn run_chaos(mode: TickMode, threads: usize) -> RunDigest {
    let (cfg, models, scenes) = shared();
    let mut sc = ServeConfig::new(cfg.clone());
    sc.queue_capacity = QUEUE;
    sc.mode = mode;
    sc.threads = Some(threads);
    let mut reg = ServeRegistry::new(sc, models.clone_models()).with_faults(FaultPlan::heavy(SEED));
    // half the fleet takes the configured default backend (CI runs this
    // suite under both `EYECOD_GAZE_BACKEND` values), the other half is
    // pinned int8 so fleet-shared calibration is always under load
    let ids: Vec<_> = (0..SESSIONS)
        .map(|s| {
            if s % 2 == 0 {
                reg.create().unwrap()
            } else {
                reg.create_with_backend(GazeBackend::Int8).unwrap()
            }
        })
        .collect();

    // Warm-up at a sustainable rate until every session has one clean
    // frame. Shed grading keys off the tracker's frame history (no frame
    // yet tracked -> nothing to degrade *to* -> Lost), so the
    // Degraded-never-Lost invariant is a steady-state promise; under the
    // heavy preset's 12 % frame drops a few sessions need several rounds.
    let mut warm_rounds = 0;
    loop {
        for (s, id) in ids.iter().enumerate() {
            reg.feed(
                *id,
                &scenes[(warm_rounds + s) % scenes.len()],
                warm_rounds as u64,
            )
            .unwrap();
        }
        reg.tick();
        warm_rounds += 1;
        let cold = ids
            .iter()
            .filter(|id| reg.snapshot(**id).unwrap().stats.frames_ok == 0)
            .count();
        if cold == 0 {
            break;
        }
        assert!(
            warm_rounds < 64,
            "{cold} sessions still without a clean frame after {warm_rounds} warm rounds"
        );
    }

    let warm_shed = reg.fleet_stats().frames_shed;
    let mut digest = RunDigest {
        shed_events: Vec::new(),
        frames: Vec::new(),
        fleet: String::new(),
    };
    let mut last_fleet_shed = warm_shed;
    let mut seed = 1000u64;
    for tick in 0..CHAOS_TICKS {
        for round in 0..OVERLOAD {
            for (s, id) in ids.iter().enumerate() {
                seed += 1;
                let out = reg
                    .feed(*id, &scenes[(tick + round + s) % scenes.len()], seed)
                    .unwrap();
                if let Some(f) = out.shed() {
                    // the core chaos invariant: overload degrades, it
                    // never reports a *lost* frame for a capacity decision
                    assert_eq!(
                        f.quality,
                        FrameQuality::Degraded,
                        "session {id:?} shed frame {} graded {:?}",
                        f.frame,
                        f.quality
                    );
                    digest
                        .shed_events
                        .push(format!("{}:{} f{}", id.index(), tick, f.frame));
                }
                let depth = reg.snapshot(*id).unwrap().queue_depth;
                assert!(
                    depth <= QUEUE,
                    "queue depth {depth} exceeds capacity {QUEUE}"
                );
            }
        }
        let (report, trace) = reg.tick_traced();
        assert_eq!(report.staged, SESSIONS, "every session had work queued");
        for (id, f) in &trace {
            digest.frames.push(format!(
                "{} f{} {:08x}/{:08x}/{:08x} {:?}",
                id.index(),
                f.frame,
                f.gaze.x.to_bits(),
                f.gaze.y.to_bits(),
                f.gaze.z.to_bits(),
                f.quality
            ));
        }
        let fleet = reg.fleet_stats();
        assert!(
            fleet.frames_shed >= last_fleet_shed,
            "frames_shed went backwards"
        );
        last_fleet_shed = fleet.frames_shed;
    }

    // exact shed accounting: every chaos-fed frame was served, is still
    // parked in a queue, or was shed — nothing vanishes
    let fleet = reg.fleet_stats();
    let chaos_shed = fleet.frames_shed - warm_shed;
    let fed = SESSIONS * OVERLOAD * CHAOS_TICKS;
    let served = SESSIONS * CHAOS_TICKS;
    let parked: usize = ids
        .iter()
        .map(|id| reg.snapshot(*id).unwrap().queue_depth)
        .sum();
    assert_eq!(
        chaos_shed,
        fed - served - parked,
        "shed accounting should be exact under a deterministic schedule"
    );
    digest.fleet = format!(
        "frames={} shed={} ok={} degraded={} lost={}",
        fleet.frames, fleet.frames_shed, fleet.frames_ok, fleet.frames_degraded, fleet.frames_lost
    );
    digest
}

#[test]
fn overloaded_fleet_degrades_gracefully_and_replays_exactly() {
    let first = run_chaos(TickMode::Batched, 0);
    assert!(
        !first.shed_events.is_empty(),
        "the overload schedule must actually shed frames"
    );
    assert_eq!(first.frames.len(), SESSIONS * CHAOS_TICKS);
    // byte-identical replay: same seed, same fleet, same everything
    let second = run_chaos(TickMode::Batched, 0);
    assert_eq!(
        first, second,
        "chaos run is not reproducible under a fixed seed"
    );
}

/// The columnar leg of the overload matrix: the scheduled tick absorbs
/// the same 3× overload under `FaultPlan::heavy` (which injects a worker
/// panic into the column sweeps every tick) with zero panics escaping,
/// and its digest — sheds, gaze bits, quality grades, fleet totals — is
/// byte-identical to the sequential AoS reference *and* invariant to the
/// worker count driving the wavefront.
#[test]
fn overloaded_scheduled_fleet_matches_sequential_reference() {
    let reference = run_chaos(TickMode::Sequential, 0);
    assert!(!reference.shed_events.is_empty());
    let inline = run_chaos(TickMode::Scheduled, 0);
    assert_eq!(
        reference, inline,
        "scheduled (sequential pool) chaos digest diverged from the AoS reference"
    );
    let pooled = run_chaos(TickMode::Scheduled, 3);
    assert_eq!(
        reference, pooled,
        "scheduled (3-worker wavefront) chaos digest diverged from the AoS reference"
    );
}

/// The serve-level mirror of the pool's `try_parallel_map` pin: a fault
/// plan that kills column-sweep and wavefront jobs at their entry points
/// is recovered by the scheduler's inline retry, byte-identically — and
/// the recovery actually happened (the telemetry counter moved).
#[test]
fn worker_panic_during_column_sweep_recovers_byte_identically() {
    use eyecod_telemetry::static_counter;

    let (cfg, models, scenes) = shared();
    // kill: barrier capture sweep job 1 (stage 0, w = 1), a barrier recon
    // sweep job (stage 1 << 16 | 3), and two pipelined wavefront jobs
    // (0x100_0000 | stage << 16 | shard)
    let mut plan = FaultPlan::none();
    plan.exec.worker_panic_jobs = vec![1, (1 << 16) | 3, 0x100_0000, 0x100_0000 | (2 << 16) | 1];
    let run = |mode: TickMode, threads: usize| {
        let mut sc = ServeConfig::new(cfg.clone());
        sc.mode = mode;
        sc.threads = Some(threads);
        let mut reg = ServeRegistry::new(sc, models.clone_models()).with_faults(plan.clone());
        // mixed backends: int8 warm-up forces the barrier sweeps first,
        // then calibration flips the tick into the pipelined wavefront —
        // both job-id spaces get exercised
        let ids: Vec<_> = (0..8)
            .map(|s| {
                if s % 2 == 0 {
                    reg.create().unwrap()
                } else {
                    reg.create_with_backend(eyecod_core::tracker::GazeBackend::Int8)
                        .unwrap()
                }
            })
            .collect();
        let mut out = Vec::new();
        for step in 0..12u64 {
            for (s, id) in ids.iter().enumerate() {
                reg.feed(*id, &scenes[(step as usize + s) % scenes.len()], step)
                    .unwrap();
            }
            let (_, trace) = reg.tick_traced();
            for (id, f) in trace {
                out.push(format!(
                    "{} f{} {:08x}/{:08x}/{:08x} {:?}",
                    id.index(),
                    f.frame,
                    f.gaze.x.to_bits(),
                    f.gaze.y.to_bits(),
                    f.gaze.z.to_bits(),
                    f.quality
                ));
            }
        }
        out
    };
    let reference = run(TickMode::Sequential, 0);
    let before = static_counter!("serve/sched_panics_recovered").get();
    for threads in [0usize, 3] {
        let got = run(TickMode::Scheduled, threads);
        assert_eq!(
            reference, got,
            "{threads}-worker scheduled run with injected worker panics diverged"
        );
    }
    let recovered = static_counter!("serve/sched_panics_recovered").get() - before;
    assert!(
        recovered > 0,
        "the injected worker panics never fired — the pin is testing nothing"
    );
}
