//! Tick-mode differential: the serve layer's tentpole correctness claim.
//!
//! Registries run the identical fleet schedule — same models, same
//! sessions, same frames — once per [`TickMode`]: the sequential AoS
//! reference, the batched tick, and the columnar scheduled tick. The tick
//! mode is a pure execution-strategy choice, so:
//!
//! * f32 sessions must agree to a relative tolerance of 1e-4 (in practice
//!   the blocked GEMM is item-independent and they agree bit-for-bit; the
//!   tolerance is the contract, not the observation);
//! * int8 sessions must agree **bit-identically** — integer arithmetic has
//!   no rounding latitude for an execution strategy to hide in;
//! * latent sessions run f32 arithmetic through a *different* net (and an
//!   f32 recon path on refresh frames), so they carry the same 1e-4
//!   relative contract as the f32 backend;
//! * all properties must hold across ragged fleet sizes (1, 2, 7, 32
//!   sessions) and mixed f32/int8/latent populations, where batch
//!   partitioning across arena slots exercises every uneven split.
//!
//! (Deeper scheduled-mode coverage — worker counts, churn, fault plans —
//! lives in `stage_scheduler.rs`; this suite pins the three modes against
//! each other on the clean path.)

use std::sync::OnceLock;

use eyecod_core::tracker::{GazeBackend, TrackerConfig};
use eyecod_core::training::{train_tracker_models, TrackerModels, TrainingSetup};
use eyecod_eyedata::render::{render_eye, EyeParams};
use eyecod_faults::FaultPlan;
use eyecod_serve::{ServeConfig, ServeRegistry, SessionId, TickMode};
use eyecod_tensor::Tensor;

fn shared() -> &'static (TrackerConfig, TrackerModels, Vec<Tensor>) {
    static SHARED: OnceLock<(TrackerConfig, TrackerModels, Vec<Tensor>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let cfg = TrackerConfig::small();
        let models = train_tracker_models(&TrainingSetup::quick(), &cfg);
        let scenes = (0..8u64)
            .map(|i| {
                let mut p = EyeParams::centered(cfg.scene_size);
                p.yaw = 0.04 * i as f32 - 0.14;
                p.pitch = -0.03 * i as f32 + 0.1;
                render_eye(&p, cfg.scene_size, i).image
            })
            .collect();
        (cfg, models, scenes)
    })
}

fn registry(mode: TickMode) -> ServeRegistry {
    let (cfg, models, _) = shared();
    let mut sc = ServeConfig::new(cfg.clone());
    sc.mode = mode;
    sc.threads = Some(0);
    ServeRegistry::new(sc, models.clone_models()).with_faults(FaultPlan::none())
}

/// The three-backend rotation every fleet cycles through, phase-shifted so
/// `first` lands on session 0.
fn rotation_from(first: GazeBackend) -> [GazeBackend; 3] {
    const ORDER: [GazeBackend; 3] = [GazeBackend::F32, GazeBackend::Int8, GazeBackend::Latent];
    let start = ORDER.iter().position(|b| *b == first).unwrap();
    [ORDER[start], ORDER[(start + 1) % 3], ORDER[(start + 2) % 3]]
}

/// Runs `ticks` rounds of a `size`-session fleet (backends rotating
/// f32/int8/latent from `first`) and returns, per completed frame, the
/// session id, backend, frame index and raw gaze bits.
fn run(
    mode: TickMode,
    size: usize,
    first: GazeBackend,
    ticks: u64,
) -> Vec<(SessionId, GazeBackend, u64, [u32; 3])> {
    let (_, _, scenes) = shared();
    let mut reg = registry(mode);
    let rotation = rotation_from(first);
    let mut ids = Vec::new();
    for s in 0..size {
        let backend = rotation[s % rotation.len()];
        ids.push((reg.create_with_backend(backend).unwrap(), backend));
    }
    let mut out = Vec::new();
    for step in 0..ticks {
        for (s, (id, _)) in ids.iter().enumerate() {
            reg.feed(*id, &scenes[(step as usize + s) % scenes.len()], step)
                .unwrap();
        }
        let (_, trace) = reg.tick_traced();
        for (id, frame) in trace {
            let backend = ids.iter().find(|(i, _)| *i == id).unwrap().1;
            out.push((
                id,
                backend,
                frame.frame,
                [
                    frame.gaze.x.to_bits(),
                    frame.gaze.y.to_bits(),
                    frame.gaze.z.to_bits(),
                ],
            ));
        }
    }
    out
}

fn rel_close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-4 * b.abs().max(1.0)
}

fn compare_fleet(mode: TickMode, size: usize, first: GazeBackend) {
    // long enough that every int8 session passes through warm-up (f32
    // routing), shared calibration, and a stretch of true int8 serving
    let ticks = 12;
    let candidate = run(mode, size, first, ticks);
    let sequential = run(TickMode::Sequential, size, first, ticks);
    assert_eq!(candidate.len(), sequential.len());
    assert_eq!(candidate.len(), size * ticks as usize);
    for ((id_b, backend, frame_b, bits_b), (id_s, _, frame_s, bits_s)) in
        candidate.iter().zip(&sequential)
    {
        assert_eq!(
            (id_b, frame_b),
            (id_s, frame_s),
            "{mode:?}: trace order diverged"
        );
        match backend {
            // int8: integer arithmetic — the execution strategy must be
            // invisible to the last bit (the shared network is calibrated
            // from identical crops in both runs, so this covers
            // calibration too)
            GazeBackend::Int8 => assert_eq!(
                bits_b, bits_s,
                "{mode:?} size {size}: int8 session {id_b:?} frame {frame_b} not bit-identical"
            ),
            // f32 and latent: both pure f32 arithmetic (latent switches
            // nets between steady and refresh frames, but every path is
            // item-independent f32 GEMM) — the relative contract applies
            GazeBackend::F32 | GazeBackend::Latent => {
                for (xb, xs) in bits_b.iter().zip(bits_s) {
                    let (a, b) = (f32::from_bits(*xb), f32::from_bits(*xs));
                    assert!(
                        rel_close(a, b),
                        "{mode:?} size {size}: {backend:?} session {id_b:?} frame {frame_b}: {a} vs {b}"
                    );
                }
            }
        }
    }
}

#[test]
fn ragged_fleets_starting_f32_match() {
    for mode in [TickMode::Batched, TickMode::Scheduled] {
        for size in [1usize, 2, 7, 32] {
            compare_fleet(mode, size, GazeBackend::F32);
        }
    }
}

#[test]
fn ragged_fleets_starting_int8_match() {
    // starting int8 flips which sessions warm through the f32 batch and
    // which rows land where in the arena partitions
    for mode in [TickMode::Batched, TickMode::Scheduled] {
        for size in [1usize, 2, 7, 32] {
            compare_fleet(mode, size, GazeBackend::Int8);
        }
    }
}

#[test]
fn ragged_fleets_starting_latent_match() {
    // starting latent puts the recon-free rows first in the arena
    // partitions, and a size-1 fleet runs a latent session entirely alone
    // (its refresh frames still batch through the f32 route)
    for mode in [TickMode::Batched, TickMode::Scheduled] {
        for size in [1usize, 2, 7, 32] {
            compare_fleet(mode, size, GazeBackend::Latent);
        }
    }
}

/// The strictest leg pulled out on its own: across every mixed fleet, the
/// int8 sessions' full traces — warm-up frames included — must be
/// bit-identical between the modes, not merely within tolerance.
#[test]
fn int8_sessions_are_bit_identical_in_every_mixed_fleet() {
    let int8_only = |v: Vec<(SessionId, GazeBackend, u64, [u32; 3])>| {
        v.into_iter()
            .filter(|(_, b, _, _)| *b == GazeBackend::Int8)
            .collect::<Vec<_>>()
    };
    for mode in [TickMode::Batched, TickMode::Scheduled] {
        for size in [2usize, 7, 32] {
            let candidate = int8_only(run(mode, size, GazeBackend::Int8, 12));
            let sequential = int8_only(run(TickMode::Sequential, size, GazeBackend::Int8, 12));
            assert!(!candidate.is_empty());
            assert_eq!(
                candidate, sequential,
                "{mode:?} size {size} int8 traces diverged"
            );
        }
    }
}

/// Latent sessions in a mixed fleet must produce the same full trace —
/// steady recon-free frames and f32-routed refresh frames alike — under
/// every tick mode. The blocked f32 GEMM is item-independent, so the
/// traces agree bit-for-bit in practice; this leg pins that the latent
/// batch partition (a *third* arena next to f32 and int8) neither reorders
/// nor perturbs rows.
#[test]
fn latent_sessions_trace_identically_in_every_mixed_fleet() {
    let latent_only = |v: Vec<(SessionId, GazeBackend, u64, [u32; 3])>| {
        v.into_iter()
            .filter(|(_, b, _, _)| *b == GazeBackend::Latent)
            .collect::<Vec<_>>()
    };
    for mode in [TickMode::Batched, TickMode::Scheduled] {
        for size in [3usize, 7, 32] {
            let candidate = latent_only(run(mode, size, GazeBackend::Latent, 12));
            let sequential = latent_only(run(TickMode::Sequential, size, GazeBackend::Latent, 12));
            assert!(!candidate.is_empty());
            assert_eq!(
                candidate, sequential,
                "{mode:?} size {size} latent traces diverged"
            );
        }
    }
}
