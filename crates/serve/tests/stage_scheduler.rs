//! Scheduling-invariant property suite for the columnar scheduled tick.
//!
//! The scheduler's contract is that its stage decomposition is pure
//! execution strategy: for *any* fleet population, queue depth, feed
//! raggedness, mid-run evict/create churn and worker count, the scheduled
//! tick's trace is **byte-identical** (gaze bits, quality, ROI, fault
//! accounting) to the sequential AoS reference, and shed/ingest
//! accounting is exact. On top of the trace pin, the per-session stage
//! epochs are checked directly: after every tick each staged session's
//! capture/recon/crop stamps carry the frame index just completed — no
//! stage ever consumed a previous stage's output from a different frame
//! (the in-band `stamp_stage` asserts fire inside the tick; this suite
//! also reads the epochs back out-of-band).

use std::sync::OnceLock;

use eyecod_core::tracker::{GazeBackend, TrackedFrame, TrackerConfig};
use eyecod_core::training::{train_tracker_models, TrackerModels, TrainingSetup};
use eyecod_eyedata::render::{render_eye, EyeParams};
use eyecod_faults::FaultPlan;
use eyecod_serve::{ServeConfig, ServeRegistry, SessionId, TickMode};
use eyecod_tensor::Tensor;
use proptest::prelude::*;

fn shared() -> &'static (TrackerConfig, TrackerModels, Vec<Tensor>) {
    static SHARED: OnceLock<(TrackerConfig, TrackerModels, Vec<Tensor>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let cfg = TrackerConfig::small();
        let models = train_tracker_models(&TrainingSetup::quick(), &cfg);
        let scenes = (0..6u64)
            .map(|i| {
                let mut p = EyeParams::centered(cfg.scene_size);
                p.yaw = 0.05 * i as f32 - 0.12;
                p.pitch = 0.03 * i as f32 - 0.08;
                render_eye(&p, cfg.scene_size, i).image
            })
            .collect();
        (cfg, models, scenes)
    })
}

/// SplitMix64 — the schedule's only randomness, so a `Schedule` value
/// fully determines every run that executes it.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic fleet schedule: population, queue depth, feed pattern
/// seed, and a churn script (step, slot) of mid-run evict+recreate events.
#[derive(Debug, Clone)]
struct Schedule {
    size: usize,
    queue: usize,
    seed: u64,
    steps: u64,
    churn: Vec<(u64, usize)>,
}

/// One comparable line per completed frame, bit-exact.
fn digest(id: SessionId, f: &TrackedFrame) -> String {
    format!(
        "{}:{} f{} gaze={:08x},{:08x},{:08x} q={:?} roi={:?} refreshed={} degenerate={} faults={:?}",
        id.index(),
        id.generation(),
        f.frame,
        f.gaze.x.to_bits(),
        f.gaze.y.to_bits(),
        f.gaze.z.to_bits(),
        f.quality,
        f.roi,
        f.roi_refreshed,
        f.gaze_degenerate,
        f.faults,
    )
}

/// What one run of a schedule observed: the full frame trace plus exact
/// ingress accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RunResult {
    frames: Vec<String>,
    fed: u64,
    shed_at_feed: u64,
    /// Final per-session `(frames_ingested, frames_shed, queue_depth)` in
    /// slot order.
    accounting: Vec<(u64, u64, usize)>,
}

/// Executes `schedule` under the given tick mode and worker count.
fn run_schedule(schedule: &Schedule, mode: TickMode, threads: usize) -> RunResult {
    let (cfg, models, scenes) = shared();
    let mut sc = ServeConfig::new(cfg.clone());
    sc.queue_capacity = schedule.queue;
    sc.mode = mode;
    sc.threads = Some(threads);
    let mut reg = ServeRegistry::new(sc, models.clone_models()).with_faults(FaultPlan::none());
    // three-backend rotation: the scheduled tick must hold its invariants
    // with latent rows (a third gaze batch partition with its own arena)
    // interleaved among f32 and int8 rows
    let backend = |s: usize| match s % 3 {
        0 => GazeBackend::F32,
        1 => GazeBackend::Int8,
        _ => GazeBackend::Latent,
    };
    let mut ids: Vec<_> = (0..schedule.size)
        .map(|s| reg.create_with_backend(backend(s)).unwrap())
        .collect();
    let mut out = RunResult {
        frames: Vec::new(),
        fed: 0,
        shed_at_feed: 0,
        accounting: Vec::new(),
    };
    for step in 0..schedule.steps {
        for (s, id) in ids.iter().enumerate() {
            // ragged feeding: some sessions get 0 frames a step, some 2 —
            // queues fill, drain and shed on schedule-determined rhythm
            let feeds = mix(schedule.seed ^ step.wrapping_mul(31) ^ s as u64) % 3;
            for extra in 0..feeds {
                out.fed += 1;
                let scene = &scenes[(step as usize + s + extra as usize) % scenes.len()];
                let fed = reg.feed(*id, scene, step * 100 + extra).unwrap();
                if fed.was_shed() {
                    out.shed_at_feed += 1;
                }
            }
        }
        let (report, trace) = reg.tick_traced();
        assert_eq!(report.staged, report.completed);
        for (id, f) in &trace {
            out.frames.push(digest(*id, f));
        }
        // mid-run churn: evict a slot and refill it (same backend
        // rotation), exercising row recycling under a live scheduler
        for &(churn_step, slot) in &schedule.churn {
            if churn_step == step && !ids.is_empty() {
                let slot = slot % ids.len();
                let victim = ids.remove(slot);
                reg.evict(victim).unwrap();
                ids.insert(slot, reg.create_with_backend(backend(slot)).unwrap());
            }
        }
    }
    for id in &ids {
        let snap = reg.snapshot(*id).unwrap();
        out.accounting.push((
            snap.frames_ingested,
            snap.stats.frames_shed as u64,
            snap.queue_depth,
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole invariant: random populations × queue depths × churn
    /// scripts, replayed under worker counts {0, 1, 3} — every scheduled
    /// trace and every ingress count must match the sequential AoS
    /// reference byte-for-byte.
    #[test]
    fn scheduled_tick_is_byte_identical_to_sequential_reference(
        size in 2usize..7,
        queue in 1usize..4,
        seed in 0u64..1_000_000,
        churn in proptest::collection::vec((0u64..14, 0usize..8), 0..3),
    ) {
        let schedule = Schedule { size, queue, seed, steps: 14, churn };
        let reference = run_schedule(&schedule, TickMode::Sequential, 0);
        prop_assert!(!reference.frames.is_empty());
        // conservation: every fed frame was completed, shed at ingress, or
        // is still parked in a surviving queue (frames parked in *evicted*
        // sessions' queues are the only ones allowed to leave the books)
        let parked: u64 = reference.accounting.iter().map(|(_, _, d)| *d as u64).sum();
        prop_assert!(
            reference.fed >= reference.frames.len() as u64 + reference.shed_at_feed + parked,
            "frame conservation violated: fed {} < completed {} + shed {} + parked {}",
            reference.fed, reference.frames.len(), reference.shed_at_feed, parked
        );
        for threads in [0usize, 1, 3] {
            let got = run_schedule(&schedule, TickMode::Scheduled, threads);
            prop_assert_eq!(
                &reference, &got,
                "scheduled run ({} workers) diverged from the sequential reference", threads
            );
        }
    }
}

/// Exact shed/ingest bookkeeping on a deliberately overloaded scheduled
/// fleet: every fed frame is served, parked, or shed — nothing vanishes,
/// nothing double-counts — and the books agree with the sequential
/// reference's.
#[test]
fn scheduled_shed_and_ingest_accounting_is_exact() {
    let schedule = Schedule {
        size: 5,
        queue: 1,
        seed: 0xABCDEF,
        steps: 16,
        churn: vec![(9, 2)],
    };
    for threads in [0usize, 3] {
        let got = run_schedule(&schedule, TickMode::Scheduled, threads);
        // conservation: fed = completed + shed + still parked (evicted
        // sessions' parked/served frames leave `accounting`, so compare
        // against the sequential run rather than re-deriving)
        let reference = run_schedule(&schedule, TickMode::Sequential, 0);
        assert_eq!(reference, got, "{threads}-worker accounting diverged");
        assert!(got.shed_at_feed > 0, "queue=1 under 0..2 feeds must shed");
        let parked: u64 = got.accounting.iter().map(|(_, _, d)| *d as u64).sum();
        let ingested: u64 = got.accounting.iter().map(|(i, _, _)| *i).sum();
        let shed: u64 = got.accounting.iter().map(|(_, s, _)| *s).sum();
        assert!(parked <= got.accounting.len() as u64, "queue bound");
        assert!(shed <= ingested, "shed frames are a subset of ingested");
    }
}

/// Out-of-band stage-epoch conformance: after a scheduled tick, every
/// session that was staged carries capture/recon/crop stamps for exactly
/// the frame it just completed (stamp = frame + 1), and the gaze stamp
/// matches whenever the frame had a gaze input. A stage consuming another
/// frame's output would have tripped the in-band assert; this checks the
/// stamps actually advance in lockstep with the frame counter.
#[test]
fn stage_epochs_track_frame_indices_exactly() {
    let (cfg, models, scenes) = shared();
    let mut sc = ServeConfig::new(cfg.clone());
    sc.mode = TickMode::Scheduled;
    sc.threads = Some(3);
    let mut reg = ServeRegistry::new(sc, models.clone_models()).with_faults(FaultPlan::none());
    let ids: Vec<_> = (0..4)
        .map(|s| {
            let b = match s % 3 {
                0 => GazeBackend::F32,
                1 => GazeBackend::Int8,
                _ => GazeBackend::Latent,
            };
            reg.create_with_backend(b).unwrap()
        })
        .collect();
    for step in 0..9u64 {
        for (s, id) in ids.iter().enumerate() {
            reg.feed(*id, &scenes[(step as usize + s) % scenes.len()], step)
                .unwrap();
        }
        let (_, trace) = reg.tick_traced();
        assert_eq!(trace.len(), ids.len());
        for (id, f) in &trace {
            let epochs = reg.stage_epochs(*id).unwrap();
            // stamps are frame + 1 so that 0 means "never ran"
            for (stage, &e) in epochs.iter().take(3).enumerate() {
                assert_eq!(
                    e,
                    f.frame + 1,
                    "stage {stage} of {id:?} stamped frame {} after completing frame {}",
                    e.wrapping_sub(1),
                    f.frame
                );
            }
            // clean plan: every frame has a gaze input, so the gaze gather
            // stamp must match too
            assert_eq!(epochs[3], f.frame + 1, "gaze stamp of {id:?}");
        }
    }
}
