//! Multi-session serving layer: one process, thousands of eyes.
//!
//! A [`ServeRegistry`] hosts many concurrent [`EyeTracker`] sessions behind
//! a create/feed/tick/snapshot/evict lifecycle:
//!
//! * **Generational ids** — [`SessionId`] carries the slot's generation, so
//!   an id kept across an evict can never resolve to the slot's next
//!   occupant; every lookup is O(1).
//! * **Shared pool** — each serve tick prepares every staged frame
//!   (acquisition → ROI refresh → crop/resize) in parallel on the existing
//!   work-stealing pool (`eyecod-pool`), one session per job.
//! * **Columnar store + stage scheduler** — sessions live in a columnar
//!   `SessionStore` (rows = sessions, per-stage state = columns), and
//!   under [`TickMode::Scheduled`] a stage scheduler decomposes the tick
//!   into per-stage batch kernels (all captures → all recons → all
//!   crops/resizes → cross-session batched gaze) and pipelines stages of
//!   *different* session shards across pool workers — the paper's partial
//!   DNN time-multiplexing lifted to fleet level. Every stage stamps a
//!   per-session epoch and asserts its upstream stage ran for the *same*
//!   frame index, under any interleaving.
//! * **Cross-session micro-batching** — the tick gathers every prepared
//!   gaze crop into per-worker [`WorkspaceArena`] slots and runs one
//!   batched GEMM per worker instead of one forward per session; the
//!   fleet's time-multiplexing of the paper's two DNNs. Int8 sessions
//!   share a single fleet-calibrated [`QuantizedGazeNet`]; until enough
//!   calibration crops have been collected they ride the f32 batch,
//!   mirroring the single-tracker warm-up.
//! * **Backpressure** — each session has a bounded ingress queue
//!   ([`ServeConfig::queue_capacity`]); feeding a full queue sheds the
//!   *oldest* queued frame so the freshest data survives. Shed frames
//!   degrade ([`FrameQuality::Degraded`] once any frame has been tracked)
//!   instead of panicking or blocking, and are accounted in
//!   `serve/frames_shed` plus each session's
//!   [`TrackingStats::frames_shed`].
//! * **Telemetry** — fleet counters (`serve/sessions_active`,
//!   `serve/frames_ingested`, `serve/frames_shed`, `serve/batch_size`) and
//!   the `serve/batch_ns` batch-latency histogram flow into the global
//!   name-keyed registry and merge with per-tracker metrics in snapshots.
//!
//! Determinism is preserved end to end: batching partitions a tick's
//! forwards but never reorders or mixes them (batched GEMMs process items
//! independently), so a registry driven by an N-worker pool produces
//! frame-for-frame identical output to a sequential one — the property the
//! registry test suite pins.
//!
//! [`EyeTracker`]: eyecod_core::tracker::EyeTracker
//! [`WorkspaceArena`]: eyecod_models::infer::WorkspaceArena
//! [`QuantizedGazeNet`]: eyecod_models::quantized::QuantizedGazeNet
//! [`FrameQuality::Degraded`]: eyecod_faults::FrameQuality::Degraded
//! [`TrackingStats::frames_shed`]: eyecod_core::metrics::TrackingStats

mod config;
mod registry;
mod scheduler;
mod store;

pub use config::{ServeConfig, TickMode};
pub use registry::{FeedOutcome, ServeRegistry, SessionSnapshot, TickReport};

/// A generational session handle: `index` addresses the registry slot,
/// `generation` guards against use-after-evict. Ids from evicted sessions
/// fail every lookup with [`ServeError::StaleSession`] — a slot reused by a
/// later session bumps its generation first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId {
    index: u32,
    generation: u32,
}

impl SessionId {
    /// The registry slot this id addresses.
    pub fn index(self) -> u32 {
        self.index
    }

    /// The slot generation this id was minted under.
    pub fn generation(self) -> u32 {
        self.generation
    }

    pub(crate) fn new(index: u32, generation: u32) -> Self {
        SessionId { index, generation }
    }
}

/// Why a registry operation was refused. All refusals are recoverable —
/// the registry never panics on bad ids or bad frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The id's slot holds no session (never created, or index out of
    /// range).
    UnknownSession(SessionId),
    /// The id's slot was recycled: the session it referred to was evicted.
    StaleSession(SessionId),
    /// The registry is at [`ServeConfig::max_sessions`].
    AtCapacity(usize),
    /// The fed scene does not match the configured resolution.
    SceneShape {
        /// Configured square scene size.
        expected: usize,
        /// The offending scene's `(h, w)`.
        got: (usize, usize),
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownSession(id) => write!(f, "unknown session {id:?}"),
            ServeError::StaleSession(id) => write!(f, "stale session id {id:?} (evicted)"),
            ServeError::AtCapacity(max) => write!(f, "registry at capacity ({max} sessions)"),
            ServeError::SceneShape { expected, got } => {
                write!(f, "scene must be {expected}x{expected}, got {got:?}")
            }
        }
    }
}

impl std::error::Error for ServeError {}
