//! The cross-session stage scheduler: the columnar serve tick.
//!
//! The scheduled tick decomposes frame processing into per-stage batch
//! kernels over the [`SessionStore`](crate::store::SessionStore) columns —
//! all captures, then all reconstructions, then all ROI-refresh +
//! crop/resizes, then the cross-session batched gaze forward — and
//! pipelines stages of *different* session shards across pool workers: a
//! software wavefront of the paper's partial time-multiplexing, lifted
//! from two DNNs on one accelerator to four stages over a session fleet.
//!
//! Two sub-modes share the stage kernels:
//!
//! * **Barrier mode** runs while int8 sessions are still warming toward
//!   the fleet-shared calibration: each stage sweeps its column for every
//!   staged session (one pool job per session) with a barrier between
//!   stages, because routing must then run serially in work order to
//!   collect calibration crops deterministically.
//! * **Pipelined (wavefront) mode** runs otherwise: the staged sessions
//!   are split into one shard per pool participant, and wave `w` executes
//!   every `(shard = w - stage, stage)` pair concurrently — shard 0's gaze
//!   batch overlaps shard 1's crop sweep, shard 2's reconstruction and
//!   shard 3's capture. Routing is shard-local (backends are fixed and the
//!   shared network is calibrated, so routing has no cross-shard state).
//!
//! **Stage conformance.** Every stage stamps the session's epoch column
//! with `frame + 1` and asserts the upstream stage's stamp matches —
//! no stage can consume a previous stage's output from a different frame
//! index, under any interleaving. The invariant is cheap enough to stay on
//! in release builds; the `stage_scheduler` proptest suite drives it
//! through random churn.
//!
//! **Worker-panic recovery.** Every job checks the registry's
//! execution-plane fault plan at entry ([`FaultPlan::worker_panics`]) and
//! panics *before touching any column* when its deterministic job id is
//! listed; the sweep catches the unwind, flags the job, and re-runs it
//! inline at attempt 1 (which never re-fires). Because the injected panic
//! happens at the entry point, the retry replays the job from clean state
//! and the tick's output is byte-identical to an unfaulted run — the
//! serve-level mirror of the pool's `try_parallel_map` pin. (A *genuine*
//! mid-job panic is also caught, but its inline retry re-executes the
//! body as-is; a deterministic bug will surface on the retry instead of
//! being silently absorbed.)

use crate::store::{
    check_stage_row, stamp_stage_row, QueuedFrame, Route, SendPtr, SessionStore, STAGES,
    STAGE_CAPTURE, STAGE_CROP, STAGE_GAZE, STAGE_RECON,
};
use crate::{registry::ServeRegistry, SessionId};
use eyecod_core::acquisition::AcquireScratch;
use eyecod_core::metrics::TrackingStats;
use eyecod_core::tracker::{EyeTracker, GazeBackend, StageCursor, TrackedFrame};
use eyecod_faults::FaultPlan;
use eyecod_models::infer::BatchWorkspace;
use eyecod_models::latent::LatentGazeNet;
use eyecod_models::proxy::ProxyGazeNet;
use eyecod_models::quantized::QuantizedGazeNet;
use eyecod_telemetry::{static_counter, static_histogram};
use eyecod_tensor::{Shape, Tensor};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Reusable scheduler buffers owned by the registry: job lists, panic
/// flags, shard bounds, per-shard route groups and per-shard trace
/// staging. All grow on first use and are reused every tick — the warm
/// scheduled tick allocates nothing.
pub(crate) struct SchedState {
    /// This wave's `(stage, shard)` jobs.
    jobs: Vec<(u32, u32)>,
    /// Per-job panic flags for the current sweep/wave.
    failed: Vec<u8>,
    /// Shard `s` covers `work[bounds[s].0 as usize..bounds[s].1 as usize]`.
    bounds: Vec<(u32, u32)>,
    /// Per-shard f32 route groups (rows).
    f32_groups: Vec<Vec<u32>>,
    /// Per-shard int8 route groups (rows).
    i8_groups: Vec<Vec<u32>>,
    /// Per-shard latent route groups (rows).
    lat_groups: Vec<Vec<u32>>,
    /// Per-shard completed-frame staging for `tick_traced` (appended to
    /// the caller's trace in shard order = work order).
    traces: Vec<Vec<(SessionId, TrackedFrame)>>,
}

impl SchedState {
    pub(crate) fn new() -> Self {
        SchedState {
            jobs: Vec::new(),
            failed: Vec::new(),
            bounds: Vec::new(),
            f32_groups: Vec::new(),
            i8_groups: Vec::new(),
            lat_groups: Vec::new(),
            traces: Vec::new(),
        }
    }
}

/// Deterministic job id of a barrier-mode column-sweep job (`stage` sweep,
/// work index `w`). Stable across worker counts, so a fault plan listing a
/// job id kills the same logical job under any pool.
fn sweep_job_id(stage: usize, w: usize) -> u64 {
    (stage as u64) << 16 | w as u64
}

/// Deterministic job id of a pipelined wavefront job (`stage`, `shard`).
/// Offset away from the sweep ids so plans can target either mode.
fn wave_job_id(stage: usize, shard: usize) -> u64 {
    0x100_0000 | (stage as u64) << 16 | shard as u64
}

/// Everything a stage job touches, as raw column pointers plus shared
/// read-only references.
///
/// # Safety contract
///
/// Concurrent jobs touch **disjoint rows**: barrier sweeps run one job per
/// work index (rows in `work` are unique), and wavefront jobs partition
/// `work` into disjoint shard ranges while the wave structure guarantees a
/// shard runs at most one stage at a time. Group/trace/arena-slot pointers
/// are indexed by shard, and a shard belongs to exactly one job per wave.
struct Ctx<'a> {
    work: &'a [u32],
    bounds: &'a [(u32, u32)],
    plan: &'a FaultPlan,
    gaze: &'a ProxyGazeNet,
    latent: &'a LatentGazeNet,
    qnet: Option<&'a QuantizedGazeNet>,
    gaze_hw: (usize, usize),
    tracing: bool,
    // columns (row-indexed)
    trackers: SendPtr<Option<EyeTracker>>,
    staged: SendPtr<Option<QueuedFrame>>,
    cursors: SendPtr<Option<StageCursor>>,
    acquires: SendPtr<AcquireScratch>,
    images: SendPtr<Tensor>,
    crops: SendPtr<Tensor>,
    gaze_ins: SendPtr<Tensor>,
    preds: SendPtr<Tensor>,
    epochs: SendPtr<[u64; STAGES]>,
    routes: SendPtr<Route>,
    batch_pos: SendPtr<(u32, u32)>,
    backends: SendPtr<GazeBackend>,
    generations: SendPtr<u32>,
    stats: SendPtr<TrackingStats>,
    lasts: SendPtr<Option<TrackedFrame>>,
    spares: SendPtr<Vec<Tensor>>,
    // shard-indexed
    f32_groups: SendPtr<Vec<u32>>,
    i8_groups: SendPtr<Vec<u32>>,
    lat_groups: SendPtr<Vec<u32>>,
    traces: SendPtr<Vec<(SessionId, TrackedFrame)>>,
    f32_slots: SendPtr<BatchWorkspace>,
    i8_slots: SendPtr<BatchWorkspace>,
    lat_slots: SendPtr<BatchWorkspace>,
}

/// The capture stage for one row: open the frame, decide the sensor-plane
/// outcome, stage a fresh attempt-0 capture in the acquisition scratch.
fn capture_row(ctx: &Ctx<'_>, row: usize) {
    // SAFETY: per the Ctx contract this job is the only one touching `row`
    unsafe {
        let tracker = ctx.trackers.get(row).as_mut().expect("staged row is live");
        let qf = ctx.staged.get(row).as_ref().expect("frame staged");
        let mut cur = tracker.begin_frame(&qf.scene);
        tracker.capture_stage(&mut cur, &qf.scene, qf.noise_seed, ctx.acquires.get(row));
        stamp_stage_row(ctx.epochs.get(row), STAGE_CAPTURE, cur.frame(), row);
        *ctx.cursors.get(row) = Some(cur);
    }
}

/// The reconstruction stage for one row: staged measurement → image
/// column, with the tracker's corruption-retry / last-good-fallback tail.
fn recon_row(ctx: &Ctx<'_>, row: usize) {
    // SAFETY: per the Ctx contract this job is the only one touching `row`
    unsafe {
        let tracker = ctx.trackers.get(row).as_mut().expect("staged row is live");
        let qf = ctx.staged.get(row).as_ref().expect("frame staged");
        let cur = ctx.cursors.get(row).as_mut().expect("capture ran");
        tracker.recon_stage(
            cur,
            &qf.scene,
            qf.noise_seed,
            ctx.acquires.get(row),
            ctx.images.get(row),
        );
        stamp_stage_row(ctx.epochs.get(row), STAGE_RECON, cur.frame(), row);
    }
}

/// The ROI-refresh + crop/resize stage for one row: segmentation refresh
/// when due, then image column → crop column → gaze-input column.
fn crop_row(ctx: &Ctx<'_>, row: usize) {
    // SAFETY: per the Ctx contract this job is the only one touching `row`
    unsafe {
        let tracker = ctx.trackers.get(row).as_mut().expect("staged row is live");
        let cur = ctx.cursors.get(row).as_mut().expect("recon ran");
        tracker.roi_stage(cur, ctx.images.get(row));
        tracker.crop_stage(
            cur,
            ctx.images.get(row),
            ctx.crops.get(row),
            ctx.gaze_ins.get(row),
        );
        stamp_stage_row(ctx.epochs.get(row), STAGE_CROP, cur.frame(), row);
    }
}

/// Gather one shard's route group into its arena slot and run the batched
/// forward for its route ([`Route::F32`], [`Route::Int8`] or
/// [`Route::Latent`]).
fn run_group(ctx: &Ctx<'_>, shard: usize, group: &[u32], route: Route) {
    if group.is_empty() {
        return;
    }
    static_counter!("serve/batches").inc();
    static_counter!("serve/batch_size").add(group.len() as u64);
    let (gh, gw) = ctx.gaze_hw;
    // SAFETY: arena slot `shard` belongs to this job alone; rows in
    // `group` come from this shard's range
    unsafe {
        let slot = match route {
            Route::Int8 => &ctx.i8_slots,
            Route::Latent => &ctx.lat_slots,
            _ => &ctx.f32_slots,
        }
        .get(shard);
        slot.input.reset(Shape::new(group.len(), 1, gh, gw));
        for (j, &row) in group.iter().enumerate() {
            let row = row as usize;
            *ctx.batch_pos.get(row) = (shard as u32, j as u32);
            slot.input
                .batch_item_slice_mut(j)
                .copy_from_slice(ctx.gaze_ins.get(row).as_slice());
        }
        match route {
            Route::Int8 => ctx
                .qnet
                .expect("int8 routes only exist once calibrated")
                .forward_into(&slot.input, &mut slot.ws, &mut slot.output),
            Route::Latent => ctx
                .latent
                .forward_infer(&slot.input, &mut slot.ws, &mut slot.output),
            _ => ctx
                .gaze
                .forward_infer(&slot.input, &mut slot.ws, &mut slot.output),
        }
    }
}

/// The wavefront gaze + completion stage for one shard: shard-local
/// routing, batched forwards, prediction scatter and frame completion,
/// all in shard-range (= work) order.
///
/// Only runs in pipelined mode, i.e. with no warming int8 sessions — an
/// int8 backend here implies the shared network exists, so routing needs
/// no cross-shard calibration state.
fn gaze_shard(ctx: &Ctx<'_>, shard: usize) {
    let (start, end) = ctx.bounds[shard];
    // SAFETY: shard ranges are disjoint and this job owns shard `shard`'s
    // rows, groups, trace buffer and arena slots for the whole wave
    unsafe {
        let f32_group = ctx.f32_groups.get(shard);
        let i8_group = ctx.i8_groups.get(shard);
        let lat_group = ctx.lat_groups.get(shard);
        f32_group.clear();
        i8_group.clear();
        lat_group.clear();
        // route (shard-local); latent sessions split on the frame's
        // ROI-refresh flag exactly like the tracker's own dispatch
        for w in start..end {
            let row = ctx.work[w as usize] as usize;
            let cur = ctx.cursors.get(row).as_ref().expect("crop ran");
            if cur.has_gaze_input() {
                stamp_stage_row(ctx.epochs.get(row), STAGE_GAZE, cur.frame(), row);
                match *ctx.backends.get(row) {
                    GazeBackend::Int8 => {
                        *ctx.routes.get(row) = Route::Int8;
                        i8_group.push(row as u32);
                    }
                    GazeBackend::Latent if !cur.due() => {
                        *ctx.routes.get(row) = Route::Latent;
                        lat_group.push(row as u32);
                    }
                    _ => {
                        *ctx.routes.get(row) = Route::F32;
                        f32_group.push(row as u32);
                    }
                }
            } else {
                *ctx.routes.get(row) = Route::Fallback;
            }
        }
        run_group(ctx, shard, f32_group, Route::F32);
        run_group(ctx, shard, i8_group, Route::Int8);
        run_group(ctx, shard, lat_group, Route::Latent);
        // scatter + complete + account, in shard-range order
        for w in start..end {
            let row = ctx.work[w as usize] as usize;
            let route = *ctx.routes.get(row);
            let cur = ctx.cursors.get(row).take().expect("crop ran");
            let frame = cur.frame();
            let tracker = ctx.trackers.get(row).as_mut().expect("staged row is live");
            let pred = ctx.preds.get(row);
            let out = if route == Route::Fallback {
                check_stage_row(ctx.epochs.get(row), STAGE_CROP, frame, row);
                tracker.complete_stage(cur, pred)
            } else {
                check_stage_row(ctx.epochs.get(row), STAGE_GAZE, frame, row);
                let (p, j) = *ctx.batch_pos.get(row);
                let slot = match route {
                    Route::Int8 => &ctx.i8_slots,
                    Route::Latent => &ctx.lat_slots,
                    _ => &ctx.f32_slots,
                }
                .get(p as usize);
                let mut src = [0.0f32; 3];
                src.copy_from_slice(&slot.output.as_slice()[j as usize * 3..j as usize * 3 + 3]);
                tracker.complete_stage_with_pred(cur, &src, pred)
            };
            let qf = ctx.staged.get(row).take().expect("frame staged");
            let stats = ctx.stats.get(row);
            match &qf.truth {
                Some(t) => stats.record(&out, t),
                None => stats.record_unlabeled(&out),
            }
            ctx.spares.get(row).push(qf.scene);
            let lasts = ctx.lasts.get(row);
            if ctx.tracing {
                *lasts = Some(out.clone());
                ctx.traces
                    .get(shard)
                    .push((SessionId::new(row as u32, *ctx.generations.get(row)), out));
            } else {
                *lasts = Some(out);
            }
        }
    }
}

/// One pipelined wavefront job: run `stage` over shard `shard`, timed into
/// the stage's histogram.
fn run_wave_job(ctx: &Ctx<'_>, stage: usize, shard: usize) {
    let (start, end) = ctx.bounds[shard];
    match stage {
        STAGE_CAPTURE => static_histogram!("serve/stage_acquire_ns").time(|| {
            for w in start..end {
                capture_row(ctx, ctx.work[w as usize] as usize);
            }
        }),
        STAGE_RECON => static_histogram!("serve/stage_recon_ns").time(|| {
            for w in start..end {
                recon_row(ctx, ctx.work[w as usize] as usize);
            }
        }),
        STAGE_CROP => static_histogram!("serve/stage_crop_ns").time(|| {
            for w in start..end {
                crop_row(ctx, ctx.work[w as usize] as usize);
            }
        }),
        STAGE_GAZE => static_histogram!("serve/stage_gaze_ns").time(|| gaze_shard(ctx, shard)),
        _ => unreachable!("unknown stage {stage}"),
    }
}

/// One barrier-mode column-sweep job: run `stage` for the single session
/// at work index `w`, timed into the stage's histogram.
fn run_sweep_job(ctx: &Ctx<'_>, stage: usize, w: usize) {
    let row = ctx.work[w] as usize;
    match stage {
        STAGE_CAPTURE => {
            static_histogram!("serve/stage_acquire_ns").time(|| capture_row(ctx, row));
        }
        STAGE_RECON => static_histogram!("serve/stage_recon_ns").time(|| recon_row(ctx, row)),
        STAGE_CROP => static_histogram!("serve/stage_crop_ns").time(|| crop_row(ctx, row)),
        _ => unreachable!("barrier sweeps only run capture/recon/crop"),
    }
}

/// Builds the stage-job context over a destructured registry's columns.
/// The context holds only raw pointers plus shared references, so the
/// caller keeps disjoint `&mut` access to the scheduler's own buffers
/// (`jobs`, `failed`) while jobs run.
#[allow(clippy::too_many_arguments)]
fn build_ctx<'a>(
    work: &'a [u32],
    bounds: &'a [(u32, u32)],
    plan: &'a FaultPlan,
    gaze: &'a ProxyGazeNet,
    latent: &'a LatentGazeNet,
    qnet: Option<&'a QuantizedGazeNet>,
    gaze_hw: (usize, usize),
    tracing: bool,
    store: &mut SessionStore,
    f32_groups: &mut [Vec<u32>],
    i8_groups: &mut [Vec<u32>],
    lat_groups: &mut [Vec<u32>],
    traces: &mut [Vec<(SessionId, TrackedFrame)>],
    f32_slots: &mut [BatchWorkspace],
    i8_slots: &mut [BatchWorkspace],
    lat_slots: &mut [BatchWorkspace],
) -> Ctx<'a> {
    Ctx {
        work,
        bounds,
        plan,
        gaze,
        latent,
        qnet,
        gaze_hw,
        tracing,
        trackers: SendPtr(store.trackers.as_mut_ptr()),
        staged: SendPtr(store.staged.as_mut_ptr()),
        cursors: SendPtr(store.cursors.as_mut_ptr()),
        acquires: SendPtr(store.acquires.as_mut_ptr()),
        images: SendPtr(store.images.as_mut_ptr()),
        crops: SendPtr(store.crops.as_mut_ptr()),
        gaze_ins: SendPtr(store.gaze_ins.as_mut_ptr()),
        preds: SendPtr(store.preds.as_mut_ptr()),
        epochs: SendPtr(store.epochs.as_mut_ptr()),
        routes: SendPtr(store.routes.as_mut_ptr()),
        batch_pos: SendPtr(store.batch_pos.as_mut_ptr()),
        backends: SendPtr(store.backends.as_mut_ptr()),
        generations: SendPtr(store.generations.as_mut_ptr()),
        stats: SendPtr(store.stats.as_mut_ptr()),
        lasts: SendPtr(store.lasts.as_mut_ptr()),
        spares: SendPtr(store.spares.as_mut_ptr()),
        f32_groups: SendPtr(f32_groups.as_mut_ptr()),
        i8_groups: SendPtr(i8_groups.as_mut_ptr()),
        lat_groups: SendPtr(lat_groups.as_mut_ptr()),
        traces: SendPtr(traces.as_mut_ptr()),
        f32_slots: SendPtr(f32_slots.as_mut_ptr()),
        i8_slots: SendPtr(i8_slots.as_mut_ptr()),
        lat_slots: SendPtr(lat_slots.as_mut_ptr()),
    }
}

impl ServeRegistry {
    /// The scheduled (columnar) tick. Dispatches to the pipelined
    /// wavefront unless int8 sessions are still warming toward the shared
    /// calibration, in which case the barrier form runs (calibration-crop
    /// collection needs a serial, work-ordered routing pass).
    pub(crate) fn tick_scheduled(
        &mut self,
        trace: Option<&mut Vec<(SessionId, TrackedFrame)>>,
    ) -> (usize, usize, usize) {
        // steady-state proof: a warm scheduled tick (no ROI refresh due,
        // untraced) must not allocate
        let steady = trace.is_none()
            && !self.work.iter().any(|&r| {
                let t = self.store.trackers[r as usize].as_ref().expect("staged");
                t.frames_processed()
                    .is_multiple_of(t.config().roi_period as u64)
            });
        let allocs_before = eyecod_core::alloc_counter::allocations();
        let warming = self.shared_qnet.is_none()
            && self
                .work
                .iter()
                .any(|&r| self.store.backends[r as usize] == GazeBackend::Int8);
        let counts = if warming {
            self.tick_scheduled_barrier(trace)
        } else {
            self.tick_scheduled_pipelined(trace)
        };
        if steady {
            static_counter!("serve/steady_state_allocs")
                .add(eyecod_core::alloc_counter::allocations() - allocs_before);
        }
        counts
    }

    /// Barrier-mode scheduled tick: per-stage column sweeps with a barrier
    /// between stages, then serial routing (collecting int8 calibration
    /// crops in work order), the shared batched forwards, and serial
    /// completion.
    fn tick_scheduled_barrier(
        &mut self,
        mut trace: Option<&mut Vec<(SessionId, TrackedFrame)>>,
    ) -> (usize, usize, usize) {
        let n = self.work.len();
        static_counter!("serve/sched_shards").add(n as u64);
        static_counter!("serve/sched_waves").add(STAGES as u64);
        for stage in [STAGE_CAPTURE, STAGE_RECON, STAGE_CROP] {
            self.run_column_sweep(stage);
        }
        // serial route in work order — this is where warming int8 sessions
        // contribute their calibration crops, deterministically
        self.f32_batch.clear();
        self.i8_batch.clear();
        self.lat_batch.clear();
        for w in 0..n {
            let row = self.work[w] as usize;
            let cur = self.store.cursors[row].as_ref().expect("crop ran");
            let has = cur.has_gaze_input();
            let due = cur.due();
            let frame = cur.frame();
            if has {
                self.store.stamp_stage(row, STAGE_GAZE, frame);
            }
            let non_finite = has && self.store.gaze_ins[row].has_non_finite();
            self.route_row(row, has, non_finite, due);
        }
        let counts = (
            self.f32_batch.len(),
            self.i8_batch.len(),
            self.lat_batch.len(),
        );
        static_histogram!("serve/stage_gaze_ns").time(|| {
            let group = std::mem::take(&mut self.f32_batch);
            self.run_batch(&group, Route::F32);
            self.f32_batch = group;
            let group = std::mem::take(&mut self.i8_batch);
            self.run_batch(&group, Route::Int8);
            self.i8_batch = group;
            let group = std::mem::take(&mut self.lat_batch);
            self.run_batch(&group, Route::Latent);
            self.lat_batch = group;
        });
        // serial completion in work order
        for w in 0..n {
            let row = self.work[w] as usize;
            let route = self.store.routes[row];
            let cur = self.store.cursors[row].take().expect("crop ran");
            let frame = cur.frame();
            let mut src = [0.0f32; 3];
            if route == Route::Fallback {
                self.store.check_stage(row, STAGE_CROP, frame);
            } else {
                self.store.check_stage(row, STAGE_GAZE, frame);
                let (p, j) = self.store.batch_pos[row];
                let arena = match route {
                    Route::Int8 => &self.i8_arena,
                    Route::Latent => &self.lat_arena,
                    _ => &self.f32_arena,
                };
                let out = arena.slot(p as usize).output.as_slice();
                src.copy_from_slice(&out[j as usize * 3..j as usize * 3 + 3]);
            }
            let store = &mut self.store;
            let tracker = store.trackers[row].as_mut().expect("staged row is live");
            let out = if route == Route::Fallback {
                tracker.complete_stage(cur, &mut store.preds[row])
            } else {
                tracker.complete_stage_with_pred(cur, &src, &mut store.preds[row])
            };
            self.account_completion(row, out, trace.as_deref_mut());
        }
        counts
    }

    /// One barrier-mode column sweep: `stage` for every staged session,
    /// one pool job per session, with injected-panic recovery.
    fn run_column_sweep(&mut self, stage: usize) {
        let n = self.work.len();
        static_counter!("serve/sched_jobs").add(n as u64);
        let ServeRegistry {
            config,
            models,
            faults,
            pool,
            store,
            work,
            f32_arena,
            i8_arena,
            lat_arena,
            shared_qnet,
            sched,
            ..
        } = self;
        let SchedState {
            failed,
            bounds,
            f32_groups,
            i8_groups,
            lat_groups,
            traces,
            ..
        } = sched;
        failed.clear();
        failed.resize(n, 0);
        let ctx = build_ctx(
            work,
            bounds,
            faults,
            &models.gaze,
            &models.latent,
            shared_qnet.as_ref(),
            config.tracker.gaze_input,
            false,
            store,
            f32_groups,
            i8_groups,
            lat_groups,
            traces,
            f32_arena.slots_mut(),
            i8_arena.slots_mut(),
            lat_arena.slots_mut(),
        );
        let failed_p = SendPtr(failed.as_mut_ptr());
        let pool = match pool {
            crate::registry::PoolHandle::Global => eyecod_pool::global(),
            crate::registry::PoolHandle::Owned(p) => p,
        };
        pool.parallel_for_chunked(n, 1, |w| {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                if ctx.plan.worker_panics(sweep_job_id(stage, w), 0) {
                    panic!("injected exec-plane fault: column-sweep job {w} stage {stage}");
                }
                run_sweep_job(&ctx, stage, w);
            }));
            if caught.is_err() {
                // SAFETY: flag `w` belongs to this job alone
                *unsafe { failed_p.get(w) } = 1;
            }
        });
        // deterministic inline retry: attempt 1 never re-fires the
        // injected panic, and the panic happened before any column write
        let mut recovered = 0u64;
        for (w, &flag) in failed.iter().enumerate().take(n) {
            if flag != 0 {
                run_sweep_job(&ctx, stage, w);
                recovered += 1;
            }
        }
        if recovered > 0 {
            static_counter!("serve/sched_panics_recovered").add(recovered);
        }
    }

    /// Pipelined wavefront scheduled tick: shards × stages on a diagonal
    /// wavefront, so stage `s` of shard `k` overlaps stage `s+1` of shard
    /// `k-1` on other workers.
    fn tick_scheduled_pipelined(
        &mut self,
        trace: Option<&mut Vec<(SessionId, TrackedFrame)>>,
    ) -> (usize, usize, usize) {
        let n = self.work.len();
        let shards = self.pool().participants().min(n);
        // shard bounds + per-shard buffers
        self.sched.bounds.clear();
        for s in 0..shards {
            self.sched
                .bounds
                .push(((s * n / shards) as u32, ((s + 1) * n / shards) as u32));
        }
        while self.sched.f32_groups.len() < shards {
            self.sched.f32_groups.push(Vec::new());
            self.sched.i8_groups.push(Vec::new());
            self.sched.lat_groups.push(Vec::new());
            self.sched.traces.push(Vec::new());
        }
        for s in 0..shards {
            self.sched.traces[s].clear();
        }
        self.f32_arena.ensure(shards);
        if self
            .work
            .iter()
            .any(|&r| self.store.backends[r as usize] == GazeBackend::Int8)
        {
            self.i8_arena.ensure(shards);
        }
        if self
            .work
            .iter()
            .any(|&r| self.store.backends[r as usize] == GazeBackend::Latent)
        {
            self.lat_arena.ensure(shards);
        }
        static_counter!("serve/sched_shards").add(shards as u64);
        let tracing = trace.is_some();
        let waves = shards + STAGES - 1;
        static_counter!("serve/sched_waves").add(waves as u64);
        {
            let ServeRegistry {
                config,
                models,
                faults,
                pool,
                store,
                work,
                f32_arena,
                i8_arena,
                lat_arena,
                shared_qnet,
                sched,
                ..
            } = &mut *self;
            let SchedState {
                jobs,
                failed,
                bounds,
                f32_groups,
                i8_groups,
                lat_groups,
                traces,
            } = sched;
            let ctx = build_ctx(
                work,
                bounds,
                faults,
                &models.gaze,
                &models.latent,
                shared_qnet.as_ref(),
                config.tracker.gaze_input,
                tracing,
                store,
                f32_groups,
                i8_groups,
                lat_groups,
                traces,
                f32_arena.slots_mut(),
                i8_arena.slots_mut(),
                lat_arena.slots_mut(),
            );
            let pool = match pool {
                crate::registry::PoolHandle::Global => eyecod_pool::global(),
                crate::registry::PoolHandle::Owned(p) => p,
            };
            for wave in 0..waves {
                // collect this wave's diagonal: (shard = wave - stage,
                // stage)
                jobs.clear();
                for stage in 0..STAGES {
                    let Some(shard) = wave.checked_sub(stage) else {
                        continue;
                    };
                    if shard < shards {
                        jobs.push((stage as u32, shard as u32));
                    }
                }
                let njobs = jobs.len();
                static_counter!("serve/sched_jobs").add(njobs as u64);
                failed.clear();
                failed.resize(njobs, 0);
                let failed_p = SendPtr(failed.as_mut_ptr());
                let job_list: &[(u32, u32)] = jobs;
                pool.parallel_for_chunked(njobs, 1, |i| {
                    let (stage, shard) = job_list[i];
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        if ctx
                            .plan
                            .worker_panics(wave_job_id(stage as usize, shard as usize), 0)
                        {
                            panic!(
                                "injected exec-plane fault: wavefront job \
                                 stage {stage} shard {shard}"
                            );
                        }
                        run_wave_job(&ctx, stage as usize, shard as usize);
                    }));
                    if caught.is_err() {
                        // SAFETY: flag `i` belongs to this job alone
                        *unsafe { failed_p.get(i) } = 1;
                    }
                });
                let mut recovered = 0u64;
                for i in 0..njobs {
                    if failed[i] != 0 {
                        let (stage, shard) = jobs[i];
                        run_wave_job(&ctx, stage as usize, shard as usize);
                        recovered += 1;
                    }
                }
                if recovered > 0 {
                    static_counter!("serve/sched_panics_recovered").add(recovered);
                }
            }
        }
        // tally forwards and hand the per-shard traces back in shard order
        // (= work order)
        let mut f32_forwards = 0;
        let mut int8_forwards = 0;
        let mut latent_forwards = 0;
        for s in 0..shards {
            f32_forwards += self.sched.f32_groups[s].len();
            int8_forwards += self.sched.i8_groups[s].len();
            latent_forwards += self.sched.lat_groups[s].len();
        }
        if let Some(tr) = trace {
            for s in 0..shards {
                tr.append(&mut self.sched.traces[s]);
            }
        }
        (f32_forwards, int8_forwards, latent_forwards)
    }
}
