//! Serving-layer configuration and its `EYECOD_SERVE_*` environment knobs.

use eyecod_core::env;
use eyecod_core::tracker::TrackerConfig;

/// How a serve tick executes its staged frames.
///
/// All three modes produce identical per-session outputs (bit-identical
/// under the int8 backend, rel ≤ 1e-4 under f32 where batched GEMM
/// summation order differs) — the property the serve differential and
/// scheduler-invariant suites pin. They differ only in how the work is
/// laid out over the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TickMode {
    /// The retained AoS reference path: each staged session runs its
    /// whole frame pipeline inline, one session at a time in stable slot
    /// order, with every gaze forward executed individually. Slowest, but
    /// trivially deterministic — the golden reference every other mode is
    /// differentially pinned against.
    Sequential,
    /// PR 6's batched tick: all sessions prepare in parallel on the pool
    /// (one AoS `prepare_frame` job per session), then gaze forwards run
    /// as one batched GEMM per pool participant.
    #[default]
    Batched,
    /// The columnar path: per-stage state lives in `SessionStore` columns
    /// and a `StageScheduler` decomposes the tick into per-stage batch
    /// kernels (all captures → all recons → all crops → batched gaze),
    /// pipelining stages of *different* session shards across pool
    /// workers — the paper's DNN time-multiplexing lifted to fleet level.
    Scheduled,
}

impl TickMode {
    /// Parses a mode name (`seq`/`sequential`, `batched`/`par`,
    /// `scheduled`/`sched`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown name — a silently ignored knob would make an
    /// operator believe a mode is in force when it is not.
    pub fn parse(v: &str) -> Self {
        match v.to_ascii_lowercase().as_str() {
            "seq" | "sequential" => TickMode::Sequential,
            "batched" | "batch" | "par" => TickMode::Batched,
            "scheduled" | "sched" => TickMode::Scheduled,
            other => panic!("bad tick mode {other:?} (want seq|batched|scheduled)"),
        }
    }
}

/// Configuration of a [`ServeRegistry`](crate::ServeRegistry).
///
/// Environment knobs (read by [`ServeConfig::from_env`]):
///
/// | Variable | Field | Default |
/// |---|---|---|
/// | `EYECOD_SERVE_MAX_SESSIONS` | `max_sessions` | 4096 |
/// | `EYECOD_SERVE_QUEUE` | `queue_capacity` | 4 |
/// | `EYECOD_SERVE_MODE` | `mode` (`seq`/`batched`/`scheduled`) | `batched` |
/// | `EYECOD_SERVE_BATCH` | legacy: `0`/`off` → `seq`, `1`/`on` → `batched` | — |
/// | `EYECOD_SERVE_THREADS` | `threads` (dedicated pool size; unset = global pool) | unset |
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Geometry and scheduling shared by every hosted tracker. The
    /// per-session backend can still be overridden at create time.
    pub tracker: TrackerConfig,
    /// Hard cap on concurrently live sessions.
    pub max_sessions: usize,
    /// Bounded ingress queue depth per session; feeding past it sheds the
    /// oldest queued frame (drop-head, freshest-data-wins).
    pub queue_capacity: usize,
    /// How a tick executes its staged frames (see [`TickMode`]).
    pub mode: TickMode,
    /// `Some(n)`: the registry owns a dedicated pool with `n` background
    /// workers (`0` = fully sequential). `None`: use the process-global
    /// pool (`EYECOD_THREADS`).
    pub threads: Option<usize>,
}

impl ServeConfig {
    /// Defaults around a tracker configuration: 4096 sessions, queue depth
    /// 4, batched tick, global pool.
    pub fn new(tracker: TrackerConfig) -> Self {
        ServeConfig {
            tracker,
            max_sessions: 4096,
            queue_capacity: 4,
            mode: TickMode::Batched,
            threads: None,
        }
    }

    /// [`ServeConfig::new`] with the `EYECOD_SERVE_*` environment
    /// overrides applied (see the type docs for the table).
    /// `EYECOD_SERVE_MODE` wins over the legacy `EYECOD_SERVE_BATCH`
    /// toggle when both are set.
    ///
    /// # Panics
    ///
    /// Panics if a set variable fails to parse — a silently ignored knob
    /// would make an operator believe a limit is in force when it is not.
    pub fn from_env(tracker: TrackerConfig) -> Self {
        let mut cfg = Self::new(tracker);
        cfg.max_sessions = env::usize_or("EYECOD_SERVE_MAX_SESSIONS", cfg.max_sessions);
        cfg.queue_capacity = env::usize_or("EYECOD_SERVE_QUEUE", cfg.queue_capacity);
        if let Some(v) = env::read("EYECOD_SERVE_BATCH") {
            cfg.mode = if env::parse_bool("EYECOD_SERVE_BATCH", &v) {
                TickMode::Batched
            } else {
                TickMode::Sequential
            };
        }
        if let Some(v) = env::read("EYECOD_SERVE_MODE") {
            cfg.mode = TickMode::parse(&v);
        }
        cfg.threads = env::opt_usize("EYECOD_SERVE_THREADS").or(cfg.threads);
        cfg
    }

    /// Validates internal consistency (including the tracker config).
    ///
    /// # Panics
    ///
    /// Panics on a zero session cap or zero queue depth, or an invalid
    /// tracker configuration.
    pub fn validate(&self) {
        self.tracker.validate();
        assert!(self.max_sessions > 0, "max_sessions must be non-zero");
        assert!(self.queue_capacity > 0, "queue_capacity must be non-zero");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane_and_validate() {
        let cfg = ServeConfig::new(TrackerConfig::small());
        cfg.validate();
        assert_eq!(cfg.mode, TickMode::Batched);
        assert_eq!(cfg.queue_capacity, 4);
        assert_eq!(cfg.max_sessions, 4096);
        assert_eq!(cfg.threads, None);
    }

    #[test]
    fn tick_modes_parse_by_name() {
        assert_eq!(TickMode::parse("seq"), TickMode::Sequential);
        assert_eq!(TickMode::parse("sequential"), TickMode::Sequential);
        assert_eq!(TickMode::parse("Batched"), TickMode::Batched);
        assert_eq!(TickMode::parse("par"), TickMode::Batched);
        assert_eq!(TickMode::parse("scheduled"), TickMode::Scheduled);
        assert_eq!(TickMode::parse("SCHED"), TickMode::Scheduled);
    }

    #[test]
    #[should_panic(expected = "bad tick mode")]
    fn unknown_tick_mode_is_rejected() {
        TickMode::parse("pipelined");
    }

    #[test]
    #[should_panic(expected = "queue_capacity must be non-zero")]
    fn zero_queue_depth_is_rejected() {
        let mut cfg = ServeConfig::new(TrackerConfig::small());
        cfg.queue_capacity = 0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "max_sessions must be non-zero")]
    fn zero_session_cap_is_rejected() {
        let mut cfg = ServeConfig::new(TrackerConfig::small());
        cfg.max_sessions = 0;
        cfg.validate();
    }
}
