//! Serving-layer configuration and its `EYECOD_SERVE_*` environment knobs.

use eyecod_core::tracker::TrackerConfig;

/// Configuration of a [`ServeRegistry`](crate::ServeRegistry).
///
/// Environment knobs (read by [`ServeConfig::from_env`]):
///
/// | Variable | Field | Default |
/// |---|---|---|
/// | `EYECOD_SERVE_MAX_SESSIONS` | `max_sessions` | 4096 |
/// | `EYECOD_SERVE_QUEUE` | `queue_capacity` | 4 |
/// | `EYECOD_SERVE_BATCH` | `batching` (`0`/`off`/`false` disable) | on |
/// | `EYECOD_SERVE_THREADS` | `threads` (dedicated pool size; unset = global pool) | unset |
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Geometry and scheduling shared by every hosted tracker. The
    /// per-session backend can still be overridden at create time.
    pub tracker: TrackerConfig,
    /// Hard cap on concurrently live sessions.
    pub max_sessions: usize,
    /// Bounded ingress queue depth per session; feeding past it sheds the
    /// oldest queued frame (drop-head, freshest-data-wins).
    pub queue_capacity: usize,
    /// Whether a tick batches gaze forwards across sessions (one batched
    /// GEMM per pool participant). When off, the same routing and shared
    /// int8 calibration apply but each forward runs individually — the
    /// sequential reference the batching differential compares against.
    pub batching: bool,
    /// `Some(n)`: the registry owns a dedicated pool with `n` background
    /// workers (`0` = fully sequential). `None`: use the process-global
    /// pool (`EYECOD_THREADS`).
    pub threads: Option<usize>,
}

impl ServeConfig {
    /// Defaults around a tracker configuration: 4096 sessions, queue depth
    /// 4, batching on, global pool.
    pub fn new(tracker: TrackerConfig) -> Self {
        ServeConfig {
            tracker,
            max_sessions: 4096,
            queue_capacity: 4,
            batching: true,
            threads: None,
        }
    }

    /// [`ServeConfig::new`] with the `EYECOD_SERVE_*` environment
    /// overrides applied (see the type docs for the table).
    ///
    /// # Panics
    ///
    /// Panics if a set variable fails to parse — a silently ignored knob
    /// would make an operator believe a limit is in force when it is not.
    pub fn from_env(tracker: TrackerConfig) -> Self {
        let mut cfg = Self::new(tracker);
        if let Some(v) = read_env("EYECOD_SERVE_MAX_SESSIONS") {
            cfg.max_sessions = v
                .parse()
                .unwrap_or_else(|_| panic!("bad EYECOD_SERVE_MAX_SESSIONS value: {v:?}"));
        }
        if let Some(v) = read_env("EYECOD_SERVE_QUEUE") {
            cfg.queue_capacity = v
                .parse()
                .unwrap_or_else(|_| panic!("bad EYECOD_SERVE_QUEUE value: {v:?}"));
        }
        if let Some(v) = read_env("EYECOD_SERVE_BATCH") {
            cfg.batching = match v.to_ascii_lowercase().as_str() {
                "0" | "off" | "false" | "no" => false,
                "1" | "on" | "true" | "yes" => true,
                other => panic!("bad EYECOD_SERVE_BATCH value: {other:?}"),
            };
        }
        if let Some(v) = read_env("EYECOD_SERVE_THREADS") {
            cfg.threads = Some(
                v.parse()
                    .unwrap_or_else(|_| panic!("bad EYECOD_SERVE_THREADS value: {v:?}")),
            );
        }
        cfg
    }

    /// Validates internal consistency (including the tracker config).
    ///
    /// # Panics
    ///
    /// Panics on a zero session cap or zero queue depth, or an invalid
    /// tracker configuration.
    pub fn validate(&self) {
        self.tracker.validate();
        assert!(self.max_sessions > 0, "max_sessions must be non-zero");
        assert!(self.queue_capacity > 0, "queue_capacity must be non-zero");
    }
}

fn read_env(name: &str) -> Option<String> {
    match std::env::var(name) {
        Ok(v) if v.trim().is_empty() => None,
        Ok(v) => Some(v),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane_and_validate() {
        let cfg = ServeConfig::new(TrackerConfig::small());
        cfg.validate();
        assert!(cfg.batching);
        assert_eq!(cfg.queue_capacity, 4);
        assert_eq!(cfg.max_sessions, 4096);
        assert_eq!(cfg.threads, None);
    }

    #[test]
    #[should_panic(expected = "queue_capacity must be non-zero")]
    fn zero_queue_depth_is_rejected() {
        let mut cfg = ServeConfig::new(TrackerConfig::small());
        cfg.queue_capacity = 0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "max_sessions must be non-zero")]
    fn zero_session_cap_is_rejected() {
        let mut cfg = ServeConfig::new(TrackerConfig::small());
        cfg.max_sessions = 0;
        cfg.validate();
    }
}
