//! Columnar (structure-of-arrays) session storage.
//!
//! Sessions are rows; per-stage pipeline state lives in parallel columns —
//! acquisition scratch, reconstructed images, ROI crops, gaze inputs,
//! predictions — so a scheduler can sweep one column across all ready
//! sessions with cache-friendly strides instead of hopping between
//! per-session AoS bundles (the ECS archetype layout, after `flax`; the
//! software analogue of the accelerator keeping each pipeline stage's
//! activations in its own global-buffer bank).
//!
//! The store only manages rows and columns. Stage execution lives in the
//! scheduler; the AoS reference paths read the same rows through the
//! tracker-owned scratch instead of the stage columns, which is what makes
//! the two layouts differentially comparable.

use crate::{ServeError, SessionId};
use eyecod_core::acquisition::AcquireScratch;
use eyecod_core::metrics::TrackingStats;
use eyecod_core::tracker::{EyeTracker, GazeBackend, PreparedFrame, StageCursor, TrackedFrame};
use eyecod_eyedata::GazeVector;
use eyecod_tensor::{Shape, Tensor};
use std::collections::VecDeque;

/// Stage indices for the per-row stage-epoch column (capture, recon,
/// crop/resize, gaze gather). The epoch a stage stamps is `frame + 1`
/// (so 0 means "never ran"), and every downstream stage asserts its
/// upstream stamp matches the cursor's frame — no stage may consume a
/// previous stage's output from a different frame index.
pub(crate) const STAGE_CAPTURE: usize = 0;
/// See [`STAGE_CAPTURE`].
pub(crate) const STAGE_RECON: usize = 1;
/// See [`STAGE_CAPTURE`].
pub(crate) const STAGE_CROP: usize = 2;
/// See [`STAGE_CAPTURE`].
pub(crate) const STAGE_GAZE: usize = 3;
/// Number of stamped stages.
pub(crate) const STAGES: usize = 4;

/// Which forward path a staged frame was routed to this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Route {
    /// No gaze input (acquisition lost the frame): completion takes the
    /// tracker's missing-frame fallback, no forward runs.
    Fallback,
    /// The f32 batch (f32 sessions, int8 sessions before the shared
    /// calibration exists, and latent sessions on their ROI-refresh
    /// frames, whose staged input is a recon-path crop).
    F32,
    /// The shared int8 batch.
    Int8,
    /// The latent batch: recon-free sessions on steady-state frames, whose
    /// staged input is a projected raw measurement.
    Latent,
}

/// A frame waiting in a session's ingress queue. `scene` is an owned copy
/// recycled through the session's spare-buffer freelist, so steady-state
/// feeding allocates nothing.
pub(crate) struct QueuedFrame {
    pub(crate) scene: Tensor,
    pub(crate) noise_seed: u64,
    pub(crate) truth: Option<GazeVector>,
}

/// Raw-pointer smuggler for handing *disjoint* `&mut` column elements to
/// pool workers. Safety rests on the caller indexing with unique indices.
pub(crate) struct SendPtr<T>(pub(crate) *mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// `&mut` to element `i`. Safety: the caller guarantees `i` is in
    /// bounds and no two concurrent calls use the same index. (A method
    /// rather than field access so closures capture the `Sync` wrapper,
    /// not the raw pointer.)
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get(&self, i: usize) -> &mut T {
        &mut *self.0.add(i)
    }
}

/// The columnar session store: one row per slot, one column per piece of
/// per-session state. A row is live while `trackers[row]` is `Some`;
/// `generations[row]` guards stale [`SessionId`]s. Rows are recycled
/// through the free list, keeping every column's allocation warm — column
/// buffers grow on session create / first use and are never shrunk by the
/// steady state (the zero-alloc proof covers the scheduled tick).
pub(crate) struct SessionStore {
    // --- row management -------------------------------------------------
    pub(crate) generations: Vec<u32>,
    pub(crate) free: Vec<u32>,
    pub(crate) active: usize,
    // --- identity & control columns ------------------------------------
    pub(crate) trackers: Vec<Option<EyeTracker>>,
    pub(crate) backends: Vec<GazeBackend>,
    // --- ingress columns ------------------------------------------------
    pub(crate) queues: Vec<VecDeque<QueuedFrame>>,
    /// Recycled scene buffers for each ingress queue.
    pub(crate) spares: Vec<Vec<Tensor>>,
    pub(crate) frames_ingested: Vec<u64>,
    // --- per-tick columns -----------------------------------------------
    /// The frame popped for the current tick (between stage and complete).
    pub(crate) staged: Vec<Option<QueuedFrame>>,
    /// AoS modes: the prepared frame (between prepare and complete).
    pub(crate) preps: Vec<Option<PreparedFrame>>,
    /// Scheduled mode: the per-frame stage cursor (between capture and
    /// complete).
    pub(crate) cursors: Vec<Option<StageCursor>>,
    pub(crate) routes: Vec<Route>,
    /// `(arena slot, row-in-sub-batch)` of this session's crop in the
    /// current batch.
    pub(crate) batch_pos: Vec<(u32, u32)>,
    // --- columnar stage-state columns (scheduled mode) -------------------
    /// Acquisition scratch: capture temporaries + reconstruction
    /// workspace (the stage the capture column sweep writes and the recon
    /// sweep reads).
    pub(crate) acquires: Vec<AcquireScratch>,
    /// Reconstructed (or fallback) image per session.
    pub(crate) images: Vec<Tensor>,
    /// ROI crop of `images[row]`.
    pub(crate) crops: Vec<Tensor>,
    /// Resized gaze-network inputs — the column the batched gaze gather
    /// sweeps.
    pub(crate) gaze_ins: Vec<Tensor>,
    /// Per-session prediction buffers (scattered back from the batch
    /// output, or written by fault staging during completion).
    pub(crate) preds: Vec<Tensor>,
    /// Stage-epoch stamps (`frame + 1` per stage) for the conformance
    /// invariant; see [`STAGE_CAPTURE`].
    pub(crate) epochs: Vec<[u64; STAGES]>,
    // --- accounting columns ----------------------------------------------
    pub(crate) stats: Vec<TrackingStats>,
    pub(crate) lasts: Vec<Option<TrackedFrame>>,
}

impl SessionStore {
    pub(crate) fn new() -> Self {
        SessionStore {
            generations: Vec::new(),
            free: Vec::new(),
            active: 0,
            trackers: Vec::new(),
            backends: Vec::new(),
            queues: Vec::new(),
            spares: Vec::new(),
            frames_ingested: Vec::new(),
            staged: Vec::new(),
            preps: Vec::new(),
            cursors: Vec::new(),
            routes: Vec::new(),
            batch_pos: Vec::new(),
            acquires: Vec::new(),
            images: Vec::new(),
            crops: Vec::new(),
            gaze_ins: Vec::new(),
            preds: Vec::new(),
            epochs: Vec::new(),
            stats: Vec::new(),
            lasts: Vec::new(),
        }
    }

    /// Number of rows (live + recycled).
    pub(crate) fn rows(&self) -> usize {
        self.generations.len()
    }

    /// Whether `row` currently holds a live session.
    pub(crate) fn is_live(&self, row: usize) -> bool {
        self.trackers.get(row).is_some_and(Option::is_some)
    }

    /// Inserts a session, reusing a free row when one exists, and returns
    /// its id. Recycled rows keep their warm column buffers (images,
    /// crops, scratch) — only the logical state is reset.
    pub(crate) fn insert(&mut self, tracker: EyeTracker, backend: GazeBackend) -> SessionId {
        let row = match self.free.pop() {
            Some(row) => {
                let r = row as usize;
                self.trackers[r] = Some(tracker);
                self.backends[r] = backend;
                self.queues[r].clear();
                self.spares[r].clear();
                // the previous occupant's delta caches must not leak into
                // the new session: unprime them (the warmed buffers stay,
                // like every other column allocation) so the first frames
                // run dense until a refresh re-primes — exactly as a fresh
                // tracker's own scratch would in the AoS modes
                self.acquires[r].invalidate_delta();
                self.frames_ingested[r] = 0;
                self.staged[r] = None;
                self.preps[r] = None;
                self.cursors[r] = None;
                self.routes[r] = Route::Fallback;
                self.batch_pos[r] = (0, 0);
                self.epochs[r] = [0; STAGES];
                self.stats[r] = TrackingStats::new();
                self.lasts[r] = None;
                r
            }
            None => {
                self.generations.push(0);
                self.trackers.push(Some(tracker));
                self.backends.push(backend);
                self.queues.push(VecDeque::new());
                self.spares.push(Vec::new());
                self.frames_ingested.push(0);
                self.staged.push(None);
                self.preps.push(None);
                self.cursors.push(None);
                self.routes.push(Route::Fallback);
                self.batch_pos.push((0, 0));
                self.acquires.push(AcquireScratch::new());
                self.images.push(Tensor::zeros(Shape::new(1, 1, 1, 1)));
                self.crops.push(Tensor::zeros(Shape::new(1, 1, 1, 1)));
                self.gaze_ins.push(Tensor::zeros(Shape::new(1, 1, 1, 1)));
                self.preds.push(Tensor::zeros(Shape::new(1, 1, 1, 1)));
                self.epochs.push([0; STAGES]);
                self.stats.push(TrackingStats::new());
                self.lasts.push(None);
                self.generations.len() - 1
            }
        };
        self.active += 1;
        SessionId::new(row as u32, self.generations[row])
    }

    /// Removes a session, bumping the row's generation so the evicted id
    /// (and any copy of it) can never resolve again. The row's column
    /// buffers stay allocated for the next occupant.
    pub(crate) fn remove(&mut self, row: usize) {
        self.trackers[row] = None;
        self.staged[row] = None;
        self.preps[row] = None;
        self.cursors[row] = None;
        self.queues[row].clear();
        self.spares[row].clear();
        self.generations[row] = self.generations[row].wrapping_add(1);
        self.free.push(row as u32);
        self.active -= 1;
    }

    /// Resolves an id to its row, enforcing liveness and generation.
    pub(crate) fn resolve(&self, id: SessionId) -> Result<usize, ServeError> {
        let row = id.index() as usize;
        match self.generations.get(row) {
            None => Err(ServeError::UnknownSession(id)),
            Some(&g) if g != id.generation() => Err(ServeError::StaleSession(id)),
            Some(_) if self.trackers[row].is_none() => Err(ServeError::UnknownSession(id)),
            Some(_) => Ok(row),
        }
    }

    /// Stamps stage `stage` of `row` as produced by `frame`, asserting the
    /// upstream stage (if any) was produced by the *same* frame — the
    /// stage-conformance invariant of the scheduled tick.
    ///
    /// # Panics
    ///
    /// Panics if the upstream stamp belongs to a different frame index.
    pub(crate) fn stamp_stage(&mut self, row: usize, stage: usize, frame: u64) {
        stamp_stage_row(&mut self.epochs[row], stage, frame, row);
    }

    /// Asserts stage `stage` of `row` was produced by `frame` without
    /// stamping anything (used at completion).
    ///
    /// # Panics
    ///
    /// Panics if the stamp belongs to a different frame index.
    pub(crate) fn check_stage(&self, row: usize, stage: usize, frame: u64) {
        check_stage_row(&self.epochs[row], stage, frame, row);
    }
}

/// [`SessionStore::stamp_stage`] over a borrowed epoch row — the form a
/// column sweep calls through its raw column pointer.
///
/// # Panics
///
/// Panics if the upstream stamp belongs to a different frame index.
pub(crate) fn stamp_stage_row(epoch: &mut [u64; STAGES], stage: usize, frame: u64, row: usize) {
    if stage > 0 {
        let up = epoch[stage - 1];
        assert_eq!(
            up,
            frame + 1,
            "stage {stage} of row {row} consuming stage {} output from frame {} (want {})",
            stage - 1,
            up.wrapping_sub(1),
            frame,
        );
    }
    epoch[stage] = frame + 1;
}

/// [`SessionStore::check_stage`] over a borrowed epoch row.
///
/// # Panics
///
/// Panics if the stamp belongs to a different frame index.
pub(crate) fn check_stage_row(epoch: &[u64; STAGES], stage: usize, frame: u64, row: usize) {
    let got = epoch[stage];
    assert_eq!(
        got,
        frame + 1,
        "completion of row {row} consuming stage {stage} output from frame {} (want {frame})",
        got.wrapping_sub(1),
    );
}
