//! The session registry and its serve tick.

use crate::{ServeConfig, ServeError, SessionId};
use eyecod_core::acquisition::Acquisition;
use eyecod_core::metrics::TrackingStats;
use eyecod_core::tracker::{EyeTracker, GazeBackend, PreparedFrame, TrackedFrame};
use eyecod_core::training::TrackerModels;
use eyecod_eyedata::GazeVector;
use eyecod_faults::{FaultPlan, RecoveryPolicy};
use eyecod_models::infer::WorkspaceArena;
use eyecod_models::quantized::QuantizedGazeNet;
use eyecod_pool::ThreadPool;
use eyecod_telemetry::{static_counter, static_histogram};
use eyecod_tensor::{Shape, Tensor};
use std::collections::VecDeque;

/// What happened to a fed frame.
#[derive(Debug, Clone)]
pub enum FeedOutcome {
    /// The frame was queued; `depth` is the queue depth afterwards.
    Queued {
        /// Ingress queue depth after this frame was enqueued.
        depth: usize,
    },
    /// The queue was full: the *oldest* queued frame was shed (drop-head,
    /// so the freshest data survives) and this frame took its place. The
    /// shed frame's accounting output is returned — graded
    /// [`Degraded`](eyecod_faults::FrameQuality::Degraded) once any frame
    /// has been tracked.
    Shed(TrackedFrame),
}

impl FeedOutcome {
    /// The shed frame, if this feed shed one.
    pub fn shed(&self) -> Option<&TrackedFrame> {
        match self {
            FeedOutcome::Shed(f) => Some(f),
            FeedOutcome::Queued { .. } => None,
        }
    }

    /// Whether this feed shed a frame.
    pub fn was_shed(&self) -> bool {
        matches!(self, FeedOutcome::Shed(_))
    }
}

/// Point-in-time view of one session.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// The session's id.
    pub id: SessionId,
    /// The gaze backend this session was created with.
    pub backend: GazeBackend,
    /// Accumulated per-session statistics (processed + shed frames).
    pub stats: TrackingStats,
    /// Current ingress queue depth (always ≤
    /// [`ServeConfig::queue_capacity`]).
    pub queue_depth: usize,
    /// Frames ever fed to this session (queued + shed).
    pub frames_ingested: u64,
    /// The most recent output (processed or shed), if any.
    pub last: Option<TrackedFrame>,
}

/// What one serve tick did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Sessions that had a frame staged this tick.
    pub staged: usize,
    /// Frames completed (equals `staged`; split out for clarity in logs).
    pub completed: usize,
    /// Gaze forwards routed through the f32 path (including int8 sessions
    /// still warming up toward the shared calibration).
    pub f32_forwards: usize,
    /// Gaze forwards routed through the shared int8 network.
    pub int8_forwards: usize,
}

/// Which forward path a staged frame was routed to this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// No gaze input (acquisition lost the frame): completion takes the
    /// tracker's missing-frame fallback, no forward runs.
    Fallback,
    /// The f32 batch (f32 sessions, plus int8 sessions before the shared
    /// calibration exists).
    F32,
    /// The shared int8 batch.
    Int8,
}

/// A frame waiting in a session's ingress queue. `scene` is an owned copy
/// recycled through the session's spare-buffer freelist, so steady-state
/// feeding allocates nothing.
struct QueuedFrame {
    scene: Tensor,
    noise_seed: u64,
    truth: Option<GazeVector>,
}

struct Session {
    tracker: EyeTracker,
    backend: GazeBackend,
    queue: VecDeque<QueuedFrame>,
    /// Recycled scene buffers for the ingress queue.
    spare: Vec<Tensor>,
    /// The frame popped for the current tick (between stage and complete).
    staged: Option<QueuedFrame>,
    /// The prepared frame for the current tick (between prepare and
    /// complete).
    prep: Option<PreparedFrame>,
    route: Route,
    /// `(arena slot, row)` of this session's crop in the current batch.
    batch_pos: (u32, u32),
    stats: TrackingStats,
    frames_ingested: u64,
    last: Option<TrackedFrame>,
}

struct Slot {
    generation: u32,
    session: Option<Box<Session>>,
}

enum PoolHandle {
    Global,
    Owned(ThreadPool),
}

/// Raw-pointer smuggler for handing *disjoint* `&mut` slices/slots to pool
/// workers. Safety rests on the caller indexing with unique indices.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// `&mut` to element `i`. Safety: the caller guarantees `i` is in
    /// bounds and no two concurrent calls use the same index. (A method
    /// rather than field access so closures capture the `Sync` wrapper,
    /// not the raw pointer.)
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self, i: usize) -> &mut T {
        &mut *self.0.add(i)
    }
}

/// The multi-session serving registry. See the crate docs for the model;
/// the short version: [`create`](ServeRegistry::create) sessions,
/// [`feed`](ServeRegistry::feed) them frames (bounded queues, drop-head
/// shedding), drive everything with [`tick`](ServeRegistry::tick) (pooled
/// prepare + cross-session batched gaze forwards),
/// [`snapshot`](ServeRegistry::snapshot) or
/// [`evict`](ServeRegistry::evict) when done.
pub struct ServeRegistry {
    config: ServeConfig,
    models: TrackerModels,
    /// Built once from the config, cloned per session — sessions share the
    /// same mask/reconstruction geometry, so each create skips the
    /// Tikhonov setup.
    acquisition: Acquisition,
    faults: FaultPlan,
    recovery: RecoveryPolicy,
    pool: PoolHandle,
    slots: Vec<Slot>,
    free: Vec<u32>,
    active: usize,
    /// Slot indices with a staged frame this tick (reused across ticks).
    work: Vec<u32>,
    f32_batch: Vec<u32>,
    i8_batch: Vec<u32>,
    f32_arena: WorkspaceArena,
    i8_arena: WorkspaceArena,
    /// The fleet-shared int8 network, once calibrated. Per-session
    /// calibration would give each session data-dependent activation
    /// scales and defeat cross-session batching; sharing one network
    /// calibrated on the first crops the fleet produces mirrors a deployed
    /// parameter server.
    shared_qnet: Option<QuantizedGazeNet>,
    /// Gaze crops collected from warming int8 sessions, pending the shared
    /// calibration.
    calib: Vec<Tensor>,
}

impl ServeRegistry {
    /// Builds a registry from a configuration and trained models.
    ///
    /// The fault plan defaults to [`FaultPlan::from_env`] and the recovery
    /// policy to [`RecoveryPolicy::default`]; override with
    /// [`ServeRegistry::with_faults`] / [`ServeRegistry::with_recovery`]
    /// before creating sessions.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: ServeConfig, models: TrackerModels) -> Self {
        config.validate();
        let acquisition = EyeTracker::build_acquisition(&config.tracker);
        let pool = match config.threads {
            Some(n) => PoolHandle::Owned(ThreadPool::with_threads(n)),
            None => PoolHandle::Global,
        };
        ServeRegistry {
            config,
            models,
            acquisition,
            faults: FaultPlan::from_env(),
            recovery: RecoveryPolicy::default(),
            pool,
            slots: Vec::new(),
            free: Vec::new(),
            active: 0,
            work: Vec::new(),
            f32_batch: Vec::new(),
            i8_batch: Vec::new(),
            f32_arena: WorkspaceArena::new(),
            i8_arena: WorkspaceArena::new(),
            shared_qnet: None,
            calib: Vec::new(),
        }
    }

    /// Replaces the fault plan handed to every *subsequently created*
    /// session (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Replaces the recovery policy handed to every *subsequently created*
    /// session (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        policy.validate();
        self.recovery = policy;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Live session count.
    pub fn sessions_active(&self) -> usize {
        self.active
    }

    /// Whether `id` resolves to a live session.
    pub fn contains(&self, id: SessionId) -> bool {
        self.session_ref(id).is_ok()
    }

    /// Whether the fleet-shared int8 network has been calibrated yet.
    pub fn int8_calibrated(&self) -> bool {
        self.shared_qnet.is_some()
    }

    /// Creates a session with the configured default backend.
    pub fn create(&mut self) -> Result<SessionId, ServeError> {
        self.create_with_backend(self.config.tracker.gaze_backend)
    }

    /// Creates a session with an explicit gaze backend (fleets mix f32 and
    /// int8 sessions freely; int8 sessions share one fleet-calibrated
    /// network).
    pub fn create_with_backend(&mut self, backend: GazeBackend) -> Result<SessionId, ServeError> {
        if self.active >= self.config.max_sessions {
            return Err(ServeError::AtCapacity(self.config.max_sessions));
        }
        let mut cfg = self.config.tracker.clone();
        cfg.gaze_backend = backend;
        let tracker =
            EyeTracker::with_acquisition(cfg, self.models.clone_models(), self.acquisition.clone())
                .with_faults(self.faults.clone())
                .with_recovery(self.recovery);
        let session = Box::new(Session {
            tracker,
            backend,
            queue: VecDeque::new(),
            spare: Vec::new(),
            staged: None,
            prep: None,
            route: Route::Fallback,
            batch_pos: (0, 0),
            stats: TrackingStats::new(),
            frames_ingested: 0,
            last: None,
        });
        let index = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize].session = Some(session);
                i
            }
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    session: Some(session),
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.active += 1;
        static_counter!("serve/sessions_created").inc();
        static_counter!("serve/sessions_active").set(self.active as u64);
        Ok(SessionId::new(index, self.slots[index as usize].generation))
    }

    /// Evicts a session, returning its final snapshot. The slot's
    /// generation is bumped, so the evicted id (and any copy of it) can
    /// never resolve again.
    pub fn evict(&mut self, id: SessionId) -> Result<SessionSnapshot, ServeError> {
        let snap = self.snapshot(id)?;
        let slot = &mut self.slots[id.index() as usize];
        slot.session = None;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.index());
        self.active -= 1;
        static_counter!("serve/sessions_evicted").inc();
        static_counter!("serve/sessions_active").set(self.active as u64);
        Ok(snap)
    }

    /// Enqueues a frame for `id` (production path: no ground-truth label).
    ///
    /// Never blocks and never panics on load: a full queue sheds its
    /// oldest frame (returned via [`FeedOutcome::Shed`]) and the new frame
    /// is queued, so depth stays ≤ [`ServeConfig::queue_capacity`].
    pub fn feed(
        &mut self,
        id: SessionId,
        scene: &Tensor,
        noise_seed: u64,
    ) -> Result<FeedOutcome, ServeError> {
        self.feed_inner(id, scene, noise_seed, None)
    }

    /// [`ServeRegistry::feed`] with a ground-truth gaze label; the frame's
    /// angular error is folded into the session's [`TrackingStats`] when
    /// it completes.
    pub fn feed_labeled(
        &mut self,
        id: SessionId,
        scene: &Tensor,
        noise_seed: u64,
        truth: GazeVector,
    ) -> Result<FeedOutcome, ServeError> {
        self.feed_inner(id, scene, noise_seed, Some(truth))
    }

    fn feed_inner(
        &mut self,
        id: SessionId,
        scene: &Tensor,
        noise_seed: u64,
        truth: Option<GazeVector>,
    ) -> Result<FeedOutcome, ServeError> {
        let expected = self.config.tracker.scene_size;
        let s = scene.shape();
        if (s.h, s.w) != (expected, expected) {
            return Err(ServeError::SceneShape {
                expected,
                got: (s.h, s.w),
            });
        }
        let capacity = self.config.queue_capacity;
        let sess = self.session_mut(id)?;
        sess.frames_ingested += 1;
        static_counter!("serve/frames_ingested").inc();
        let shed = if sess.queue.len() >= capacity {
            let old = sess.queue.pop_front().expect("full queue is non-empty");
            sess.spare.push(old.scene);
            let out = sess.tracker.shed_frame();
            sess.stats.record_shed();
            sess.last = Some(out.clone());
            static_counter!("serve/frames_shed").inc();
            Some(out)
        } else {
            None
        };
        let mut buf = sess
            .spare
            .pop()
            .unwrap_or_else(|| Tensor::zeros(Shape::new(1, 1, 1, 1)));
        buf.copy_from(scene);
        sess.queue.push_back(QueuedFrame {
            scene: buf,
            noise_seed,
            truth,
        });
        Ok(match shed {
            Some(f) => FeedOutcome::Shed(f),
            None => FeedOutcome::Queued {
                depth: sess.queue.len(),
            },
        })
    }

    /// Point-in-time view of one session.
    pub fn snapshot(&self, id: SessionId) -> Result<SessionSnapshot, ServeError> {
        let sess = self.session_ref(id)?;
        Ok(SessionSnapshot {
            id,
            backend: sess.backend,
            stats: sess.stats.clone(),
            queue_depth: sess.queue.len(),
            frames_ingested: sess.frames_ingested,
            last: sess.last.clone(),
        })
    }

    /// Fleet-aggregate statistics: every live session's stats merged.
    pub fn fleet_stats(&self) -> TrackingStats {
        let mut total = TrackingStats::new();
        for slot in &self.slots {
            if let Some(sess) = slot.session.as_deref() {
                total.merge(&sess.stats);
            }
        }
        total
    }

    /// Runs one serve tick: pops at most one frame per session, prepares
    /// them in parallel on the pool, batches every gaze forward (one
    /// batched GEMM per pool participant, f32 and int8 separately), and
    /// completes each frame in stable slot order.
    ///
    /// Batching never changes results: the batched GEMM processes items
    /// independently, so per-session outputs are invariant to batch
    /// composition and worker count. With batching disabled
    /// ([`ServeConfig::batching`]) the identical routing applies but each
    /// forward runs individually — the reference the differential suite
    /// compares against.
    pub fn tick(&mut self) -> TickReport {
        self.tick_impl(None)
    }

    /// [`ServeRegistry::tick`] that also returns every completed frame in
    /// completion order — the golden-trace hook of the registry test
    /// suites. (Allocates for the trace; production loops use `tick`.)
    pub fn tick_traced(&mut self) -> (TickReport, Vec<(SessionId, TrackedFrame)>) {
        let mut trace = Vec::new();
        let report = self.tick_impl(Some(&mut trace));
        (report, trace)
    }

    fn tick_impl(&mut self, mut trace: Option<&mut Vec<(SessionId, TrackedFrame)>>) -> TickReport {
        static_counter!("serve/ticks").inc();
        let tick_timer = static_histogram!("serve/tick_ns").timer();
        // 1. stage: at most one queued frame per session, slot order
        self.work.clear();
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if let Some(sess) = slot.session.as_deref_mut() {
                if let Some(qf) = sess.queue.pop_front() {
                    sess.staged = Some(qf);
                    self.work.push(idx as u32);
                }
            }
        }
        let staged = self.work.len();
        if staged == 0 {
            drop(tick_timer);
            return TickReport::default();
        }
        // 2. prepare in parallel: acquisition / ROI refresh / crop+resize,
        // one pool job per session
        {
            let slots = SendPtr(self.slots.as_mut_ptr());
            let work = &self.work;
            let pool = match &self.pool {
                PoolHandle::Global => eyecod_pool::global(),
                PoolHandle::Owned(p) => p,
            };
            pool.parallel_for_chunked(work.len(), 1, |i| {
                // SAFETY: `work` holds unique slot indices, so every job
                // touches a distinct session
                let slot = unsafe { slots.get(work[i] as usize) };
                let sess = slot.session.as_deref_mut().expect("staged slot is live");
                let qf = sess.staged.as_ref().expect("staged frame present");
                sess.prep = Some(sess.tracker.prepare_frame(&qf.scene, qf.noise_seed));
            });
        }
        // 3. route: split the prepared crops between the f32 and shared
        // int8 paths (serial, in work order — calibration collection must
        // be deterministic and pool-size-invariant)
        self.f32_batch.clear();
        self.i8_batch.clear();
        let calib_target = self.config.tracker.calibration_frames;
        for w in 0..staged {
            let idx = self.work[w] as usize;
            let calibrated = self.shared_qnet.is_some();
            let calib_open = self.calib.len() < calib_target;
            let sess = self.slots[idx].session.as_deref_mut().expect("staged");
            let prep = sess.prep.as_ref().expect("prepared");
            if !prep.has_gaze_input() {
                sess.route = Route::Fallback;
                continue;
            }
            if sess.backend == GazeBackend::Int8 && calibrated {
                sess.route = Route::Int8;
                self.i8_batch.push(idx as u32);
            } else {
                if sess.backend == GazeBackend::Int8
                    && !calibrated
                    && calib_open
                    && !prep.gaze_input().has_non_finite()
                {
                    self.calib.push(prep.gaze_input().clone());
                }
                sess.route = Route::F32;
                self.f32_batch.push(idx as u32);
            }
        }
        let (f32_forwards, int8_forwards) = (self.f32_batch.len(), self.i8_batch.len());
        // 4. forwards: one batched GEMM per pool participant
        if self.config.batching {
            let group = std::mem::take(&mut self.f32_batch);
            self.run_batch(&group, false);
            self.f32_batch = group;
            let group = std::mem::take(&mut self.i8_batch);
            self.run_batch(&group, true);
            self.i8_batch = group;
        }
        // 5. complete in work order: scatter predictions back, grade and
        // account each frame through the tracker's recovery tail
        let mut completed = 0usize;
        for w in 0..staged {
            let idx = self.work[w] as usize;
            let generation = self.slots[idx].generation;
            let route = self.slots[idx].session.as_deref().expect("staged").route;
            let mut pred = [0.0f32; 3];
            let use_pred = match route {
                Route::Fallback => false,
                _ if self.config.batching => {
                    let sess = self.slots[idx].session.as_deref().expect("staged");
                    let (p, j) = sess.batch_pos;
                    let arena = if route == Route::Int8 {
                        &self.i8_arena
                    } else {
                        &self.f32_arena
                    };
                    let out = arena.slot(p as usize).output.as_slice();
                    pred.copy_from_slice(&out[j as usize * 3..j as usize * 3 + 3]);
                    true
                }
                Route::F32 => {
                    self.forward_single(idx, false, &mut pred);
                    true
                }
                Route::Int8 => {
                    self.forward_single(idx, true, &mut pred);
                    true
                }
            };
            let sess = self.slots[idx].session.as_deref_mut().expect("staged");
            let prep = sess.prep.take().expect("prepared frame present");
            let out = if use_pred {
                sess.tracker.complete_frame_with_pred(prep, &pred)
            } else {
                sess.tracker.complete_frame(prep)
            };
            let qf = sess.staged.take().expect("staged frame present");
            match &qf.truth {
                Some(t) => sess.stats.record(&out, t),
                None => sess.stats.record_unlabeled(&out),
            }
            sess.spare.push(qf.scene);
            match trace.as_deref_mut() {
                Some(tr) => {
                    sess.last = Some(out.clone());
                    tr.push((SessionId::new(idx as u32, generation), out));
                }
                None => sess.last = Some(out),
            }
            completed += 1;
        }
        static_counter!("serve/frames_completed").add(completed as u64);
        // 6. fleet int8 calibration, once the warm-up crops are in — at
        // tick end so the tick that fills the window still serves f32,
        // exactly like the single-tracker warm-up
        if self.shared_qnet.is_none() && calib_target > 0 && self.calib.len() >= calib_target {
            let batch = Tensor::stack(&self.calib);
            self.shared_qnet = Some(QuantizedGazeNet::from_calibrated(&self.models.gaze, &batch));
            self.calib.clear();
            self.calib.shrink_to_fit();
            static_counter!("serve/int8_calibrations").inc();
        }
        drop(tick_timer);
        TickReport {
            staged,
            completed,
            f32_forwards,
            int8_forwards,
        }
    }

    /// Batched gaze forward for one route group: partitions `group` into
    /// one contiguous sub-batch per pool participant, gathers each
    /// sub-batch into its arena slot, and runs the slots' forwards in
    /// parallel. On a sequential pool this is literally one batched GEMM,
    /// executed inline with zero allocation once the arena is warm.
    fn run_batch(&mut self, group: &[u32], int8: bool) {
        if group.is_empty() {
            return;
        }
        let batch_timer = static_histogram!("serve/batch_ns").timer();
        static_counter!("serve/batches").inc();
        static_counter!("serve/batch_size").add(group.len() as u64);
        let pool = match &self.pool {
            PoolHandle::Global => eyecod_pool::global(),
            PoolHandle::Owned(p) => p,
        };
        let n = group.len();
        let parts = pool.participants().min(n);
        let (gh, gw) = self.config.tracker.gaze_input;
        let item = gh * gw;
        let arena = if int8 {
            &mut self.i8_arena
        } else {
            &mut self.f32_arena
        };
        arena.ensure(parts);
        // gather: chunk p covers group[p*n/parts .. (p+1)*n/parts]
        for p in 0..parts {
            let (start, end) = (p * n / parts, (p + 1) * n / parts);
            let slot = arena.slot_mut(p);
            slot.input.reset(Shape::new(end - start, 1, gh, gw));
            for (j, &idx) in group[start..end].iter().enumerate() {
                let sess = self.slots[idx as usize]
                    .session
                    .as_deref_mut()
                    .expect("routed slot is live");
                sess.batch_pos = (p as u32, j as u32);
                let src = sess
                    .prep
                    .as_ref()
                    .expect("prepared")
                    .gaze_input()
                    .as_slice();
                slot.input.as_mut_slice()[j * item..(j + 1) * item].copy_from_slice(src);
            }
        }
        {
            let slots = SendPtr(arena.slots_mut().as_mut_ptr());
            let gaze = &self.models.gaze;
            let qnet = self.shared_qnet.as_ref();
            pool.parallel_for_chunked(parts, 1, |p| {
                // SAFETY: each job takes a distinct arena slot
                let slot = unsafe { slots.get(p) };
                if int8 {
                    qnet.expect("int8 batches only run once calibrated")
                        .forward_into(&slot.input, &mut slot.ws, &mut slot.output);
                } else {
                    gaze.forward_infer(&slot.input, &mut slot.ws, &mut slot.output);
                }
            });
        }
        drop(batch_timer);
    }

    /// The batching-disabled reference path: the same routing and shared
    /// int8 semantics, but each forward runs individually through arena
    /// slot 0.
    fn forward_single(&mut self, idx: usize, int8: bool, pred: &mut [f32; 3]) {
        let arena = if int8 {
            &mut self.i8_arena
        } else {
            &mut self.f32_arena
        };
        arena.ensure(1);
        let slot = arena.slot_mut(0);
        let sess = self.slots[idx].session.as_deref().expect("routed");
        let input = sess.prep.as_ref().expect("prepared").gaze_input();
        slot.input.copy_from(input);
        if int8 {
            self.shared_qnet
                .as_ref()
                .expect("int8 forwards only run once calibrated")
                .forward_into(&slot.input, &mut slot.ws, &mut slot.output);
        } else {
            self.models
                .gaze
                .forward_infer(&slot.input, &mut slot.ws, &mut slot.output);
        }
        pred.copy_from_slice(&slot.output.as_slice()[..3]);
    }

    fn session_ref(&self, id: SessionId) -> Result<&Session, ServeError> {
        match self.slots.get(id.index() as usize) {
            None => Err(ServeError::UnknownSession(id)),
            Some(slot) if slot.generation != id.generation() => Err(ServeError::StaleSession(id)),
            Some(slot) => slot
                .session
                .as_deref()
                .ok_or(ServeError::UnknownSession(id)),
        }
    }

    fn session_mut(&mut self, id: SessionId) -> Result<&mut Session, ServeError> {
        match self.slots.get_mut(id.index() as usize) {
            None => Err(ServeError::UnknownSession(id)),
            Some(slot) if slot.generation != id.generation() => Err(ServeError::StaleSession(id)),
            Some(slot) => slot
                .session
                .as_deref_mut()
                .ok_or(ServeError::UnknownSession(id)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyecod_core::tracker::TrackerConfig;
    use eyecod_core::training::{train_tracker_models, TrainingSetup};
    use eyecod_eyedata::render::{render_eye, EyeParams};
    use eyecod_faults::FrameQuality;
    use std::sync::OnceLock;

    /// Train once, share across tests (training is the expensive part).
    fn registry(mut mutate: impl FnMut(&mut ServeConfig)) -> ServeRegistry {
        static MODELS: OnceLock<(TrackerConfig, TrackerModels)> = OnceLock::new();
        let (cfg, models) = MODELS.get_or_init(|| {
            let cfg = TrackerConfig::small();
            let models = train_tracker_models(&TrainingSetup::quick(), &cfg);
            (cfg, models)
        });
        let mut sc = ServeConfig::new(cfg.clone());
        sc.threads = Some(0); // sequential: unit tests stay deterministic & cheap
        mutate(&mut sc);
        ServeRegistry::new(sc, models.clone_models()).with_faults(FaultPlan::none())
    }

    fn scene(seed: u64) -> Tensor {
        let mut p = EyeParams::centered(48);
        p.yaw = 0.02 * (seed as f32 % 7.0) - 0.07;
        render_eye(&p, 48, seed).image
    }

    #[test]
    fn lifecycle_ids_are_generational() {
        let mut reg = registry(|_| {});
        let a = reg.create().unwrap();
        let b = reg.create().unwrap();
        assert_eq!(reg.sessions_active(), 2);
        assert!(reg.contains(a) && reg.contains(b));
        assert_ne!(a, b);

        let snap = reg.evict(a).unwrap();
        assert_eq!(snap.id, a);
        assert_eq!(reg.sessions_active(), 1);
        assert!(!reg.contains(a));
        assert_eq!(reg.snapshot(a).unwrap_err(), ServeError::StaleSession(a));
        assert_eq!(reg.evict(a).unwrap_err(), ServeError::StaleSession(a));

        // the freed slot is reused under a fresh generation: the old id
        // still cannot resolve
        let c = reg.create().unwrap();
        assert_eq!(c.index(), a.index());
        assert_ne!(c.generation(), a.generation());
        assert!(!reg.contains(a));
        assert!(reg.contains(c));
    }

    #[test]
    fn capacity_and_shape_are_enforced() {
        let mut reg = registry(|c| c.max_sessions = 1);
        let id = reg.create().unwrap();
        assert_eq!(reg.create().unwrap_err(), ServeError::AtCapacity(1));
        let bad = Tensor::zeros(Shape::new(1, 1, 32, 32));
        assert_eq!(
            reg.feed(id, &bad, 0).unwrap_err(),
            ServeError::SceneShape {
                expected: 48,
                got: (32, 32)
            }
        );
    }

    #[test]
    fn full_queue_sheds_oldest_and_stays_bounded() {
        let mut reg = registry(|c| c.queue_capacity = 2);
        let id = reg.create().unwrap();
        let img = scene(0);
        assert!(matches!(
            reg.feed(id, &img, 0).unwrap(),
            FeedOutcome::Queued { depth: 1 }
        ));
        assert!(matches!(
            reg.feed(id, &img, 1).unwrap(),
            FeedOutcome::Queued { depth: 2 }
        ));
        // third feed sheds the oldest; nothing tracked yet -> Lost
        let out = reg.feed(id, &img, 2).unwrap();
        let shed = out.shed().expect("queue was full");
        assert_eq!(shed.quality, FrameQuality::Lost);
        assert_eq!(shed.frame, 0, "drop-head: the oldest frame is shed");
        let snap = reg.snapshot(id).unwrap();
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.frames_ingested, 3);
        assert_eq!(snap.stats.frames_shed, 1);

        // once a frame has been tracked, shed frames degrade instead
        reg.tick();
        reg.feed(id, &img, 3).unwrap();
        let out = reg.feed(id, &img, 4).unwrap();
        assert_eq!(
            out.shed().expect("full again").quality,
            FrameQuality::Degraded
        );
    }

    #[test]
    fn tick_completes_frames_and_frame_indices_stay_dense() {
        let mut reg = registry(|_| {});
        let a = reg.create().unwrap();
        let b = reg.create_with_backend(GazeBackend::Int8).unwrap();
        for i in 0..3u64 {
            reg.feed(a, &scene(i), i).unwrap();
            reg.feed(b, &scene(i), i).unwrap();
        }
        for seen in 0..3u64 {
            let (report, trace) = reg.tick_traced();
            assert_eq!(report.staged, 2);
            assert_eq!(report.completed, 2);
            assert_eq!(report.f32_forwards + report.int8_forwards, 2);
            for (id, frame) in &trace {
                assert!(*id == a || *id == b);
                assert_eq!(frame.frame, seen, "frame indices are per-session dense");
                assert!(frame.quality.usable());
            }
        }
        // queues drained: an empty tick is a no-op
        assert_eq!(reg.tick(), TickReport::default());
        let snap = reg.snapshot(a).unwrap();
        assert_eq!(snap.stats.frames, 3);
        assert_eq!(snap.queue_depth, 0);
        assert!(snap.last.is_some());
        assert_eq!(reg.fleet_stats().frames, 6);
    }

    #[test]
    fn int8_sessions_share_one_fleet_calibration() {
        let mut reg = registry(|_| {});
        let ids: Vec<_> = (0..4)
            .map(|_| reg.create_with_backend(GazeBackend::Int8).unwrap())
            .collect();
        assert!(!reg.int8_calibrated());
        // calibration_frames = 8 and 4 warming sessions feed crops per
        // tick: the window fills during tick 2, calibrating at its end
        for t in 0..2u64 {
            for id in &ids {
                reg.feed(*id, &scene(t), t).unwrap();
            }
            let report = reg.tick();
            assert_eq!(report.int8_forwards, 0, "still warming through f32");
        }
        assert!(reg.int8_calibrated());
        for id in &ids {
            reg.feed(*id, &scene(9), 9).unwrap();
        }
        let report = reg.tick();
        assert_eq!(report.f32_forwards, 0);
        assert_eq!(report.int8_forwards, 4);
    }
}
