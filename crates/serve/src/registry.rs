//! The session registry and its serve tick.
//!
//! Sessions live in a columnar [`SessionStore`] (rows = sessions, columns
//! = per-stage state); the tick executes in one of three
//! [`TickMode`]s — the sequential AoS reference, PR 6's batched tick, or
//! the columnar stage-scheduled tick (see `scheduler.rs`) — all of which
//! produce identical per-session outputs.

use crate::store::{QueuedFrame, Route, SendPtr, SessionStore, STAGES};
use crate::{ServeConfig, ServeError, SessionId, TickMode};
use eyecod_core::acquisition::Acquisition;
use eyecod_core::metrics::TrackingStats;
use eyecod_core::tracker::{EyeTracker, GazeBackend, TrackedFrame};
use eyecod_core::training::TrackerModels;
use eyecod_eyedata::GazeVector;
use eyecod_faults::{FaultPlan, RecoveryPolicy};
use eyecod_models::infer::WorkspaceArena;
use eyecod_models::quantized::QuantizedGazeNet;
use eyecod_pool::ThreadPool;
use eyecod_telemetry::{static_counter, static_histogram};
use eyecod_tensor::{Shape, Tensor};

/// What happened to a fed frame.
#[derive(Debug, Clone)]
pub enum FeedOutcome {
    /// The frame was queued; `depth` is the queue depth afterwards.
    Queued {
        /// Ingress queue depth after this frame was enqueued.
        depth: usize,
    },
    /// The queue was full: the *oldest* queued frame was shed (drop-head,
    /// so the freshest data survives) and this frame took its place. The
    /// shed frame's accounting output is returned — graded
    /// [`Degraded`](eyecod_faults::FrameQuality::Degraded) once any frame
    /// has been tracked.
    Shed(TrackedFrame),
}

impl FeedOutcome {
    /// The shed frame, if this feed shed one.
    pub fn shed(&self) -> Option<&TrackedFrame> {
        match self {
            FeedOutcome::Shed(f) => Some(f),
            FeedOutcome::Queued { .. } => None,
        }
    }

    /// Whether this feed shed a frame.
    pub fn was_shed(&self) -> bool {
        matches!(self, FeedOutcome::Shed(_))
    }
}

/// Point-in-time view of one session.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// The session's id.
    pub id: SessionId,
    /// The gaze backend this session was created with.
    pub backend: GazeBackend,
    /// Accumulated per-session statistics (processed + shed frames).
    pub stats: TrackingStats,
    /// Current ingress queue depth (always ≤
    /// [`ServeConfig::queue_capacity`]).
    pub queue_depth: usize,
    /// Frames ever fed to this session (queued + shed).
    pub frames_ingested: u64,
    /// The most recent output (processed or shed), if any.
    pub last: Option<TrackedFrame>,
}

/// What one serve tick did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Sessions that had a frame staged this tick.
    pub staged: usize,
    /// Frames completed (equals `staged`; split out for clarity in logs).
    pub completed: usize,
    /// Gaze forwards routed through the f32 path (including int8 sessions
    /// still warming up toward the shared calibration, and latent sessions
    /// on their ROI-refresh frames).
    pub f32_forwards: usize,
    /// Gaze forwards routed through the shared int8 network.
    pub int8_forwards: usize,
    /// Gaze forwards routed through the recon-free latent network
    /// (latent sessions on steady-state frames).
    pub latent_forwards: usize,
}

pub(crate) enum PoolHandle {
    Global,
    Owned(ThreadPool),
}

/// The multi-session serving registry. See the crate docs for the model;
/// the short version: [`create`](ServeRegistry::create) sessions,
/// [`feed`](ServeRegistry::feed) them frames (bounded queues, drop-head
/// shedding), drive everything with [`tick`](ServeRegistry::tick)
/// (per-stage column sweeps or pooled AoS prepare + cross-session batched
/// gaze forwards, per [`TickMode`]),
/// [`snapshot`](ServeRegistry::snapshot) or
/// [`evict`](ServeRegistry::evict) when done.
pub struct ServeRegistry {
    pub(crate) config: ServeConfig,
    pub(crate) models: TrackerModels,
    /// Built once from the config, cloned per session — sessions share the
    /// same mask/reconstruction geometry, so each create skips the
    /// Tikhonov setup.
    acquisition: Acquisition,
    pub(crate) faults: FaultPlan,
    recovery: RecoveryPolicy,
    pub(crate) pool: PoolHandle,
    pub(crate) store: SessionStore,
    /// Rows with a staged frame this tick (reused across ticks).
    pub(crate) work: Vec<u32>,
    pub(crate) f32_batch: Vec<u32>,
    pub(crate) i8_batch: Vec<u32>,
    pub(crate) lat_batch: Vec<u32>,
    pub(crate) f32_arena: WorkspaceArena,
    pub(crate) i8_arena: WorkspaceArena,
    pub(crate) lat_arena: WorkspaceArena,
    /// The fleet-shared int8 network, once calibrated. Per-session
    /// calibration would give each session data-dependent activation
    /// scales and defeat cross-session batching; sharing one network
    /// calibrated on the first crops the fleet produces mirrors a deployed
    /// parameter server.
    pub(crate) shared_qnet: Option<QuantizedGazeNet>,
    /// Gaze crops collected from warming int8 sessions, pending the shared
    /// calibration.
    pub(crate) calib: Vec<Tensor>,
    /// Reusable stage-scheduler state (scheduled mode).
    pub(crate) sched: crate::scheduler::SchedState,
}

impl ServeRegistry {
    /// Builds a registry from a configuration and trained models.
    ///
    /// The fault plan defaults to [`FaultPlan::from_env`] and the recovery
    /// policy to [`RecoveryPolicy::default`]; override with
    /// [`ServeRegistry::with_faults`] / [`ServeRegistry::with_recovery`]
    /// before creating sessions.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: ServeConfig, models: TrackerModels) -> Self {
        config.validate();
        let acquisition = EyeTracker::build_acquisition(&config.tracker);
        let pool = match config.threads {
            Some(n) => PoolHandle::Owned(ThreadPool::with_threads(n)),
            None => PoolHandle::Global,
        };
        ServeRegistry {
            config,
            models,
            acquisition,
            faults: FaultPlan::from_env(),
            recovery: RecoveryPolicy::default(),
            pool,
            store: SessionStore::new(),
            work: Vec::new(),
            f32_batch: Vec::new(),
            i8_batch: Vec::new(),
            lat_batch: Vec::new(),
            f32_arena: WorkspaceArena::new(),
            i8_arena: WorkspaceArena::new(),
            lat_arena: WorkspaceArena::new(),
            shared_qnet: None,
            calib: Vec::new(),
            sched: crate::scheduler::SchedState::new(),
        }
    }

    /// Replaces the fault plan handed to every *subsequently created*
    /// session (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Replaces the recovery policy handed to every *subsequently created*
    /// session (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        policy.validate();
        self.recovery = policy;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Live session count.
    pub fn sessions_active(&self) -> usize {
        self.store.active
    }

    /// Whether `id` resolves to a live session.
    pub fn contains(&self, id: SessionId) -> bool {
        self.store.resolve(id).is_ok()
    }

    /// Whether the fleet-shared int8 network has been calibrated yet.
    pub fn int8_calibrated(&self) -> bool {
        self.shared_qnet.is_some()
    }

    /// Creates a session with the configured default backend.
    pub fn create(&mut self) -> Result<SessionId, ServeError> {
        self.create_with_backend(self.config.tracker.gaze_backend)
    }

    /// Creates a session with an explicit gaze backend (fleets mix f32 and
    /// int8 sessions freely; int8 sessions share one fleet-calibrated
    /// network).
    pub fn create_with_backend(&mut self, backend: GazeBackend) -> Result<SessionId, ServeError> {
        if self.store.active >= self.config.max_sessions {
            return Err(ServeError::AtCapacity(self.config.max_sessions));
        }
        let mut cfg = self.config.tracker.clone();
        cfg.gaze_backend = backend;
        let tracker =
            EyeTracker::with_acquisition(cfg, self.models.clone_models(), self.acquisition.clone())
                .with_faults(self.faults.clone())
                .with_recovery(self.recovery);
        let id = self.store.insert(tracker, backend);
        static_counter!("serve/sessions_created").inc();
        static_counter!("serve/sessions_active").set(self.store.active as u64);
        Ok(id)
    }

    /// Evicts a session, returning its final snapshot. The row's
    /// generation is bumped, so the evicted id (and any copy of it) can
    /// never resolve again.
    pub fn evict(&mut self, id: SessionId) -> Result<SessionSnapshot, ServeError> {
        let snap = self.snapshot(id)?;
        self.store.remove(id.index() as usize);
        static_counter!("serve/sessions_evicted").inc();
        static_counter!("serve/sessions_active").set(self.store.active as u64);
        Ok(snap)
    }

    /// Enqueues a frame for `id` (production path: no ground-truth label).
    ///
    /// Never blocks and never panics on load: a full queue sheds its
    /// oldest frame (returned via [`FeedOutcome::Shed`]) and the new frame
    /// is queued, so depth stays ≤ [`ServeConfig::queue_capacity`].
    pub fn feed(
        &mut self,
        id: SessionId,
        scene: &Tensor,
        noise_seed: u64,
    ) -> Result<FeedOutcome, ServeError> {
        self.feed_inner(id, scene, noise_seed, None)
    }

    /// [`ServeRegistry::feed`] with a ground-truth gaze label; the frame's
    /// angular error is folded into the session's [`TrackingStats`] when
    /// it completes.
    pub fn feed_labeled(
        &mut self,
        id: SessionId,
        scene: &Tensor,
        noise_seed: u64,
        truth: GazeVector,
    ) -> Result<FeedOutcome, ServeError> {
        self.feed_inner(id, scene, noise_seed, Some(truth))
    }

    fn feed_inner(
        &mut self,
        id: SessionId,
        scene: &Tensor,
        noise_seed: u64,
        truth: Option<GazeVector>,
    ) -> Result<FeedOutcome, ServeError> {
        let expected = self.config.tracker.scene_size;
        let s = scene.shape();
        if (s.h, s.w) != (expected, expected) {
            return Err(ServeError::SceneShape {
                expected,
                got: (s.h, s.w),
            });
        }
        let capacity = self.config.queue_capacity;
        let row = self.store.resolve(id)?;
        self.store.frames_ingested[row] += 1;
        static_counter!("serve/frames_ingested").inc();
        let shed = if self.store.queues[row].len() >= capacity {
            let old = self.store.queues[row]
                .pop_front()
                .expect("full queue is non-empty");
            self.store.spares[row].push(old.scene);
            let out = self.store.trackers[row]
                .as_mut()
                .expect("resolved row is live")
                .shed_frame();
            self.store.stats[row].record_shed();
            self.store.lasts[row] = Some(out.clone());
            static_counter!("serve/frames_shed").inc();
            Some(out)
        } else {
            None
        };
        let mut buf = self.store.spares[row]
            .pop()
            .unwrap_or_else(|| Tensor::zeros(Shape::new(1, 1, 1, 1)));
        buf.copy_from(scene);
        self.store.queues[row].push_back(QueuedFrame {
            scene: buf,
            noise_seed,
            truth,
        });
        Ok(match shed {
            Some(f) => FeedOutcome::Shed(f),
            None => FeedOutcome::Queued {
                depth: self.store.queues[row].len(),
            },
        })
    }

    /// Point-in-time view of one session.
    pub fn snapshot(&self, id: SessionId) -> Result<SessionSnapshot, ServeError> {
        let row = self.store.resolve(id)?;
        Ok(SessionSnapshot {
            id,
            backend: self.store.backends[row],
            stats: self.store.stats[row].clone(),
            queue_depth: self.store.queues[row].len(),
            frames_ingested: self.store.frames_ingested[row],
            last: self.store.lasts[row].clone(),
        })
    }

    /// Fleet-aggregate statistics: every live session's stats merged.
    pub fn fleet_stats(&self) -> TrackingStats {
        let mut total = TrackingStats::new();
        for row in 0..self.store.rows() {
            if self.store.is_live(row) {
                total.merge(&self.store.stats[row]);
            }
        }
        total
    }

    /// The pool this registry schedules on.
    pub(crate) fn pool(&self) -> &ThreadPool {
        match &self.pool {
            PoolHandle::Global => eyecod_pool::global(),
            PoolHandle::Owned(p) => p,
        }
    }

    /// Runs one serve tick: pops at most one frame per session (stable
    /// slot order), executes every staged frame per the configured
    /// [`TickMode`], and completes each frame.
    ///
    /// Neither batching nor stage scheduling ever changes results: batched
    /// GEMMs process items independently and fault draws are pure hashes
    /// of (seed, site, frame), so per-session outputs are invariant to
    /// batch composition, stage interleaving and worker count — the
    /// property the differential and scheduler-invariant suites pin
    /// against [`TickMode::Sequential`].
    pub fn tick(&mut self) -> TickReport {
        self.tick_impl(None)
    }

    /// [`ServeRegistry::tick`] that also returns every completed frame in
    /// completion order — the golden-trace hook of the registry test
    /// suites. (Allocates for the trace; production loops use `tick`.)
    pub fn tick_traced(&mut self) -> (TickReport, Vec<(SessionId, TrackedFrame)>) {
        let mut trace = Vec::new();
        let report = self.tick_impl(Some(&mut trace));
        (report, trace)
    }

    fn tick_impl(&mut self, mut trace: Option<&mut Vec<(SessionId, TrackedFrame)>>) -> TickReport {
        static_counter!("serve/ticks").inc();
        let tick_timer = static_histogram!("serve/tick_ns").timer();
        // 1. stage: at most one queued frame per session, slot order
        self.work.clear();
        for row in 0..self.store.rows() {
            if self.store.is_live(row) {
                if let Some(qf) = self.store.queues[row].pop_front() {
                    self.store.staged[row] = Some(qf);
                    self.work.push(row as u32);
                }
            }
        }
        let staged = self.work.len();
        if staged == 0 {
            drop(tick_timer);
            return TickReport::default();
        }
        // 2. execute per the configured mode
        let (f32_forwards, int8_forwards, latent_forwards) = match self.config.mode {
            TickMode::Sequential => self.tick_sequential(trace.as_deref_mut()),
            TickMode::Batched => self.tick_batched(trace.as_deref_mut()),
            TickMode::Scheduled => self.tick_scheduled(trace),
        };
        static_counter!("serve/frames_completed").add(staged as u64);
        // 3. fleet int8 calibration, once the warm-up crops are in — at
        // tick end so the tick that fills the window still serves f32,
        // exactly like the single-tracker warm-up
        let calib_target = self.config.tracker.calibration_frames;
        if self.shared_qnet.is_none() && calib_target > 0 && self.calib.len() >= calib_target {
            let batch = Tensor::stack(&self.calib);
            self.shared_qnet = Some(QuantizedGazeNet::from_calibrated(&self.models.gaze, &batch));
            self.calib.clear();
            self.calib.shrink_to_fit();
            static_counter!("serve/int8_calibrations").inc();
        }
        drop(tick_timer);
        TickReport {
            staged,
            completed: staged,
            f32_forwards,
            int8_forwards,
            latent_forwards,
        }
    }

    /// Routes row `row`'s prepared gaze input: picks the forward path,
    /// collects fleet calibration crops from warming int8 sessions, and
    /// appends the row to the matching batch group. Must run in work
    /// order — calibration collection is deterministic and
    /// pool-size-invariant because of it.
    ///
    /// `refresh_due` is the frame's scheduled ROI-refresh flag: latent
    /// sessions route their refresh frames (recon-path crops) through the
    /// f32 batch and their steady-state frames (projected measurements)
    /// through the latent batch, mirroring the tracker's own dispatch.
    pub(crate) fn route_row(
        &mut self,
        row: usize,
        has_input: bool,
        input_non_finite: bool,
        refresh_due: bool,
    ) {
        if !has_input {
            self.store.routes[row] = Route::Fallback;
            return;
        }
        let calibrated = self.shared_qnet.is_some();
        let calib_open = self.calib.len() < self.config.tracker.calibration_frames;
        let backend = self.store.backends[row];
        if backend == GazeBackend::Int8 && calibrated {
            self.store.routes[row] = Route::Int8;
            self.i8_batch.push(row as u32);
        } else if backend == GazeBackend::Latent && !refresh_due {
            self.store.routes[row] = Route::Latent;
            self.lat_batch.push(row as u32);
        } else {
            if backend == GazeBackend::Int8 && !calibrated && calib_open && !input_non_finite {
                let crop = match self.config.mode {
                    TickMode::Scheduled => self.store.gaze_ins[row].clone(),
                    _ => self.store.preps[row]
                        .as_ref()
                        .expect("prepared")
                        .gaze_input()
                        .clone(),
                };
                self.calib.push(crop);
            }
            self.store.routes[row] = Route::F32;
            self.f32_batch.push(row as u32);
        }
    }

    /// The sequential AoS reference tick: each staged session runs its
    /// whole frame pipeline inline in work order — per-session
    /// `prepare_frame` through the tracker-owned scratch, routing (with
    /// the same fleet-shared int8 semantics as every other mode), an
    /// individual gaze forward, and completion. The golden path the
    /// differential suites compare the batched and scheduled ticks
    /// against.
    fn tick_sequential(
        &mut self,
        mut trace: Option<&mut Vec<(SessionId, TrackedFrame)>>,
    ) -> (usize, usize, usize) {
        self.f32_batch.clear();
        self.i8_batch.clear();
        self.lat_batch.clear();
        for w in 0..self.work.len() {
            let row = self.work[w] as usize;
            // prepare inline (AoS: the tracker's own scratch buffers)
            let prep = {
                let qf = self.store.staged[row].as_ref().expect("staged");
                self.store.trackers[row]
                    .as_mut()
                    .expect("staged row is live")
                    .prepare_frame(&qf.scene, qf.noise_seed)
            };
            let has_input = prep.has_gaze_input();
            let non_finite = has_input && prep.gaze_input().has_non_finite();
            let due = prep.refresh_due();
            self.store.preps[row] = Some(prep);
            self.route_row(row, has_input, non_finite, due);
            // forward individually + complete
            let route = self.store.routes[row];
            let mut pred = [0.0f32; 3];
            if route != Route::Fallback {
                self.forward_single(row, route, &mut pred);
            }
            let prep = self.store.preps[row].take().expect("prepared");
            let tracker = self.store.trackers[row].as_mut().expect("live");
            let out = if route == Route::Fallback {
                tracker.complete_frame(prep)
            } else {
                tracker.complete_frame_with_pred(prep, &pred)
            };
            self.account_completion(row, out, trace.as_deref_mut());
        }
        (
            self.f32_batch.len(),
            self.i8_batch.len(),
            self.lat_batch.len(),
        )
    }

    /// PR 6's batched tick: pooled AoS prepare (one job per session),
    /// serial routing, one batched gaze GEMM per pool participant, serial
    /// completion.
    fn tick_batched(
        &mut self,
        mut trace: Option<&mut Vec<(SessionId, TrackedFrame)>>,
    ) -> (usize, usize, usize) {
        // prepare in parallel: acquisition / ROI refresh / crop+resize,
        // one pool job per session
        {
            let trackers = SendPtr(self.store.trackers.as_mut_ptr());
            let preps = SendPtr(self.store.preps.as_mut_ptr());
            let staged = SendPtr(self.store.staged.as_mut_ptr());
            let work = &self.work;
            self.pool().parallel_for_chunked(work.len(), 1, |i| {
                // SAFETY: `work` holds unique rows, so every job touches a
                // distinct session's columns
                let row = work[i] as usize;
                let tracker = unsafe { trackers.get(row) }.as_mut().expect("staged row");
                let qf = unsafe { staged.get(row) }.as_ref().expect("staged frame");
                *unsafe { preps.get(row) } = Some(tracker.prepare_frame(&qf.scene, qf.noise_seed));
            });
        }
        // route serially in work order
        self.f32_batch.clear();
        self.i8_batch.clear();
        self.lat_batch.clear();
        for w in 0..self.work.len() {
            let row = self.work[w] as usize;
            let prep = self.store.preps[row].as_ref().expect("prepared");
            let has_input = prep.has_gaze_input();
            let non_finite = has_input && prep.gaze_input().has_non_finite();
            let due = prep.refresh_due();
            self.route_row(row, has_input, non_finite, due);
        }
        let counts = (
            self.f32_batch.len(),
            self.i8_batch.len(),
            self.lat_batch.len(),
        );
        // batched forwards: one GEMM per pool participant
        let group = std::mem::take(&mut self.f32_batch);
        self.run_batch(&group, Route::F32);
        self.f32_batch = group;
        let group = std::mem::take(&mut self.i8_batch);
        self.run_batch(&group, Route::Int8);
        self.i8_batch = group;
        let group = std::mem::take(&mut self.lat_batch);
        self.run_batch(&group, Route::Latent);
        self.lat_batch = group;
        // complete in work order: scatter predictions back, grade and
        // account each frame through the tracker's recovery tail
        for w in 0..self.work.len() {
            let row = self.work[w] as usize;
            let route = self.store.routes[row];
            let mut pred = [0.0f32; 3];
            let use_pred = route != Route::Fallback;
            if use_pred {
                let (p, j) = self.store.batch_pos[row];
                let arena = match route {
                    Route::Int8 => &self.i8_arena,
                    Route::Latent => &self.lat_arena,
                    _ => &self.f32_arena,
                };
                let out = arena.slot(p as usize).output.as_slice();
                pred.copy_from_slice(&out[j as usize * 3..j as usize * 3 + 3]);
            }
            let prep = self.store.preps[row].take().expect("prepared");
            let tracker = self.store.trackers[row].as_mut().expect("live");
            let out = if use_pred {
                tracker.complete_frame_with_pred(prep, &pred)
            } else {
                tracker.complete_frame(prep)
            };
            self.account_completion(row, out, trace.as_deref_mut());
        }
        counts
    }

    /// Folds a completed frame into the session's accounting columns and
    /// the trace, and recycles the staged scene buffer.
    pub(crate) fn account_completion(
        &mut self,
        row: usize,
        out: TrackedFrame,
        trace: Option<&mut Vec<(SessionId, TrackedFrame)>>,
    ) {
        let qf = self.store.staged[row].take().expect("staged frame present");
        match &qf.truth {
            Some(t) => self.store.stats[row].record(&out, t),
            None => self.store.stats[row].record_unlabeled(&out),
        }
        self.store.spares[row].push(qf.scene);
        match trace {
            Some(tr) => {
                self.store.lasts[row] = Some(out.clone());
                tr.push((SessionId::new(row as u32, self.store.generations[row]), out));
            }
            None => self.store.lasts[row] = Some(out),
        }
    }

    /// Batched gaze forward for one route group: partitions `group` into
    /// one contiguous sub-batch per pool participant, gathers each
    /// sub-batch into its arena slot, and runs the slots' forwards in
    /// parallel. On a sequential pool this is literally one batched GEMM,
    /// executed inline with zero allocation once the arena is warm.
    ///
    /// The gather reads each row's gaze input from the mode's layout: the
    /// `gaze_ins` column in scheduled mode, the AoS prepared frame
    /// otherwise.
    ///
    /// `route` selects the network and arena: [`Route::F32`],
    /// [`Route::Int8`] or [`Route::Latent`] (never [`Route::Fallback`]).
    pub(crate) fn run_batch(&mut self, group: &[u32], route: Route) {
        if group.is_empty() {
            return;
        }
        let batch_timer = static_histogram!("serve/batch_ns").timer();
        static_counter!("serve/batches").inc();
        static_counter!("serve/batch_size").add(group.len() as u64);
        let columnar = self.config.mode == TickMode::Scheduled;
        let n = group.len();
        let parts = self.pool().participants().min(n);
        let (gh, gw) = self.config.tracker.gaze_input;
        let arena = match route {
            Route::Int8 => &mut self.i8_arena,
            Route::Latent => &mut self.lat_arena,
            Route::F32 => &mut self.f32_arena,
            Route::Fallback => unreachable!("fallback rows never batch"),
        };
        arena.ensure(parts);
        // gather: chunk p covers group[p*n/parts .. (p+1)*n/parts]
        for p in 0..parts {
            let (start, end) = (p * n / parts, (p + 1) * n / parts);
            let slot = arena.slot_mut(p);
            slot.input.reset(Shape::new(end - start, 1, gh, gw));
            for (j, &row) in group[start..end].iter().enumerate() {
                let row = row as usize;
                self.store.batch_pos[row] = (p as u32, j as u32);
                let src = if columnar {
                    self.store.gaze_ins[row].as_slice()
                } else {
                    self.store.preps[row]
                        .as_ref()
                        .expect("prepared")
                        .gaze_input()
                        .as_slice()
                };
                slot.input.batch_item_slice_mut(j).copy_from_slice(src);
            }
        }
        {
            let pool = match &self.pool {
                PoolHandle::Global => eyecod_pool::global(),
                PoolHandle::Owned(p) => p,
            };
            let slots = SendPtr(arena.slots_mut().as_mut_ptr());
            let gaze = &self.models.gaze;
            let latent = &self.models.latent;
            let qnet = self.shared_qnet.as_ref();
            pool.parallel_for_chunked(parts, 1, |p| {
                // SAFETY: each job takes a distinct arena slot
                let slot = unsafe { slots.get(p) };
                match route {
                    Route::Int8 => qnet
                        .expect("int8 batches only run once calibrated")
                        .forward_into(&slot.input, &mut slot.ws, &mut slot.output),
                    Route::Latent => {
                        latent.forward_infer(&slot.input, &mut slot.ws, &mut slot.output)
                    }
                    _ => gaze.forward_infer(&slot.input, &mut slot.ws, &mut slot.output),
                }
            });
        }
        drop(batch_timer);
    }

    /// The sequential-mode forward: the same routing and shared int8
    /// semantics, but each forward runs individually through arena slot 0.
    fn forward_single(&mut self, row: usize, route: Route, pred: &mut [f32; 3]) {
        let arena = match route {
            Route::Int8 => &mut self.i8_arena,
            Route::Latent => &mut self.lat_arena,
            Route::F32 => &mut self.f32_arena,
            Route::Fallback => unreachable!("fallback rows never forward"),
        };
        arena.ensure(1);
        let slot = arena.slot_mut(0);
        let input = match self.config.mode {
            TickMode::Scheduled => &self.store.gaze_ins[row],
            _ => self.store.preps[row]
                .as_ref()
                .expect("prepared")
                .gaze_input(),
        };
        slot.input.copy_from(input);
        match route {
            Route::Int8 => self
                .shared_qnet
                .as_ref()
                .expect("int8 forwards only run once calibrated")
                .forward_into(&slot.input, &mut slot.ws, &mut slot.output),
            Route::Latent => {
                self.models
                    .latent
                    .forward_infer(&slot.input, &mut slot.ws, &mut slot.output)
            }
            _ => self
                .models
                .gaze
                .forward_infer(&slot.input, &mut slot.ws, &mut slot.output),
        }
        pred.copy_from_slice(&slot.output.as_slice()[..3]);
    }

    /// The epoch column row for `row` — test/debug hook for the
    /// stage-conformance invariant.
    #[doc(hidden)]
    pub fn stage_epochs(&self, id: SessionId) -> Result<[u64; STAGES], ServeError> {
        let row = self.store.resolve(id)?;
        Ok(self.store.epochs[row])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyecod_core::tracker::TrackerConfig;
    use eyecod_core::training::{train_tracker_models, TrainingSetup};
    use eyecod_eyedata::render::{render_eye, EyeParams};
    use eyecod_faults::FrameQuality;
    use std::sync::OnceLock;

    /// Train once, share across tests (training is the expensive part).
    fn registry(mut mutate: impl FnMut(&mut ServeConfig)) -> ServeRegistry {
        static MODELS: OnceLock<(TrackerConfig, TrackerModels)> = OnceLock::new();
        let (cfg, models) = MODELS.get_or_init(|| {
            let mut cfg = TrackerConfig::small();
            // these unit tests pin exact per-tick forward counts, which
            // assume every staged frame reaches its gaze batch — run the
            // dense path even under ambient EYECOD_DELTA=1 (the delta
            // serve semantics have their own differential suite)
            cfg.delta = false;
            let models = train_tracker_models(&TrainingSetup::quick(), &cfg);
            (cfg, models)
        });
        let mut sc = ServeConfig::new(cfg.clone());
        sc.threads = Some(0); // sequential: unit tests stay deterministic & cheap
        mutate(&mut sc);
        ServeRegistry::new(sc, models.clone_models()).with_faults(FaultPlan::none())
    }

    fn scene(seed: u64) -> Tensor {
        let mut p = EyeParams::centered(48);
        p.yaw = 0.02 * (seed as f32 % 7.0) - 0.07;
        render_eye(&p, 48, seed).image
    }

    #[test]
    fn lifecycle_ids_are_generational() {
        let mut reg = registry(|_| {});
        let a = reg.create().unwrap();
        let b = reg.create().unwrap();
        assert_eq!(reg.sessions_active(), 2);
        assert!(reg.contains(a) && reg.contains(b));
        assert_ne!(a, b);

        let snap = reg.evict(a).unwrap();
        assert_eq!(snap.id, a);
        assert_eq!(reg.sessions_active(), 1);
        assert!(!reg.contains(a));
        assert_eq!(reg.snapshot(a).unwrap_err(), ServeError::StaleSession(a));
        assert_eq!(reg.evict(a).unwrap_err(), ServeError::StaleSession(a));

        // the freed row is reused under a fresh generation: the old id
        // still cannot resolve
        let c = reg.create().unwrap();
        assert_eq!(c.index(), a.index());
        assert_ne!(c.generation(), a.generation());
        assert!(!reg.contains(a));
        assert!(reg.contains(c));
    }

    #[test]
    fn capacity_and_shape_are_enforced() {
        let mut reg = registry(|c| c.max_sessions = 1);
        let id = reg.create().unwrap();
        assert_eq!(reg.create().unwrap_err(), ServeError::AtCapacity(1));
        let bad = Tensor::zeros(Shape::new(1, 1, 32, 32));
        assert_eq!(
            reg.feed(id, &bad, 0).unwrap_err(),
            ServeError::SceneShape {
                expected: 48,
                got: (32, 32)
            }
        );
    }

    #[test]
    fn full_queue_sheds_oldest_and_stays_bounded() {
        let mut reg = registry(|c| c.queue_capacity = 2);
        let id = reg.create().unwrap();
        let img = scene(0);
        assert!(matches!(
            reg.feed(id, &img, 0).unwrap(),
            FeedOutcome::Queued { depth: 1 }
        ));
        assert!(matches!(
            reg.feed(id, &img, 1).unwrap(),
            FeedOutcome::Queued { depth: 2 }
        ));
        // third feed sheds the oldest; nothing tracked yet -> Lost
        let out = reg.feed(id, &img, 2).unwrap();
        let shed = out.shed().expect("queue was full");
        assert_eq!(shed.quality, FrameQuality::Lost);
        assert_eq!(shed.frame, 0, "drop-head: the oldest frame is shed");
        let snap = reg.snapshot(id).unwrap();
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.frames_ingested, 3);
        assert_eq!(snap.stats.frames_shed, 1);

        // once a frame has been tracked, shed frames degrade instead
        reg.tick();
        reg.feed(id, &img, 3).unwrap();
        let out = reg.feed(id, &img, 4).unwrap();
        assert_eq!(
            out.shed().expect("full again").quality,
            FrameQuality::Degraded
        );
    }

    #[test]
    fn tick_completes_frames_and_frame_indices_stay_dense() {
        for mode in [TickMode::Sequential, TickMode::Batched, TickMode::Scheduled] {
            let mut reg = registry(|c| c.mode = mode);
            let a = reg.create().unwrap();
            let b = reg.create_with_backend(GazeBackend::Int8).unwrap();
            for i in 0..3u64 {
                reg.feed(a, &scene(i), i).unwrap();
                reg.feed(b, &scene(i), i).unwrap();
            }
            for seen in 0..3u64 {
                let (report, trace) = reg.tick_traced();
                assert_eq!(report.staged, 2, "{mode:?}");
                assert_eq!(report.completed, 2, "{mode:?}");
                assert_eq!(report.f32_forwards + report.int8_forwards, 2, "{mode:?}");
                for (id, frame) in &trace {
                    assert!(*id == a || *id == b);
                    assert_eq!(frame.frame, seen, "frame indices are per-session dense");
                    assert!(frame.quality.usable());
                }
            }
            // queues drained: an empty tick is a no-op
            assert_eq!(reg.tick(), TickReport::default());
            let snap = reg.snapshot(a).unwrap();
            assert_eq!(snap.stats.frames, 3);
            assert_eq!(snap.queue_depth, 0);
            assert!(snap.last.is_some());
            assert_eq!(reg.fleet_stats().frames, 6);
        }
    }

    #[test]
    fn int8_sessions_share_one_fleet_calibration() {
        for mode in [TickMode::Sequential, TickMode::Batched, TickMode::Scheduled] {
            let mut reg = registry(|c| c.mode = mode);
            let ids: Vec<_> = (0..4)
                .map(|_| reg.create_with_backend(GazeBackend::Int8).unwrap())
                .collect();
            assert!(!reg.int8_calibrated());
            // calibration_frames = 8 and 4 warming sessions feed crops per
            // tick: the window fills during tick 2, calibrating at its end
            for t in 0..2u64 {
                for id in &ids {
                    reg.feed(*id, &scene(t), t).unwrap();
                }
                let report = reg.tick();
                assert_eq!(report.int8_forwards, 0, "{mode:?}: still warming");
            }
            assert!(reg.int8_calibrated(), "{mode:?}");
            for id in &ids {
                reg.feed(*id, &scene(9), 9).unwrap();
            }
            let report = reg.tick();
            assert_eq!(report.f32_forwards, 0, "{mode:?}");
            assert_eq!(report.int8_forwards, 4, "{mode:?}");
        }
    }
}
