//! Process-wide work-stealing thread pool for the EyeCoD pipeline.
//!
//! The seed implementation spun up a fresh set of scoped threads per call
//! and funnelled every result through one mutex, serialising exactly the
//! part that was supposed to be parallel. This crate replaces it with a
//! lazily-initialised, reusable pool:
//!
//! - **One pool per process** ([`global`], built on first use via
//!   `std::sync::OnceLock`); worker threads are created once and reused by
//!   every `parallel_map` in the program.
//! - **Per-participant chunked deques with work stealing.** Each job
//!   pre-splits its index space evenly across participants (all workers
//!   plus the calling thread). A participant's share is one packed
//!   `AtomicU64` `(begin, end)` range: the owner CAS-pops chunks from the
//!   front, idle participants CAS-steal chunks from the back. The hot path
//!   takes **zero locks** — locks and condvars only appear on the cold
//!   submit/park/complete paths.
//! - **Pre-allocated result slots.** `parallel_map` writes each result
//!   into its own `Vec<MaybeUninit<R>>` slot, so output order always
//!   matches input order and no synchronisation is needed between writers.
//! - **Caller participation.** The submitting thread works the job too,
//!   which makes nested/re-entrant `parallel_map` calls deadlock-free: the
//!   inner call always has at least one thread (itself) draining it, even
//!   if every worker is busy.
//! - **Panic propagation.** If the mapped closure panics, the job is
//!   poisoned, remaining work is drained, and the first panic payload is
//!   re-thrown in the caller via `resume_unwind`. Already-initialised
//!   result slots are leaked rather than dropped (a panic never triggers
//!   drops of results the caller never observed).
//! - **Panic isolation** ([`ThreadPool::try_parallel_map`]): fault-tolerant
//!   callers get `Err(message)` for exactly the items whose closure
//!   panicked while every other item completes — the substrate for the
//!   pipeline's worker-death recovery path (caught panics are counted in
//!   `pool/item_panics_caught`).
//!
//! [`BatchRunner`] layers windowed submission on top for long job lists
//! whose per-job working state is heavy (e.g. training a tracker per
//! configuration): only one window's results are buffered at a time.
//!
//! # Telemetry
//!
//! With the `telemetry` feature (default on) the pool records `pool/jobs`,
//! `pool/chunks_self` vs `pool/chunks_stolen` (chunk claims by owners vs
//! thieves), a `pool/job_wall_ns` histogram, and the `pool/workers` gauge
//! into the [`eyecod_telemetry`] global registry. Counters are one relaxed
//! atomic op per *chunk*, never per item, so the stealing hot path stays
//! lock-free; disable at runtime with `EYECOD_TELEMETRY=0` or compile out
//! with `--no-default-features`.

use eyecod_telemetry::{static_counter, static_histogram};
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;

/// Index ranges are packed two-per-`u64`, capping a single job's size.
pub const MAX_ITEMS: usize = u32::MAX as usize;

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

#[inline]
fn pack(begin: u32, end: u32) -> u64 {
    ((begin as u64) << 32) | end as u64
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Type-erased pointer to the caller's stack context plus the monomorphic
/// trampoline that executes one item through it.
///
/// Soundness: the submitting thread keeps the context alive until the
/// job's completion latch fires, and participants never dereference `ctx`
/// after contributing their final `complete()` decrement — so the pointer
/// never dangles while reachable.
struct TaskRef {
    ctx: *const (),
    run: unsafe fn(*const (), usize),
}

unsafe impl Send for TaskRef {}
unsafe impl Sync for TaskRef {}

/// Shared state of one submitted job.
struct JobCore {
    /// One packed `(begin, end)` range per participant. Owners pop from the
    /// front, thieves steal from the back; both via CAS on the same word.
    ranges: Box<[AtomicU64]>,
    /// Pop/steal granularity in items.
    chunk: u32,
    /// Items not yet executed (or drained after a poison). Hitting zero
    /// fires the completion latch.
    unfinished: AtomicUsize,
    poisoned: AtomicBool,
    panic_payload: Mutex<Option<PanicPayload>>,
    done: Mutex<bool>,
    done_cv: Condvar,
    task: TaskRef,
}

impl JobCore {
    fn new(items: usize, chunk: usize, participants: usize, task: TaskRef) -> Self {
        debug_assert!(items > 0 && items <= MAX_ITEMS && participants > 0);
        let chunk = chunk.clamp(1, MAX_ITEMS) as u32;
        // pre-split the index space evenly so every participant starts on
        // its own cache-friendly contiguous share
        let ranges: Box<[AtomicU64]> = (0..participants)
            .map(|p| {
                let b = (p * items / participants) as u32;
                let e = ((p + 1) * items / participants) as u32;
                AtomicU64::new(pack(b, e))
            })
            .collect();
        JobCore {
            ranges,
            chunk,
            unfinished: AtomicUsize::new(items),
            poisoned: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            task,
        }
    }

    fn has_work(&self) -> bool {
        self.ranges.iter().any(|r| {
            let (b, e) = unpack(r.load(Ordering::Relaxed));
            b < e
        })
    }

    /// Owner side: claim the next chunk from the front of `slot`'s range.
    fn pop_front(&self, slot: usize) -> Option<(u32, u32)> {
        let r = &self.ranges[slot];
        let mut cur = r.load(Ordering::Acquire);
        loop {
            let (b, e) = unpack(cur);
            if b >= e {
                return None;
            }
            let nb = (b + self.chunk).min(e);
            match r.compare_exchange_weak(cur, pack(nb, e), Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Some((b, nb)),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Thief side: claim a chunk from the back of `slot`'s range.
    fn steal_back(&self, slot: usize) -> Option<(u32, u32)> {
        let r = &self.ranges[slot];
        let mut cur = r.load(Ordering::Acquire);
        loop {
            let (b, e) = unpack(cur);
            if b >= e {
                return None;
            }
            let ne = e - self.chunk.min(e - b);
            match r.compare_exchange_weak(cur, pack(b, ne), Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Some((ne, e)),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Empties every range (used after a poison) and returns how many
    /// items were discarded. `swap` guarantees each item is claimed exactly
    /// once, either here or by a concurrent pop/steal.
    fn drain_all(&self) -> usize {
        self.ranges
            .iter()
            .map(|r| {
                let (b, e) = unpack(r.swap(pack(0, 0), Ordering::AcqRel));
                e.saturating_sub(b) as usize
            })
            .sum()
    }

    /// Works the job as participant `slot` until no chunk can be claimed:
    /// own range first, then round-robin stealing from the others.
    fn participate(&self, slot: usize) {
        loop {
            let participants = self.ranges.len();
            let mut stole = false;
            let claimed = self.pop_front(slot).or_else(|| {
                stole = true;
                (1..participants)
                    .filter_map(|off| self.steal_back((slot + off) % participants))
                    .next()
            });
            let Some((b, e)) = claimed else { return };
            if stole {
                static_counter!("pool/chunks_stolen").inc();
            } else {
                static_counter!("pool/chunks_self").inc();
            }
            self.execute(b, e);
            if self.poisoned.load(Ordering::Relaxed) {
                return;
            }
        }
    }

    fn execute(&self, b: u32, e: u32) {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            for i in b..e {
                unsafe { (self.task.run)(self.task.ctx, i as usize) }
            }
        }));
        let mut finished = (e - b) as usize;
        if let Err(payload) = outcome {
            // first panic wins; later ones are dropped
            if !self.poisoned.swap(true, Ordering::SeqCst) {
                *lock(&self.panic_payload) = Some(payload);
            }
            finished += self.drain_all();
        }
        self.complete(finished);
    }

    fn complete(&self, n: usize) {
        if n > 0 && self.unfinished.fetch_sub(n, Ordering::AcqRel) == n {
            *lock(&self.done) = true;
            self.done_cv.notify_all();
        }
    }
}

/// Locks a mutex, recovering from poisoning (a panicking participant must
/// not wedge the pool).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct PoolShared {
    /// Pending jobs (cold path). Jobs are pushed on submit and removed by
    /// their submitter once complete; workers only scan.
    queue: Mutex<Vec<Arc<JobCore>>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

fn worker_loop(shared: Arc<PoolShared>, slot: usize) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(job) = q.iter().find(|j| j.has_work()).cloned() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.work_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        job.participate(slot);
    }
}

/// A reusable work-stealing pool. Most code should use the process-wide
/// [`global`] pool; dedicated instances exist for tests that need a fixed
/// worker count.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    handles: Vec<thread::JoinHandle<()>>,
    workers: usize,
}

impl ThreadPool {
    /// Builds a pool with exactly `workers` background threads. The
    /// calling thread of each job always participates too, so
    /// `with_threads(0)` is a valid, fully sequential pool.
    pub fn with_threads(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(Vec::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("eyecod-pool-{slot}"))
                    .spawn(move || worker_loop(shared, slot))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            workers,
        }
    }

    /// Number of background worker threads (callers add one more
    /// participant per job).
    pub fn threads(&self) -> usize {
        self.workers
    }

    /// Maps `f` over `items` in parallel, preserving order. Chunk size is
    /// picked automatically (a few chunks per participant so stealing can
    /// rebalance uneven items).
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let participants = self.workers + 1;
        let chunk = (items.len() / (participants * 8)).max(1);
        self.parallel_map_chunked(items, chunk, f)
    }

    /// [`ThreadPool::parallel_map`] with an explicit pop/steal granularity.
    /// Use `chunk = 1` for heavy, uneven items; larger chunks amortise
    /// claiming overhead for cheap uniform items.
    pub fn parallel_map_chunked<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        let mut out: Vec<MaybeUninit<R>> = (0..n).map(|_| MaybeUninit::uninit()).collect();
        let out_ptr = SendPtr(out.as_mut_ptr());
        let run_item = |i: usize| {
            let val = f(&items[i]);
            // each index writes only its own slot, so no synchronisation
            // is needed between writers
            unsafe { out_ptr.get().add(i).write(MaybeUninit::new(val)) };
        };
        match self.run_job(n, chunk, &run_item) {
            Ok(()) => {
                // every slot was written exactly once; reinterpret in place
                let mut out = ManuallyDrop::new(out);
                unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut R, n, n) }
            }
            Err(payload) => {
                // `out` drops as Vec<MaybeUninit<R>>: the buffer is freed
                // but initialised results are leaked, never dropped —
                // required, since we cannot know which subset was written
                panic::resume_unwind(payload)
            }
        }
    }

    /// Panic-isolating [`ThreadPool::parallel_map_chunked`]: a panicking
    /// item yields `Err(message)` in its own slot instead of poisoning the
    /// whole job, and every other item still completes.
    ///
    /// This is the execution substrate for graceful pipeline degradation:
    /// a worker dying mid-job (injected or real) costs exactly the items
    /// it was running, which the caller can retry or substitute. Caught
    /// panics are counted in `pool/item_panics_caught`.
    pub fn try_parallel_map<T, R, F>(
        &self,
        items: &[T],
        chunk: usize,
        f: F,
    ) -> Vec<Result<R, String>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.parallel_map_chunked(items, chunk, |item| {
            match panic::catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(r) => Ok(r),
                Err(payload) => {
                    static_counter!("pool/item_panics_caught").inc();
                    Err(panic_message(&payload))
                }
            }
        })
    }

    /// How many threads execute a job concurrently: the background workers
    /// plus the calling thread, which always participates. A sequential
    /// pool (`with_threads(0)`) reports 1. Callers that partition work per
    /// thread (e.g. one batched-GEMM sub-batch per participant) size their
    /// partitions with this.
    pub fn participants(&self) -> usize {
        self.workers + 1
    }

    /// Runs `f(i)` for every `i in 0..n` in parallel with the given chunk
    /// granularity. The index-space primitive underlying `parallel_map`;
    /// useful for tiled kernels that write disjoint output regions.
    pub fn parallel_for_chunked<F>(&self, n: usize, chunk: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if let Err(payload) = self.run_job(n, chunk, &f) {
            panic::resume_unwind(payload)
        }
    }

    /// Shared engine: executes `run_item(i)` for all `i in 0..n`, either
    /// inline (no workers / single chunk) or through the stealing deques.
    fn run_job(
        &self,
        n: usize,
        chunk: usize,
        run_item: &(dyn Fn(usize) + Sync),
    ) -> Result<(), PanicPayload> {
        if n == 0 {
            return Ok(());
        }
        assert!(n <= MAX_ITEMS, "job of {n} items exceeds MAX_ITEMS");
        static_counter!("pool/jobs").inc();
        let _job_timer = static_histogram!("pool/job_wall_ns").timer();
        if self.workers == 0 || n <= chunk.max(1) {
            // no parallelism to extract: run inline on the caller — one
            // self-executed chunk from the telemetry point of view
            static_counter!("pool/chunks_self").inc();
            return panic::catch_unwind(AssertUnwindSafe(|| {
                for i in 0..n {
                    run_item(i);
                }
            }));
        }

        unsafe fn trampoline(ctx: *const (), i: usize) {
            let f = unsafe { &**(ctx as *const &(dyn Fn(usize) + Sync)) };
            f(i)
        }
        let ctx: &&(dyn Fn(usize) + Sync) = &run_item;
        let job = Arc::new(JobCore::new(
            n,
            chunk,
            self.workers + 1,
            TaskRef {
                ctx: ctx as *const _ as *const (),
                run: trampoline,
            },
        ));

        lock(&self.shared.queue).push(Arc::clone(&job));
        self.shared.work_cv.notify_all();

        // the caller works its own job: guarantees progress even when every
        // worker is busy (nested parallel_map, many concurrent callers)
        job.participate(self.workers);

        let mut done = lock(&job.done);
        while !*done {
            done = job.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
        drop(done);

        let mut q = lock(&self.shared.queue);
        if let Some(pos) = q.iter().position(|j| Arc::ptr_eq(j, &job)) {
            q.remove(pos);
        }
        drop(q);

        if job.poisoned.load(Ordering::SeqCst) {
            let payload = lock(&job.panic_payload)
                .take()
                .unwrap_or_else(|| Box::new("pool job panicked"));
            return Err(payload);
        }
        Ok(())
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Renders a panic payload as a message, preserving `&str`/`String`
/// payloads (the common `panic!` cases).
fn panic_message(payload: &PanicPayload) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

// Soundness: only used for disjoint per-index writes into a buffer the
// submitting thread keeps alive until the job's completion latch fires.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-wide pool, built on first use. Sized to the machine
/// (`available_parallelism - 1` workers, since callers participate);
/// override with the `EYECOD_THREADS` environment variable (`1` means one
/// worker, `0` forces fully sequential execution).
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        let workers = std::env::var("EYECOD_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
                    .saturating_sub(1)
            });
        static_counter!("pool/workers").set(workers as u64);
        ThreadPool::with_threads(workers)
    })
}

/// [`ThreadPool::parallel_map`] on the [`global`] pool.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    global().parallel_map(items, f)
}

/// [`ThreadPool::parallel_map_chunked`] on the [`global`] pool.
pub fn parallel_map_chunked<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    global().parallel_map_chunked(items, chunk, f)
}

/// [`ThreadPool::try_parallel_map`] on the [`global`] pool.
pub fn try_parallel_map<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    global().try_parallel_map(items, chunk, f)
}

/// [`ThreadPool::parallel_for_chunked`] on the [`global`] pool.
pub fn parallel_for_chunked<F>(n: usize, chunk: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    global().parallel_for_chunked(n, chunk, f)
}

/// Windowed batch executor for long lists of *heavy* jobs (e.g. one
/// tracker-training run per configuration).
///
/// Jobs are submitted `window` at a time with chunk granularity 1, so at
/// most `window` jobs' results (and at most `participants` jobs' working
/// state) are in flight before being moved into the output — memory stays
/// bounded however long the job list is, while stealing keeps all cores
/// busy within each window.
pub struct BatchRunner<'p> {
    pool: &'p ThreadPool,
    window: usize,
}

impl<'p> BatchRunner<'p> {
    /// A runner on `pool` with a default window of twice the participant
    /// count (enough slack for stealing to smooth uneven job costs).
    pub fn new(pool: &'p ThreadPool) -> Self {
        BatchRunner {
            pool,
            window: (pool.threads() + 1) * 2,
        }
    }

    /// A runner on the [`global`] pool.
    pub fn on_global() -> BatchRunner<'static> {
        BatchRunner::new(global())
    }

    /// Overrides how many jobs may be in flight per submission.
    pub fn window(mut self, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        self.window = window;
        self
    }

    /// Evaluates `f` over every job, preserving order.
    pub fn run<T, R, F>(&self, jobs: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let mut out = Vec::with_capacity(jobs.len());
        for window in jobs.chunks(self.window) {
            out.extend(self.pool.parallel_map_chunked(window, 1, &f));
        }
        out
    }

    /// Streaming variant: results are handed to `sink(index, result)` in
    /// order as each window completes, never accumulating more than one
    /// window of results.
    pub fn run_with<T, R, F, S>(&self, jobs: &[T], f: F, mut sink: S)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
        S: FnMut(usize, R),
    {
        for (w, window) in jobs.chunks(self.window).enumerate() {
            let results = self.pool.parallel_map_chunked(window, 1, &f);
            for (i, r) in results.into_iter().enumerate() {
                sink(w * self.window + i, r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order() {
        let pool = ThreadPool::with_threads(3);
        let items: Vec<u64> = (0..1000).collect();
        let out = pool.parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let pool = ThreadPool::with_threads(2);
        assert_eq!(pool.parallel_map(&[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(pool.parallel_map(&[7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn zero_worker_pool_is_sequential() {
        let pool = ThreadPool::with_threads(0);
        let items: Vec<i32> = (0..100).collect();
        assert_eq!(
            pool.parallel_map(&items, |&x| x - 1),
            (-1..99).collect::<Vec<_>>()
        );
    }

    #[test]
    fn propagates_panics() {
        let pool = ThreadPool::with_threads(2);
        let items: Vec<u32> = (0..256).collect();
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_map_chunked(&items, 4, |&x| {
                if x == 97 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("boom at 97"));
        // pool still usable afterwards
        assert_eq!(pool.parallel_map(&[1u32, 2], |&x| x), vec![1, 2]);
    }

    #[test]
    fn try_parallel_map_isolates_item_panics() {
        let pool = ThreadPool::with_threads(2);
        let items: Vec<u32> = (0..128).collect();
        let out = pool.try_parallel_map(&items, 4, |&x| {
            if x % 31 == 7 {
                panic!("injected worker death at {x}");
            }
            x * 2
        });
        assert_eq!(out.len(), items.len());
        for (x, r) in items.iter().zip(&out) {
            match r {
                Ok(v) => {
                    assert_ne!(x % 31, 7);
                    assert_eq!(*v, x * 2);
                }
                Err(msg) => {
                    assert_eq!(x % 31, 7);
                    assert!(msg.contains(&format!("injected worker death at {x}")));
                }
            }
        }
        // the pool is not poisoned: a clean job still works
        assert_eq!(pool.parallel_map(&[1u32, 2], |&x| x), vec![1, 2]);
    }

    #[test]
    fn try_parallel_map_with_no_panics_matches_parallel_map() {
        let pool = ThreadPool::with_threads(3);
        let items: Vec<u64> = (0..300).collect();
        let out = pool.try_parallel_map(&items, 8, |&x| x + 1);
        let want: Vec<u64> = items.iter().map(|&x| x + 1).collect();
        assert_eq!(
            out.into_iter().collect::<Result<Vec<_>, _>>().unwrap(),
            want
        );
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let pool = ThreadPool::with_threads(2);
        let rows: Vec<usize> = (0..16).collect();
        let out = pool.parallel_map(&rows, |&r| {
            let cols: Vec<usize> = (0..32).collect();
            pool.parallel_map(&cols, |&c| r * 100 + c)
                .iter()
                .sum::<usize>()
        });
        for (r, &sum) in out.iter().enumerate() {
            assert_eq!(sum, (0..32).map(|c| r * 100 + c).sum::<usize>());
        }
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        let pool = ThreadPool::with_threads(3);
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_chunked(500, 7, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn batch_runner_matches_map_with_any_window() {
        let pool = ThreadPool::with_threads(2);
        let jobs: Vec<u32> = (0..37).collect();
        let want: Vec<u32> = jobs.iter().map(|&x| x * x).collect();
        for window in [1, 3, 8, 64] {
            let runner = BatchRunner::new(&pool).window(window);
            assert_eq!(runner.run(&jobs, |&x| x * x), want);
            let mut streamed = vec![0u32; jobs.len()];
            runner.run_with(&jobs, |&x| x * x, |i, r| streamed[i] = r);
            assert_eq!(streamed, want);
        }
    }

    #[test]
    fn global_pool_works() {
        let items: Vec<u32> = (0..64).collect();
        assert_eq!(
            parallel_map(&items, |&x| x + 1),
            (1..65).collect::<Vec<_>>()
        );
    }
}
