//! Concurrency stress: many independent caller threads hammering the same
//! pool simultaneously must all complete with correct results — no deadlock,
//! no cross-job interference. This is the scenario the batch executor hits
//! when dataset sweeps and sequence evaluations overlap.

use std::sync::Arc;

use eyecod_pool::ThreadPool;

/// 64 concurrent `parallel_map` calls issued from 16 caller threads sharing
/// one small pool. Callers participate in their own jobs, so even a pool
/// with fewer workers than callers cannot deadlock; every call must return
/// the exact sequential result.
#[test]
fn sixty_four_concurrent_maps_from_many_callers() {
    let pool = Arc::new(ThreadPool::with_threads(3));
    let callers = 16;
    let calls_per_caller = 4; // 64 total

    let handles: Vec<_> = (0..callers)
        .map(|caller| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                for round in 0..calls_per_caller {
                    let base = (caller * 1_000 + round * 37) as u64;
                    let items: Vec<u64> = (0..128).map(|i| base + i).collect();
                    let got = pool.parallel_map_chunked(&items, 3, |&x| x * x + 1);
                    let want: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
                    assert_eq!(got, want, "caller {caller} round {round}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("caller thread panicked");
    }
}

/// Same pressure through the process-global pool and the free functions,
/// with nested parallelism inside each job (a map whose items themselves
/// call `parallel_map`) — re-entrancy must not deadlock.
#[test]
fn concurrent_nested_maps_on_global_pool() {
    let handles: Vec<_> = (0..8)
        .map(|caller: u64| {
            std::thread::spawn(move || {
                let outer: Vec<u64> = (0..8).map(|i| caller * 100 + i).collect();
                let got = eyecod_pool::parallel_map(&outer, |&x| {
                    let inner: Vec<u64> = (0..16).map(|i| x + i).collect();
                    eyecod_pool::parallel_map(&inner, |&y| y * 2)
                        .iter()
                        .sum::<u64>()
                });
                let want: Vec<u64> = outer
                    .iter()
                    .map(|&x| (0..16).map(|i| (x + i) * 2).sum::<u64>())
                    .collect();
                assert_eq!(got, want, "caller {caller}");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("caller thread panicked");
    }
}

/// Panics in some concurrent jobs must not corrupt unrelated jobs running
/// on the same pool at the same time.
#[test]
fn concurrent_panics_do_not_poison_other_jobs() {
    let pool = Arc::new(ThreadPool::with_threads(2));
    let handles: Vec<_> = (0..12)
        .map(|caller: usize| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let items: Vec<usize> = (0..64).collect();
                if caller.is_multiple_of(3) {
                    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        pool.parallel_map_chunked(&items, 2, |&i| {
                            if i == 40 {
                                panic!("job {caller} exploded");
                            }
                            i
                        })
                    }));
                    assert!(err.is_err(), "caller {caller} expected a panic");
                } else {
                    let got = pool.parallel_map_chunked(&items, 2, |&i| i + caller);
                    let want: Vec<usize> = items.iter().map(|&i| i + caller).collect();
                    assert_eq!(got, want, "caller {caller}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("caller thread panicked");
    }
}
