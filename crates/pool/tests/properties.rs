//! Property tests for the work-stealing pool: for every pool size (including
//! a forced single-participant pool), every chunk size, and arbitrary item
//! counts, the parallel combinators must be observationally identical to
//! their sequential counterparts — same values, same order, same panics.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use eyecod_pool::ThreadPool;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `parallel_map` returns exactly `items.map(f)` in order, for any
    /// worker count (0 = caller-only), any chunk granularity and any input
    /// length — including empty, singleton, and `len < chunk`.
    #[test]
    fn map_matches_sequential(
        items in collection::vec(-1_000i64..1_000, 0..97),
        workers in 0usize..5,
        chunk in 1usize..33,
    ) {
        let pool = ThreadPool::with_threads(workers);
        let f = |&x: &i64| x.wrapping_mul(31).wrapping_add(7);
        let expected: Vec<i64> = items.iter().map(f).collect();
        prop_assert_eq!(pool.parallel_map_chunked(&items, chunk, f), expected.clone());
        prop_assert_eq!(pool.parallel_map(&items, f), expected);
    }

    /// The auto-chunking entry point preserves order for non-Copy results
    /// (exercises the MaybeUninit slot writes with heap-owning values).
    #[test]
    fn map_preserves_order_for_owned_results(
        len in 0usize..129,
        workers in 0usize..5,
    ) {
        let pool = ThreadPool::with_threads(workers);
        let items: Vec<usize> = (0..len).collect();
        let out = pool.parallel_map(&items, |&i| format!("item-{i}"));
        prop_assert_eq!(out.len(), len);
        for (i, s) in out.iter().enumerate() {
            let want = format!("item-{i}");
            prop_assert_eq!(s.as_str(), want.as_str());
        }
    }

    /// `parallel_for_chunked` visits every index exactly once, whatever the
    /// chunking or pool size.
    #[test]
    fn for_covers_each_index_once(
        n in 0usize..200,
        workers in 0usize..5,
        chunk in 1usize..41,
    ) {
        let pool = ThreadPool::with_threads(workers);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_chunked(n, chunk, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "index {} hit count", i);
        }
    }

    /// A panic at an arbitrary item index propagates to the caller with its
    /// payload intact, and the pool stays usable afterwards.
    #[test]
    fn panic_propagates_and_pool_survives(
        len in 1usize..80,
        workers in 0usize..4,
        chunk in 1usize..17,
        panic_seed in 0usize..1_000,
    ) {
        let pool = ThreadPool::with_threads(workers);
        let bad = panic_seed % len;
        let items: Vec<usize> = (0..len).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_map_chunked(&items, chunk, |&i| {
                if i == bad {
                    panic!("boom at {i}");
                }
                i * 2
            })
        }))
        .expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        prop_assert!(msg.starts_with("boom at "), "payload was {:?}", msg);
        // the same pool must still run clean jobs to completion
        let ok = pool.parallel_map_chunked(&items, chunk, |&i| i + 1);
        prop_assert_eq!(ok, (1..=len).collect::<Vec<_>>());
    }

    /// A forced single-participant pool (one worker) and the caller-only
    /// pool (zero workers) agree with each other and with sequential.
    #[test]
    fn one_thread_pool_equals_sequential(
        items in collection::vec(0u32..10_000, 0..64),
        chunk in 1usize..9,
    ) {
        let one = ThreadPool::with_threads(1);
        let zero = ThreadPool::with_threads(0);
        let f = |&x: &u32| x / 3 + x % 7;
        let expected: Vec<u32> = items.iter().map(f).collect();
        prop_assert_eq!(one.parallel_map_chunked(&items, chunk, f), expected.clone());
        prop_assert_eq!(zero.parallel_map_chunked(&items, chunk, f), expected);
    }
}

/// Degenerate shapes that deserve explicit (non-random) coverage.
#[test]
fn empty_singleton_and_undersized_inputs() {
    for workers in [0usize, 1, 3] {
        let pool = ThreadPool::with_threads(workers);
        let empty: Vec<i32> = vec![];
        assert_eq!(pool.parallel_map(&empty, |&x| x), Vec::<i32>::new());
        assert_eq!(
            pool.parallel_map_chunked(&empty, 8, |&x| x),
            Vec::<i32>::new()
        );
        assert_eq!(pool.parallel_map(&[41], |&x| x + 1), vec![42]);
        // len < chunk: the whole slice is one chunk, still correct
        assert_eq!(
            pool.parallel_map_chunked(&[1, 2, 3], 64, |&x| x * 10),
            vec![10, 20, 30]
        );
    }
}
