//! The f32-differential harness for the int8 gaze backend: the quantised
//! chain and the folded f32 reference run on identical inputs and their
//! divergence is bounded at every layer boundary and end to end.
//!
//! Batch-norm running statistics are deliberately made non-trivial (a few
//! training-mode forwards) before folding, so the tests cover the actual
//! `γ/√(σ²+ε)` folding math rather than the fresh-init identity stats.

use eyecod_models::proxy::{GazeFamily, ProxyGazeNet};
use eyecod_models::quantized::QuantizedGazeNet;
use eyecod_tensor::{Layer, Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_batch(n: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(Shape::new(n, 1, 24, 32), |_, _, _, _| {
        rng.gen_range(0.0..1.0)
    })
}

/// A gaze network with populated (non-identity) BN running statistics.
fn prepared_net(family: GazeFamily, seed: u64) -> ProxyGazeNet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = ProxyGazeNet::new(family, &mut rng);
    let batch = random_batch(8, seed ^ 0xA5);
    for _ in 0..3 {
        net.forward(&batch, true);
    }
    net
}

#[test]
fn folded_reference_matches_eval_forward_with_trained_bn_stats() {
    let mut net = prepared_net(GazeFamily::FbnetLike, 1);
    let x = random_batch(2, 2);
    let direct = net.forward(&x, false);
    let folded = QuantizedGazeNet::reference_layer_outputs(&net, &x);
    let last = folded.last().expect("network has layers");
    assert_eq!(direct.shape(), last.shape());
    let diff = direct.sub(last).max_abs();
    assert!(
        diff < 1e-3,
        "BN folding diverged from eval forward by {diff}"
    );
}

#[test]
fn per_layer_divergence_is_bounded() {
    let net = prepared_net(GazeFamily::FbnetLike, 3);
    let calib = random_batch(8, 4);
    let qnet = QuantizedGazeNet::from_calibrated(&net, &calib);
    // a held-out input, same distribution as the calibration batch
    let x = random_batch(1, 5);

    let q_layers = qnet.layer_outputs(&x);
    let f_layers = QuantizedGazeNet::reference_layer_outputs(&net, &x);
    assert_eq!(q_layers.len(), f_layers.len());
    assert_eq!(q_layers.len(), qnet.num_layers());

    for (i, (q, f)) in q_layers.iter().zip(&f_layers).enumerate() {
        assert_eq!(q.shape(), f.shape(), "layer {i} shape");
        let denom = f.max_abs().max(1e-3);
        let rel = f.sub(q).max_abs() / denom;
        // int8 rounding error compounds slowly through the chain; a quarter
        // of the layer's dynamic range means the backend has broken, while
        // healthy divergence sits well under a tenth
        assert!(rel < 0.25, "layer {i}: relative divergence {rel}");
    }
}

#[test]
fn end_to_end_gaze_direction_stays_aligned() {
    let net = prepared_net(GazeFamily::FbnetLike, 6);
    let qnet = QuantizedGazeNet::from_calibrated(&net, &random_batch(8, 7));
    let mut angles = Vec::new();
    let mut eval_net = net;
    for seed in 10..20u64 {
        let x = random_batch(1, seed);
        let f = eval_net.forward(&x, false);
        let q = qnet.forward(&x);
        let fv = [f.at(0, 0, 0, 0), f.at(0, 1, 0, 0), f.at(0, 2, 0, 0)];
        let qv = [q.at(0, 0, 0, 0), q.at(0, 1, 0, 0), q.at(0, 2, 0, 0)];
        let dot: f32 = fv.iter().zip(&qv).map(|(a, b)| a * b).sum();
        let nf = fv.iter().map(|v| v * v).sum::<f32>().sqrt();
        let nq = qv.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(nf > 0.0 && nq > 0.0, "degenerate outputs");
        let angle = (dot / (nf * nq)).clamp(-1.0, 1.0).acos().to_degrees();
        angles.push(angle);
    }
    let mean = angles.iter().sum::<f32>() / angles.len() as f32;
    assert!(
        mean < 2.0,
        "mean angular divergence between backends {mean:.2}° (per-input: {angles:?})"
    );
}

#[test]
fn every_family_quantizes_and_runs() {
    for (i, family) in [
        GazeFamily::ResNetLike,
        GazeFamily::FbnetLike,
        GazeFamily::MobileNetLike,
    ]
    .into_iter()
    .enumerate()
    {
        let net = prepared_net(family, 30 + i as u64);
        let qnet = QuantizedGazeNet::from_calibrated(&net, &random_batch(4, 40 + i as u64));
        let out = qnet.forward(&random_batch(1, 50 + i as u64));
        assert_eq!(out.shape().dims(), (1, 3, 1, 1), "{family:?}");
        assert!(!out.has_non_finite(), "{family:?}");
        assert!(qnet.conv_out_scales().iter().all(|&s| s > 0.0));
        let spec = qnet.model_spec(24, 32);
        assert!(spec.macs() > 0, "{family:?}");
    }
}

#[test]
fn batched_inputs_match_per_item_forwards() {
    // the int8 chain must treat batch items independently, exactly like
    // the f32 network
    let net = prepared_net(GazeFamily::MobileNetLike, 60);
    let qnet = QuantizedGazeNet::from_calibrated(&net, &random_batch(4, 61));
    let batch = random_batch(3, 62);
    let joint = qnet.forward(&batch);
    for i in 0..3 {
        let item = Tensor::from_fn(Shape::new(1, 1, 24, 32), |_, _, h, w| batch.at(i, 0, h, w));
        let single = qnet.forward(&item);
        for c in 0..3 {
            let d = (joint.at(i, c, 0, 0) - single.at(0, c, 0, 0)).abs();
            assert!(d < 1e-6, "item {i} channel {c} differs by {d}");
        }
    }
}
