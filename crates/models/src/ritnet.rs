//! RITNet — the award-winning OpenEDS2019 eye-segmentation network
//! (Chaudhary et al., ICCVW 2019) used as EyeCoD's "predict" model.
//!
//! RITNet is a compact five-scale encoder–decoder with 32-channel blocks and
//! skip connections (~0.25 M parameters). The spec here reproduces that
//! structure; at the paper's deployed 128×128 resolution it lands within a
//! few tens of percent of the paper's ~1.0 G FLOPs figure (Table 3) and at
//! 512×512 of the ~17 G figure, with the identical parameter budget, which
//! is what the accelerator workloads and FLOPs tables need.

use crate::spec::{ModelSpec, SpecBuilder};

/// Channel width of every RITNet block.
pub const WIDTH: usize = 32;

/// Number of segmentation classes (background/sclera/iris/pupil).
pub const CLASSES: usize = 4;

/// Builds the RITNet spec for a square grayscale input of extent `size`.
///
/// # Panics
///
/// Panics if `size` is not divisible by 16 (the network has four 2×
/// down-samplings).
pub fn spec(size: usize) -> ModelSpec {
    assert!(
        size.is_multiple_of(16),
        "RITNet input must be divisible by 16, got {size}"
    );
    let c = WIDTH;
    let mut b = SpecBuilder::new("RITNet", 1, size, size);
    // Encoder: five scales; the full-resolution block carries an extra conv
    // (RITNet's dense blocks are deepest where the paper finds its
    // bottleneck layers).
    b.conv(c, 3, 1).conv(c, 3, 1).conv(c, 3, 1); // enc1 (full res)
    b.max_pool(2).conv(c, 3, 1).conv(c, 3, 1); // enc2 (1/2)
    b.max_pool(2).conv(c, 3, 1).conv(c, 3, 1); // enc3 (1/4)
    b.max_pool(2).conv(c, 3, 1).conv(c, 3, 1); // enc4 (1/8)
    b.max_pool(2).conv(c, 3, 1).conv(c, 3, 1); // bottleneck (1/16)
                                               // Decoder: four scales, skip concat + convs per scale; the final
                                               // full-resolution block again carries an extra conv.
    for scale in 0..4 {
        b.upsample(2).concat(c).conv(c, 3, 1).conv(c, 3, 1);
        if scale == 3 {
            b.conv(c, 3, 1);
        }
    }
    // Per-pixel classification head.
    b.pointwise(CLASSES);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LayerKind;

    #[test]
    fn params_match_ritnet_budget() {
        let s = spec(128);
        let p = s.params();
        // RITNet reports ~248.9k parameters; our structural reproduction
        // must be the same order (resolution-independent).
        assert!(
            (150_000..320_000).contains(&p),
            "RITNet params {p} outside expected envelope"
        );
        assert_eq!(
            spec(512).params(),
            p,
            "params must be resolution-independent"
        );
    }

    #[test]
    fn flops_scale_16x_from_128_to_512() {
        let f128 = spec(128).flops();
        let f512 = spec(512).flops();
        assert_eq!(f512, 16 * f128);
        // Table 3 envelope: ~1.0G at 128x128 under the MAC=FLOP convention.
        assert!(
            (500_000_000..1_500_000_000).contains(&f128),
            "RITNet@128 flops {f128}"
        );
    }

    #[test]
    fn structure_is_unet_like() {
        let s = spec(128);
        s.validate();
        let ups = s
            .layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Upsample { .. }))
            .count();
        let cats = s
            .layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Concat { .. }))
            .count();
        assert_eq!(ups, 4);
        assert_eq!(cats, 4);
        // ends in a 4-class pixel head at full resolution
        let last = s.layers.last().unwrap();
        assert_eq!(last.c_out, CLASSES);
        assert_eq!(last.out_hw(), (128, 128));
    }

    #[test]
    fn bottleneck_layers_are_early_full_res_convs() {
        // The paper names the early full-resolution layers among the
        // bottleneck layers of the segmentation model (Challenge #I).
        let s = spec(128);
        let (idx, l) = s.bottleneck_layer().unwrap();
        assert!(l.h_in == 128, "bottleneck should be at full res, got {l}");
        assert!(idx >= s.layers.len() - 5 || idx < 5);
    }

    #[test]
    #[should_panic(expected = "divisible by 16")]
    fn rejects_odd_resolutions() {
        spec(100);
    }
}
