//! A slim U-Net — the segmentation baseline of the paper's Table 3
//! ("U-net" row: 14.1 G FLOPs at 512×512).

use crate::spec::{ModelSpec, SpecBuilder};

/// Encoder stage widths (the classic U-Net doubling ladder, slimmed to the
/// budget the paper's baseline reports).
const WIDTHS: [usize; 4] = [18, 36, 72, 144];

/// Number of segmentation classes.
pub const CLASSES: usize = 4;

/// Builds the U-Net spec for a square grayscale input of extent `size`.
///
/// # Panics
///
/// Panics if `size` is not divisible by 8 (three 2× down-samplings).
pub fn spec(size: usize) -> ModelSpec {
    assert!(
        size.is_multiple_of(8),
        "U-Net input must be divisible by 8, got {size}"
    );
    let mut b = SpecBuilder::new("U-Net", 1, size, size);
    // encoder
    for (i, &c) in WIDTHS.iter().enumerate() {
        if i > 0 {
            b.max_pool(2);
        }
        b.conv(c, 3, 1).conv(c, 3, 1);
    }
    // decoder with skip concatenations
    for &c in WIDTHS.iter().rev().skip(1) {
        b.upsample(2).concat(c).conv(c, 3, 1).conv(c, 3, 1);
    }
    b.pointwise(CLASSES);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_at_512_match_table3() {
        // Table 3: 14.1G at 512x512 (MAC=FLOP convention); allow ±40%.
        let f = spec(512).flops();
        assert!(
            (9_000_000_000..20_000_000_000).contains(&f),
            "U-Net@512 flops {f}"
        );
    }

    #[test]
    fn unet_costs_less_than_ritnet_at_512() {
        // Table 3 ordering: U-Net 14.1G < RITNet 17.0G at 512x512.
        let unet = spec(512).flops();
        let ritnet = crate::ritnet::spec(512).flops();
        assert!(unet < ritnet, "unet {unet} vs ritnet {ritnet}");
    }

    #[test]
    fn validates_with_skips() {
        let s = spec(128);
        s.validate();
        assert_eq!(s.layers.last().unwrap().out_hw(), (128, 128));
        assert_eq!(s.layers.last().unwrap().c_out, CLASSES);
    }
}
