//! The deployed int8 inference backend for the gaze network.
//!
//! The paper runs FBNet-C100 in 8-bit on the accelerator (the "(8-bit)" rows
//! of Tables 2 and 3); its predecessor i-FlatCam leans on the same int8
//! deployment for its µJ-per-frame budget. This module turns a trained
//! [`ProxyGazeNet`] into the network the accelerator would actually execute:
//!
//! 1. **Folding** — each `Conv → BatchNorm → ReLU` triple collapses into a
//!    single convolution with per-output-channel rescaled weights and a
//!    bias, using the batch norm's *running* statistics (exactly inference
//!    mode, so folding is lossless in f32).
//! 2. **Calibration** — a representative activation batch runs through the
//!    folded f32 graph once, recording per-layer `max|x|`; each layer's
//!    output scale is `max|x| / 127`, floored at
//!    [`eyecod_tensor::quant::MIN_SCALE`] so a dead (all-zero) layer cannot
//!    produce a zero scale and poison the chain.
//! 3. **Int8 forward** — activations are quantised once at the input and
//!    stay int8 through the whole body: `qconv2d_requant` (i32 accumulation,
//!    fused ReLU, requantisation to the calibrated scale) for every fused
//!    conv, `qglobal_avg_pool` for the pooling, and a final `qlinear` that
//!    rescales to f32 only at the 3-D gaze output.
//!
//! Correctness is pinned by the differential tests in
//! `crates/models/tests/quantized.rs` (per-layer and end-to-end against the
//! f32 network) and `tests/int8_backend.rs` (whole-tracker angular error).

use crate::infer::GazeInferWorkspace;
use crate::proxy::{GazeFamily, GazeLayer, ProxyGazeNet};
use crate::spec::{ModelSpec, SpecBuilder};
use eyecod_tensor::ops;
use eyecod_tensor::quant::{
    calibration_scale, qconv2d_requant, qconv2d_requant_into, qglobal_avg_pool,
    qglobal_avg_pool_into, qlinear, qlinear_into, QTensor, MAX_REDUCTION_DEPTH,
};
use eyecod_tensor::Tensor;

/// Rejects a layer whose per-output reduction depth could overflow the
/// int8 kernels' i32 accumulators (`K · 127 · 127 > i32::MAX`), at network
/// construction time rather than deep inside a frame's forward pass. The
/// depth of a conv or FC reduction is the weight's `c · h · w`.
fn check_reduction_depth(what: &str, weight: &Tensor) {
    let ws = weight.shape();
    let depth = ws.c * ws.h * ws.w;
    assert!(
        depth <= MAX_REDUCTION_DEPTH,
        "{what} reduction depth {depth} exceeds MAX_REDUCTION_DEPTH \
         ({MAX_REDUCTION_DEPTH}): int8 inference could overflow its i32 accumulators"
    );
}

/// One layer of the batch-norm-folded f32 inference graph — the common
/// ancestor of the quantised network and its f32 reference.
enum FoldedLayer {
    /// Convolution with folded batch-norm and a fused ReLU.
    Conv {
        weight: Tensor,
        bias: Vec<f32>,
        stride: usize,
        pad: usize,
        groups: usize,
        relu: bool,
    },
    /// Global average pooling.
    Gap,
    /// The fully connected gaze head.
    Fc { weight: Tensor, bias: Vec<f32> },
}

/// Folds a [`ProxyGazeNet`] into its inference-mode layer chain.
///
/// # Panics
///
/// Panics if the layer sequence is not the `(Conv → BN → ReLU)* → GAP → FC`
/// shape every [`GazeFamily`] produces, or an activation is not a plain
/// ReLU (a leaky slope cannot be fused into the int8 requantisation).
fn fold_layers(net: &ProxyGazeNet) -> Vec<FoldedLayer> {
    let ls = &net.layers;
    let mut out = Vec::with_capacity(ls.len());
    let mut i = 0;
    while i < ls.len() {
        match &ls[i] {
            GazeLayer::Conv(conv) => {
                let bn = match ls.get(i + 1) {
                    Some(GazeLayer::Bn(bn)) => bn,
                    _ => panic!("int8 backend expects Conv → BN → ReLU triples"),
                };
                match ls.get(i + 2) {
                    Some(GazeLayer::Act(act)) => assert_eq!(
                        act.alpha(),
                        0.0,
                        "int8 backend fuses only plain ReLU activations"
                    ),
                    _ => panic!("int8 backend expects Conv → BN → ReLU triples"),
                }
                let w = conv.weight();
                let ws = w.shape();
                let (gamma, beta) = (bn.gamma(), bn.beta());
                let (mean, var) = (bn.running_mean(), bn.running_var());
                // per-output-channel BN factor: γ / sqrt(σ² + ε)
                let factor: Vec<f32> = (0..ws.n)
                    .map(|oc| gamma[oc] / (var[oc] + bn.eps()).sqrt())
                    .collect();
                let weight =
                    Tensor::from_fn(ws, |oc, ic, kh, kw| w.at(oc, ic, kh, kw) * factor[oc]);
                let bias: Vec<f32> = (0..ws.n)
                    .map(|oc| {
                        let conv_bias = conv.bias().map_or(0.0, |b| b[oc]);
                        beta[oc] + (conv_bias - mean[oc]) * factor[oc]
                    })
                    .collect();
                out.push(FoldedLayer::Conv {
                    weight,
                    bias,
                    stride: conv.stride(),
                    pad: conv.pad(),
                    groups: conv.groups(),
                    relu: true,
                });
                i += 3;
            }
            GazeLayer::Gap(_) => {
                out.push(FoldedLayer::Gap);
                i += 1;
            }
            GazeLayer::Fc(fc) => {
                assert_eq!(i, ls.len() - 1, "FC must be the final gaze layer");
                out.push(FoldedLayer::Fc {
                    weight: fc.weight().clone(),
                    bias: fc.bias().to_vec(),
                });
                i += 1;
            }
            _ => panic!("unexpected BN/activation outside a Conv triple"),
        }
    }
    out
}

/// Runs the folded f32 graph, returning the activation after every folded
/// layer — the reference trace the differential tests compare against.
fn folded_outputs(folded: &[FoldedLayer], input: &Tensor) -> Vec<Tensor> {
    let mut x = input.clone();
    let mut outputs = Vec::with_capacity(folded.len());
    for layer in folded {
        x = match layer {
            FoldedLayer::Conv {
                weight,
                bias,
                stride,
                pad,
                groups,
                relu,
            } => {
                let y = ops::conv2d(&x, weight, Some(bias), *stride, *pad, *groups);
                if *relu {
                    ops::leaky_relu(&y, 0.0)
                } else {
                    y
                }
            }
            FoldedLayer::Gap => ops::global_avg_pool(&x),
            FoldedLayer::Fc { weight, bias } => ops::linear(&x, weight, Some(bias)),
        };
        outputs.push(x.clone());
    }
    outputs
}

/// One int8 layer of the deployed chain.
enum QLayer {
    /// Fused conv/BN/ReLU: int8 in, int8 out at the calibrated scale.
    Conv {
        weight: QTensor,
        bias: Vec<f32>,
        stride: usize,
        pad: usize,
        groups: usize,
        relu: bool,
        out_scale: f32,
    },
    /// Global average pooling (scale-preserving).
    Gap,
    /// The f32-out gaze head.
    Fc { weight: QTensor, bias: Vec<f32> },
}

/// A calibrated, batch-norm-folded int8 gaze network.
///
/// Built once from a trained [`ProxyGazeNet`] plus a calibration batch; the
/// forward pass then runs entirely in int8 between the quantised input and
/// the f32 gaze head.
pub struct QuantizedGazeNet {
    input_scale: f32,
    layers: Vec<QLayer>,
    family: GazeFamily,
}

impl QuantizedGazeNet {
    /// Folds, calibrates and quantises `net` using `calib` — a batch of
    /// representative gaze-input crops `(N, 1, H, W)`.
    ///
    /// Per-layer activation scales come from the folded f32 graph's
    /// activations over the whole batch; degenerate (all-zero) layers are
    /// floored so a dead calibration set still produces a runnable network
    /// (emitting all-zero gaze vectors, which the tracker already treats as
    /// degenerate frames).
    ///
    /// # Panics
    ///
    /// Panics if the calibration batch is empty or the network shape is not
    /// the supported `(Conv → BN → ReLU)* → GAP → FC` chain.
    pub fn from_calibrated(net: &ProxyGazeNet, calib: &Tensor) -> Self {
        assert!(calib.shape().n > 0, "calibration batch must be non-empty");
        let folded = fold_layers(net);
        let input_scale = calibration_scale(calib.max_abs());
        let mut x = calib.clone();
        let mut layers = Vec::with_capacity(folded.len());
        for fl in &folded {
            match fl {
                FoldedLayer::Conv {
                    weight,
                    bias,
                    stride,
                    pad,
                    groups,
                    relu,
                } => {
                    check_reduction_depth("fused conv", weight);
                    x = ops::conv2d(&x, weight, Some(bias), *stride, *pad, *groups);
                    if *relu {
                        x = ops::leaky_relu(&x, 0.0);
                    }
                    layers.push(QLayer::Conv {
                        weight: QTensor::quantize(weight),
                        bias: bias.clone(),
                        stride: *stride,
                        pad: *pad,
                        groups: *groups,
                        relu: *relu,
                        out_scale: calibration_scale(x.max_abs()),
                    });
                }
                FoldedLayer::Gap => {
                    x = ops::global_avg_pool(&x);
                    layers.push(QLayer::Gap);
                }
                FoldedLayer::Fc { weight, bias } => {
                    check_reduction_depth("gaze head", weight);
                    x = ops::linear(&x, weight, Some(bias));
                    layers.push(QLayer::Fc {
                        weight: QTensor::quantize(weight),
                        bias: bias.clone(),
                    });
                }
            }
        }
        QuantizedGazeNet {
            input_scale,
            layers,
            family: net.family(),
        }
    }

    /// Runs the int8 chain on an f32 input, returning the f32 gaze tensor
    /// `(N, 3, 1, 1)` from the head.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let mut q = QTensor::quantize_with_scale(input, self.input_scale);
        for layer in &self.layers {
            match layer {
                QLayer::Conv {
                    weight,
                    bias,
                    stride,
                    pad,
                    groups,
                    relu,
                    out_scale,
                } => {
                    q = qconv2d_requant(
                        &q,
                        weight,
                        Some(bias),
                        *stride,
                        *pad,
                        *groups,
                        *relu,
                        *out_scale,
                    );
                }
                QLayer::Gap => q = qglobal_avg_pool(&q),
                QLayer::Fc { weight, bias } => return qlinear(&q, weight, Some(bias)),
            }
        }
        q.dequantize()
    }

    /// [`QuantizedGazeNet::forward`] through a [`GazeInferWorkspace`]:
    /// activations ping-pong between the workspace's two int8 arena buffers
    /// and the i32 accumulator is reused across layers, so a steady-state
    /// forward pass allocates nothing once the buffers are warm. Every op is
    /// the `_into` variant of the same exact-i32 kernel, so the result
    /// written to `out` is bit-identical to the allocating path.
    pub fn forward_into(&self, input: &Tensor, ws: &mut GazeInferWorkspace, out: &mut Tensor) {
        let GazeInferWorkspace {
            qping, qpong, acc, ..
        } = ws;
        QTensor::quantize_with_scale_into(input, self.input_scale, qping);
        let (mut cur, mut next) = (qping, qpong);
        for layer in &self.layers {
            match layer {
                QLayer::Conv {
                    weight,
                    bias,
                    stride,
                    pad,
                    groups,
                    relu,
                    out_scale,
                } => {
                    qconv2d_requant_into(
                        cur,
                        weight,
                        Some(bias),
                        *stride,
                        *pad,
                        *groups,
                        *relu,
                        *out_scale,
                        acc,
                        next,
                    );
                    std::mem::swap(&mut cur, &mut next);
                }
                QLayer::Gap => {
                    qglobal_avg_pool_into(cur, next);
                    std::mem::swap(&mut cur, &mut next);
                }
                QLayer::Fc { weight, bias } => {
                    qlinear_into(cur, weight, Some(bias), out);
                    return;
                }
            }
        }
        // no FC head: dequantise the final int8 activation (same arithmetic
        // as `QTensor::dequantize`)
        out.reset(cur.shape());
        let scale = cur.scale();
        for (o, &q) in out.as_mut_slice().iter_mut().zip(cur.as_i8()) {
            *o = q as f32 * scale;
        }
    }

    /// Runs the int8 chain, returning the *dequantised* activation after
    /// every layer — pairs with [`QuantizedGazeNet::reference_layer_outputs`]
    /// for per-layer divergence checks.
    pub fn layer_outputs(&self, input: &Tensor) -> Vec<Tensor> {
        let mut q = QTensor::quantize_with_scale(input, self.input_scale);
        let mut outputs = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            match layer {
                QLayer::Conv {
                    weight,
                    bias,
                    stride,
                    pad,
                    groups,
                    relu,
                    out_scale,
                } => {
                    q = qconv2d_requant(
                        &q,
                        weight,
                        Some(bias),
                        *stride,
                        *pad,
                        *groups,
                        *relu,
                        *out_scale,
                    );
                    outputs.push(q.dequantize());
                }
                QLayer::Gap => {
                    q = qglobal_avg_pool(&q);
                    outputs.push(q.dequantize());
                }
                QLayer::Fc { weight, bias } => {
                    outputs.push(qlinear(&q, weight, Some(bias)));
                }
            }
        }
        outputs
    }

    /// The f32 activations of the folded reference graph at the same layer
    /// boundaries as [`QuantizedGazeNet::layer_outputs`]. In inference mode
    /// folding is exact, so these equal the original network's outputs.
    pub fn reference_layer_outputs(net: &ProxyGazeNet, input: &Tensor) -> Vec<Tensor> {
        folded_outputs(&fold_layers(net), input)
    }

    /// The calibrated input activation scale.
    pub fn input_scale(&self) -> f32 {
        self.input_scale
    }

    /// The per-layer output scales of the fused conv layers, in order.
    pub fn conv_out_scales(&self) -> Vec<f32> {
        self.layers
            .iter()
            .filter_map(|l| match l {
                QLayer::Conv { out_scale, .. } => Some(*out_scale),
                _ => None,
            })
            .collect()
    }

    /// The architecture family this network was quantised from.
    pub fn family(&self) -> GazeFamily {
        self.family
    }

    /// Number of fused inference layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Derives the accelerator-facing [`ModelSpec`] of this network at a
    /// `1 × h × w` gaze input: the exact layer geometry the int8 chain
    /// executes, classed as generic / point-wise / depth-wise convolutions
    /// so the cycle and energy models see the deployed workload rather than
    /// the paper's full-size FBNet.
    pub fn model_spec(&self, h: usize, w: usize) -> ModelSpec {
        let c_in0 = match self.layers.first() {
            Some(QLayer::Conv { weight, groups, .. }) => weight.shape().c * groups,
            _ => 1,
        };
        let mut b = SpecBuilder::new("QuantizedProxyGaze(int8)", c_in0, h, w);
        for layer in &self.layers {
            match layer {
                QLayer::Conv {
                    weight,
                    stride,
                    groups,
                    ..
                } => {
                    let ws = weight.shape();
                    let (c_out, k) = (ws.n, ws.h);
                    let (c_in, _, _) = b.shape();
                    if *groups == c_in && c_out == c_in && *groups > 1 {
                        b.depthwise(k, *stride);
                    } else if k == 1 && *groups == 1 && *stride == 1 {
                        b.pointwise(c_out);
                    } else {
                        b.conv(c_out, k, *stride);
                    }
                }
                QLayer::Gap => {
                    b.global_pool();
                }
                QLayer::Fc { weight, .. } => {
                    b.fc(weight.shape().n);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::ProxyGazeNet;
    use crate::LayerKind;
    use eyecod_tensor::Shape;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_input(n: usize, h: usize, w: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(Shape::new(n, 1, h, w), |_, _, _, _| rng.gen_range(0.0..1.0))
    }

    #[test]
    fn folding_is_exact_in_f32() {
        // the folded reference graph must reproduce the original network's
        // inference-mode forward bit-for-bit math (same ops, same stats)
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = ProxyGazeNet::new(GazeFamily::FbnetLike, &mut rng);
        let x = random_input(2, 24, 32, 2);
        use eyecod_tensor::Layer;
        let direct = net.forward(&x, false);
        let folded = QuantizedGazeNet::reference_layer_outputs(&net, &x);
        let last = folded.last().unwrap();
        assert_eq!(direct.shape(), last.shape());
        assert!(
            direct.sub(last).max_abs() < 1e-4,
            "folded graph diverged: {}",
            direct.sub(last).max_abs()
        );
    }

    #[test]
    fn quantized_forward_stays_close_to_f32() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = ProxyGazeNet::new(GazeFamily::FbnetLike, &mut rng);
        let calib = random_input(8, 24, 32, 4);
        let qnet = QuantizedGazeNet::from_calibrated(&net, &calib);
        let x = random_input(1, 24, 32, 5);
        use eyecod_tensor::Layer;
        let f32_out = net.forward(&x, false);
        let q_out = qnet.forward(&x);
        assert_eq!(q_out.shape(), f32_out.shape());
        let denom = f32_out.max_abs().max(1e-3);
        let rel = f32_out.sub(&q_out).max_abs() / denom;
        assert!(rel < 0.2, "int8 relative output error {rel}");
    }

    #[test]
    fn model_spec_classifies_layers_like_the_network() {
        let mut rng = StdRng::seed_from_u64(6);
        let net = ProxyGazeNet::new(GazeFamily::FbnetLike, &mut rng);
        let qnet = QuantizedGazeNet::from_calibrated(&net, &random_input(2, 24, 32, 7));
        let spec = qnet.model_spec(24, 32);
        let mut dw = 0;
        let mut pw = 0;
        let mut fc = 0;
        for l in &spec.layers {
            match l.kind {
                LayerKind::Depthwise { .. } => dw += 1,
                LayerKind::Pointwise { .. } => pw += 1,
                LayerKind::FullyConnected => fc += 1,
                _ => {}
            }
        }
        // FbnetLike: stem conv + 2×(dw + pw) + gap + fc
        assert_eq!(dw, 2, "depthwise layers in spec");
        assert_eq!(pw, 2, "pointwise layers in spec");
        assert_eq!(fc, 1);
        assert!(spec.macs() > 0);
    }

    #[test]
    fn zeroed_calibration_set_does_not_panic() {
        // regression: a dead calibration batch (all-zero activations at
        // every layer) used to produce scale 0 and trip the
        // `quantize_with_scale` assertion; scales are now epsilon-floored
        let mut rng = StdRng::seed_from_u64(8);
        let net = ProxyGazeNet::new(GazeFamily::MobileNetLike, &mut rng);
        let calib = Tensor::zeros(Shape::new(4, 1, 24, 32));
        let qnet = QuantizedGazeNet::from_calibrated(&net, &calib);
        assert!(qnet.input_scale() > 0.0);
        assert!(qnet.conv_out_scales().iter().all(|&s| s > 0.0));
        // and the network still runs, on both zero and non-zero inputs
        let out = qnet.forward(&Tensor::zeros(Shape::new(1, 1, 24, 32)));
        assert_eq!(out.shape().dims(), (1, 3, 1, 1));
        let out = qnet.forward(&random_input(1, 24, 32, 9));
        assert!(!out.has_non_finite());
    }
}
