//! Recon-free latent gaze regression.
//!
//! FlatTrack (arXiv 2501.15450) and "Low Latency Gaze Tracking via Latent
//! Optical Sensing" (arXiv 2605.17990) show gaze can be regressed directly
//! from lensless measurements — the Tikhonov solve that dominates the
//! per-frame cost exists only to make the scene *human*-interpretable, and
//! a regressor can learn the mask's scrambling instead. [`LatentGazeNet`]
//! is that regressor: a [`ProxyGazeNet`] fed a **separably down-projected
//! raw FlatCam measurement** rather than the reconstructed ROI crop.
//!
//! The projection is a bilinear resize of the measurement down to the same
//! spatial extent as the recon path's gaze input, followed by an affine
//! normalisation `(v - shift) * scale` whose constants are fitted on the
//! training corpus (measurements ride on the sensor's DC level, so without
//! the shift the net would spend capacity modelling an offset). Bilinear
//! interpolation is separable, so the projection is the cheap stand-in for
//! the learned separable down-projection of the latent-sensing papers —
//! and because the projected input has exactly the recon path's gaze-input
//! geometry, the latent net slots into every existing inference surface
//! (workspace forwards, batched arena forwards) with no new shapes.

use crate::infer::GazeInferWorkspace;
use crate::proxy::{train_gaze, GazeFamily, ProxyGazeNet, TrainConfig};
use eyecod_tensor::{ops, Layer, Tensor};
use rand::rngs::StdRng;

/// A gaze regressor over down-projected raw FlatCam measurements.
#[derive(Clone)]
pub struct LatentGazeNet {
    net: ProxyGazeNet,
    in_h: usize,
    in_w: usize,
    shift: f32,
    scale: f32,
}

impl LatentGazeNet {
    /// Builds an untrained latent regressor of the given family whose
    /// projected input is `(in_h, in_w)` — pass the tracker's gaze-input
    /// extent so the latent and recon paths share arena geometry.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn new(family: GazeFamily, in_h: usize, in_w: usize, rng: &mut StdRng) -> Self {
        assert!(in_h > 0 && in_w > 0, "latent input extent must be non-zero");
        LatentGazeNet {
            net: ProxyGazeNet::new(family, rng),
            in_h,
            in_w,
            shift: 0.0,
            scale: 1.0,
        }
    }

    /// The architecture family of the inner regressor.
    pub fn family(&self) -> GazeFamily {
        self.net.family()
    }

    /// The projected input extent `(h, w)`.
    pub fn input_extent(&self) -> (usize, usize) {
        (self.in_h, self.in_w)
    }

    /// The fitted normalisation constants `(shift, scale)`.
    pub fn normalization(&self) -> (f32, f32) {
        (self.shift, self.scale)
    }

    /// Sets the input normalisation applied after projection.
    pub fn set_normalization(&mut self, shift: f32, scale: f32) {
        self.shift = shift;
        self.scale = scale;
    }

    /// Projects a raw measurement batch `(N, 1, S, S)` into the net's input
    /// space: bilinear down-projection to `(in_h, in_w)` then the fitted
    /// affine normalisation. Allocation-free once `out` is warm, and
    /// NaN-preserving (a corrupted measurement stays visibly corrupt for
    /// the degenerate-gaze recovery machinery downstream).
    pub fn project_into(&self, measurement: &Tensor, out: &mut Tensor) {
        ops::resize_bilinear_into(measurement, self.in_h, self.in_w, out);
        let (shift, scale) = (self.shift, self.scale);
        for v in out.as_mut_slice() {
            *v = (*v - shift) * scale;
        }
    }

    /// Inference forward over an already-projected input — the exact
    /// [`ProxyGazeNet::forward_infer`] chain, so batch == per-item and the
    /// zero-allocation property are inherited, not re-proven.
    pub fn forward_infer(&self, input: &Tensor, ws: &mut GazeInferWorkspace, out: &mut Tensor) {
        self.net.forward_infer(input, ws, out);
    }

    /// Training-path forward over an already-projected input.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.net.forward(input, train)
    }
}

/// Fits the normalisation constants on a measurement corpus and trains the
/// inner regressor on the projected inputs; returns per-epoch mean training
/// loss. `measurements` is the raw `(N, 1, S, S)` batch
/// ([`LatentGazeNet::project_into`] handles the down-projection), `gazes`
/// the matching `(N, 3, 1, 1)` targets.
///
/// # Panics
///
/// Panics if the batch sizes differ.
pub fn train_latent_gaze(
    net: &mut LatentGazeNet,
    measurements: &Tensor,
    gazes: &Tensor,
    config: &TrainConfig,
) -> Vec<f32> {
    assert_eq!(
        measurements.shape().n,
        gazes.shape().n,
        "measurements/gazes batch mismatch"
    );
    // fit shift/scale on the *projected* corpus (projection first, so the
    // constants describe what the net actually sees)
    net.set_normalization(0.0, 1.0);
    let mut projected = Tensor::zeros(eyecod_tensor::Shape::new(1, 1, 1, 1));
    net.project_into(measurements, &mut projected);
    let data = projected.as_slice();
    let mean = data.iter().sum::<f32>() / data.len() as f32;
    let var = data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / data.len() as f32;
    let std = var.sqrt().max(1e-6);
    net.set_normalization(mean, 1.0 / std);
    for v in projected.as_mut_slice() {
        *v = (*v - mean) / std;
    }
    train_gaze(&mut net.net, &projected, gazes, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyecod_tensor::Shape;
    use rand::{Rng, SeedableRng};

    /// Synthetic "lensless" corpus: the scene is a blob whose position
    /// encodes gaze, and the measurement is a fixed random linear scramble
    /// of the scene (the essential property of a FlatCam capture).
    fn toy_latent_data(n: usize, scene: usize, meas: usize) -> (Tensor, Tensor) {
        let mut rng = StdRng::seed_from_u64(9);
        let mix: Vec<f32> = (0..meas * meas * scene * scene)
            .map(|_| rng.gen_range(-1.0f32..1.0f32) / scene as f32)
            .collect();
        let mut measurements = Vec::new();
        let mut gazes = Vec::new();
        for i in 0..n {
            let fy = 0.3 + 0.4 * ((i * 37 % 100) as f32 / 100.0);
            let fx = 0.3 + 0.4 * ((i * 61 % 100) as f32 / 100.0);
            let img = Tensor::from_fn(Shape::new(1, 1, scene, scene), |_, _, h, w| {
                let dy = h as f32 / scene as f32 - fy;
                let dx = w as f32 / scene as f32 - fx;
                1.0 - (-(dy * dy + dx * dx) * 40.0).exp()
            });
            let m = Tensor::from_fn(Shape::new(1, 1, meas, meas), |_, _, h, w| {
                let row = (h * meas + w) * scene * scene;
                img.as_slice()
                    .iter()
                    .zip(&mix[row..row + scene * scene])
                    .map(|(a, b)| a * b)
                    .sum::<f32>()
                    + 0.5 // sensor DC level
            });
            measurements.push(m);
            let yaw = (fx - 0.5) * 1.2;
            let pitch = (fy - 0.5) * 1.2;
            let mut g = Tensor::zeros(Shape::new(1, 3, 1, 1));
            *g.at_mut(0, 0, 0, 0) = yaw.sin();
            *g.at_mut(0, 1, 0, 0) = pitch.sin();
            *g.at_mut(0, 2, 0, 0) = (1.0 - yaw.sin().powi(2) - pitch.sin().powi(2)).sqrt();
            gazes.push(g);
        }
        (Tensor::stack(&measurements), Tensor::stack(&gazes))
    }

    #[test]
    fn latent_net_learns_gaze_from_scrambled_measurements() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = LatentGazeNet::new(GazeFamily::ResNetLike, 16, 16, &mut rng);
        let (meas, gazes) = toy_latent_data(32, 12, 20);
        let cfg = TrainConfig {
            epochs: 25,
            batch: 8,
            lr: 3e-3,
            seed: 1,
        };
        let history = train_latent_gaze(&mut net, &meas, &gazes, &cfg);
        assert!(
            history.last().unwrap() < &(history.first().unwrap() * 0.6),
            "latent training should cut loss: {history:?}"
        );
        // normalisation was fitted: the corpus rides on a DC level, so the
        // shift must be materially non-zero
        let (shift, scale) = net.normalization();
        assert!(shift.abs() > 0.05, "shift {shift} missed the DC level");
        assert!(scale > 0.0);
    }

    #[test]
    fn project_into_normalises_and_is_allocation_stable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = LatentGazeNet::new(GazeFamily::MobileNetLike, 8, 8, &mut rng);
        net.set_normalization(0.5, 2.0);
        let m = Tensor::full(Shape::new(1, 1, 20, 20), 0.75);
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        net.project_into(&m, &mut out);
        assert_eq!(out.shape().dims(), (1, 1, 8, 8));
        // (0.75 - 0.5) * 2.0 — bilinear over a constant is that constant
        for v in out.as_slice() {
            assert!((v - 0.5).abs() < 1e-6, "normalised value {v}");
        }
        // a warm output buffer keeps its capacity across re-projection
        let ptr = out.as_slice().as_ptr();
        net.project_into(&m, &mut out);
        assert_eq!(ptr, out.as_slice().as_ptr());
    }

    #[test]
    fn projection_preserves_nan_for_degenerate_detection() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = LatentGazeNet::new(GazeFamily::FbnetLike, 4, 4, &mut rng);
        let mut m = Tensor::zeros(Shape::new(1, 1, 8, 8));
        m.as_mut_slice()[13] = f32::NAN;
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        net.project_into(&m, &mut out);
        assert!(out.has_non_finite(), "NaN must survive the projection");
    }

    #[test]
    fn forward_infer_matches_training_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = LatentGazeNet::new(GazeFamily::ResNetLike, 12, 12, &mut rng);
        let x = Tensor::from_fn(Shape::new(2, 1, 12, 12), |_, _, h, w| {
            ((h * 13 + w * 7) % 10) as f32 * 0.1
        });
        let want = net.forward(&x, false);
        let mut ws = GazeInferWorkspace::new();
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        net.forward_infer(&x, &mut ws, &mut out);
        assert_eq!(out.shape(), want.shape());
        let rel = want.sub(&out).max_abs() / want.max_abs().max(1e-3);
        assert!(rel < 1e-4, "latent infer diverged from Layer path: {rel}");
    }
}
