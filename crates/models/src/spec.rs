//! The layer-shape intermediate representation shared by the FLOPs analysis
//! and the accelerator simulator.

use std::fmt;

/// The computational class of a layer — the taxonomy of the paper's
/// Challenge #II analysis (generic conv / point-wise / depth-wise / FC /
/// matrix-matrix multiplication, plus the non-MAC reshaping layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Generic K×K convolution (K > 1, groups = 1).
    Conv {
        /// Kernel size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Point-wise (1×1) convolution.
    Pointwise {
        /// Stride (1 in all networks here, but kept for generality).
        stride: usize,
    },
    /// Depth-wise K×K convolution (groups = channels).
    Depthwise {
        /// Kernel size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Fully connected layer.
    FullyConnected,
    /// Matrix–matrix multiplication with `m` rows (treated by the paper as a
    /// point-wise convolution with batch > 1 — e.g. the reconstruction
    /// stage's `V·Z·Vᵀ` products).
    MatMul {
        /// Left-operand row count.
        m: usize,
    },
    /// Max pooling (no MACs).
    MaxPool {
        /// Window/stride.
        k: usize,
    },
    /// Nearest-neighbour upsampling (no MACs).
    Upsample {
        /// Integer factor.
        factor: usize,
    },
    /// Channel concatenation with a skip connection contributing
    /// `skip_channels` (no MACs; affects activation traffic).
    Concat {
        /// Channels arriving from the skip path.
        skip_channels: usize,
    },
    /// Global average pooling (negligible MACs).
    GlobalAvgPool,
}

impl LayerKind {
    /// True for the three convolution kinds plus FC/MatMul — layers that
    /// occupy MAC lanes.
    pub fn is_compute(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv { .. }
                | LayerKind::Pointwise { .. }
                | LayerKind::Depthwise { .. }
                | LayerKind::FullyConnected
                | LayerKind::MatMul { .. }
        )
    }
}

/// One layer with fully resolved shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSpec {
    /// Human-readable name (e.g. `"enc1.conv2"`).
    pub name: String,
    /// Computational class.
    pub kind: LayerKind,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Input height.
    pub h_in: usize,
    /// Input width.
    pub w_in: usize,
}

impl LayerSpec {
    /// Output spatial extent.
    pub fn out_hw(&self) -> (usize, usize) {
        match self.kind {
            LayerKind::Conv { k, stride } | LayerKind::Depthwise { k, stride } => {
                // same-padded convolutions throughout: ceil(h / stride)
                let _ = k;
                (self.h_in.div_ceil(stride), self.w_in.div_ceil(stride))
            }
            LayerKind::Pointwise { stride } => {
                (self.h_in.div_ceil(stride), self.w_in.div_ceil(stride))
            }
            LayerKind::FullyConnected => (1, 1),
            LayerKind::MatMul { .. } => (self.h_in, self.w_in),
            LayerKind::MaxPool { k } => (self.h_in / k, self.w_in / k),
            LayerKind::Upsample { factor } => (self.h_in * factor, self.w_in * factor),
            LayerKind::Concat { .. } => (self.h_in, self.w_in),
            LayerKind::GlobalAvgPool => (1, 1),
        }
    }

    /// Multiply–accumulate count of this layer.
    pub fn macs(&self) -> u64 {
        let (ho, wo) = self.out_hw();
        let spatial = (ho * wo) as u64;
        match self.kind {
            LayerKind::Conv { k, .. } => {
                spatial * (k * k) as u64 * self.c_in as u64 * self.c_out as u64
            }
            LayerKind::Pointwise { .. } => spatial * self.c_in as u64 * self.c_out as u64,
            LayerKind::Depthwise { k, .. } => spatial * (k * k) as u64 * self.c_out as u64,
            LayerKind::FullyConnected => self.c_in as u64 * self.c_out as u64,
            LayerKind::MatMul { m } => m as u64 * self.c_in as u64 * self.c_out as u64,
            _ => 0,
        }
    }

    /// FLOPs under the paper's 1-MAC = 1-FLOP convention.
    pub fn flops(&self) -> u64 {
        self.macs()
    }

    /// Weight parameter count.
    pub fn params(&self) -> u64 {
        match self.kind {
            LayerKind::Conv { k, .. } => (k * k * self.c_in * self.c_out) as u64,
            LayerKind::Pointwise { .. } => (self.c_in * self.c_out) as u64,
            LayerKind::Depthwise { k, .. } => (k * k * self.c_out) as u64,
            LayerKind::FullyConnected => (self.c_in * self.c_out) as u64 + self.c_out as u64,
            _ => 0,
        }
    }

    /// Input activation element count.
    pub fn input_elems(&self) -> u64 {
        (self.c_in * self.h_in * self.w_in) as u64
    }

    /// Output activation element count.
    pub fn output_elems(&self) -> u64 {
        let (ho, wo) = self.out_hw();
        (self.c_out * ho * wo) as u64
    }
}

impl fmt::Display for LayerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (ho, wo) = self.out_hw();
        write!(
            f,
            "{:<24} {:?} {}x{}x{} -> {}x{}x{}",
            self.name, self.kind, self.c_in, self.h_in, self.w_in, self.c_out, ho, wo
        )
    }
}

/// Share of MAC operations per layer class — the §5.1 "dominant layer type"
/// analysis (paper: 8.8 % generic, 68.8 % point-wise, 7.9 % depth-wise,
/// 0.001 % FC, 14.5 % matmul over a 50-frame window).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpBreakdown {
    /// Generic convolution MACs.
    pub conv: u64,
    /// Point-wise convolution MACs.
    pub pointwise: u64,
    /// Depth-wise convolution MACs.
    pub depthwise: u64,
    /// Fully connected MACs.
    pub fc: u64,
    /// Matrix-multiplication MACs.
    pub matmul: u64,
}

impl OpBreakdown {
    /// Total MACs.
    pub fn total(&self) -> u64 {
        self.conv + self.pointwise + self.depthwise + self.fc + self.matmul
    }

    /// Fractions of the total in the order
    /// `(conv, pointwise, depthwise, fc, matmul)`.
    pub fn fractions(&self) -> (f64, f64, f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.conv as f64 / t,
            self.pointwise as f64 / t,
            self.depthwise as f64 / t,
            self.fc as f64 / t,
            self.matmul as f64 / t,
        )
    }

    /// Accumulates another breakdown scaled by `times` (e.g. per-frame
    /// workloads over a 50-frame window).
    pub fn accumulate(&mut self, other: &OpBreakdown, times: u64) {
        self.conv += other.conv * times;
        self.pointwise += other.pointwise * times;
        self.depthwise += other.depthwise * times;
        self.fc += other.fc * times;
        self.matmul += other.matmul * times;
    }
}

/// A complete network as an ordered list of layer specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Model name (e.g. `"RITNet"`).
    pub name: String,
    /// Layers in execution order.
    pub layers: Vec<LayerSpec>,
}

impl ModelSpec {
    /// Total MAC count.
    pub fn macs(&self) -> u64 {
        self.layers.iter().map(LayerSpec::macs).sum()
    }

    /// Total FLOPs (= MACs; see crate docs for the convention).
    pub fn flops(&self) -> u64 {
        self.macs()
    }

    /// Effective FLOPs at reduced precision: quantised ops scale
    /// quadratically with bit width (`(bits/32)²`), the convention that
    /// reproduces the paper's 8-bit rows (e.g. RITNet 1.0 G → ~0.06 G ≈ the
    /// reported 0.1 G).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds 32.
    pub fn effective_flops(&self, bits: u32) -> u64 {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        let scale = (bits as f64 / 32.0).powi(2);
        (self.flops() as f64 * scale) as u64
    }

    /// Total parameter count.
    pub fn params(&self) -> u64 {
        self.layers.iter().map(LayerSpec::params).sum()
    }

    /// MAC breakdown by layer class.
    pub fn op_breakdown(&self) -> OpBreakdown {
        let mut b = OpBreakdown::default();
        for l in &self.layers {
            let m = l.macs();
            match l.kind {
                LayerKind::Conv { .. } => b.conv += m,
                LayerKind::Pointwise { .. } => b.pointwise += m,
                LayerKind::Depthwise { .. } => b.depthwise += m,
                LayerKind::FullyConnected => b.fc += m,
                LayerKind::MatMul { .. } => b.matmul += m,
                _ => {}
            }
        }
        b
    }

    /// The largest single-layer activation requirement in **elements**
    /// (input + output live simultaneously) — the quantity behind the
    /// paper's Challenge #III (2.78 MB total without partitioning).
    pub fn peak_activation_elems(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.input_elems() + l.output_elems())
            .max()
            .unwrap_or(0)
    }

    /// Index and spec of the layer with the most MACs (the paper's
    /// "bottleneck layers" of Challenge #I).
    pub fn bottleneck_layer(&self) -> Option<(usize, &LayerSpec)> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind.is_compute())
            .max_by_key(|(_, l)| l.macs())
    }

    /// Verifies that consecutive layers' shapes chain correctly.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message at the first inconsistency.
    pub fn validate(&self) {
        for w in self.layers.windows(2) {
            let (prev, next) = (&w[0], &w[1]);
            let (ho, wo) = prev.out_hw();
            let expected_c = match next.kind {
                LayerKind::Concat { skip_channels } => next.c_in - skip_channels,
                _ => next.c_in,
            };
            assert_eq!(
                (prev.c_out, ho, wo),
                (expected_c, next.h_in, next.w_in),
                "{}: layer '{}' output {}x{}x{} does not feed '{}' input {}x{}x{}",
                self.name,
                prev.name,
                prev.c_out,
                ho,
                wo,
                next.name,
                expected_c,
                next.h_in,
                next.w_in
            );
        }
    }
}

/// Fluent builder that threads shapes through a chain of layers.
#[derive(Debug, Clone)]
pub struct SpecBuilder {
    name: String,
    layers: Vec<LayerSpec>,
    c: usize,
    h: usize,
    w: usize,
    counter: usize,
}

impl SpecBuilder {
    /// Starts a model from an input of shape `(c, h, w)`.
    pub fn new(name: &str, c: usize, h: usize, w: usize) -> Self {
        assert!(c > 0 && h > 0 && w > 0, "input shape must be non-zero");
        SpecBuilder {
            name: name.to_owned(),
            layers: Vec::new(),
            c,
            h,
            w,
            counter: 0,
        }
    }

    /// Current feature-map shape `(c, h, w)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.c, self.h, self.w)
    }

    fn push(&mut self, kind: LayerKind, c_out: usize, label: &str) -> &mut Self {
        self.counter += 1;
        let spec = LayerSpec {
            name: format!("{:02}.{label}", self.counter),
            kind,
            c_in: self.c,
            c_out,
            h_in: self.h,
            w_in: self.w,
        };
        let (ho, wo) = spec.out_hw();
        self.c = c_out;
        self.h = ho;
        self.w = wo;
        self.layers.push(spec);
        self
    }

    /// Generic K×K convolution.
    pub fn conv(&mut self, c_out: usize, k: usize, stride: usize) -> &mut Self {
        self.push(LayerKind::Conv { k, stride }, c_out, "conv")
    }

    /// Point-wise 1×1 convolution.
    pub fn pointwise(&mut self, c_out: usize) -> &mut Self {
        self.push(LayerKind::Pointwise { stride: 1 }, c_out, "pw")
    }

    /// Depth-wise K×K convolution (channels preserved).
    pub fn depthwise(&mut self, k: usize, stride: usize) -> &mut Self {
        let c = self.c;
        self.push(LayerKind::Depthwise { k, stride }, c, "dw")
    }

    /// Fully connected layer over the flattened features.
    pub fn fc(&mut self, c_out: usize) -> &mut Self {
        let c_in = self.c * self.h * self.w;
        self.c = c_in;
        self.h = 1;
        self.w = 1;
        self.push(LayerKind::FullyConnected, c_out, "fc")
    }

    /// Max pooling (window = stride = `k`).
    pub fn max_pool(&mut self, k: usize) -> &mut Self {
        let c = self.c;
        self.push(LayerKind::MaxPool { k }, c, "pool")
    }

    /// Global average pooling.
    pub fn global_pool(&mut self) -> &mut Self {
        let c = self.c;
        self.push(LayerKind::GlobalAvgPool, c, "gap")
    }

    /// Nearest-neighbour upsampling.
    pub fn upsample(&mut self, factor: usize) -> &mut Self {
        let c = self.c;
        self.push(LayerKind::Upsample { factor }, c, "up")
    }

    /// Channel concatenation with a skip path of `skip_channels`.
    pub fn concat(&mut self, skip_channels: usize) -> &mut Self {
        let c_out = self.c + skip_channels;
        let spec = LayerSpec {
            name: format!("{:02}.cat", self.counter + 1),
            kind: LayerKind::Concat { skip_channels },
            c_in: c_out,
            c_out,
            h_in: self.h,
            w_in: self.w,
        };
        self.counter += 1;
        self.c = c_out;
        self.layers.push(spec);
        self
    }

    /// Matrix–matrix multiplication layer `m × c_in · c_in × c_out`.
    pub fn matmul(&mut self, m: usize, c_out: usize) -> &mut Self {
        self.push(LayerKind::MatMul { m }, c_out, "mm")
    }

    /// Finalises and validates the model.
    pub fn build(&self) -> ModelSpec {
        let spec = ModelSpec {
            name: self.name.clone(),
            layers: self.layers.clone(),
        };
        spec.validate();
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_macs_formula() {
        let l = LayerSpec {
            name: "c".into(),
            kind: LayerKind::Conv { k: 3, stride: 1 },
            c_in: 8,
            c_out: 16,
            h_in: 10,
            w_in: 10,
        };
        assert_eq!(l.macs(), 9 * 8 * 16 * 100);
        assert_eq!(l.params(), 9 * 8 * 16);
        assert_eq!(l.out_hw(), (10, 10));
    }

    #[test]
    fn strided_conv_halves_extent() {
        let l = LayerSpec {
            name: "c".into(),
            kind: LayerKind::Conv { k: 3, stride: 2 },
            c_in: 3,
            c_out: 8,
            h_in: 9,
            w_in: 16,
        };
        assert_eq!(l.out_hw(), (5, 8)); // ceil semantics
    }

    #[test]
    fn depthwise_macs_ignore_cin_product() {
        let l = LayerSpec {
            name: "d".into(),
            kind: LayerKind::Depthwise { k: 3, stride: 1 },
            c_in: 32,
            c_out: 32,
            h_in: 8,
            w_in: 8,
        };
        assert_eq!(l.macs(), 9 * 32 * 64);
    }

    #[test]
    fn builder_chains_shapes() {
        let spec = SpecBuilder::new("toy", 1, 32, 32)
            .conv(8, 3, 1)
            .max_pool(2)
            .depthwise(3, 1)
            .pointwise(16)
            .global_pool()
            .fc(3)
            .build();
        assert_eq!(spec.layers.len(), 6);
        let last = spec.layers.last().unwrap();
        assert_eq!(last.c_in, 16);
        assert_eq!(last.c_out, 3);
    }

    #[test]
    fn builder_concat_adds_channels() {
        let spec = SpecBuilder::new("skip", 1, 16, 16)
            .conv(8, 3, 1)
            .concat(8)
            .conv(8, 3, 1)
            .build();
        assert_eq!(spec.layers[2].c_in, 16);
    }

    #[test]
    #[should_panic(expected = "does not feed")]
    fn validate_catches_broken_chain() {
        let mut spec = SpecBuilder::new("bad", 1, 16, 16).conv(8, 3, 1).build();
        spec.layers.push(LayerSpec {
            name: "broken".into(),
            kind: LayerKind::Pointwise { stride: 1 },
            c_in: 99,
            c_out: 4,
            h_in: 16,
            w_in: 16,
        });
        spec.validate();
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let spec = SpecBuilder::new("mix", 3, 32, 32)
            .conv(16, 3, 2)
            .depthwise(3, 1)
            .pointwise(32)
            .global_pool()
            .fc(10)
            .build();
        let b = spec.op_breakdown();
        let (a, p, d, f, m) = b.fractions();
        assert!((a + p + d + f + m - 1.0).abs() < 1e-9);
        assert!(b.total() == spec.macs());
    }

    #[test]
    fn effective_flops_scales_quadratically() {
        let spec = SpecBuilder::new("q", 3, 8, 8).conv(8, 3, 1).build();
        assert_eq!(spec.effective_flops(32), spec.flops());
        assert_eq!(spec.effective_flops(8), spec.flops() / 16);
        assert_eq!(spec.effective_flops(16), spec.flops() / 4);
    }

    #[test]
    fn bottleneck_is_largest_compute_layer() {
        let spec = SpecBuilder::new("b", 1, 64, 64)
            .conv(8, 3, 1)
            .conv(64, 3, 1)
            .max_pool(2)
            .conv(8, 3, 1)
            .build();
        let (idx, l) = spec.bottleneck_layer().unwrap();
        assert_eq!(idx, 1);
        assert!(l.macs() > spec.layers[0].macs());
    }

    #[test]
    fn peak_activation_considers_in_plus_out() {
        let spec = SpecBuilder::new("a", 4, 16, 16).conv(8, 3, 1).build();
        assert_eq!(
            spec.peak_activation_elems(),
            (4 * 16 * 16 + 8 * 16 * 16) as u64
        );
    }
}
