//! Allocation-free inference forwards for the gaze networks.
//!
//! The EyeCoD accelerator streams every layer's activations between two
//! 512 KB ping-pong activation global buffers (paper Fig. 10): layer `i`
//! reads from one buffer and writes the other, so no per-layer storage is
//! ever (de)allocated. [`GazeInferWorkspace`] is the software mirror of
//! that arrangement — two f32 arena tensors and two int8 arena tensors the
//! forward passes alternate between, plus the im2col patch buffer and the
//! i32 MAC accumulator shared by every layer. All buffers are sized lazily
//! at the first frame and only ever grow, so a steady-state forward pass
//! performs zero heap allocations.
//!
//! Two entry points live here:
//!
//! * [`ProxyGazeNet::forward_infer`] — the f32 backend. Convolutions run
//!   through the blocked im2col GEMM ([`ops::conv2d_gemm_buf`]), batch norm
//!   and the activation are applied in place, and the head writes into the
//!   caller's output tensor. Results match [`Layer::forward`] up to float
//!   summation order (the GEMM folds the bias in before the taps, the
//!   direct convolution after), which the differential tests bound.
//! * [`QuantizedGazeNet::forward_into`] — the int8 backend. Every op
//!   delegates to the `_into` variants of the deployed chain
//!   ([`eyecod_tensor::quant`]), whose i32 accumulation is exactly
//!   associative, so outputs are bit-identical to
//!   [`QuantizedGazeNet::forward`].

use crate::proxy::{GazeLayer, ProxyGazeNet};
use eyecod_tensor::ops::{self, ConvWorkspace};
use eyecod_tensor::quant::QTensor;
use eyecod_tensor::Tensor;

/// Reusable buffers for the allocation-free gaze forwards — the f32 arena
/// (via [`ConvWorkspace`]), the int8 arena, and the shared i32 accumulator.
///
/// One workspace serves both backends; buffers grow to the largest layer
/// seen and are then reused verbatim.
pub struct GazeInferWorkspace {
    pub(crate) conv: ConvWorkspace,
    pub(crate) qping: QTensor,
    pub(crate) qpong: QTensor,
    pub(crate) acc: Vec<i32>,
}

impl Default for GazeInferWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl GazeInferWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        GazeInferWorkspace {
            conv: ConvWorkspace::new(),
            qping: QTensor::scratch(),
            qpong: QTensor::scratch(),
            acc: Vec::new(),
        }
    }
}

/// One slot of a [`WorkspaceArena`]: the staging input/output tensors plus
/// the inference workspace one worker streams its share of a cross-session
/// batch through.
///
/// `input` is gathered to `(k, 1, h, w)` (a contiguous sub-batch of `k`
/// sessions' gaze crops), the forward writes `output` as `(k, 3, 1, 1)`,
/// and each session's prediction is row `i` of `output`. All three reuse
/// their allocations across ticks.
pub struct BatchWorkspace {
    /// Gathered sub-batch input.
    pub input: Tensor,
    /// Batched network output.
    pub output: Tensor,
    /// The per-worker inference arena (both backends).
    pub ws: GazeInferWorkspace,
}

impl BatchWorkspace {
    fn new() -> Self {
        BatchWorkspace {
            input: Tensor::zeros(eyecod_tensor::Shape::new(1, 1, 1, 1)),
            output: Tensor::zeros(eyecod_tensor::Shape::new(1, 1, 1, 1)),
            ws: GazeInferWorkspace::new(),
        }
    }
}

/// A pool of per-worker inference workspaces — the generalisation of one
/// tracker's [`GazeInferWorkspace`] to a serving tick that splits a
/// cross-session batch across pool workers. Slot `p` is owned exclusively
/// by partition `p` for the duration of a batched forward, so the slots can
/// be driven in parallel without sharing; the arena only ever grows and
/// every buffer inside it reuses its allocation, keeping the steady-state
/// serve tick allocation-free.
#[derive(Default)]
pub struct WorkspaceArena {
    slots: Vec<BatchWorkspace>,
}

impl WorkspaceArena {
    /// Creates an empty arena (slots are added by
    /// [`WorkspaceArena::ensure`]).
    pub fn new() -> Self {
        WorkspaceArena { slots: Vec::new() }
    }

    /// Grows the arena to at least `n` slots (never shrinks).
    pub fn ensure(&mut self, n: usize) {
        while self.slots.len() < n {
            self.slots.push(BatchWorkspace::new());
        }
    }

    /// Number of slots currently allocated.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the arena has no slots yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Mutable access to one slot.
    pub fn slot_mut(&mut self, i: usize) -> &mut BatchWorkspace {
        &mut self.slots[i]
    }

    /// Shared access to one slot (for reading `output` after a forward).
    pub fn slot(&self, i: usize) -> &BatchWorkspace {
        &self.slots[i]
    }

    /// All slots, for callers that hand disjoint slots to parallel
    /// workers.
    pub fn slots_mut(&mut self) -> &mut [BatchWorkspace] {
        &mut self.slots
    }
}

impl ProxyGazeNet {
    /// Inference forward through the workspace arena: allocation-free once
    /// the workspace buffers are warm. Writes the gaze tensor `(N, 3, 1, 1)`
    /// into `out`.
    ///
    /// Agrees with `Layer::forward(input, false)` up to float summation
    /// order (see the module docs); it never touches training state, so it
    /// takes `&self`.
    pub fn forward_infer(&self, input: &Tensor, ws: &mut GazeInferWorkspace, out: &mut Tensor) {
        let (patches, mut cur, mut next) = ws.conv.split();
        cur.copy_from(input);
        for layer in &self.layers {
            match layer {
                GazeLayer::Conv(c) => {
                    ops::conv2d_gemm_buf(
                        cur,
                        c.weight(),
                        c.bias(),
                        c.stride(),
                        c.pad(),
                        c.groups(),
                        patches,
                        next,
                    );
                    std::mem::swap(&mut cur, &mut next);
                }
                GazeLayer::Bn(bn) => ops::batch_norm_infer_inplace(
                    cur,
                    bn.gamma(),
                    bn.beta(),
                    bn.running_mean(),
                    bn.running_var(),
                    bn.eps(),
                ),
                GazeLayer::Act(act) => {
                    let alpha = act.alpha();
                    for v in cur.as_mut_slice() {
                        // mirrors `ops::leaky_relu`'s `if x > 0.0 { x }
                        // else { alpha * x }` exactly — NaN must take the
                        // alpha branch, so the negated comparison is load-
                        // bearing, not a style slip
                        #[allow(clippy::neg_cmp_op_on_partial_ord)]
                        if !(*v > 0.0) {
                            *v *= alpha;
                        }
                    }
                }
                GazeLayer::Gap(_) => {
                    ops::global_avg_pool_into(cur, next);
                    std::mem::swap(&mut cur, &mut next);
                }
                GazeLayer::Fc(fc) => {
                    ops::linear_into(cur, fc.weight(), Some(fc.bias()), out);
                    return;
                }
            }
        }
        out.copy_from(cur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::GazeFamily;
    use crate::quantized::QuantizedGazeNet;
    use eyecod_tensor::{Layer, Shape};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_input(n: usize, h: usize, w: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(Shape::new(n, 1, h, w), |_, _, _, _| rng.gen_range(0.0..1.0))
    }

    #[test]
    fn f32_workspace_forward_matches_layer_forward_across_families() {
        let mut ws = GazeInferWorkspace::new();
        let mut out = Tensor::zeros(Shape::vector(1, 1));
        for (i, family) in [
            GazeFamily::ResNetLike,
            GazeFamily::FbnetLike,
            GazeFamily::MobileNetLike,
        ]
        .into_iter()
        .enumerate()
        {
            let mut rng = StdRng::seed_from_u64(21 + i as u64);
            let mut net = ProxyGazeNet::new(family, &mut rng);
            // two frames through the same workspace
            for seed in [40, 41] {
                let x = random_input(1, 24, 32, seed + i as u64);
                let want = net.forward(&x, false);
                net.forward_infer(&x, &mut ws, &mut out);
                assert_eq!(out.shape(), want.shape());
                let denom = want.max_abs().max(1e-3);
                let rel = want.sub(&out).max_abs() / denom;
                assert!(
                    rel < 1e-4,
                    "{family:?} workspace forward diverged: rel err {rel}"
                );
            }
        }
    }

    /// The serving layer's batching contract: a batched forward over `k`
    /// stacked crops must reproduce `k` independent N=1 forwards. f32 holds
    /// bit-exactly here because `conv2d_gemm_buf` processes batch items one
    /// at a time through the identical GEMM (the serve-level differential
    /// still only asserts rel ≤ 1e-4, the contract the paper path needs).
    #[test]
    fn batched_f32_forward_matches_per_item_forwards_for_ragged_sizes() {
        let mut ws = GazeInferWorkspace::new();
        let mut solo_ws = GazeInferWorkspace::new();
        let mut rng = StdRng::seed_from_u64(77);
        let net = ProxyGazeNet::new(GazeFamily::FbnetLike, &mut rng);
        for (i, &k) in [1usize, 2, 7, 32].iter().enumerate() {
            let batch = random_input(k, 24, 32, 400 + i as u64);
            let mut batched = Tensor::zeros(Shape::vector(1, 1));
            net.forward_infer(&batch, &mut ws, &mut batched);
            assert_eq!(batched.shape(), Shape::new(k, 3, 1, 1));
            for item in 0..k {
                let x = batch.batch_item(item);
                let mut solo = Tensor::zeros(Shape::vector(1, 1));
                net.forward_infer(&x, &mut solo_ws, &mut solo);
                let row = &batched.as_slice()[item * 3..(item + 1) * 3];
                for (a, b) in row.iter().zip(solo.as_slice()) {
                    let rel = (a - b).abs() / b.abs().max(1e-3);
                    assert!(
                        rel <= 1e-4,
                        "batch {k} item {item}: batched {a} vs solo {b} (rel {rel})"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_int8_forward_is_bit_identical_to_per_item_forwards() {
        let mut ws = GazeInferWorkspace::new();
        let mut solo_ws = GazeInferWorkspace::new();
        let mut rng = StdRng::seed_from_u64(78);
        let net = ProxyGazeNet::new(GazeFamily::MobileNetLike, &mut rng);
        let qnet = QuantizedGazeNet::from_calibrated(&net, &random_input(4, 24, 32, 500));
        for (i, &k) in [1usize, 2, 7, 32].iter().enumerate() {
            let batch = random_input(k, 24, 32, 600 + i as u64);
            let mut batched = Tensor::zeros(Shape::vector(1, 1));
            qnet.forward_into(&batch, &mut ws, &mut batched);
            assert_eq!(batched.shape(), Shape::new(k, 3, 1, 1));
            for item in 0..k {
                let x = batch.batch_item(item);
                let mut solo = Tensor::zeros(Shape::vector(1, 1));
                qnet.forward_into(&x, &mut solo_ws, &mut solo);
                assert_eq!(
                    &batched.as_slice()[item * 3..(item + 1) * 3],
                    solo.as_slice(),
                    "batch {k} item {item}: int8 must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn int8_workspace_forward_is_bit_identical_to_forward() {
        let mut ws = GazeInferWorkspace::new();
        let mut out = Tensor::zeros(Shape::vector(1, 1));
        for (i, family) in [GazeFamily::FbnetLike, GazeFamily::MobileNetLike]
            .into_iter()
            .enumerate()
        {
            let mut rng = StdRng::seed_from_u64(31 + i as u64);
            let net = ProxyGazeNet::new(family, &mut rng);
            let qnet = QuantizedGazeNet::from_calibrated(&net, &random_input(4, 24, 32, 50));
            for seed in [60, 61] {
                let x = random_input(1, 24, 32, seed + i as u64);
                let want = qnet.forward(&x);
                qnet.forward_into(&x, &mut ws, &mut out);
                assert_eq!(
                    out.as_slice(),
                    want.as_slice(),
                    "{family:?} int8 workspace forward must be bit-identical"
                );
            }
        }
    }
}
