//! # eyecod-models
//!
//! Network architecture specifications and trainable proxies for the EyeCoD
//! reproduction.
//!
//! Two distinct artefacts live here:
//!
//! 1. **Full-size [`spec::ModelSpec`]s** of every network the paper uses —
//!    RITNet (eye segmentation), FBNet-C100 (gaze estimation), ResNet18,
//!    MobileNetV2 and U-Net (baselines). These carry exact layer shapes and
//!    drive (a) the FLOPs/params numbers of Tables 2 and 3, (b) the
//!    layer-type operation breakdown of §5.1, and (c) the workloads fed to
//!    the cycle-level accelerator simulator. They are *not* executed as
//!    `f32` math — no pretrained weights exist in this environment.
//! 2. **Trainable [`proxy`] networks** — small members of the same
//!    architecture families (UNet-style encoder–decoder with skip
//!    connections; plain-conv residual-style; depth-wise-separable mobile
//!    style) that are trained from scratch on the synthetic eye dataset to
//!    measure the *relative* accuracy trends of the paper's ablations.
//!
//! FLOP convention: the paper counts one multiply–accumulate as one FLOP
//! (its ResNet18\@224×224 figure of 1.82 G matches the standard 1.8 G MAC
//! count); [`spec::ModelSpec::flops`] follows the same convention so numbers
//! are directly comparable.

pub mod fbnet;
pub mod infer;
pub mod latent;
pub mod mobilenet;
pub mod proxy;
pub mod quantized;
pub mod resnet;
pub mod ritnet;
pub mod spec;
pub mod summary;
pub mod unet;

pub use spec::{LayerKind, LayerSpec, ModelSpec, OpBreakdown};
