//! ResNet18 — the OpenEDS2020 challenge-winner backbone the paper uses as
//! its gaze-estimation reference point (Table 2, first two rows).

use crate::spec::{ModelSpec, SpecBuilder};

/// Stage widths of ResNet18.
const WIDTHS: [usize; 4] = [64, 128, 256, 512];

/// Gaze output dimensionality.
pub const OUTPUT: usize = 3;

/// Appends one basic block (two 3×3 convs + optional 1×1 projection
/// shortcut, which is real compute and therefore part of the spec).
fn basic_block(b: &mut SpecBuilder, c_out: usize, stride: usize) {
    let (c_in, _, _) = b.shape();
    b.conv(c_out, 3, stride).conv(c_out, 3, 1);
    if stride != 1 || c_in != c_out {
        // Projection shortcut runs on the block input; we model its MACs by
        // appending an equivalent point-wise layer over the output extent
        // (identical cost: C_in × C_out × H_out × W_out).
        // It consumes and reproduces the block output shape for chaining.
        let (c, _, _) = b.shape();
        debug_assert_eq!(c, c_out);
        b.pointwise(c_out);
    }
}

/// Builds the ResNet18 gaze spec for a grayscale `h × w` input.
///
/// # Panics
///
/// Panics if either extent is smaller than 32.
pub fn spec(h: usize, w: usize) -> ModelSpec {
    assert!(
        h >= 32 && w >= 32,
        "ResNet18 input must be at least 32x32, got {h}x{w}"
    );
    let mut b = SpecBuilder::new("ResNet18", 1, h, w);
    b.conv(64, 7, 2).max_pool(2);
    for (stage, &c) in WIDTHS.iter().enumerate() {
        let stride = if stage == 0 { 1 } else { 2 };
        basic_block(&mut b, c, stride);
        basic_block(&mut b, c, 1);
    }
    b.global_pool().fc(OUTPUT);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_published_resnet18() {
        // Table 2: 11.18M (backbone without the 1000-class ImageNet head).
        let p = spec(224, 224).params();
        assert!((10_500_000..12_200_000).contains(&p), "ResNet18 params {p}");
    }

    #[test]
    fn flops_at_224_match_table2() {
        // Table 2: 1.82G at 224x224 under the MAC=FLOP convention.
        let f = spec(224, 224).flops();
        assert!(
            (1_500_000_000..2_200_000_000).contains(&f),
            "ResNet18@224 flops {f}"
        );
    }

    #[test]
    fn flops_at_roi_match_table2_flatcam_row() {
        // Table 2: 0.56G at the 96x160 FlatCam ROI.
        let f = spec(96, 160).flops();
        assert!(
            (400_000_000..700_000_000).contains(&f),
            "ResNet18@96x160 flops {f}"
        );
    }

    #[test]
    fn structure_has_eight_blocks() {
        let s = spec(224, 224);
        s.validate();
        // 1 stem + 16 block convs + 3 projections + pool/gap/fc
        let convs = s
            .layers
            .iter()
            .filter(|l| matches!(l.kind, crate::spec::LayerKind::Conv { .. }))
            .count();
        assert_eq!(convs, 17);
    }

    #[test]
    fn final_feature_extent_is_7x7_at_224() {
        let s = spec(224, 224);
        // the layer before global pool sees 7x7x512
        let gap_idx = s
            .layers
            .iter()
            .position(|l| matches!(l.kind, crate::spec::LayerKind::GlobalAvgPool))
            .unwrap();
        let prev = &s.layers[gap_idx];
        assert_eq!((prev.c_in, prev.h_in, prev.w_in), (512, 7, 7));
    }
}
