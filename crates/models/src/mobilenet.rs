//! MobileNetV2 — the mobile baseline of the paper's gaze-model comparison
//! (Table 2, "MobileNet" row: 2.23 M params, 0.10 G FLOPs at 96×160).

use crate::spec::{ModelSpec, SpecBuilder};

/// Inverted-residual stage table `(expansion, c_out, repeats, stride)` —
/// the published MobileNetV2 configuration.
const STAGES: &[(usize, usize, usize, usize)] = &[
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
];

/// Final feature width.
pub const HEAD: usize = 1280;

/// Gaze output dimensionality.
pub const OUTPUT: usize = 3;

/// Builds the MobileNetV2 gaze spec for a grayscale `h × w` input.
///
/// # Panics
///
/// Panics if either extent is smaller than 32.
pub fn spec(h: usize, w: usize) -> ModelSpec {
    assert!(
        h >= 32 && w >= 32,
        "MobileNetV2 input must be at least 32x32, got {h}x{w}"
    );
    let mut b = SpecBuilder::new("MobileNetV2", 1, h, w);
    b.conv(32, 3, 2);
    for &(e, c, n, s) in STAGES {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            let (c_in, _, _) = b.shape();
            let hidden = c_in * e;
            if e > 1 {
                b.pointwise(hidden);
            }
            b.depthwise(3, stride);
            b.pointwise(c);
        }
    }
    b.pointwise(HEAD);
    b.global_pool();
    b.fc(OUTPUT);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LayerKind;

    #[test]
    fn params_match_table2() {
        // Table 2: 2.23M (headless MobileNetV2 + 3-dim gaze head).
        let p = spec(96, 160).params();
        assert!(
            (1_900_000..2_700_000).contains(&p),
            "MobileNetV2 params {p}"
        );
    }

    #[test]
    fn flops_at_roi_match_table2() {
        // Table 2: 0.10G at 96x160.
        let f = spec(96, 160).flops();
        assert!(
            (60_000_000..140_000_000).contains(&f),
            "MobileNetV2 flops {f}"
        );
    }

    #[test]
    fn all_depthwise_kernels_are_3() {
        for l in &spec(96, 160).layers {
            if let LayerKind::Depthwise { k, .. } = l.kind {
                assert_eq!(k, 3);
            }
        }
    }

    #[test]
    fn cheaper_than_resnet_but_in_same_ballpark_as_fbnet() {
        // Table 2 ordering: ResNet18 (0.56G) > FBNet (0.12G) ≈ MobileNet (0.10G).
        let mob = spec(96, 160).flops();
        let res = crate::resnet::spec(96, 160).flops();
        let fb = crate::fbnet::spec(96, 160).flops();
        assert!(mob * 3 < res);
        assert!(mob < fb * 2 && fb < mob * 2);
    }

    #[test]
    fn validates_and_ends_in_gaze_head() {
        let s = spec(96, 160);
        s.validate();
        assert_eq!(s.layers.last().unwrap().c_out, OUTPUT);
    }
}
