//! Trainable proxy networks.
//!
//! Full RITNet/FBNet-scale training is out of scope for this environment (no
//! OpenEDS data, no GPU), so accuracy *trends* are measured with small
//! members of the same architecture families trained from scratch on the
//! synthetic eye dataset:
//!
//! * [`ProxySegNet`] — a skip-connected encoder–decoder (UNet/RITNet
//!   family) for 4-class eye segmentation;
//! * [`ProxyGazeNet`] — gaze regressors in three capacity/structure tiers
//!   mirroring ResNet18 (plain convolutions, widest), FBNet-C100
//!   (depth-wise separable, medium) and MobileNetV2 (depth-wise separable,
//!   slimmest).
//!
//! The relative orderings these proxies produce (lens vs FlatCam input,
//! resolution sweeps, crop strategies, 8-bit quantisation) are the claims
//! the paper's algorithm tables make.

use eyecod_tensor::layer::{BatchNorm2d, Conv2d, LeakyRelu, MaxPool2d, Upsample};
use eyecod_tensor::layer::{GlobalAvgPool, Linear};
use eyecod_tensor::ops;
use eyecod_tensor::optim::Adam;
use eyecod_tensor::quant::fake_quantize;
use eyecod_tensor::{loss, Layer, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A small UNet-family segmentation network with one skip connection.
///
/// Input `(N, 1, S, S)` → logits `(N, 4, S, S)`.
#[derive(Clone)]
pub struct ProxySegNet {
    e1a: Conv2d,
    e1b: Conv2d,
    act1a: LeakyRelu,
    act1b: LeakyRelu,
    pool: MaxPool2d,
    e2a: Conv2d,
    e2b: Conv2d,
    act2a: LeakyRelu,
    act2b: LeakyRelu,
    up: Upsample,
    d1: Conv2d,
    actd: LeakyRelu,
    head: Conv2d,
    skip_cache: Option<Tensor>,
    width: usize,
}

impl ProxySegNet {
    /// Creates the network with encoder width `width` (8 is a good default)
    /// for single-channel (grayscale) input.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize, rng: &mut StdRng) -> Self {
        Self::with_input_channels(1, width, rng)
    }

    /// Creates the network for `c_in` input channels — used when the first
    /// layer lives in the FlatCam mask (the sensing–processing interface of
    /// paper §4.2) and the network consumes optical feature maps instead of
    /// a grayscale image.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `c_in == 0`.
    pub fn with_input_channels(c_in: usize, width: usize, rng: &mut StdRng) -> Self {
        assert!(width > 0, "width must be non-zero");
        assert!(c_in > 0, "input channels must be non-zero");
        let w = width;
        ProxySegNet {
            e1a: Conv2d::new(c_in, w, 3, 1, 1, 1, true, rng),
            e1b: Conv2d::new(w, w, 3, 1, 1, 1, true, rng),
            act1a: LeakyRelu::new(0.1),
            act1b: LeakyRelu::new(0.1),
            pool: MaxPool2d::new(2, 2),
            e2a: Conv2d::new(w, 2 * w, 3, 1, 1, 1, true, rng),
            e2b: Conv2d::new(2 * w, 2 * w, 3, 1, 1, 1, true, rng),
            act2a: LeakyRelu::new(0.1),
            act2b: LeakyRelu::new(0.1),
            up: Upsample::new(2),
            d1: Conv2d::new(3 * w, w, 3, 1, 1, 1, true, rng),
            actd: LeakyRelu::new(0.1),
            head: Conv2d::new(w, 4, 1, 1, 0, 1, true, rng),
            skip_cache: None,
            width,
        }
    }

    /// Encoder width.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl Layer for ProxySegNet {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let x = self.act1a.forward(&self.e1a.forward(input, train), train);
        let skip = self.act1b.forward(&self.e1b.forward(&x, train), train);
        if train {
            self.skip_cache = Some(skip.clone());
        }
        let x = self.pool.forward(&skip, train);
        let x = self.act2a.forward(&self.e2a.forward(&x, train), train);
        let x = self.act2b.forward(&self.e2b.forward(&x, train), train);
        let x = self.up.forward(&x, train);
        let x = ops::concat_channels(&[&x, &skip]);
        let x = self.actd.forward(&self.d1.forward(&x, train), train);
        self.head.forward(&x, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let skip = self
            .skip_cache
            .take()
            .expect("ProxySegNet::backward called without a training forward pass");
        let g = self.head.backward(grad_out);
        let g = self.d1.backward(&self.actd.backward(&g));
        // split the concat gradient back into the up path and the skip path
        let parts = ops::split_channels(&g, &[2 * self.width, self.width]);
        let g_up = self.up.backward(&parts[0]);
        let g = self.e2b.backward(&self.act2b.backward(&g_up));
        let g = self.e2a.backward(&self.act2a.backward(&g));
        let g_pool = self.pool.backward(&g);
        // the skip tensor feeds both the pool path and the concat
        let g_skip = g_pool.add(&parts[1]);
        let _ = skip;
        let g = self.e1b.backward(&self.act1b.backward(&g_skip));
        self.e1a.backward(&self.act1a.backward(&g))
    }

    fn params_mut(&mut self) -> Vec<&mut eyecod_tensor::Param> {
        let mut v = Vec::new();
        v.extend(self.e1a.params_mut());
        v.extend(self.e1b.params_mut());
        v.extend(self.e2a.params_mut());
        v.extend(self.e2b.params_mut());
        v.extend(self.d1.params_mut());
        v.extend(self.head.params_mut());
        v
    }
}

/// The architecture family of a [`ProxyGazeNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GazeFamily {
    /// Plain-convolution residual family (ResNet18 stand-in) — widest.
    ResNetLike,
    /// Depth-wise-separable searched family (FBNet-C100 stand-in).
    FbnetLike,
    /// Depth-wise-separable slim family (MobileNetV2 stand-in) — slimmest.
    MobileNetLike,
}

/// One concrete layer of a [`ProxyGazeNet`] (a closed enum so the network
/// is `Clone`-able, unlike a `Sequential` of trait objects). Crate-visible
/// so the int8 backend in [`crate::quantized`] can fold and quantise it.
#[derive(Clone)]
pub(crate) enum GazeLayer {
    Conv(Conv2d),
    Bn(BatchNorm2d),
    Act(LeakyRelu),
    Gap(GlobalAvgPool),
    Fc(Linear),
}

impl GazeLayer {
    fn as_layer_mut(&mut self) -> &mut dyn Layer {
        match self {
            GazeLayer::Conv(l) => l,
            GazeLayer::Bn(l) => l,
            GazeLayer::Act(l) => l,
            GazeLayer::Gap(l) => l,
            GazeLayer::Fc(l) => l,
        }
    }
}

/// A gaze regressor: grayscale crop in, 3-D gaze vector out.
#[derive(Clone)]
pub struct ProxyGazeNet {
    pub(crate) layers: Vec<GazeLayer>,
    family: GazeFamily,
}

impl ProxyGazeNet {
    /// Builds a proxy of the given family.
    pub fn new(family: GazeFamily, rng: &mut StdRng) -> Self {
        let mut layers = Vec::new();
        let conv_bn_relu = |layers: &mut Vec<GazeLayer>, cin, cout, stride, rng: &mut StdRng| {
            layers.push(GazeLayer::Conv(Conv2d::new(
                cin, cout, 3, stride, 1, 1, false, rng,
            )));
            layers.push(GazeLayer::Bn(BatchNorm2d::new(cout)));
            layers.push(GazeLayer::Act(LeakyRelu::relu()));
        };
        let dw_pw = |layers: &mut Vec<GazeLayer>, cin, cout, stride, rng: &mut StdRng| {
            layers.push(GazeLayer::Conv(Conv2d::new(
                cin, cin, 3, stride, 1, cin, false, rng,
            )));
            layers.push(GazeLayer::Bn(BatchNorm2d::new(cin)));
            layers.push(GazeLayer::Act(LeakyRelu::relu()));
            layers.push(GazeLayer::Conv(Conv2d::new(
                cin, cout, 1, 1, 0, 1, false, rng,
            )));
            layers.push(GazeLayer::Bn(BatchNorm2d::new(cout)));
            layers.push(GazeLayer::Act(LeakyRelu::relu()));
        };
        let final_c = match family {
            GazeFamily::ResNetLike => {
                conv_bn_relu(&mut layers, 1, 16, 2, rng);
                conv_bn_relu(&mut layers, 16, 32, 2, rng);
                conv_bn_relu(&mut layers, 32, 32, 1, rng);
                conv_bn_relu(&mut layers, 32, 64, 2, rng);
                64
            }
            GazeFamily::FbnetLike => {
                conv_bn_relu(&mut layers, 1, 12, 2, rng);
                dw_pw(&mut layers, 12, 24, 2, rng);
                dw_pw(&mut layers, 24, 48, 2, rng);
                48
            }
            GazeFamily::MobileNetLike => {
                conv_bn_relu(&mut layers, 1, 8, 2, rng);
                dw_pw(&mut layers, 8, 16, 2, rng);
                dw_pw(&mut layers, 16, 24, 2, rng);
                24
            }
        };
        layers.push(GazeLayer::Gap(GlobalAvgPool::new()));
        layers.push(GazeLayer::Fc(Linear::new(final_c, 3, rng)));
        ProxyGazeNet { layers, family }
    }

    /// The architecture family.
    pub fn family(&self) -> GazeFamily {
        self.family
    }

    /// Total trainable parameters.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }
}

impl Layer for ProxyGazeNet {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for l in &mut self.layers {
            x = l.as_layer_mut().forward(&x, train);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.as_layer_mut().backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut eyecod_tensor::Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.as_layer_mut().params_mut())
            .collect()
    }
}

/// Training hyper-parameters (the paper uses Adam for both models).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch: 8,
            lr: 1e-3,
            seed: 0,
        }
    }
}

fn batches(n: usize, batch: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.chunks(batch).map(|c| c.to_vec()).collect()
}

fn gather_images(images: &Tensor, idx: &[usize]) -> Tensor {
    let items: Vec<Tensor> = idx.iter().map(|&i| images.batch_item(i)).collect();
    Tensor::stack(&items)
}

/// Trains a gaze regressor with the angular loss; returns per-epoch mean
/// training loss.
///
/// # Panics
///
/// Panics if image and gaze batch sizes differ.
pub fn train_gaze(
    net: &mut dyn Layer,
    images: &Tensor,
    gazes: &Tensor,
    config: &TrainConfig,
) -> Vec<f32> {
    let n = images.shape().n;
    assert_eq!(gazes.shape().n, n, "images/gazes batch mismatch");
    let mut opt = Adam::new(config.lr);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut history = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        let mut epoch_loss = 0.0;
        let mut steps = 0;
        for batch in batches(n, config.batch, &mut rng) {
            let x = gather_images(images, &batch);
            let t_items: Vec<Tensor> = batch.iter().map(|&i| gazes.batch_item(i)).collect();
            let t = Tensor::stack(&t_items);
            for p in net.params_mut() {
                p.zero_grad();
            }
            let pred = net.forward(&x, true);
            let (l, grad) = loss::angular_gaze_loss(&pred, &t);
            net.backward(&grad);
            opt.step(&mut net.params_mut());
            epoch_loss += l;
            steps += 1;
        }
        history.push(epoch_loss / steps as f32);
    }
    history
}

/// Mean angular gaze error in degrees over an evaluation set.
pub fn eval_gaze(net: &mut dyn Layer, images: &Tensor, gazes: &Tensor) -> f32 {
    let pred = net.forward(images, false);
    loss::angular_error_degrees(&pred, gazes)
}

/// Trains a segmentation network with per-pixel cross-entropy; returns
/// per-epoch mean training loss.
///
/// `labels` is a flat per-pixel class vector over the whole image tensor.
pub fn train_seg(
    net: &mut dyn Layer,
    images: &Tensor,
    labels: &[usize],
    config: &TrainConfig,
) -> Vec<f32> {
    let n = images.shape().n;
    let px = images.shape().spatial_len();
    assert_eq!(labels.len(), n * px, "labels length mismatch");
    let mut opt = Adam::new(config.lr);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut history = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        let mut epoch_loss = 0.0;
        let mut steps = 0;
        for batch in batches(n, config.batch, &mut rng) {
            let x = gather_images(images, &batch);
            let t: Vec<usize> = batch
                .iter()
                .flat_map(|&i| labels[i * px..(i + 1) * px].iter().copied())
                .collect();
            for p in net.params_mut() {
                p.zero_grad();
            }
            let logits = net.forward(&x, true);
            let (l, grad) = loss::softmax_cross_entropy(&logits, &t);
            net.backward(&grad);
            opt.step(&mut net.params_mut());
            epoch_loss += l;
            steps += 1;
        }
        history.push(epoch_loss / steps as f32);
    }
    history
}

/// Predicts per-pixel classes with a segmentation network.
pub fn predict_seg(net: &mut dyn Layer, images: &Tensor) -> Vec<u8> {
    let logits = net.forward(images, false);
    let s = logits.shape();
    let mut out = Vec::with_capacity(s.n * s.spatial_len());
    for n in 0..s.n {
        for h in 0..s.h {
            for w in 0..s.w {
                let mut best = 0;
                let mut best_v = f32::NEG_INFINITY;
                for c in 0..s.c {
                    let v = logits.at(n, c, h, w);
                    if v > best_v {
                        best_v = v;
                        best = c;
                    }
                }
                out.push(best as u8);
            }
        }
    }
    out
}

/// Fake-quantises every parameter of a network to int8 in place — the
/// evaluation path for the paper's "(8-bit)" rows.
pub fn quantize_params_int8(net: &mut dyn Layer) {
    for p in net.params_mut() {
        p.value = fake_quantize(&p.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyecod_tensor::Shape;

    fn toy_gaze_data(n: usize, size: usize) -> (Tensor, Tensor) {
        // Synthetic task: a dark blob whose position encodes the gaze.
        let mut images = Vec::new();
        let mut gazes = Vec::new();
        for i in 0..n {
            let fy = 0.3 + 0.4 * ((i * 37 % 100) as f32 / 100.0);
            let fx = 0.3 + 0.4 * ((i * 61 % 100) as f32 / 100.0);
            let img = Tensor::from_fn(Shape::new(1, 1, size, size), |_, _, h, w| {
                let dy = h as f32 / size as f32 - fy;
                let dx = w as f32 / size as f32 - fx;
                1.0 - (-(dy * dy + dx * dx) * 40.0).exp()
            });
            images.push(img);
            let yaw = (fx - 0.5) * 1.2;
            let pitch = (fy - 0.5) * 1.2;
            let mut g = Tensor::zeros(Shape::new(1, 3, 1, 1));
            *g.at_mut(0, 0, 0, 0) = yaw.sin();
            *g.at_mut(0, 1, 0, 0) = pitch.sin();
            *g.at_mut(0, 2, 0, 0) = (1.0 - yaw.sin().powi(2) - pitch.sin().powi(2)).sqrt();
            gazes.push(g);
        }
        (Tensor::stack(&images), Tensor::stack(&gazes))
    }

    #[test]
    fn gaze_proxy_learns_blob_position() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = ProxyGazeNet::new(GazeFamily::ResNetLike, &mut rng);
        let (images, gazes) = toy_gaze_data(32, 16);
        let before = eval_gaze(&mut net, &images, &gazes);
        let cfg = TrainConfig {
            epochs: 20,
            batch: 8,
            lr: 3e-3,
            seed: 1,
        };
        let history = train_gaze(&mut net, &images, &gazes, &cfg);
        let after = eval_gaze(&mut net, &images, &gazes);
        assert!(
            after < before * 0.5,
            "training should cut error: before {before} after {after}"
        );
        assert!(history.last().unwrap() < history.first().unwrap());
    }

    #[test]
    fn family_capacity_ordering() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = ProxyGazeNet::new(GazeFamily::ResNetLike, &mut rng);
        let mut f = ProxyGazeNet::new(GazeFamily::FbnetLike, &mut rng);
        let mut m = ProxyGazeNet::new(GazeFamily::MobileNetLike, &mut rng);
        assert!(r.param_count() > f.param_count());
        assert!(f.param_count() > m.param_count());
    }

    #[test]
    fn seg_proxy_learns_a_simple_mask() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = ProxySegNet::new(8, &mut rng);
        // task: dark disc = class 3, ring = class 2, elsewhere 0
        let size = 16;
        let mut images = Vec::new();
        let mut labels: Vec<usize> = Vec::new();
        for i in 0..12 {
            let cy = 0.4 + 0.02 * (i % 5) as f32;
            let cx = 0.4 + 0.02 * (i % 7) as f32;
            let img = Tensor::from_fn(Shape::new(1, 1, size, size), |_, _, h, w| {
                let d = ((h as f32 / size as f32 - cy).powi(2)
                    + (w as f32 / size as f32 - cx).powi(2))
                .sqrt();
                if d < 0.15 {
                    0.1
                } else if d < 0.3 {
                    0.5
                } else {
                    0.9
                }
            });
            for h in 0..size {
                for w in 0..size {
                    let d = ((h as f32 / size as f32 - cy).powi(2)
                        + (w as f32 / size as f32 - cx).powi(2))
                    .sqrt();
                    labels.push(if d < 0.15 {
                        3
                    } else if d < 0.3 {
                        2
                    } else {
                        0
                    });
                }
            }
            images.push(img);
        }
        let images = Tensor::stack(&images);
        let cfg = TrainConfig {
            epochs: 30,
            batch: 4,
            lr: 3e-3,
            seed: 3,
        };
        let history = train_seg(&mut net, &images, &labels, &cfg);
        assert!(
            history.last().unwrap() < &0.4,
            "seg loss did not drop: {history:?}"
        );
        // prediction should beat chance by a wide margin
        let pred = predict_seg(&mut net, &images);
        let correct = pred
            .iter()
            .zip(&labels)
            .filter(|(&p, &t)| p as usize == t)
            .count();
        let acc = correct as f32 / labels.len() as f32;
        assert!(acc > 0.8, "pixel accuracy {acc}");
    }

    #[test]
    fn quantization_changes_but_does_not_destroy_params() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = ProxyGazeNet::new(GazeFamily::FbnetLike, &mut rng);
        let before: Vec<f32> = net
            .params_mut()
            .iter()
            .map(|p| p.value.as_slice()[0])
            .collect();
        quantize_params_int8(&mut net);
        let after: Vec<f32> = net
            .params_mut()
            .iter()
            .map(|p| p.value.as_slice()[0])
            .collect();
        // values move a little but stay close
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 0.1, "quantisation moved {b} to {a}");
        }
    }

    #[test]
    fn seg_backward_requires_training_pass() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = ProxySegNet::new(4, &mut rng);
        let x = Tensor::ones(Shape::new(1, 1, 8, 8));
        let y = net.forward(&x, false);
        assert_eq!(y.shape().dims(), (1, 4, 8, 8));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.backward(&Tensor::ones(y.shape()))
        }));
        assert!(result.is_err());
    }
}
