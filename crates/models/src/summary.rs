//! Model summaries and on-chip weight-memory analysis.

use crate::spec::ModelSpec;
use std::fmt::Write as _;

/// Per-model memory/compute summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSummary {
    /// Model name.
    pub name: String,
    /// Layer count.
    pub layers: usize,
    /// Compute-layer count (conv/pw/dw/fc/matmul).
    pub compute_layers: usize,
    /// Total parameters.
    pub params: u64,
    /// Total MACs (= paper-convention FLOPs).
    pub macs: u64,
    /// Weight bytes at int8.
    pub weight_bytes_int8: u64,
    /// Largest single layer's weight bytes at int8.
    pub max_layer_weight_bytes_int8: u64,
    /// Peak activation elements (input + output of the hungriest layer).
    pub peak_activation_elems: u64,
}

impl ModelSummary {
    /// Summarises a model.
    pub fn of(model: &ModelSpec) -> Self {
        model.validate();
        ModelSummary {
            name: model.name.clone(),
            layers: model.layers.len(),
            compute_layers: model.layers.iter().filter(|l| l.kind.is_compute()).count(),
            params: model.params(),
            macs: model.macs(),
            weight_bytes_int8: model.params(),
            max_layer_weight_bytes_int8: model.layers.iter().map(|l| l.params()).max().unwrap_or(0),
            peak_activation_elems: model.peak_activation_elems(),
        }
    }

    /// Whether the model's 8-bit weights fit a weight global buffer of
    /// `weight_gb_bytes`, and every single layer fits one `buffer_bytes`
    /// ping-pong buffer — the conditions for stall-free weight streaming.
    pub fn weights_fit(&self, weight_gb_bytes: usize, buffer_bytes: usize) -> (bool, bool) {
        (
            self.weight_bytes_int8 <= weight_gb_bytes as u64,
            self.max_layer_weight_bytes_int8 <= buffer_bytes as u64,
        )
    }
}

/// Renders a per-layer table of the model (name, kind, shapes, MACs,
/// params) as a string — used by the report harness and for debugging
/// workloads.
pub fn layer_table(model: &ModelSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<26} {:<22} {:>12} {:>12} {:>10}",
        "layer", "kind", "out shape", "MACs", "params"
    );
    for l in &model.layers {
        let (oh, ow) = l.out_hw();
        let _ = writeln!(
            out,
            "{:<26} {:<22} {:>12} {:>12} {:>10}",
            l.name,
            format!("{:?}", l.kind),
            format!("{}x{}x{}", l.c_out, oh, ow),
            l.macs(),
            l.params()
        );
    }
    let _ = writeln!(
        out,
        "total: {} MACs, {} params",
        model.macs(),
        model.params()
    );
    out
}

/// Distribution of MACs over the depth of the network, as cumulative
/// fractions at each quartile of the layer list — a quick shape check
/// (UNet-style models are front/back-loaded; mobile classifiers are
/// back-loaded).
pub fn macs_depth_profile(model: &ModelSpec) -> [f64; 4] {
    let compute: Vec<u64> = model
        .layers
        .iter()
        .filter(|l| l.kind.is_compute())
        .map(|l| l.macs())
        .collect();
    let total: u64 = compute.iter().sum();
    let mut out = [0.0f64; 4];
    if total == 0 || compute.is_empty() {
        return out;
    }
    let mut acc = 0u64;
    for (i, m) in compute.iter().enumerate() {
        acc += m;
        let quartile = (i * 4 / compute.len()).min(3);
        out[quartile] = acc as f64 / total as f64;
    }
    // fill trailing quartiles (cumulative)
    for q in 1..4 {
        if out[q] == 0.0 {
            out[q] = out[q - 1];
        }
    }
    out[3] = 1.0;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fbnet, ritnet};

    #[test]
    fn summaries_are_consistent_with_specs() {
        let spec = ritnet::spec(128);
        let s = ModelSummary::of(&spec);
        assert_eq!(s.params, spec.params());
        assert_eq!(s.macs, spec.macs());
        assert!(s.compute_layers < s.layers);
    }

    #[test]
    fn pipeline_weights_fit_the_paper_memories() {
        // RITNet fits entirely (GB and per-layer buffers); FBNet streams —
        // a handful of its late wide point-wise layers exceed one 64KB
        // ping-pong buffer and are re-fetched (the cost model's
        // `weight_passes` path), while the vast majority fit.
        let seg = ModelSummary::of(&ritnet::spec(128));
        let (seg_gb, seg_buf) = seg.weights_fit(512 * 1024, 64 * 1024);
        assert!(seg_gb && seg_buf, "RITNet weights must fit");

        let gaze_spec = fbnet::spec(96, 160);
        let oversized = gaze_spec
            .layers
            .iter()
            .filter(|l| l.params() > 64 * 1024)
            .count();
        let compute = gaze_spec
            .layers
            .iter()
            .filter(|l| l.kind.is_compute())
            .count();
        assert!(
            oversized * 3 < compute,
            "only a small minority of FBNet layers may exceed a ping-pong              buffer: {oversized}/{compute}"
        );
    }

    #[test]
    fn layer_table_lists_every_layer() {
        let spec = fbnet::spec(96, 160);
        let table = layer_table(&spec);
        assert_eq!(table.lines().count(), spec.layers.len() + 2);
        assert!(table.contains("total:"));
    }

    #[test]
    fn depth_profiles_distinguish_families() {
        // RITNet (encoder-decoder) burns a large share of MACs in the first
        // quartile; FBNet (mobile classifier) does not
        let rit = macs_depth_profile(&ritnet::spec(128));
        let fb = macs_depth_profile(&fbnet::spec(96, 160));
        assert!(rit[0] > 0.3, "RITNet front-load {:.2}", rit[0]);
        assert!(fb[0] < 0.3, "FBNet front-load {:.2}", fb[0]);
        for p in [rit, fb] {
            assert!(p.windows(2).all(|w| w[0] <= w[1] + 1e-12));
            assert!((p[3] - 1.0).abs() < 1e-12);
        }
    }
}
