//! FBNet-C100 — the hardware-aware-searched mobile network (Wu et al.,
//! CVPR 2019) used as EyeCoD's per-frame gaze-estimation model ("focus").
//!
//! The structure is the familiar mobile-inverted-bottleneck (MBConv) stack:
//! point-wise expansion → depth-wise K×K → point-wise projection, with 3×3
//! and 5×5 depth-wise kernels and stride-2 stages — exactly the layer mix
//! whose depth-wise members motivate the accelerator's intra-channel-reuse
//! optimisation (§5.1 Challenge #II). The stage table below is tuned to the
//! published FBNet-C100 budget used in Table 2: ~3.6 M parameters and
//! ~0.1 G FLOPs at the deployed 96×160 ROI input.

use crate::spec::{ModelSpec, SpecBuilder};

/// One MBConv stage: `(expansion, kernel, stride, c_out, repeats)`.
const STAGES: &[(usize, usize, usize, usize, usize)] = &[
    (1, 3, 1, 16, 1),
    (6, 3, 2, 24, 1),
    (3, 3, 1, 24, 2),
    (6, 5, 2, 32, 1),
    (3, 5, 1, 32, 2),
    (6, 3, 2, 64, 1),
    (3, 3, 1, 64, 3),
    (6, 5, 1, 112, 1),
    (3, 5, 1, 112, 2),
    (6, 3, 2, 184, 1),
    (3, 3, 1, 184, 3),
    (6, 3, 1, 352, 1),
    (3, 3, 1, 352, 1),
];

/// Stem width.
pub const STEM: usize = 16;

/// Final feature width before the head.
pub const HEAD: usize = 1504;

/// Gaze output dimensionality (a 3-D gaze vector).
pub const OUTPUT: usize = 3;

/// Appends one MBConv block to the builder.
fn mbconv(b: &mut SpecBuilder, expansion: usize, k: usize, stride: usize, c_out: usize) {
    let (c_in, _, _) = b.shape();
    let hidden = c_in * expansion;
    if expansion > 1 {
        b.pointwise(hidden);
    }
    b.depthwise(k, stride);
    b.pointwise(c_out);
}

/// Builds the FBNet-C100 gaze-estimation spec for a grayscale `h × w` input.
///
/// # Panics
///
/// Panics if either extent is smaller than 32 (five stride-2 stages).
pub fn spec(h: usize, w: usize) -> ModelSpec {
    assert!(
        h >= 32 && w >= 32,
        "FBNet input must be at least 32x32, got {h}x{w}"
    );
    let mut b = SpecBuilder::new("FBNet-C100", 1, h, w);
    b.conv(STEM, 3, 2);
    for &(e, k, s, c, n) in STAGES {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            mbconv(&mut b, e, k, stride, c);
        }
    }
    b.pointwise(HEAD);
    b.global_pool();
    b.fc(OUTPUT);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LayerKind;

    #[test]
    fn params_match_fbnet_c100_budget() {
        let p = spec(96, 160).params();
        // Table 2 reports 3.59M; structural reproduction within ~±20%.
        assert!(
            (2_800_000..4_400_000).contains(&p),
            "FBNet params {p} outside envelope"
        );
    }

    #[test]
    fn flops_at_deployed_roi_are_about_100m() {
        let f = spec(96, 160).flops();
        // Table 2: 0.12G under the MAC=FLOP convention.
        assert!(
            (60_000_000..180_000_000).contains(&f),
            "FBNet@96x160 flops {f}"
        );
    }

    #[test]
    fn eight_bit_flops_match_table2_row() {
        let s = spec(96, 160);
        let f8 = s.effective_flops(8);
        // Table 2's 8-bit row: 0.01G.
        assert!(f8 < 20_000_000, "8-bit effective flops {f8}");
        assert_eq!(f8, s.flops() / 16);
    }

    #[test]
    fn depthwise_layers_use_both_k3_and_k5() {
        let s = spec(96, 160);
        let mut k3 = 0;
        let mut k5 = 0;
        for l in &s.layers {
            if let LayerKind::Depthwise { k, .. } = l.kind {
                match k {
                    3 => k3 += 1,
                    5 => k5 += 1,
                    _ => panic!("unexpected depthwise kernel {k}"),
                }
            }
        }
        assert!(k3 >= 8, "k3 depthwise count {k3}");
        assert!(k5 >= 4, "k5 depthwise count {k5}");
    }

    #[test]
    fn pointwise_dominates_compute() {
        // §5.1: point-wise convolutions are the dominant class in the gaze model.
        let b = spec(96, 160).op_breakdown();
        let (conv, pw, dw, _, _) = b.fractions();
        assert!(pw > 0.6, "pointwise fraction {pw}");
        assert!(dw < 0.25, "depthwise fraction {dw}");
        assert!(conv < 0.1, "generic conv fraction {conv}");
    }

    #[test]
    fn output_is_a_gaze_vector() {
        let s = spec(96, 160);
        let last = s.layers.last().unwrap();
        assert_eq!(last.c_out, OUTPUT);
        assert_eq!(last.out_hw(), (1, 1));
    }

    #[test]
    fn flops_shrink_with_roi_size() {
        // Table 5's ROI-size column: 48x80 < 96x160 < 144x240.
        let small = spec(48, 80).flops();
        let med = spec(96, 160).flops();
        let large = spec(144, 240).flops();
        assert!(small < med && med < large);
    }
}
