//! Property-based tests of the accelerator simulator's public contracts.

use eyecod_accel::config::AcceleratorConfig;
use eyecod_accel::cost::layer_cost;
use eyecod_accel::isa::compile;
use eyecod_accel::schedule::{Orchestration, WindowSimulator};
use eyecod_accel::workload::EyeCodWorkload;
use eyecod_models::spec::SpecBuilder;
use eyecod_models::{LayerKind, LayerSpec};
use proptest::prelude::*;

fn layer_strategy() -> impl Strategy<Value = LayerSpec> {
    (
        1usize..32,
        1usize..32,
        4usize..40,
        prop_oneof![
            (Just(3usize), Just(1usize)).prop_map(|(k, s)| LayerKind::Conv { k, stride: s }),
            Just(LayerKind::Pointwise { stride: 1 }),
            (prop_oneof![Just(3usize), Just(5usize)], 1usize..3)
                .prop_map(|(k, s)| LayerKind::Depthwise { k, stride: s }),
        ],
    )
        .prop_map(|(c_in, c_out, hw, kind)| {
            let (c_in, c_out) = match kind {
                LayerKind::Depthwise { .. } => (c_in, c_in),
                _ => (c_in, c_out),
            };
            LayerSpec {
                name: "prop".into(),
                kind,
                c_in,
                c_out,
                h_in: hw,
                w_in: hw,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Utilisation is always in (0, 1]; cycles, traffic and energy counts
    /// are positive for compute layers.
    #[test]
    fn cost_is_well_formed(layer in layer_strategy(), lanes in prop_oneof![Just(32usize), Just(128usize)]) {
        let cfg = AcceleratorConfig::paper_default();
        let cost = layer_cost(&layer, lanes, &cfg);
        prop_assert!(cost.cycles > 0);
        prop_assert!(cost.utilization > 0.0 && cost.utilization <= 1.0 + 1e-9,
            "utilization {}", cost.utilization);
        prop_assert!(cost.act_read_words > 0 && cost.act_write_words > 0);
        prop_assert_eq!(cost.macs, layer.macs());
        let counts = cost.energy_counts();
        prop_assert!(counts.macs == cost.macs && counts.cycles == cost.cycles);
    }

    /// Doubling activation bandwidth never increases cycles.
    #[test]
    fn more_bandwidth_never_hurts(layer in layer_strategy()) {
        let slow = AcceleratorConfig {
            act_words_per_cycle: 16,
            ..AcceleratorConfig::paper_default()
        };
        let fast = AcceleratorConfig {
            act_words_per_cycle: 128,
            ..AcceleratorConfig::paper_default()
        };
        let c_slow = layer_cost(&layer, 128, &slow);
        let c_fast = layer_cost(&layer, 128, &fast);
        prop_assert!(c_fast.cycles <= c_slow.cycles);
    }

    /// The SWPR buffer never increases cycles, for any layer.
    #[test]
    fn swpr_never_hurts(layer in layer_strategy()) {
        let with = AcceleratorConfig::paper_default();
        let without = AcceleratorConfig {
            swpr_buffer: false,
            ..AcceleratorConfig::paper_default()
        };
        prop_assert!(layer_cost(&layer, 128, &with).cycles
            <= layer_cost(&layer, 128, &without).cycles);
    }

    /// Compiled programs are structurally sound for arbitrary small models:
    /// weight loads alternate buffers, compute steps reference real layers,
    /// and the stream ends with a sync.
    #[test]
    fn compiled_programs_are_sound(
        widths in proptest::collection::vec(1usize..24, 1..5),
        hw in 8usize..33,
    ) {
        let mut b = SpecBuilder::new("prop-model", 1, hw, hw);
        for &w in &widths {
            b.conv(w, 3, 1);
        }
        let model = b.build();
        let cfg = AcceleratorConfig::paper_default();
        let p = compile(&model, &cfg);
        prop_assert!(p.compute_steps() >= widths.len());
        let loads: Vec<u8> = p.instructions.iter().filter_map(|i| match i {
            eyecod_accel::isa::Instruction::LoadWeights { buffer, .. } => Some(*buffer),
            _ => None,
        }).collect();
        for w in loads.windows(2) {
            prop_assert_ne!(w[0], w[1]);
        }
    }

    /// Window FPS is invariant to the window length (steady-state metric).
    #[test]
    fn fps_is_window_invariant(mult in 1usize..5) {
        let sim = WindowSimulator::new(AcceleratorConfig::paper_default());
        let mut w = EyeCodWorkload::paper_default().into_workload();
        let base = sim.run_window(&w).fps;
        w.window *= mult;
        let scaled = sim.run_window(&w).fps;
        prop_assert!((scaled / base - 1.0).abs() < 0.05, "{base} vs {scaled}");
    }

    /// Partial time-multiplexing never loses to plain time-multiplexing.
    #[test]
    fn partial_dominates_timemux(swpr in any::<bool>(), reuse in any::<bool>()) {
        let w = EyeCodWorkload::paper_default().into_workload();
        let mk = |orch| AcceleratorConfig {
            orchestration: orch,
            swpr_buffer: swpr,
            intra_channel_reuse: reuse,
            ..AcceleratorConfig::paper_default()
        };
        let tm = WindowSimulator::new(mk(Orchestration::TimeMultiplexed)).run_window(&w);
        let pm = WindowSimulator::new(mk(Orchestration::PartialTimeMultiplexed)).run_window(&w);
        prop_assert!(pm.fps >= tm.fps * 0.999, "pm {} vs tm {}", pm.fps, tm.fps);
    }
}
