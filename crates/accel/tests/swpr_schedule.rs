//! Hardware-model regression tests: SWPR buffer safety/bandwidth properties
//! (paper §5.2, Fig. 12) and golden cycle counts for the window scheduler on
//! a fixed small accelerator configuration.

use eyecod_accel::config::AcceleratorConfig;
use eyecod_accel::schedule::{Orchestration, WindowSimulator};
use eyecod_accel::swpr::{peak_bandwidth_rows_per_cycle, pipeline_cycles, SwprBuffer};
use eyecod_accel::workload::EyeCodWorkload;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Safety: the lanes never read a bank that is mid-write. Driving the
    /// buffer with an arbitrary interleaving of writes, swaps and parallel
    /// reads, a read always observes a complete group of `m` rows, and the
    /// controller state always matches an independent shadow model (swap is
    /// legal exactly when the fill group holds `m` rows).
    #[test]
    fn read_group_is_always_complete(
        m in 1usize..24,
        ops in collection::vec(0u8..3, 0..200),
    ) {
        let mut buf = SwprBuffer::new(m);
        let mut written = 0usize; // shadow: rows in the filling group
        for op in ops {
            match op {
                // write a row unless the fill group is full (a real
                // controller stalls; writing anyway is the checked panic)
                0 => {
                    if written < m {
                        buf.write_row();
                        written += 1;
                    }
                    prop_assert_eq!(buf.can_swap(), written == m);
                }
                // swap when legal
                1 => {
                    if written == m {
                        buf.swap();
                        written = 0;
                    }
                    prop_assert_eq!(buf.can_swap(), written == m);
                }
                // the MAC lanes read the current group — at any time, even
                // while the other group is mid-fill, and always see all m
                // rows (never a partially written bank)
                _ => prop_assert_eq!(buf.read_parallel(), m),
            }
        }
    }

    /// Bandwidth: with the SWPR buffer the lanes see both interleaved
    /// groups per swap interval — effective read bandwidth is exactly twice
    /// the single-port figure for any port width.
    #[test]
    fn effective_read_bandwidth_doubles(words in 1usize..512) {
        let mut cfg = AcceleratorConfig::paper_default();
        cfg.act_words_per_cycle = words;
        cfg.swpr_buffer = true;
        let with = cfg.effective_act_words_per_cycle();
        cfg.swpr_buffer = false;
        let without = cfg.effective_act_words_per_cycle();
        prop_assert_eq!(with, 2 * without);
    }

    /// Overlap: for balanced compute/load rounds the SWPR pipeline
    /// approaches the ideal 2x cycle reduction (within the one-round fill),
    /// and never exceeds it.
    #[test]
    fn balanced_pipeline_approaches_2x(
        cycles in 1u64..10_000,
        rounds in 19u64..400,
    ) {
        let with = pipeline_cycles(rounds, cycles, cycles, true);
        let without = pipeline_cycles(rounds, cycles, cycles, false);
        let ratio = without as f64 / with as f64;
        prop_assert!(ratio <= 2.0, "ratio {ratio} exceeds ideal");
        // exact: 2r/(r+1), >= 1.9 once r >= 19
        prop_assert!(ratio >= 1.9, "ratio {ratio} too small for {rounds} rounds");
    }

    /// Peak-bandwidth relief: spreading an m-row fetch over a k-cycle
    /// compute round cuts the required burst bandwidth by k/1.15; for any
    /// kernel of 3 or more cycles the single-port requirement is at least
    /// double the SWPR requirement.
    #[test]
    fn burst_bandwidth_at_least_halves(m in 1usize..64, k in 3usize..16) {
        let without = peak_bandwidth_rows_per_cycle(m, k, false);
        let with = peak_bandwidth_rows_per_cycle(m, k, true);
        prop_assert!(without >= 2.0 * with, "m={} k={}: {} vs {}", m, k, without, with);
    }
}

/// A fixed small accelerator (32 MACs, 100 MHz) whose scheduler output is
/// pinned below. Any change to the cost or schedule models shows up as an
/// exact cycle diff here.
fn small_config(orchestration: Orchestration) -> AcceleratorConfig {
    AcceleratorConfig {
        mac_lanes: 8,
        macs_per_lane: 4,
        clock_mhz: 100.0,
        act_gb_bytes: 64 * 1024,
        act_gb_count: 2,
        act_gb_banks: 2,
        act_words_per_cycle: 16,
        weight_gb_bytes: 64 * 1024,
        weight_buffer_bytes: 8 * 1024,
        index_sram_bytes: 4 * 1024,
        instr_sram_bytes: 1024,
        bytes_per_word: 1,
        swpr_buffer: true,
        intra_channel_reuse: true,
        feature_partition: true,
        partition_count: 2,
        orchestration,
    }
}

#[test]
fn golden_cycle_counts_for_small_config() {
    let w = EyeCodWorkload::paper_default().into_workload();
    for (orch, want_cycles, want_worst) in [
        (
            Orchestration::TimeMultiplexed,
            258_069_788u64,
            40_876_798u64,
        ),
        (Orchestration::Concurrent, 290_564_224, 5_811_285),
        (
            Orchestration::PartialTimeMultiplexed,
            239_157_604,
            4_783_153,
        ),
    ] {
        let report = WindowSimulator::new(small_config(orch)).run_window(&w);
        assert_eq!(
            (report.cycles, report.worst_frame_cycles),
            (want_cycles, want_worst),
            "{orch:?} cycles/worst changed: got ({}, {})",
            report.cycles,
            report.worst_frame_cycles
        );
    }
}
