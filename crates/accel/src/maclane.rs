//! Event-level MAC-lane simulation used to validate the closed-form cycle
//! model of [`crate::cost`] — the analogue of the paper's "simulator …
//! verified against the RTL implementation".
//!
//! A MAC lane (Fig. 9, right) holds one input-activation row in a FIFO and
//! has eight MACs. Weights stream one tap per cycle; each cycle the active
//! tap multiplies eight adjacent positions of the buffered row and the
//! partial sums accumulate into eight output pixels. Computing one output
//! row of width `ow` for a window of `k×k` taps over `c_in` input channels
//! therefore takes `ceil(ow/8) · k · k · c_in` cycles — the formula
//! [`crate::cost::layer_cost`] builds on.

/// Cycle-by-cycle simulation of one MAC lane computing one output row.
///
/// Returns `(cycles, output_row)`. `input_rows` must contain `c_in · k`
/// rows (all taps' source rows, border rows zero-padded by the caller) of
/// width `iw`, indexed `[ic * k + kh]`, and `weights` the matching
/// `c_in · k · k` taps indexed `[(ic * k + kh) * k + kw]`.
///
/// # Panics
///
/// Panics if the slice sizes are inconsistent.
pub fn simulate_output_row(
    input_rows: &[Vec<f32>],
    weights: &[f32],
    k: usize,
    c_in: usize,
    ow: usize,
    stride: usize,
    macs_per_lane: usize,
) -> (u64, Vec<f32>) {
    assert!(k > 0 && c_in > 0 && ow > 0 && stride > 0 && macs_per_lane > 0);
    assert_eq!(input_rows.len(), c_in * k, "need c_in*k input rows");
    assert_eq!(weights.len(), c_in * k * k, "need c_in*k*k weights");
    let mut out = vec![0.0f32; ow];
    let mut cycles = 0u64;
    // Process output pixels in groups of `macs_per_lane`.
    for group_start in (0..ow).step_by(macs_per_lane) {
        let group = group_start..(group_start + macs_per_lane).min(ow);
        for ic in 0..c_in {
            for kh in 0..k {
                let row = &input_rows[ic * k + kh];
                for kw in 0..k {
                    let wv = weights[(ic * k + kh) * k + kw];
                    // one cycle: this tap feeds all MACs of the group
                    for ox in group.clone() {
                        let ix = ox * stride + kw;
                        if ix < row.len() {
                            out[ox] += wv * row[ix];
                        }
                    }
                    cycles += 1;
                }
            }
        }
    }
    (cycles, out)
}

/// The closed-form cycle count the cost model uses for one output row.
pub fn analytical_row_cycles(ow: usize, k: usize, c_in: usize, macs_per_lane: usize) -> u64 {
    (ow.div_ceil(macs_per_lane) * k * k * c_in) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyecod_tensor::ops::conv2d;
    use eyecod_tensor::{Shape, Tensor};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn event_sim_matches_analytical_cycles() {
        for &(ow, k, c_in) in &[(8usize, 3usize, 1usize), (40, 3, 4), (7, 5, 2), (13, 1, 16)] {
            let rows = vec![vec![0.0f32; ow + k]; c_in * k];
            let weights = vec![0.0f32; c_in * k * k];
            let (cycles, _) = simulate_output_row(&rows, &weights, k, c_in, ow, 1, 8);
            assert_eq!(
                cycles,
                analytical_row_cycles(ow, k, c_in, 8),
                "ow={ow} k={k} c_in={c_in}"
            );
        }
    }

    #[test]
    fn event_sim_computes_correct_convolution() {
        // Compare one output row against the reference conv2d operator.
        let mut rng = StdRng::seed_from_u64(1);
        let (c_in, k, iw) = (3usize, 3usize, 12usize);
        let x = Tensor::from_fn(Shape::new(1, c_in, 5, iw), |_, _, _, _| {
            rng.gen_range(-1.0..1.0)
        });
        let w = Tensor::from_fn(Shape::new(1, c_in, k, k), |_, _, _, _| {
            rng.gen_range(-1.0..1.0)
        });
        // valid convolution (no padding): output row oy=1 corresponds to
        // input rows 1..4
        let reference = conv2d(&x, &w, None, 1, 0, 1);
        let oy = 1;
        let ow = iw - k + 1;
        let mut input_rows = Vec::new();
        for ic in 0..c_in {
            for kh in 0..k {
                input_rows
                    .push(x.channel_plane(0, ic)[(oy + kh) * iw..(oy + kh + 1) * iw].to_vec());
            }
        }
        let weights: Vec<f32> = (0..c_in)
            .flat_map(|ic| (0..k).flat_map(move |kh| (0..k).map(move |kw| (ic, kh, kw))))
            .map(|(ic, kh, kw)| w.at(0, ic, kh, kw))
            .collect();
        let (_, row) = simulate_output_row(&input_rows, &weights, k, c_in, ow, 1, 8);
        for (ox, &got) in row.iter().enumerate().take(ow) {
            let expect = reference.at(0, 0, oy, ox);
            assert!((got - expect).abs() < 1e-4, "ox={ox}: {got} vs {expect}");
        }
    }

    #[test]
    fn strided_row_skips_positions() {
        let rows = vec![vec![1.0f32; 16]; 1];
        let weights = vec![1.0f32];
        let (cycles, out) = simulate_output_row(&rows, &weights, 1, 1, 8, 2, 8);
        assert_eq!(out, vec![1.0; 8]);
        assert_eq!(cycles, 1);
    }

    #[test]
    fn more_macs_per_lane_cut_cycles() {
        let rows = vec![vec![0.0f32; 64]; 3];
        let weights = vec![0.0f32; 9];
        let (c8, _) = simulate_output_row(&rows, &weights, 3, 1, 64, 1, 8);
        let (c16, _) = simulate_output_row(&rows, &weights, 3, 1, 64, 1, 16);
        assert_eq!(c8, 2 * c16);
    }
}
