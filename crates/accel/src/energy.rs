//! Analytical energy model.
//!
//! Per-event energies are representative 28 nm HPC CMOS values (the paper's
//! silicon node), in picojoules per 8-bit operation/word. Absolute joules
//! are therefore approximate, but the *relative* energy efficiencies the
//! paper reports (Fig. 14, Table 6) depend on operation/traffic counts and
//! utilisation, which the simulator measures directly.

use serde::{Deserialize, Serialize};

/// Per-event energy constants and static power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per 8-bit MAC, pJ.
    pub mac_pj: f64,
    /// Energy per word read/written at the activation/weight global buffers, pJ.
    pub gb_word_pj: f64,
    /// Energy per word moved through the small local buffers
    /// (input/output act buffers, weight ping-pong buffers), pJ.
    pub local_word_pj: f64,
    /// Energy per byte moved over the camera/off-chip interface, pJ.
    pub offchip_byte_pj: f64,
    /// Static (leakage + clock) power in mW while running.
    pub static_mw: f64,
}

impl EnergyModel {
    /// Default 28 nm-class constants.
    pub fn cmos28() -> Self {
        EnergyModel {
            mac_pj: 0.30,
            gb_word_pj: 2.0,
            local_word_pj: 0.25,
            offchip_byte_pj: 80.0,
            static_mw: 25.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::cmos28()
    }
}

/// Event counts accumulated while simulating a workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyCounts {
    /// MAC operations executed.
    pub macs: u64,
    /// Words read from / written to the global buffers.
    pub gb_words: u64,
    /// Words moved through local buffers.
    pub local_words: u64,
    /// Bytes moved over the off-chip / camera interface.
    pub offchip_bytes: u64,
    /// Total cycles (for static energy).
    pub cycles: u64,
}

impl EnergyCounts {
    /// Element-wise accumulation.
    pub fn accumulate(&mut self, other: &EnergyCounts) {
        self.macs += other.macs;
        self.gb_words += other.gb_words;
        self.local_words += other.local_words;
        self.offchip_bytes += other.offchip_bytes;
        self.cycles += other.cycles;
    }

    /// Scales all counts (e.g. per-frame counts over a 50-frame window).
    pub fn scaled(&self, times: u64) -> EnergyCounts {
        EnergyCounts {
            macs: self.macs * times,
            gb_words: self.gb_words * times,
            local_words: self.local_words * times,
            offchip_bytes: self.offchip_bytes * times,
            cycles: self.cycles * times,
        }
    }

    /// Total energy in joules at the given clock.
    pub fn energy_joules(&self, model: &EnergyModel, clock_mhz: f64) -> f64 {
        let dynamic = self.macs as f64 * model.mac_pj
            + self.gb_words as f64 * model.gb_word_pj
            + self.local_words as f64 * model.local_word_pj
            + self.offchip_bytes as f64 * model.offchip_byte_pj;
        let seconds = self.cycles as f64 / (clock_mhz * 1e6);
        dynamic * 1e-12 + model.static_mw * 1e-3 * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_nonnegative_and_additive() {
        let m = EnergyModel::cmos28();
        let a = EnergyCounts {
            macs: 1_000_000,
            gb_words: 10_000,
            local_words: 100_000,
            offchip_bytes: 5_000,
            cycles: 100_000,
        };
        let b = a.scaled(3);
        let ea = a.energy_joules(&m, 370.0);
        let eb = b.energy_joules(&m, 370.0);
        assert!(ea > 0.0);
        assert!((eb - 3.0 * ea).abs() / eb < 1e-12);
    }

    #[test]
    fn offchip_traffic_dominates_same_volume() {
        // moving a byte off-chip costs far more than through the GB —
        // the premise of the paper's communication-cost argument.
        let m = EnergyModel::cmos28();
        assert!(m.offchip_byte_pj > 10.0 * m.gb_word_pj);
        assert!(m.gb_word_pj > m.local_word_pj);
    }

    #[test]
    fn static_energy_scales_with_cycles() {
        let m = EnergyModel::cmos28();
        let idle = EnergyCounts {
            cycles: 370_000_000,
            ..Default::default()
        };
        // one second of leakage at 25 mW = 25 mJ
        let e = idle.energy_joules(&m, 370.0);
        assert!((e - 0.025).abs() < 1e-9);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = EnergyCounts::default();
        a.accumulate(&EnergyCounts {
            macs: 5,
            gb_words: 4,
            local_words: 3,
            offchip_bytes: 2,
            cycles: 1,
        });
        a.accumulate(&EnergyCounts {
            macs: 5,
            gb_words: 4,
            local_words: 3,
            offchip_bytes: 2,
            cycles: 1,
        });
        assert_eq!(a.macs, 10);
        assert_eq!(a.cycles, 2);
    }
}
