//! End-to-end eye-tracking workloads fed to the simulator.
//!
//! A [`PipelineWorkload`] is what the accelerator executes over an
//! evaluation window: per-frame stages (FlatCam reconstruction as
//! matrix–matrix multiplications, then gaze estimation) plus the periodic
//! segmentation stage (once every `seg_period` frames — 50 in the paper).

use eyecod_models::quantized::QuantizedGazeNet;
use eyecod_models::spec::SpecBuilder;
use eyecod_models::{fbnet, ritnet, ModelSpec, OpBreakdown};

/// The FlatCam Tikhonov reconstruction expressed as the accelerator sees
/// it: four dense matrix–matrix multiplications
/// (`Û = U₁ᵀ·Y·U₂`, `X = V₁·Z·V₂ᵀ`; the element-wise filter between them is
/// negligible). The paper treats matmul layers as point-wise convolutions
/// with batch > 1; they account for its reported 14.5 % matmul share.
pub fn reconstruction_spec(scene: usize, sensor: usize) -> ModelSpec {
    assert!(sensor >= scene, "sensor {sensor} must cover scene {scene}");
    let mut b = SpecBuilder::new("FlatCamRecon", sensor, 1, 1);
    b.matmul(scene, sensor); // U1ᵀ (scene×sensor) · Y (sensor×sensor)
    b.matmul(scene, scene); // (scene×sensor) · U2 (sensor×scene)
    b.matmul(scene, scene); // V1 (scene×scene) · Z (scene×scene)
    b.matmul(scene, scene); // (scene×scene) · V2ᵀ (scene×scene)
    b.build()
}

/// A complete accelerator workload over one evaluation window.
#[derive(Debug, Clone)]
pub struct PipelineWorkload {
    /// Workload name (for reports).
    pub name: String,
    /// Stages executed every frame, in order.
    pub per_frame: Vec<ModelSpec>,
    /// The periodic segmentation stage and its period in frames.
    pub periodic: Option<(ModelSpec, usize)>,
    /// Camera→processor traffic per frame in bytes (drives off-chip energy).
    pub offchip_bytes_per_frame: u64,
    /// Frames per evaluation window.
    pub window: usize,
    /// Arithmetic precision the accelerator executes this workload at
    /// (32 = f32 reference, 8 = the deployed int8 chain). Scales
    /// [`PipelineWorkload::effective_window_flops`] under the paper's
    /// bit-serial convention; the MAC *count* is precision-independent.
    pub precision_bits: u32,
}

impl PipelineWorkload {
    /// Total MACs executed over one window.
    pub fn window_macs(&self) -> u64 {
        let per_frame: u64 = self.per_frame.iter().map(ModelSpec::macs).sum();
        let periodic = self
            .periodic
            .as_ref()
            .map(|(m, period)| m.macs() * (self.window / period).max(1) as u64)
            .unwrap_or(0);
        per_frame * self.window as u64 + periodic
    }

    /// Effective FLOPs over one window at this workload's precision,
    /// following the paper's quadratic bit-serial scaling
    /// ([`ModelSpec::effective_flops`]): an 8-bit window costs 1/16 of the
    /// f32 one on the same layer geometry.
    pub fn effective_window_flops(&self) -> u64 {
        let per_frame: u64 = self
            .per_frame
            .iter()
            .map(|m| m.effective_flops(self.precision_bits))
            .sum();
        let periodic = self
            .periodic
            .as_ref()
            .map(|(m, period)| {
                m.effective_flops(self.precision_bits) * (self.window / period).max(1) as u64
            })
            .unwrap_or(0);
        per_frame * self.window as u64 + periodic
    }

    /// Operation breakdown by layer class over one window — reproduces the
    /// §5.1 dominant-layer-type analysis.
    pub fn window_op_breakdown(&self) -> OpBreakdown {
        let mut b = OpBreakdown::default();
        for m in &self.per_frame {
            b.accumulate(&m.op_breakdown(), self.window as u64);
        }
        if let Some((m, period)) = &self.periodic {
            b.accumulate(&m.op_breakdown(), (self.window / period).max(1) as u64);
        }
        b
    }

    /// Validates all member models.
    ///
    /// # Panics
    ///
    /// Panics if any model is inconsistent, the window is zero, or the
    /// periodic period exceeds the window.
    pub fn validate(&self) {
        assert!(self.window > 0, "window must be non-zero");
        for m in &self.per_frame {
            m.validate();
        }
        if let Some((m, period)) = &self.periodic {
            m.validate();
            assert!(
                *period > 0 && *period <= self.window,
                "invalid periodic period"
            );
        }
        assert!(
            matches!(self.precision_bits, 8 | 16 | 32),
            "unsupported precision: {} bits",
            self.precision_bits
        );
    }

    /// Replaces the gaze stage (the last per-frame model) with the layer
    /// geometry of a deployed, calibrated int8 network at `(h, w)` input
    /// and drops the workload precision to 8 bits — the workload the
    /// accelerator actually executes after the tracker's warm-up
    /// calibration completes.
    pub fn with_int8_gaze(mut self, qnet: &QuantizedGazeNet, h: usize, w: usize) -> Self {
        let gaze = self
            .per_frame
            .last_mut()
            .expect("workload has no gaze stage");
        *gaze = qnet.model_spec(h, w);
        self.precision_bits = 8;
        self.name.push_str(" [int8 gaze]");
        self.validate();
        self
    }
}

/// Named preset workloads matching the paper's system configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EyeCodWorkload {
    /// Reconstruction scene extent (the working resolution of the recon
    /// stage; the paper's op-share analysis implies ~160).
    pub recon_scene: usize,
    /// Reconstruction sensor extent.
    pub recon_sensor: usize,
    /// Gaze ROI extent `(h, w)` — 96×160 in the adopted setting.
    pub roi: (usize, usize),
    /// Segmentation input extent (128 in the adopted setting).
    pub seg_size: usize,
    /// Segmentation period in frames (N = 50).
    pub seg_period: usize,
    /// Whether the predict-then-focus pipeline is active; when false the
    /// gaze model runs on the full frame instead of the ROI.
    pub predict_then_focus: bool,
    /// Full-frame extent used when `predict_then_focus` is off.
    pub full_frame: usize,
    /// Whether the camera is a FlatCam (adds the reconstruction stage and
    /// shrinks camera traffic) or a lens camera.
    pub flatcam: bool,
}

impl EyeCodWorkload {
    /// The adopted EyeCoD configuration: FlatCam + predict-then-focus, ROI
    /// 96×160 refreshed every 50 frames, segmentation at 128×128.
    pub fn paper_default() -> Self {
        EyeCodWorkload {
            recon_scene: 160,
            recon_sensor: 192,
            roi: (96, 160),
            seg_size: 128,
            seg_period: 50,
            predict_then_focus: true,
            full_frame: 256,
            flatcam: true,
        }
    }

    /// The lens-based ablation baseline of Table 6: no reconstruction, gaze
    /// on the full 256×256 frame, segmentation still periodic.
    pub fn lens_based() -> Self {
        EyeCodWorkload {
            predict_then_focus: false,
            flatcam: false,
            ..Self::paper_default()
        }
    }

    /// FlatCam system with predict-then-focus toggled.
    pub fn with_predict_then_focus(mut self, on: bool) -> Self {
        self.predict_then_focus = on;
        self
    }

    /// Materialises the concrete layer workload.
    pub fn into_workload(self) -> PipelineWorkload {
        let mut per_frame = Vec::new();
        if self.flatcam {
            per_frame.push(reconstruction_spec(self.recon_scene, self.recon_sensor));
        }
        let gaze = if self.predict_then_focus {
            fbnet::spec(self.roi.0, self.roi.1)
        } else {
            fbnet::spec(self.full_frame, self.full_frame)
        };
        per_frame.push(gaze);
        let seg = ritnet::spec(self.seg_size);
        let offchip = if self.flatcam {
            // FlatCam sensor measurement (8-bit), transmitted over the short
            // attached link
            (self.recon_sensor * self.recon_sensor) as u64
        } else {
            // full-resolution lens image over the long camera-processor link
            (self.full_frame * self.full_frame) as u64
        };
        let w = PipelineWorkload {
            name: if self.flatcam {
                if self.predict_then_focus {
                    "EyeCoD (FlatCam + predict-then-focus)".into()
                } else {
                    "FlatCam w/o predict-then-focus".into()
                }
            } else {
                "Lens-based system".into()
            },
            per_frame,
            periodic: Some((seg, self.seg_period)),
            offchip_bytes_per_frame: offchip,
            window: self.seg_period,
            precision_bits: 32,
        };
        w.validate();
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruction_macs_match_closed_form() {
        let r = reconstruction_spec(160, 192);
        let expected = (160 * 192 * 192) + (160 * 192 * 160) + 2 * (160 * 160 * 160);
        assert_eq!(r.macs(), expected as u64);
    }

    #[test]
    fn paper_default_op_breakdown_matches_section_5_1() {
        // §5.1: generic 8.8%, point-wise 68.8%, depth-wise 7.9%,
        // FC 0.001%, matmul 14.5% over a 50-frame window.
        let w = EyeCodWorkload::paper_default().into_workload();
        let (conv, pw, dw, fc, mm) = w.window_op_breakdown().fractions();
        assert!((0.05..0.25).contains(&conv), "generic conv share {conv}");
        assert!((0.50..0.80).contains(&pw), "pointwise share {pw}");
        assert!((0.01..0.15).contains(&dw), "depthwise share {dw}");
        assert!(fc < 0.001, "fc share {fc}");
        assert!((0.05..0.25).contains(&mm), "matmul share {mm}");
    }

    #[test]
    fn predict_then_focus_cuts_per_frame_macs() {
        let with = EyeCodWorkload::paper_default().into_workload();
        let without = EyeCodWorkload::paper_default()
            .with_predict_then_focus(false)
            .into_workload();
        // §6.4: the pipeline reduces the gaze input resolution by 76.5%
        // (256x256 -> 96x160), roughly halving end-to-end work.
        assert!(without.window_macs() as f64 > 1.6 * with.window_macs() as f64);
    }

    #[test]
    fn lens_system_has_no_reconstruction_but_more_traffic() {
        let lens = EyeCodWorkload::lens_based().into_workload();
        let eye = EyeCodWorkload::paper_default().into_workload();
        assert_eq!(lens.per_frame.len(), 1);
        assert_eq!(eye.per_frame.len(), 2);
        assert!(lens.offchip_bytes_per_frame > eye.offchip_bytes_per_frame);
    }

    #[test]
    fn window_macs_count_periodic_once_per_period() {
        let w = EyeCodWorkload::paper_default().into_workload();
        let per_frame: u64 = w.per_frame.iter().map(ModelSpec::macs).sum();
        let seg = w.periodic.as_ref().unwrap().0.macs();
        assert_eq!(w.window_macs(), per_frame * 50 + seg);
    }

    #[test]
    #[should_panic(expected = "sensor")]
    fn reconstruction_requires_covering_sensor() {
        reconstruction_spec(256, 128);
    }

    fn deployed_qnet() -> QuantizedGazeNet {
        use eyecod_models::proxy::{GazeFamily, ProxyGazeNet};
        use eyecod_tensor::{Shape, Tensor};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let net = ProxyGazeNet::new(GazeFamily::FbnetLike, &mut rng);
        let calib = Tensor::from_fn(Shape::new(2, 1, 24, 32), |n, _, h, w| {
            ((n + h * w) % 7) as f32 * 0.1
        });
        QuantizedGazeNet::from_calibrated(&net, &calib)
    }

    #[test]
    fn int8_gaze_swaps_the_gaze_stage_and_drops_precision() {
        let qnet = deployed_qnet();
        let f32_wl = EyeCodWorkload::paper_default().into_workload();
        let int8_wl = EyeCodWorkload::paper_default()
            .into_workload()
            .with_int8_gaze(&qnet, 96, 160);
        assert_eq!(int8_wl.precision_bits, 8);
        assert!(int8_wl.name.contains("int8"));
        // same stage structure: recon + gaze per frame, periodic seg intact
        assert_eq!(int8_wl.per_frame.len(), f32_wl.per_frame.len());
        assert!(int8_wl.periodic.is_some());
        // the deployed gaze spec is the quantised chain, not FBNet-C100
        assert_ne!(
            int8_wl.per_frame.last().unwrap().macs(),
            f32_wl.per_frame.last().unwrap().macs()
        );
        // bit-serial scaling: 8-bit effective compute is 1/16 per MAC, and
        // the deployed gaze net is no larger than the full-size one
        assert!(int8_wl.effective_window_flops() * 16 <= f32_wl.effective_window_flops());
    }

    #[test]
    fn f32_workload_effective_flops_equal_nominal() {
        let w = EyeCodWorkload::paper_default().into_workload();
        assert_eq!(w.precision_bits, 32);
        // at 32 bits the bit-serial scale factor is 1
        let nominal: u64 = w
            .per_frame
            .iter()
            .map(|m| m.effective_flops(32))
            .sum::<u64>()
            * w.window as u64
            + w.periodic.as_ref().unwrap().0.effective_flops(32);
        assert_eq!(w.effective_window_flops(), nominal);
    }

    #[test]
    #[should_panic(expected = "unsupported precision")]
    fn validate_rejects_odd_precision() {
        let mut w = EyeCodWorkload::paper_default().into_workload();
        w.precision_bits = 12;
        w.validate();
    }
}
