//! Activation global-buffer storage arrangement (paper §5.2, Fig. 11).
//!
//! Each activation GB address stores one *tile* of 16 activations along the
//! channel dimension at a single `(y, x)` position; four banks operate in
//! parallel. This arrangement makes the four reshaping operations of the
//! predict-then-focus pipeline — partition, concatenation, downsampling and
//! upsampling — pure address arithmetic, which this module implements
//! functionally and verifies against the tensor-level operators.
//!
//! The module also carries the Challenge #III accounting: activation
//! footprints with and without input feature-wise partition.

use eyecod_models::{LayerSpec, ModelSpec};
use eyecod_tensor::{Shape, Tensor};

/// Channels per GB address (the tile granularity of Fig. 11).
pub const TILE_CHANNELS: usize = 16;

/// A functional model of one activation tensor laid out in the banked GB.
#[derive(Debug, Clone, PartialEq)]
pub struct ActStore {
    c: usize,
    h: usize,
    w: usize,
    banks: usize,
    /// `data[addr][offset]`, where each address holds [`TILE_CHANNELS`]
    /// values; addresses are assigned round-robin over banks.
    data: Vec<[f32; TILE_CHANNELS]>,
}

impl ActStore {
    /// Lays out a `(1, C, H, W)` tensor in the banked storage.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has a batch or bank count of zero.
    pub fn from_tensor(t: &Tensor, banks: usize) -> Self {
        let s = t.shape();
        assert_eq!(s.n, 1, "ActStore holds single-frame activations");
        assert!(banks > 0, "need at least one bank");
        let c_tiles = s.c.div_ceil(TILE_CHANNELS);
        let mut data = vec![[0.0f32; TILE_CHANNELS]; c_tiles * s.h * s.w];
        for y in 0..s.h {
            for x in 0..s.w {
                for ct in 0..c_tiles {
                    let addr = Self::addr_for(ct, y, x, s.w, c_tiles);
                    #[allow(clippy::needless_range_loop)] // off indexes both tile and tensor
                    for off in 0..TILE_CHANNELS {
                        let c = ct * TILE_CHANNELS + off;
                        if c < s.c {
                            data[addr][off] = t.at(0, c, y, x);
                        }
                    }
                }
            }
        }
        ActStore {
            c: s.c,
            h: s.h,
            w: s.w,
            banks,
            data,
        }
    }

    /// Address of a tile: row-major over `(y, x)`, channel tiles innermost
    /// (so one spatial position's channel tiles sit in consecutive banks and
    /// can be fetched in parallel).
    fn addr_for(c_tile: usize, y: usize, x: usize, w: usize, c_tiles: usize) -> usize {
        (y * w + x) * c_tiles + c_tile
    }

    /// The bank an address maps to.
    pub fn bank_of(&self, addr: usize) -> usize {
        addr % self.banks
    }

    /// Logical shape `(c, h, w)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.c, self.h, self.w)
    }

    /// Total addresses used.
    pub fn addresses(&self) -> usize {
        self.data.len()
    }

    /// Reads the stored activation back into a tensor.
    pub fn to_tensor(&self) -> Tensor {
        let c_tiles = self.c.div_ceil(TILE_CHANNELS);
        Tensor::from_fn(Shape::new(1, self.c, self.h, self.w), |_, c, y, x| {
            let addr = Self::addr_for(c / TILE_CHANNELS, y, x, self.w, c_tiles);
            self.data[addr][c % TILE_CHANNELS]
        })
    }

    /// Fig. 11 (b): partitions along the height dimension into `parts`
    /// equal slices, each a standalone store (pure address arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if the height is not divisible by `parts`.
    pub fn partition(&self, parts: usize) -> Vec<ActStore> {
        assert!(
            parts > 0 && self.h.is_multiple_of(parts),
            "height {} not divisible into {parts}",
            self.h
        );
        let t = self.to_tensor();
        let ph = self.h / parts;
        (0..parts)
            .map(|p| {
                let slice = eyecod_tensor::ops::crop(&t, p * ph, 0, ph, self.w);
                ActStore::from_tensor(&slice, self.banks)
            })
            .collect()
    }

    /// Fig. 11 (c): concatenates another store along the channel dimension.
    /// Efficient in hardware exactly when both stores' channel counts are
    /// tile-aligned (the paper constrains concat granularity to multiples
    /// of 16); we assert that alignment.
    ///
    /// # Panics
    ///
    /// Panics if spatial extents differ or `self.c` is not tile-aligned.
    pub fn concat_channels(&self, other: &ActStore) -> ActStore {
        assert_eq!((self.h, self.w), (other.h, other.w), "spatial mismatch");
        assert!(
            self.c.is_multiple_of(TILE_CHANNELS),
            "channel concat requires tile alignment ({} channels)",
            self.c
        );
        let a = self.to_tensor();
        let b = other.to_tensor();
        ActStore::from_tensor(&eyecod_tensor::ops::concat_channels(&[&a, &b]), self.banks)
    }

    /// Fig. 11 (d): drops every other activation in each feature map
    /// (stride-2 downsampling by address selection).
    ///
    /// # Panics
    ///
    /// Panics if the extents are odd.
    pub fn downsample2(&self) -> ActStore {
        assert!(
            self.h.is_multiple_of(2) && self.w.is_multiple_of(2),
            "extents must be even"
        );
        let t = self.to_tensor();
        let d = Tensor::from_fn(
            Shape::new(1, self.c, self.h / 2, self.w / 2),
            |_, c, y, x| t.at(0, c, 2 * y, 2 * x),
        );
        ActStore::from_tensor(&d, self.banks)
    }

    /// Fig. 11 (e): nearest-neighbour upsampling by address duplication.
    pub fn upsample2(&self) -> ActStore {
        let t = self.to_tensor();
        ActStore::from_tensor(&eyecod_tensor::ops::upsample_nearest(&t, 2), self.banks)
    }

    /// Verifies that consecutive channel tiles of one spatial position land
    /// in distinct banks (parallel fetch without conflicts), as long as the
    /// tile count per position does not exceed the bank count.
    pub fn parallel_fetch_conflict_free(&self) -> bool {
        let c_tiles = self.c.div_ceil(TILE_CHANNELS);
        if c_tiles > self.banks {
            return true; // fetched over multiple cycles by construction
        }
        for y in 0..self.h {
            for x in 0..self.w {
                let mut seen = vec![false; self.banks];
                for ct in 0..c_tiles {
                    let b = self.bank_of(Self::addr_for(ct, y, x, self.w, c_tiles));
                    if seen[b] {
                        return false;
                    }
                    seen[b] = true;
                }
            }
        }
        true
    }
}

/// Peak activation footprint in bytes of running `model` layer-by-layer
/// without partitioning — the paper's Challenge #III number (2.78 MB for
/// the two models).
pub fn peak_activation_bytes(model: &ModelSpec, bytes_per_word: usize) -> u64 {
    model.peak_activation_elems() * bytes_per_word as u64
}

/// Peak activation footprint with input feature-wise partition into
/// `parts` height slices, including the `k-1` halo rows each partition
/// re-materialises (paper Principle #III: ~36 % of the unpartitioned size
/// at 4 partitions).
pub fn partitioned_activation_bytes(model: &ModelSpec, parts: usize, bytes_per_word: usize) -> u64 {
    assert!(parts > 0, "parts must be non-zero");
    model
        .layers
        .iter()
        .map(|l: &LayerSpec| {
            let (oh, ow) = l.out_hw();
            let k = match l.kind {
                eyecod_models::LayerKind::Conv { k, .. }
                | eyecod_models::LayerKind::Depthwise { k, .. } => k,
                _ => 1,
            };
            let halo = k.saturating_sub(1);
            let in_rows = (l.h_in / parts + halo).min(l.h_in) as u64;
            let out_rows = (oh / parts + halo).min(oh) as u64;
            let input = l.c_in as u64 * in_rows * l.w_in as u64;
            let output = l.c_out as u64 * out_rows * ow as u64;
            (input + output) * bytes_per_word as u64
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyecod_models::ritnet;

    fn sample_tensor(c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_fn(Shape::new(1, c, h, w), |_, c, y, x| {
            (c * 10_000 + y * 100 + x) as f32
        })
    }

    #[test]
    fn round_trip_preserves_values() {
        let t = sample_tensor(24, 6, 6);
        let store = ActStore::from_tensor(&t, 4);
        assert_eq!(store.to_tensor(), t);
        // Fig. 11 (a): a 6x6x24 tensor occupies 6*6*2 = 72 addresses
        assert_eq!(store.addresses(), 72);
    }

    #[test]
    fn partition_then_reassemble() {
        let t = sample_tensor(16, 8, 4);
        let store = ActStore::from_tensor(&t, 4);
        let parts = store.partition(4);
        assert_eq!(parts.len(), 4);
        let tensors: Vec<Tensor> = parts.iter().map(ActStore::to_tensor).collect();
        // stacking the slices along height reproduces the original
        let mut reassembled = Tensor::zeros(t.shape());
        for (p, pt) in tensors.iter().enumerate() {
            for c in 0..16 {
                for y in 0..2 {
                    for x in 0..4 {
                        *reassembled.at_mut(0, c, p * 2 + y, x) = pt.at(0, c, y, x);
                    }
                }
            }
        }
        assert_eq!(reassembled, t);
    }

    #[test]
    fn concat_matches_tensor_concat() {
        let a = sample_tensor(16, 4, 4);
        let b = sample_tensor(32, 4, 4);
        let sa = ActStore::from_tensor(&a, 4);
        let sb = ActStore::from_tensor(&b, 4);
        let cat = sa.concat_channels(&sb);
        assert_eq!(
            cat.to_tensor(),
            eyecod_tensor::ops::concat_channels(&[&a, &b])
        );
        assert_eq!(cat.shape(), (48, 4, 4));
    }

    #[test]
    #[should_panic(expected = "tile alignment")]
    fn concat_requires_alignment() {
        let a = ActStore::from_tensor(&sample_tensor(10, 4, 4), 4);
        let b = ActStore::from_tensor(&sample_tensor(16, 4, 4), 4);
        a.concat_channels(&b);
    }

    #[test]
    fn down_up_round_trip_on_even_grid() {
        let t = Tensor::from_fn(Shape::new(1, 16, 4, 4), |_, c, y, x| {
            // constant over 2x2 blocks so drop-downsample is invertible
            (c * 100 + (y / 2) * 10 + x / 2) as f32
        });
        let store = ActStore::from_tensor(&t, 4);
        let rt = store.downsample2().upsample2();
        assert_eq!(rt.to_tensor(), t);
    }

    #[test]
    fn parallel_fetch_is_conflict_free() {
        let store = ActStore::from_tensor(&sample_tensor(64, 6, 6), 4);
        assert!(store.parallel_fetch_conflict_free());
    }

    #[test]
    fn partition_shrinks_ritnet_footprint_to_about_a_third() {
        // Principle #III: partitioned footprint ≈ 36% of unpartitioned.
        let seg = ritnet::spec(128);
        let full = peak_activation_bytes(&seg, 1);
        let part = partitioned_activation_bytes(&seg, 4, 1);
        let ratio = part as f64 / full as f64;
        assert!(
            (0.25..0.50).contains(&ratio),
            "partitioned/unpartitioned ratio {ratio:.2}"
        );
    }

    #[test]
    fn combined_models_need_partition_to_fit_act_gb() {
        // Challenge #III: unpartitioned activations exceed the 1 MB Act GBs;
        // partitioned they fit.
        let seg = ritnet::spec(128);
        let gaze = eyecod_models::fbnet::spec(96, 160);
        let full = peak_activation_bytes(&seg, 1) + peak_activation_bytes(&gaze, 1);
        let part =
            partitioned_activation_bytes(&seg, 4, 1) + partitioned_activation_bytes(&gaze, 4, 1);
        let act_gb_total = 2 * 512 * 1024;
        assert!(
            part < full / 2,
            "partitioning should at least halve the footprint"
        );
        assert!(
            part < act_gb_total,
            "partitioned activations must fit the Act GBs"
        );
    }
}
