//! MAC-utilisation timelines (paper Fig. 7).

use crate::cost::LayerCost;
use serde::{Deserialize, Serialize};

/// One constant-utilisation segment of a timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSegment {
    /// Segment start time in microseconds.
    pub start_us: f64,
    /// Segment end time in microseconds.
    pub end_us: f64,
    /// MAC utilisation in `[0, 1]`.
    pub utilization: f64,
    /// Whether the segment belongs to a depth-wise layer.
    pub is_depthwise: bool,
}

/// A per-layer utilisation timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationTrace {
    segments: Vec<TraceSegment>,
}

impl UtilizationTrace {
    /// Builds a timeline from a sequence of layer costs executed
    /// back-to-back at `clock_mhz`.
    pub fn from_costs(costs: &[LayerCost], clock_mhz: f64) -> Self {
        assert!(clock_mhz > 0.0, "clock must be positive");
        let mut segments = Vec::with_capacity(costs.len());
        let mut t = 0.0f64;
        for c in costs {
            let dur = c.cycles as f64 / clock_mhz; // µs (cycles / MHz)
            if c.cycles == 0 {
                continue;
            }
            segments.push(TraceSegment {
                start_us: t,
                end_us: t + dur,
                utilization: c.utilization,
                is_depthwise: c.is_depthwise,
            });
            t += dur;
        }
        UtilizationTrace { segments }
    }

    /// The raw segments.
    pub fn segments(&self) -> &[TraceSegment] {
        &self.segments
    }

    /// Total duration in microseconds.
    pub fn duration_us(&self) -> f64 {
        self.segments.last().map(|s| s.end_us).unwrap_or(0.0)
    }

    /// Time-weighted mean utilisation.
    pub fn mean_utilization(&self) -> f64 {
        let dur = self.duration_us();
        if dur == 0.0 {
            return 0.0;
        }
        self.segments
            .iter()
            .map(|s| s.utilization * (s.end_us - s.start_us))
            .sum::<f64>()
            / dur
    }

    /// Fraction of time spent below the given utilisation threshold — the
    /// opportunity window the partial time-multiplexing mode exploits
    /// (paper Fig. 7 draws the line at 80 %).
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        let dur = self.duration_us();
        if dur == 0.0 {
            return 0.0;
        }
        self.segments
            .iter()
            .filter(|s| s.utilization < threshold)
            .map(|s| s.end_us - s.start_us)
            .sum::<f64>()
            / dur
    }

    /// Resamples the timeline to `n` evenly spaced `(time_us, utilization)`
    /// points, for plotting.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn resample(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n > 0, "need at least one sample");
        let dur = self.duration_us();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let t = dur * (i as f64 + 0.5) / n as f64;
            let u = self
                .segments
                .iter()
                .find(|s| t >= s.start_us && t < s.end_us)
                .map(|s| s.utilization)
                .unwrap_or(0.0);
            out.push((t, u));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(name: &str, cycles: u64, util: f64, dw: bool) -> LayerCost {
        LayerCost {
            name: name.into(),
            macs: (cycles as f64 * util * 1024.0) as u64,
            compute_cycles: cycles,
            memory_cycles: 0,
            cycles,
            utilization: util,
            act_read_words: 0,
            act_write_words: 0,
            weight_gb_words: 0,
            is_depthwise: dw,
            lanes: 128,
        }
    }

    #[test]
    fn timeline_is_contiguous() {
        let t = UtilizationTrace::from_costs(
            &[cost("a", 370, 0.9, false), cost("b", 740, 0.4, true)],
            370.0,
        );
        let segs = t.segments();
        assert_eq!(segs.len(), 2);
        assert!((segs[0].end_us - 1.0).abs() < 1e-9);
        assert!((segs[1].start_us - 1.0).abs() < 1e-9);
        assert!((t.duration_us() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mean_is_time_weighted() {
        let t = UtilizationTrace::from_costs(
            &[cost("a", 100, 1.0, false), cost("b", 300, 0.5, true)],
            370.0,
        );
        assert!((t.mean_utilization() - (100.0 + 150.0) / 400.0).abs() < 1e-9);
    }

    #[test]
    fn fraction_below_threshold() {
        let t = UtilizationTrace::from_costs(
            &[cost("a", 100, 0.9, false), cost("b", 100, 0.3, true)],
            370.0,
        );
        assert!((t.fraction_below(0.8) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn resample_reflects_segments() {
        let t = UtilizationTrace::from_costs(
            &[cost("a", 100, 1.0, false), cost("b", 100, 0.0, false)],
            370.0,
        );
        let pts = t.resample(10);
        assert_eq!(pts.len(), 10);
        assert!(pts[0].1 > 0.9);
        assert!(pts[9].1 < 0.1);
    }

    #[test]
    fn zero_cycle_layers_are_skipped() {
        let t = UtilizationTrace::from_costs(&[cost("z", 0, 0.0, false)], 370.0);
        assert!(t.segments().is_empty());
        assert_eq!(t.duration_us(), 0.0);
        assert_eq!(t.mean_utilization(), 0.0);
    }
}
