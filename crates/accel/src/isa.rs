//! Accelerator instruction streams.
//!
//! The EyeCoD accelerator is driven by an on-chip controller that "reads
//! instructions from the instruction SRAM to control the accelerator"
//! (paper §5.2, Fig. 9). This module compiles a [`ModelSpec`] into that
//! instruction stream: weight-buffer loads (ping-pong), lane configuration,
//! per-partition layer execution, and the activation-GB reshaping
//! operations of Fig. 11. Compiling lets us *check* the architectural
//! claim that whole predict-then-focus programs fit the 4 KB instruction
//! SRAM and the 20 KB index SRAM.

use crate::config::AcceleratorConfig;
use eyecod_models::{LayerKind, ModelSpec};
use serde::{Deserialize, Serialize};

/// The activation reshaping operations of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReshapeOp {
    /// Fig. 11 (b): tile the feature map into spatial partitions.
    Partition,
    /// Fig. 11 (c): concatenate along channels.
    Concat,
    /// Fig. 11 (d): drop-based downsampling.
    Downsample,
    /// Fig. 11 (e): duplication/zero-insert upsampling.
    Upsample,
}

/// One controller instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// Fetch a layer's weights from the weight GB into a ping-pong buffer.
    LoadWeights {
        /// Layer name.
        layer: String,
        /// Words to fetch.
        words: u64,
        /// Which ping-pong buffer (0/1).
        buffer: u8,
    },
    /// Configure the MAC lane array for a layer.
    ConfigureLanes {
        /// Lanes assigned.
        lanes: u16,
        /// Depth-wise mode (enables the intra-channel reuse datapath).
        depthwise: bool,
    },
    /// Execute one spatial partition of a layer.
    ProcessPartition {
        /// Layer name.
        layer: String,
        /// Partition index.
        partition: u8,
        /// Round count for the controller's loop counter.
        rounds: u32,
    },
    /// Activation GB reshaping between layers.
    Reshape {
        /// Operation class.
        op: ReshapeOp,
    },
    /// Barrier: wait for all lanes and buffers to drain.
    Sync,
}

impl Instruction {
    /// Encoded size in bytes. The controller uses a compact fixed-width
    /// encoding: 8 bytes for compute/load instructions (opcode + layer id +
    /// immediate), 2 bytes for reshape/sync.
    pub fn encoded_bytes(&self) -> usize {
        match self {
            Instruction::LoadWeights { .. }
            | Instruction::ConfigureLanes { .. }
            | Instruction::ProcessPartition { .. } => 8,
            Instruction::Reshape { .. } | Instruction::Sync => 2,
        }
    }
}

/// A compiled instruction stream for one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Model name.
    pub model: String,
    /// Instructions in execution order.
    pub instructions: Vec<Instruction>,
    /// Index-SRAM words used (one per layer for the activation GB base
    /// addresses, plus one per reshaping operation).
    pub index_words: usize,
}

impl Program {
    /// Total encoded size in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.instructions
            .iter()
            .map(Instruction::encoded_bytes)
            .sum()
    }

    /// Whether this program fits the configured instruction and index
    /// SRAMs.
    pub fn fits(&self, cfg: &AcceleratorConfig) -> bool {
        self.encoded_bytes() <= cfg.instr_sram_bytes && self.index_words * 4 <= cfg.index_sram_bytes
    }

    /// Number of `ProcessPartition` instructions (the compute steps).
    pub fn compute_steps(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::ProcessPartition { .. }))
            .count()
    }
}

/// Compiles a model into a controller instruction stream under the given
/// configuration (partition count, lane count).
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn compile(model: &ModelSpec, cfg: &AcceleratorConfig) -> Program {
    cfg.validate();
    model.validate();
    let partitions = if cfg.feature_partition {
        cfg.partition_count as u8
    } else {
        1
    };
    let mut instructions = Vec::new();
    let mut index_words = 0usize;
    let mut buffer = 0u8;

    for layer in &model.layers {
        index_words += 1; // activation base address entry
        match layer.kind {
            LayerKind::Conv { .. }
            | LayerKind::Pointwise { .. }
            | LayerKind::Depthwise { .. }
            | LayerKind::FullyConnected
            | LayerKind::MatMul { .. } => {
                instructions.push(Instruction::LoadWeights {
                    layer: layer.name.clone(),
                    words: layer.params(),
                    buffer,
                });
                buffer ^= 1; // ping-pong
                instructions.push(Instruction::ConfigureLanes {
                    lanes: cfg.mac_lanes as u16,
                    depthwise: matches!(layer.kind, LayerKind::Depthwise { .. }),
                });
                let (oh, _) = layer.out_hw();
                let rounds_per_partition =
                    ((layer.c_out * oh) as u32).div_ceil(cfg.mac_lanes as u32 * partitions as u32);
                // spatially partitionable layers loop over partitions;
                // FC/matmul run as a single partition
                let parts = match layer.kind {
                    LayerKind::FullyConnected | LayerKind::MatMul { .. } => 1,
                    _ => partitions,
                };
                for p in 0..parts {
                    instructions.push(Instruction::ProcessPartition {
                        layer: layer.name.clone(),
                        partition: p,
                        rounds: rounds_per_partition.max(1),
                    });
                }
            }
            LayerKind::MaxPool { .. } => {
                index_words += 1;
                instructions.push(Instruction::Reshape {
                    op: ReshapeOp::Downsample,
                });
            }
            LayerKind::Upsample { .. } => {
                index_words += 1;
                instructions.push(Instruction::Reshape {
                    op: ReshapeOp::Upsample,
                });
            }
            LayerKind::Concat { .. } => {
                index_words += 1;
                instructions.push(Instruction::Reshape {
                    op: ReshapeOp::Concat,
                });
            }
            LayerKind::GlobalAvgPool => {
                index_words += 1;
                instructions.push(Instruction::Reshape {
                    op: ReshapeOp::Downsample,
                });
            }
        }
    }
    instructions.push(Instruction::Sync);
    Program {
        model: model.name.clone(),
        instructions,
        index_words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyecod_models::{fbnet, ritnet};

    #[test]
    fn both_pipeline_programs_fit_the_instruction_sram() {
        // the architectural claim behind the 4 KB instruction SRAM of
        // Table 1: the full predict-then-focus program set fits on chip
        let cfg = AcceleratorConfig::paper_default();
        let seg = compile(&ritnet::spec(128), &cfg);
        let gaze = compile(&fbnet::spec(96, 160), &cfg);
        assert!(seg.fits(&cfg), "RITNet program: {} B", seg.encoded_bytes());
        assert!(gaze.fits(&cfg), "FBNet program: {} B", gaze.encoded_bytes());
        assert!(
            seg.encoded_bytes() + gaze.encoded_bytes() <= cfg.instr_sram_bytes,
            "combined programs exceed the instruction SRAM"
        );
    }

    #[test]
    fn partitioned_layers_emit_one_step_per_partition() {
        let cfg = AcceleratorConfig::paper_default();
        let p = compile(&ritnet::spec(128), &cfg);
        let conv_layers = ritnet::spec(128)
            .layers
            .iter()
            .filter(|l| l.kind.is_compute())
            .count();
        assert_eq!(p.compute_steps(), conv_layers * cfg.partition_count);
    }

    #[test]
    fn no_partition_config_emits_single_steps() {
        let mut cfg = AcceleratorConfig::paper_default();
        cfg.feature_partition = false;
        let p = compile(&fbnet::spec(96, 160), &cfg);
        let compute_layers = fbnet::spec(96, 160)
            .layers
            .iter()
            .filter(|l| l.kind.is_compute())
            .count();
        assert_eq!(p.compute_steps(), compute_layers);
    }

    #[test]
    fn weight_buffers_ping_pong() {
        let cfg = AcceleratorConfig::paper_default();
        let p = compile(&fbnet::spec(96, 160), &cfg);
        let buffers: Vec<u8> = p
            .instructions
            .iter()
            .filter_map(|i| match i {
                Instruction::LoadWeights { buffer, .. } => Some(*buffer),
                _ => None,
            })
            .collect();
        for w in buffers.windows(2) {
            assert_ne!(
                w[0], w[1],
                "consecutive weight loads must alternate buffers"
            );
        }
    }

    #[test]
    fn encoded_sizes_are_consistent() {
        let cfg = AcceleratorConfig::paper_default();
        let p = compile(&ritnet::spec(128), &cfg);
        let sum: usize = p.instructions.iter().map(Instruction::encoded_bytes).sum();
        assert_eq!(p.encoded_bytes(), sum);
        assert!(p.instructions.ends_with(&[Instruction::Sync]));
    }
}
