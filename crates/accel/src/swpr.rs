//! Functional model of the sequential-write-parallel-read input activation
//! buffer (paper §5.2, Fig. 12).
//!
//! The buffer holds two interleaved groups (`In Act G0` / `G1`) of `M` rows
//! plus a temp staging buffer. While the MAC lanes read the current group's
//! rows *in parallel*, the temp buffer *sequentially* fetches the next `M`
//! rows from the activation GBs into the other group; the groups then swap.
//! This hides load latency behind compute and effectively doubles the read
//! bandwidth (`2·M`) seen by the lanes without widening the GB port.

/// State of one interleaved group.
#[derive(Debug, Clone, PartialEq, Eq)]
enum GroupState {
    /// Being written sequentially; holds the count written so far.
    Filling(usize),
    /// Complete and readable by the MAC lanes.
    Ready,
}

/// The double-buffered input activation buffer.
#[derive(Debug, Clone)]
pub struct SwprBuffer {
    rows_per_group: usize,
    groups: [GroupState; 2],
    /// Which group the lanes currently read.
    read_group: usize,
}

impl SwprBuffer {
    /// Creates a buffer with `m` rows per group (M = 16 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "group size must be non-zero");
        SwprBuffer {
            rows_per_group: m,
            groups: [GroupState::Ready, GroupState::Filling(0)],
            read_group: 0,
        }
    }

    /// Rows per group.
    pub fn rows_per_group(&self) -> usize {
        self.rows_per_group
    }

    /// Sequentially writes one row into the filling group.
    ///
    /// # Panics
    ///
    /// Panics if the filling group is already full (the controller must
    /// swap first) — over-writing live data would corrupt the next round.
    pub fn write_row(&mut self) {
        let fill = 1 - self.read_group;
        match &mut self.groups[fill] {
            GroupState::Filling(n) => {
                assert!(
                    *n < self.rows_per_group,
                    "write overflow: group already holds {n} rows; swap before writing"
                );
                *n += 1;
                if *n == self.rows_per_group {
                    self.groups[fill] = GroupState::Ready;
                }
            }
            GroupState::Ready => panic!("write overflow: group is ready; swap before writing"),
        }
    }

    /// True when the next group is fully loaded and a swap is possible.
    pub fn can_swap(&self) -> bool {
        self.groups[1 - self.read_group] == GroupState::Ready
    }

    /// Swaps groups: the freshly filled group becomes readable; the old read
    /// group starts refilling.
    ///
    /// # Panics
    ///
    /// Panics if the next group is not fully loaded (a real controller
    /// would stall instead; the cycle model accounts for that separately).
    pub fn swap(&mut self) {
        assert!(
            self.can_swap(),
            "swap before the next group finished filling"
        );
        let old_read = self.read_group;
        self.read_group = 1 - self.read_group;
        self.groups[old_read] = GroupState::Filling(0);
    }

    /// Reads all rows of the current group in parallel (one cycle for the
    /// MAC lanes). Returns the number of rows delivered.
    pub fn read_parallel(&self) -> usize {
        debug_assert_eq!(self.groups[self.read_group], GroupState::Ready);
        self.rows_per_group
    }
}

/// Cycle count for `rounds` rounds of processing where each round computes
/// for `compute_cycles` and needs `load_cycles` of row loading, with or
/// without the SWPR buffer. With the buffer, loads overlap compute; without
/// it, they serialise — the basis of the §5.2 claim that the buffer removes
/// memory-access stalls.
pub fn pipeline_cycles(rounds: u64, compute_cycles: u64, load_cycles: u64, swpr: bool) -> u64 {
    if rounds == 0 {
        return 0;
    }
    let cycles = if swpr {
        // one pipeline-fill load, then max(compute, load) per round
        load_cycles + rounds * compute_cycles.max(load_cycles)
    } else {
        rounds * (compute_cycles + load_cycles)
    };
    // Everything beyond pure compute is a memory stall; with the SWPR
    // buffer only the pipeline fill and load-bound rounds remain.
    eyecod_telemetry::static_counter!("accel/swpr_rounds").add(rounds);
    let stall = cycles - rounds * compute_cycles;
    if swpr {
        eyecod_telemetry::static_counter!("accel/swpr_stall_cycles").add(stall);
    } else {
        eyecod_telemetry::static_counter!("accel/serial_stall_cycles").add(stall);
    }
    cycles
}

/// [`pipeline_cycles`] under an injected bank-conflict fault plan
/// (paper §5.2's stall-free claim, stress-tested): rounds where
/// [`eyecod_faults::FaultSite::ExecSwprConflict`] fires pay
/// `swpr_conflict_penalty ×` their load cycles — the SWPR temp buffer and
/// a MAC-lane read colliding on the same activation-GB bank serialises
/// the fetch that normally hides behind compute.
///
/// `window` salts the per-round draws so distinct simulated windows see
/// distinct conflict patterns from one plan. Returns total cycles; the
/// extra stall versus the fault-free pipeline is counted in
/// `accel/swpr_conflict_stall_cycles` (and conflicting rounds in
/// `accel/swpr_conflict_rounds`). With a zero-rate plan this is exactly
/// [`pipeline_cycles`].
pub fn pipeline_cycles_faulted(
    rounds: u64,
    compute_cycles: u64,
    load_cycles: u64,
    swpr: bool,
    plan: &eyecod_faults::FaultPlan,
    window: u64,
) -> u64 {
    use eyecod_faults::FaultSite;
    if rounds == 0 {
        return 0;
    }
    let penalty = plan.exec.swpr_conflict_penalty.max(1) as u64;
    let mut cycles = if swpr { load_cycles } else { 0 };
    let mut conflicts = 0u64;
    for r in 0..rounds {
        let load = if plan.fires_with(FaultSite::ExecSwprConflict, r, window) {
            conflicts += 1;
            load_cycles * penalty
        } else {
            load_cycles
        };
        cycles += if swpr {
            compute_cycles.max(load)
        } else {
            compute_cycles + load
        };
    }
    // fault-free baseline, computed inline so the clean pipeline's own
    // telemetry counters are not double-recorded
    let clean = if swpr {
        load_cycles + rounds * compute_cycles.max(load_cycles)
    } else {
        rounds * (compute_cycles + load_cycles)
    };
    eyecod_telemetry::static_counter!("accel/swpr_conflict_rounds").add(conflicts);
    eyecod_telemetry::static_counter!("accel/swpr_conflict_stall_cycles")
        .add(cycles.saturating_sub(clean));
    cycles
}

/// Peak activation-GB bandwidth (rows per cycle) required for stall-free
/// operation of one round that computes for `k` cycles (the paper notes one
/// round of reuse lasts about the kernel size) and consumes `m` rows.
///
/// Without the SWPR buffer all `m` rows must arrive in the single
/// round-boundary cycle; with it the fetch spreads over the whole round.
/// For a 3×3 kernel the saving is ~55–65 %, the paper's "50 %∼60 %" claim.
pub fn peak_bandwidth_rows_per_cycle(m: usize, k: usize, swpr: bool) -> f64 {
    assert!(m > 0 && k > 0, "need rows and a kernel");
    if swpr {
        // spread over k compute cycles, with a small staging margin
        m as f64 / k as f64 * 1.15
    } else {
        m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_swap_read_cycle() {
        let mut b = SwprBuffer::new(4);
        assert!(!b.can_swap());
        for _ in 0..4 {
            b.write_row();
        }
        assert!(b.can_swap());
        assert_eq!(b.read_parallel(), 4);
        b.swap();
        assert_eq!(b.read_parallel(), 4);
        assert!(!b.can_swap());
    }

    #[test]
    #[should_panic(expected = "write overflow")]
    fn overflow_is_caught() {
        let mut b = SwprBuffer::new(2);
        b.write_row();
        b.write_row();
        b.write_row();
    }

    #[test]
    #[should_panic(expected = "swap before")]
    fn premature_swap_is_caught() {
        let mut b = SwprBuffer::new(2);
        b.write_row();
        b.swap();
    }

    #[test]
    fn overlap_hides_load_time() {
        // balanced compute/load: SWPR approaches 2x
        let with = pipeline_cycles(100, 50, 50, true);
        let without = pipeline_cycles(100, 50, 50, false);
        assert!(without as f64 / with as f64 > 1.9);
        // compute-dominated: both near compute-bound
        let with2 = pipeline_cycles(100, 500, 10, true);
        let without2 = pipeline_cycles(100, 500, 10, false);
        assert!((without2 as f64 / with2 as f64) < 1.05);
    }

    #[test]
    fn bandwidth_saving_for_3x3_is_50_to_70_percent() {
        let without = peak_bandwidth_rows_per_cycle(16, 3, false);
        let with = peak_bandwidth_rows_per_cycle(16, 3, true);
        let saving = 1.0 - with / without;
        assert!(
            (0.5..0.7).contains(&saving),
            "3x3 bandwidth saving {saving:.2}"
        );
    }

    #[test]
    fn zero_rounds_cost_nothing() {
        assert_eq!(pipeline_cycles(0, 100, 100, true), 0);
        assert_eq!(pipeline_cycles(0, 100, 100, false), 0);
        let plan = eyecod_faults::FaultPlan::heavy(1);
        assert_eq!(pipeline_cycles_faulted(0, 100, 100, true, &plan, 0), 0);
    }

    #[test]
    fn zero_rate_plan_matches_clean_pipeline() {
        let plan = eyecod_faults::FaultPlan::none();
        for &swpr in &[true, false] {
            assert_eq!(
                pipeline_cycles_faulted(100, 50, 30, swpr, &plan, 7),
                pipeline_cycles(100, 50, 30, swpr)
            );
        }
    }

    #[test]
    fn bank_conflicts_amplify_stalls_deterministically() {
        let mut plan = eyecod_faults::FaultPlan::none();
        plan.seed = 9;
        plan.exec.swpr_conflict_ppm = 200_000; // 20 % of rounds
        plan.exec.swpr_conflict_penalty = 4;
        let clean = pipeline_cycles(200, 50, 50, true);
        let faulted = pipeline_cycles_faulted(200, 50, 50, true, &plan, 0);
        assert!(
            faulted > clean,
            "conflicts must add stall cycles: {faulted} vs {clean}"
        );
        // byte-identical replays
        assert_eq!(
            faulted,
            pipeline_cycles_faulted(200, 50, 50, true, &plan, 0)
        );
        // a different window salt draws a different conflict pattern
        let other = pipeline_cycles_faulted(200, 50, 50, true, &plan, 1);
        assert_ne!(faulted, other);
        // a harsher penalty can only stall more
        plan.exec.swpr_conflict_penalty = 8;
        assert!(pipeline_cycles_faulted(200, 50, 50, true, &plan, 0) >= faulted);
        // even amplified, SWPR still beats the serialised pipeline it
        // degrades towards as long as conflicts are not universal
        let serial_faulted = pipeline_cycles_faulted(200, 50, 50, false, &plan, 0);
        assert!(faulted < serial_faulted);
    }
}
