//! Roofline analysis of layers on the accelerator.
//!
//! For each layer the model computes its **arithmetic intensity**
//! (MACs per activation word moved through the global buffers) and the
//! **attainable MAC rate** under the machine's compute roof
//! (`lanes × 8 / cycle`) and bandwidth roof
//! (`intensity × act_words_per_cycle`). Depth-wise layers sit far left on
//! the intensity axis — the visual version of the paper's Challenge #II —
//! and the intra-channel-reuse optimisation literally moves them right.

use crate::config::AcceleratorConfig;
use crate::cost::layer_cost;
use eyecod_models::{LayerSpec, ModelSpec};
use serde::{Deserialize, Serialize};

/// One layer's position on the roofline plot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Layer name.
    pub layer: String,
    /// MACs per activation word moved (GB traffic).
    pub intensity: f64,
    /// Attainable MACs per cycle under both roofs.
    pub attainable_macs_per_cycle: f64,
    /// Achieved MACs per cycle from the cycle model.
    pub achieved_macs_per_cycle: f64,
    /// True if the bandwidth roof (not the compute roof) binds.
    pub bandwidth_bound: bool,
    /// Whether the layer is depth-wise.
    pub is_depthwise: bool,
}

/// Computes the roofline point of one layer.
pub fn roofline_point(layer: &LayerSpec, cfg: &AcceleratorConfig) -> RooflinePoint {
    let cost = layer_cost(layer, cfg.mac_lanes, cfg);
    let words = (cost.act_read_words + cost.act_write_words).max(1);
    let intensity = cost.macs as f64 / words as f64;
    let compute_roof = cfg.total_macs() as f64;
    let bandwidth_roof = intensity * cfg.effective_act_words_per_cycle() as f64;
    let attainable = compute_roof.min(bandwidth_roof);
    RooflinePoint {
        layer: layer.name.clone(),
        intensity,
        attainable_macs_per_cycle: attainable,
        achieved_macs_per_cycle: cost.macs as f64 / cost.cycles.max(1) as f64,
        bandwidth_bound: bandwidth_roof < compute_roof,
        is_depthwise: cost.is_depthwise,
    }
}

/// Roofline points for every compute layer of a model.
pub fn model_roofline(model: &ModelSpec, cfg: &AcceleratorConfig) -> Vec<RooflinePoint> {
    model
        .layers
        .iter()
        .filter(|l| l.kind.is_compute())
        .map(|l| roofline_point(l, cfg))
        .collect()
}

/// The ridge point of the machine: the intensity at which the bandwidth
/// roof meets the compute roof (MACs per word).
pub fn ridge_intensity(cfg: &AcceleratorConfig) -> f64 {
    cfg.total_macs() as f64 / cfg.effective_act_words_per_cycle() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyecod_models::fbnet;

    #[test]
    fn achieved_never_exceeds_attainable() {
        let cfg = AcceleratorConfig::paper_default();
        for p in model_roofline(&fbnet::spec(96, 160), &cfg) {
            assert!(
                p.achieved_macs_per_cycle <= p.attainable_macs_per_cycle * 1.001,
                "{}: achieved {:.1} > attainable {:.1}",
                p.layer,
                p.achieved_macs_per_cycle,
                p.attainable_macs_per_cycle
            );
        }
    }

    #[test]
    fn depthwise_layers_sit_left_of_pointwise() {
        // Challenge #II as geometry: depth-wise intensity ≪ point-wise.
        let cfg = AcceleratorConfig::paper_default();
        let points = model_roofline(&fbnet::spec(96, 160), &cfg);
        let mean = |dw: bool| {
            let v: Vec<f64> = points
                .iter()
                .filter(|p| p.is_depthwise == dw)
                .map(|p| p.intensity)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean(false) > 4.0 * mean(true),
            "pointwise intensity {:.1} vs depthwise {:.1}",
            mean(false),
            mean(true)
        );
    }

    #[test]
    fn reuse_moves_depthwise_right() {
        // intra-channel reuse divides depth-wise traffic by k -> higher
        // intensity -> a higher bandwidth roof
        let with = AcceleratorConfig::paper_default();
        let without = AcceleratorConfig {
            intra_channel_reuse: false,
            ..AcceleratorConfig::paper_default()
        };
        let spec = fbnet::spec(96, 160);
        let dw_intensity = |cfg: &AcceleratorConfig| {
            model_roofline(&spec, cfg)
                .iter()
                .filter(|p| p.is_depthwise)
                .map(|p| p.intensity)
                .sum::<f64>()
        };
        assert!(dw_intensity(&with) > 2.0 * dw_intensity(&without));
    }

    #[test]
    fn ridge_point_halves_without_swpr() {
        let with = AcceleratorConfig::paper_default();
        let without = AcceleratorConfig {
            swpr_buffer: false,
            ..AcceleratorConfig::paper_default()
        };
        // less effective bandwidth -> the ridge moves right (more layers
        // become bandwidth-bound)
        assert!((ridge_intensity(&without) - 2.0 * ridge_intensity(&with)).abs() < 1e-9);
    }
}
