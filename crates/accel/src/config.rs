//! Accelerator configuration (paper Table 1 / Fig. 13).

use crate::schedule::Orchestration;
use serde::{Deserialize, Serialize};

/// Full configuration of the simulated accelerator.
///
/// Defaults reproduce the paper's Table 1: 128 MAC lanes × 8 MACs, 370 MHz,
/// 2×512 KB activation GBs, 512 KB weight GB, 2×64 KB weight buffers, 20 KB
/// index SRAM, 4 KB instruction SRAM, with every EyeCoD hardware feature
/// enabled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Number of MAC lanes (128).
    pub mac_lanes: usize,
    /// MACs per lane (8).
    pub macs_per_lane: usize,
    /// Core clock in MHz (370).
    pub clock_mhz: f64,
    /// Size of each activation global buffer in bytes (512 KB × 2).
    pub act_gb_bytes: usize,
    /// Number of activation GBs (2, ping-pong across layers).
    pub act_gb_count: usize,
    /// Activation GB banks operated in parallel (4; Fig. 11).
    pub act_gb_banks: usize,
    /// Activation words deliverable per cycle from the GBs (16 activations
    /// per bank address × 4 banks).
    pub act_words_per_cycle: usize,
    /// Weight global buffer size in bytes (512 KB).
    pub weight_gb_bytes: usize,
    /// Each ping-pong weight buffer size in bytes (64 KB × 2).
    pub weight_buffer_bytes: usize,
    /// Index SRAM bytes (20 KB).
    pub index_sram_bytes: usize,
    /// Instruction SRAM bytes (4 KB).
    pub instr_sram_bytes: usize,
    /// Bytes per activation/weight word (1 — the deployed models are 8-bit).
    pub bytes_per_word: usize,
    /// Sequential-write-parallel-read input activation buffer (§5.2):
    /// overlaps next-round loads with current-round compute and doubles the
    /// effective read bandwidth.
    pub swpr_buffer: bool,
    /// Column-wise + deeper row-wise intra-channel reuse for depth-wise
    /// layers (§5.2, Fig. 10).
    pub intra_channel_reuse: bool,
    /// Input feature-wise partition for cross-layer processing (§5.1
    /// Principle #III).
    pub feature_partition: bool,
    /// Number of spatial partitions when `feature_partition` is on.
    pub partition_count: usize,
    /// Workload orchestration mode between the segmentation and gaze models.
    pub orchestration: Orchestration,
}

impl AcceleratorConfig {
    /// The paper's full EyeCoD configuration (all features on, partial
    /// time-multiplexing).
    pub fn paper_default() -> Self {
        AcceleratorConfig {
            mac_lanes: 128,
            macs_per_lane: 8,
            clock_mhz: 370.0,
            act_gb_bytes: 512 * 1024,
            act_gb_count: 2,
            act_gb_banks: 4,
            act_words_per_cycle: 64,
            weight_gb_bytes: 512 * 1024,
            weight_buffer_bytes: 64 * 1024,
            index_sram_bytes: 20 * 1024,
            instr_sram_bytes: 4 * 1024,
            bytes_per_word: 1,
            swpr_buffer: true,
            intra_channel_reuse: true,
            feature_partition: true,
            partition_count: 4,
            orchestration: Orchestration::PartialTimeMultiplexed,
        }
    }

    /// The ablation baseline of Table 6: same silicon area, but plain
    /// time-multiplexing, no SWPR buffer and no intra-channel reuse
    /// (feature partition stays on, as the paper's baseline keeps it to fit
    /// the same area).
    pub fn ablation_baseline() -> Self {
        AcceleratorConfig {
            swpr_buffer: false,
            intra_channel_reuse: false,
            orchestration: Orchestration::TimeMultiplexed,
            ..Self::paper_default()
        }
    }

    /// Total MAC count (1024 for the paper configuration).
    pub fn total_macs(&self) -> usize {
        self.mac_lanes * self.macs_per_lane
    }

    /// Peak MAC throughput in MAC/s.
    pub fn peak_macs_per_second(&self) -> f64 {
        self.total_macs() as f64 * self.clock_mhz * 1e6
    }

    /// Total on-chip SRAM in bytes.
    pub fn total_sram_bytes(&self) -> usize {
        self.act_gb_bytes * self.act_gb_count
            + self.weight_gb_bytes
            + 2 * self.weight_buffer_bytes
            + self.index_sram_bytes
            + self.instr_sram_bytes
    }

    /// Effective activation read bandwidth in words/cycle, accounting for
    /// the SWPR buffer's interleaved groups (2× M; §5.2, Fig. 12).
    pub fn effective_act_words_per_cycle(&self) -> usize {
        if self.swpr_buffer {
            self.act_words_per_cycle * 2
        } else {
            self.act_words_per_cycle
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized resources or a partition count of zero.
    pub fn validate(&self) {
        assert!(self.mac_lanes > 0 && self.macs_per_lane > 0, "need MACs");
        assert!(self.clock_mhz > 0.0, "clock must be positive");
        assert!(self.act_words_per_cycle > 0, "need activation bandwidth");
        assert!(self.partition_count > 0, "partition count must be non-zero");
        assert!(self.act_gb_banks > 0, "need at least one bank");
        assert!(self.bytes_per_word > 0, "need a word size");
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1() {
        let c = AcceleratorConfig::paper_default();
        c.validate();
        assert_eq!(c.total_macs(), 1024);
        assert_eq!(c.mac_lanes, 128);
        assert_eq!(c.macs_per_lane, 8);
        assert_eq!(c.clock_mhz, 370.0);
        // Table 1 SRAM total: 2x512K + 512K + 2x64K + 20K + 4K
        assert_eq!(c.total_sram_bytes(), (1024 + 512 + 128 + 20 + 4) * 1024);
    }

    #[test]
    fn peak_throughput() {
        let c = AcceleratorConfig::paper_default();
        let peak = c.peak_macs_per_second();
        assert!((peak - 1024.0 * 370.0e6).abs() < 1.0);
    }

    #[test]
    fn swpr_doubles_effective_bandwidth() {
        let mut c = AcceleratorConfig::paper_default();
        c.swpr_buffer = true;
        assert_eq!(c.effective_act_words_per_cycle(), 128);
        c.swpr_buffer = false;
        assert_eq!(c.effective_act_words_per_cycle(), 64);
    }

    #[test]
    fn ablation_baseline_disables_features() {
        let b = AcceleratorConfig::ablation_baseline();
        assert!(!b.swpr_buffer && !b.intra_channel_reuse);
        assert_eq!(b.orchestration, Orchestration::TimeMultiplexed);
        assert!(
            b.feature_partition,
            "baseline keeps the partition to fit the area"
        );
        assert_eq!(
            b.total_macs(),
            AcceleratorConfig::paper_default().total_macs()
        );
    }

    #[test]
    #[should_panic(expected = "partition count")]
    fn validate_catches_zero_partitions() {
        let mut c = AcceleratorConfig::paper_default();
        c.partition_count = 0;
        c.validate();
    }
}
