//! Closed-form per-layer cycle and traffic model.
//!
//! Derived from the MAC-lane microarchitecture of Fig. 9: each of the
//! `lanes` MAC lanes holds one input-activation row in its FIFO and applies
//! streamed weight taps with its 8 MACs, producing one output row (8 output
//! pixels per cycle per tap). A layer executes as `rounds` of row-level work
//! units distributed across lanes. Activation traffic runs through the
//! global buffers at the configured words/cycle; with the SWPR input buffer
//! loads overlap compute (`max`), without it they serialise (`+`).
//!
//! The depth-wise optimisations of §5.2 map directly:
//! * *column-wise intra-channel reuse* divides depth-wise input traffic by
//!   the kernel size (one loaded row feeds all `k` weight rows);
//! * *deeper row-wise intra-channel reuse* splits a row across two lanes
//!   when lanes would otherwise idle, doubling utilisation for the small
//!   late layers.

use crate::config::AcceleratorConfig;
use crate::energy::EnergyCounts;
use eyecod_models::{LayerKind, LayerSpec};
use serde::{Deserialize, Serialize};

/// The simulated execution cost of one layer on an assignment of MAC lanes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Layer name (from the spec).
    pub name: String,
    /// MAC operations.
    pub macs: u64,
    /// Pure compute cycles (no memory stalls).
    pub compute_cycles: u64,
    /// Activation memory transfer cycles at GB bandwidth.
    pub memory_cycles: u64,
    /// Total cycles after combining compute and memory per the SWPR setting.
    pub cycles: u64,
    /// MAC utilisation over the assigned lanes (`macs / (cycles·lanes·8)`).
    pub utilization: f64,
    /// Words read from the activation GBs.
    pub act_read_words: u64,
    /// Words written to the activation GBs.
    pub act_write_words: u64,
    /// Words fetched from the weight GB.
    pub weight_gb_words: u64,
    /// Whether this is a depth-wise layer (drives the partial
    /// time-multiplexing opportunity analysis).
    pub is_depthwise: bool,
    /// Lanes this cost was computed for.
    pub lanes: usize,
}

impl LayerCost {
    /// A zero-cost placeholder (used for layers that fold away entirely).
    pub fn zero(name: &str) -> Self {
        LayerCost {
            name: name.to_owned(),
            macs: 0,
            compute_cycles: 0,
            memory_cycles: 0,
            cycles: 0,
            utilization: 0.0,
            act_read_words: 0,
            act_write_words: 0,
            weight_gb_words: 0,
            is_depthwise: false,
            lanes: 0,
        }
    }

    /// Energy event counts for this layer.
    pub fn energy_counts(&self) -> EnergyCounts {
        EnergyCounts {
            macs: self.macs,
            gb_words: self.act_read_words + self.act_write_words + self.weight_gb_words,
            // every activation word also traverses the local input/output
            // buffers; weights traverse the ping-pong buffers per use
            local_words: self.act_read_words + self.act_write_words + self.macs / 8,
            offchip_bytes: 0,
            cycles: self.cycles,
        }
    }

    /// Idle MAC-cycles on the assigned lanes — the resource the partial
    /// time-multiplexing mode hands to the segmentation model.
    pub fn idle_mac_cycles(&self, macs_per_lane: usize) -> u64 {
        let capacity = self.cycles * self.lanes as u64 * macs_per_lane as u64;
        capacity.saturating_sub(self.macs)
    }
}

fn div_ceil(a: u64, b: u64) -> u64 {
    assert!(b > 0, "division by zero");
    a.div_ceil(b)
}

/// Halo overhead factor for input feature-wise partition: partition borders
/// re-read `k-1` rows per boundary.
fn partition_overhead(cfg: &AcceleratorConfig, k: usize, oh: usize) -> f64 {
    if cfg.feature_partition && cfg.partition_count > 1 && oh > 0 {
        let halo_rows = (cfg.partition_count - 1) * (k.saturating_sub(1));
        1.0 + halo_rows as f64 / oh as f64
    } else {
        1.0
    }
}

/// Computes the execution cost of `layer` on `lanes` MAC lanes.
///
/// # Panics
///
/// Panics if `lanes == 0` for a compute layer, or the config is invalid.
pub fn layer_cost(layer: &LayerSpec, lanes: usize, cfg: &AcceleratorConfig) -> LayerCost {
    cfg.validate();
    let bw = cfg.effective_act_words_per_cycle() as u64;
    let mpl = cfg.macs_per_lane as u64;
    let (oh, ow) = layer.out_hw();
    let (oh, ow, iw) = (oh as u64, ow as u64, layer.w_in as u64);
    let c_in = layer.c_in as u64;
    let c_out = layer.c_out as u64;
    let macs = layer.macs();

    let (compute_cycles, act_read_words, weight_passes, is_dw) = match layer.kind {
        LayerKind::Conv { .. } | LayerKind::Pointwise { .. } => {
            let k = match layer.kind {
                LayerKind::Conv { k, .. } => k as u64,
                _ => 1,
            };
            assert!(lanes > 0, "compute layer needs lanes");
            let work_units = c_out * oh;
            let cycles_row = div_ceil(ow, mpl) * k * k * c_in;
            let rounds = div_ceil(work_units, lanes as u64);
            let compute = rounds * cycles_row;
            // input re-fetch when the lane partition cannot cover all output
            // channels of a row simultaneously (the concurrent-mode penalty)
            let refetch = div_ceil(c_out, lanes as u64);
            let overhead = partition_overhead(cfg, k as usize, oh as usize);
            let reads =
                (oh as f64 * k as f64 * c_in as f64 * refetch as f64 * iw as f64 * overhead) as u64;
            (compute, reads, rounds.min(oh).max(1), false)
        }
        LayerKind::Depthwise { k, .. } => {
            let k = k as u64;
            assert!(lanes > 0, "compute layer needs lanes");
            let work_units = c_out * oh;
            // deeper row-wise reuse: split rows across two lanes when lanes
            // would idle
            let split = if cfg.intra_channel_reuse && work_units * 2 <= lanes as u64 {
                2
            } else {
                1
            };
            let cycles_row = div_ceil(ow, mpl * split) * k * k;
            let rounds = div_ceil(work_units * split, lanes as u64);
            let compute = rounds * cycles_row;
            // column-wise intra-channel reuse shares each loaded input row
            // across the k weight rows
            let row_reads = if cfg.intra_channel_reuse {
                c_out * oh
            } else {
                c_out * oh * k
            };
            let overhead = partition_overhead(cfg, k as usize, oh as usize);
            let reads = (row_reads as f64 * iw as f64 * overhead) as u64;
            (compute, reads, rounds.min(oh).max(1), true)
        }
        LayerKind::FullyConnected => {
            assert!(lanes > 0, "compute layer needs lanes");
            let cycles_row = div_ceil(c_in, mpl);
            let rounds = div_ceil(c_out, lanes as u64);
            (rounds * cycles_row, c_in, 1, false)
        }
        LayerKind::MatMul { m } => {
            assert!(lanes > 0, "compute layer needs lanes");
            let m = m as u64;
            let cycles_row = div_ceil(c_out, mpl) * c_in;
            let rounds = div_ceil(m, lanes as u64);
            (rounds * cycles_row, m * c_in, rounds.max(1), false)
        }
        // pure data-movement layers: traffic only
        LayerKind::MaxPool { .. }
        | LayerKind::Upsample { .. }
        | LayerKind::Concat { .. }
        | LayerKind::GlobalAvgPool => {
            let reads = layer.input_elems();
            (0, reads, 0, false)
        }
    };

    let act_write_words = layer.output_elems();
    let weight_words_once = layer.params();
    let weight_gb_words =
        if weight_words_once * cfg.bytes_per_word as u64 <= cfg.weight_buffer_bytes as u64 {
            weight_words_once
        } else {
            // weights do not fit the ping-pong buffer: refetched across passes
            weight_words_once * weight_passes
        };

    let memory_cycles = div_ceil(act_read_words + act_write_words, bw);
    let cycles = if cfg.swpr_buffer {
        compute_cycles.max(memory_cycles)
    } else {
        compute_cycles + memory_cycles
    };
    let capacity = cycles.max(1) * lanes.max(1) as u64 * mpl;
    LayerCost {
        name: layer.name.clone(),
        macs,
        compute_cycles,
        memory_cycles,
        cycles,
        utilization: macs as f64 / capacity as f64,
        act_read_words,
        act_write_words,
        weight_gb_words,
        is_depthwise: is_dw,
        lanes,
    }
}

/// Cost of running an entire model's layers sequentially on `lanes` lanes.
pub fn model_cost(layers: &[LayerSpec], lanes: usize, cfg: &AcceleratorConfig) -> Vec<LayerCost> {
    layers.iter().map(|l| layer_cost(l, lanes, cfg)).collect()
}

/// Total cycles of a sequence of layer costs.
pub fn total_cycles(costs: &[LayerCost]) -> u64 {
    costs.iter().map(|c| c.cycles).sum()
}

/// MAC-weighted average utilisation of a sequence of layer costs.
pub fn average_utilization(costs: &[LayerCost], lanes: usize, macs_per_lane: usize) -> f64 {
    let cycles: u64 = costs.iter().map(|c| c.cycles).sum();
    let macs: u64 = costs.iter().map(|c| c.macs).sum();
    if cycles == 0 {
        return 0.0;
    }
    macs as f64 / (cycles as f64 * (lanes * macs_per_lane) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyecod_models::LayerSpec;

    fn cfg(swpr: bool, reuse: bool) -> AcceleratorConfig {
        AcceleratorConfig {
            swpr_buffer: swpr,
            intra_channel_reuse: reuse,
            ..AcceleratorConfig::paper_default()
        }
    }

    fn conv(c_in: usize, c_out: usize, k: usize, hw: usize) -> LayerSpec {
        LayerSpec {
            name: "conv".into(),
            kind: LayerKind::Conv { k, stride: 1 },
            c_in,
            c_out,
            h_in: hw,
            w_in: hw,
        }
    }

    fn dw(c: usize, k: usize, hw: usize) -> LayerSpec {
        LayerSpec {
            name: "dw".into(),
            kind: LayerKind::Depthwise { k, stride: 1 },
            c_in: c,
            c_out: c,
            h_in: hw,
            w_in: hw,
        }
    }

    #[test]
    fn wide_generic_conv_reaches_full_utilization() {
        // 32->32 conv at 128x128: work divides the lanes exactly.
        let mut c = cfg(true, true);
        c.feature_partition = false;
        let cost = layer_cost(&conv(32, 32, 3, 128), 128, &c);
        assert!(cost.utilization > 0.95, "utilization {}", cost.utilization);
        assert_eq!(cost.macs, 9 * 32 * 32 * 128 * 128);
    }

    #[test]
    fn depthwise_naive_is_bandwidth_starved() {
        // §5.1 Challenge #II: same dataflow on depth-wise layers gives very
        // low utilisation (paper: 7.9% of ops but 33.6% of time).
        let c = cfg(false, false);
        let cost = layer_cost(&dw(96, 3, 32), 128, &c);
        assert!(
            cost.utilization < 0.30,
            "naive depthwise utilization {}",
            cost.utilization
        );
        assert!(cost.memory_cycles > cost.compute_cycles);
    }

    #[test]
    fn intra_channel_reuse_cuts_depthwise_time() {
        // §6.4: intra-channel reuse reduces depth-wise processing time by ~71%.
        let naive = layer_cost(&dw(96, 3, 32), 128, &cfg(false, false));
        let tuned = layer_cost(&dw(96, 3, 32), 128, &cfg(true, true));
        let reduction = 1.0 - tuned.cycles as f64 / naive.cycles as f64;
        assert!(
            reduction > 0.5,
            "expected a large depthwise time reduction, got {reduction:.2}"
        );
    }

    #[test]
    fn column_reuse_divides_depthwise_traffic_by_k() {
        let naive = layer_cost(&dw(64, 5, 16), 128, &cfg(false, false));
        let tuned = layer_cost(&dw(64, 5, 16), 128, &cfg(false, true));
        let ratio = naive.act_read_words as f64 / tuned.act_read_words as f64;
        assert!((ratio - 5.0).abs() < 0.01, "traffic ratio {ratio}");
    }

    #[test]
    fn deeper_row_reuse_helps_small_late_layers() {
        // a small late depthwise layer cannot fill 128 lanes with whole rows
        let off = layer_cost(&dw(4, 3, 14), 128, &cfg(true, false));
        let on = layer_cost(&dw(4, 3, 14), 128, &cfg(true, true));
        assert!(on.compute_cycles < off.compute_cycles);
    }

    #[test]
    fn swpr_overlaps_memory_with_compute() {
        let serial = layer_cost(&dw(96, 3, 32), 128, &cfg(false, true));
        let overlapped = layer_cost(&dw(96, 3, 32), 128, &cfg(true, true));
        assert!(overlapped.cycles < serial.cycles);
        assert_eq!(serial.cycles, serial.compute_cycles + serial.memory_cycles);
        // with SWPR the effective bandwidth also doubles, so memory cycles shrink
        assert!(overlapped.cycles <= serial.compute_cycles.max(serial.memory_cycles));
    }

    #[test]
    fn fewer_lanes_increase_input_refetch() {
        // the concurrent-mode penalty: a 4-lane partition re-reads inputs
        let full = layer_cost(&conv(32, 32, 3, 32), 128, &cfg(true, true));
        let tiny = layer_cost(&conv(32, 32, 3, 32), 4, &cfg(true, true));
        assert!(tiny.act_read_words > 4 * full.act_read_words);
    }

    #[test]
    fn more_lanes_never_cost_more_cycles() {
        let c = cfg(true, true);
        for spec in [conv(16, 32, 3, 32), dw(64, 3, 16), conv(8, 8, 1, 64)] {
            let mut prev = u64::MAX;
            for lanes in [16, 32, 64, 128] {
                let cost = layer_cost(&spec, lanes, &c);
                assert!(
                    cost.cycles <= prev,
                    "{}: cycles grew from {prev} to {} at {lanes} lanes",
                    spec.name,
                    cost.cycles
                );
                prev = cost.cycles;
            }
        }
    }

    #[test]
    fn oversized_weights_are_refetched() {
        // a layer whose weights exceed the 64KB ping-pong buffer
        let big = conv(256, 512, 3, 14); // 1.18M params > 64K words
        let cost = layer_cost(&big, 128, &cfg(true, true));
        assert!(cost.weight_gb_words > big.params());
        let small = conv(16, 16, 3, 14);
        let cost_s = layer_cost(&small, 128, &cfg(true, true));
        assert_eq!(cost_s.weight_gb_words, small.params());
    }

    #[test]
    fn data_movement_layers_cost_memory_only() {
        let pool = LayerSpec {
            name: "pool".into(),
            kind: LayerKind::MaxPool { k: 2 },
            c_in: 32,
            c_out: 32,
            h_in: 64,
            w_in: 64,
        };
        let cost = layer_cost(&pool, 128, &cfg(true, true));
        assert_eq!(cost.compute_cycles, 0);
        assert_eq!(cost.macs, 0);
        assert!(cost.cycles > 0);
    }

    #[test]
    fn idle_mac_cycles_complement_utilization() {
        let c = cfg(true, true);
        let cost = layer_cost(&dw(96, 3, 32), 128, &c);
        let idle = cost.idle_mac_cycles(8);
        let capacity = cost.cycles * 128 * 8;
        assert_eq!(idle, capacity - cost.macs);
    }
}
