//! Workload orchestration between the segmentation and gaze models
//! (paper §5.1 Challenge #I / Principle #I) and the window-level simulator.

use crate::config::AcceleratorConfig;
use crate::cost::{model_cost, LayerCost};
use crate::energy::{EnergyCounts, EnergyModel};
use crate::workload::PipelineWorkload;
use eyecod_telemetry::{static_counter, static_histogram};
use serde::{Deserialize, Serialize};

/// How the two models share the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Orchestration {
    /// One model's layer at a time occupies all MACs (paper Fig. 4a). The
    /// segmentation frame becomes a latency spike; sustaining the target
    /// FPS would need ~25 % extra MACs.
    TimeMultiplexed,
    /// A fixed spatial split of the MAC lanes runs both models
    /// simultaneously (paper Fig. 4b). Balancing execution frequencies
    /// leaves the segmentation model only a handful of lanes, destroying
    /// its data reuse.
    Concurrent,
    /// EyeCoD's mode (paper Fig. 6): the gaze model owns the machine; the
    /// segmentation model executes on MACs left idle by the gaze model's
    /// low-utilisation (depth-wise and small late) layers.
    PartialTimeMultiplexed,
}

/// Result of simulating one evaluation window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowReport {
    /// Workload name.
    pub workload: String,
    /// Orchestration used.
    pub orchestration: Orchestration,
    /// Total cycles for the window.
    pub cycles: u64,
    /// Throughput in frames per second.
    pub fps: f64,
    /// MAC-utilisation averaged over the window.
    pub avg_utilization: f64,
    /// Total energy in joules for the window.
    pub energy_joules: f64,
    /// Energy per frame in millijoules.
    pub energy_per_frame_mj: f64,
    /// Aggregated event counts.
    pub counts: EnergyCounts,
    /// Per-layer costs of the per-frame stages (reconstruction + gaze).
    pub frame_costs: Vec<LayerCost>,
    /// Per-layer costs of the periodic segmentation stage.
    pub seg_costs: Vec<LayerCost>,
    /// Fraction of the segmentation work absorbed into idle MACs
    /// (only meaningful in partial time-multiplexing).
    pub seg_absorbed: f64,
    /// Cycles of the slowest frame in the window. Under time-multiplexing
    /// the segmentation frame is a latency spike (paper Challenge #I);
    /// partial time-multiplexing flattens it.
    pub worst_frame_cycles: u64,
}

impl WindowReport {
    /// Frames-per-joule energy efficiency.
    pub fn frames_per_joule(&self) -> f64 {
        if self.energy_per_frame_mj <= 0.0 {
            return 0.0;
        }
        1.0 / (self.energy_per_frame_mj * 1e-3)
    }
}

/// Simulates pipeline workloads over evaluation windows.
#[derive(Debug, Clone)]
pub struct WindowSimulator {
    config: AcceleratorConfig,
    energy: EnergyModel,
}

impl WindowSimulator {
    /// Creates a simulator with the default 28 nm energy model.
    pub fn new(config: AcceleratorConfig) -> Self {
        config.validate();
        WindowSimulator {
            config,
            energy: EnergyModel::default(),
        }
    }

    /// Creates a simulator with a custom energy model.
    pub fn with_energy(config: AcceleratorConfig, energy: EnergyModel) -> Self {
        config.validate();
        WindowSimulator { config, energy }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Runs one evaluation window of `workload`.
    pub fn run_window(&self, workload: &PipelineWorkload) -> WindowReport {
        workload.validate();
        let cfg = &self.config;
        let lanes = cfg.mac_lanes;
        let frames = workload.window as u64;

        // Per-frame stage costs on the full machine.
        let mut frame_costs: Vec<LayerCost> = Vec::new();
        for m in &workload.per_frame {
            frame_costs.extend(model_cost(&m.layers, lanes, cfg));
        }
        let frame_cycles: u64 = frame_costs.iter().map(|c| c.cycles).sum();

        let (seg_costs_full, seg_period) = match &workload.periodic {
            Some((seg, period)) => (model_cost(&seg.layers, lanes, cfg), *period as u64),
            None => (Vec::new(), frames),
        };
        let seg_cycles_full: u64 = seg_costs_full.iter().map(|c| c.cycles).sum();
        let seg_runs = if workload.periodic.is_some() {
            (frames / seg_period).max(1)
        } else {
            0
        };

        let (window_cycles, seg_costs, seg_absorbed, worst_frame_cycles) = match cfg.orchestration {
            Orchestration::TimeMultiplexed => (
                frames * frame_cycles + seg_runs * seg_cycles_full,
                seg_costs_full,
                0.0,
                // the frame that also runs segmentation is the spike
                frame_cycles + seg_cycles_full,
            ),
            Orchestration::Concurrent => {
                let (cycles, costs) = self.concurrent_window(workload, frames, seg_runs);
                let worst = cycles.div_ceil(frames);
                (cycles, costs, 0.0, worst)
            }
            Orchestration::PartialTimeMultiplexed => {
                let (cycles, absorbed) = self.partial_window(
                    &frame_costs,
                    frame_cycles,
                    &seg_costs_full,
                    frames,
                    seg_runs,
                );
                // the residue (if any) is spread across the window, so
                // frame latency is nearly flat
                let worst = cycles.div_ceil(frames);
                (cycles, seg_costs_full, absorbed, worst)
            }
        };

        // Energy: every stage executes exactly once per schedule regardless
        // of orchestration; only cycle counts (static energy, utilisation)
        // differ.
        let mut counts = EnergyCounts::default();
        for c in &frame_costs {
            counts.accumulate(&c.energy_counts().scaled(frames));
        }
        for c in &seg_costs {
            counts.accumulate(&c.energy_counts().scaled(seg_runs));
        }
        counts.offchip_bytes += workload.offchip_bytes_per_frame * frames;
        counts.cycles = window_cycles;

        static_counter!("accel/windows").inc();
        static_histogram!("accel/window_cycles").record(window_cycles);
        if eyecod_telemetry::enabled() {
            // per-orchestration cycle distributions, e.g.
            // `accel/window_cycles/PartialTimeMultiplexed`
            eyecod_telemetry::histogram(&format!("accel/window_cycles/{:?}", cfg.orchestration))
                .record(window_cycles);
        }

        let energy_joules = counts.energy_joules(&self.energy, cfg.clock_mhz);
        let total_macs: u64 = counts.macs;
        let avg_utilization =
            total_macs as f64 / (window_cycles as f64 * cfg.total_macs() as f64).max(1.0);
        let seconds = window_cycles as f64 / (cfg.clock_mhz * 1e6);
        let fps = frames as f64 / seconds;

        WindowReport {
            workload: workload.name.clone(),
            orchestration: cfg.orchestration,
            cycles: window_cycles,
            fps,
            avg_utilization,
            energy_joules,
            energy_per_frame_mj: energy_joules * 1e3 / frames as f64,
            counts,
            frame_costs,
            seg_costs,
            seg_absorbed,
            worst_frame_cycles,
        }
    }

    /// MACs the accelerator would need to hold `target_fps` on the
    /// *worst* frame — the paper's Challenge #I sizing argument (sustaining
    /// 240 FPS through the segmentation frame needs ~25 % extra MACs under
    /// plain time-multiplexing).
    pub fn macs_needed_for_worst_frame(&self, report: &WindowReport, target_fps: f64) -> f64 {
        let budget_cycles = self.config.clock_mhz * 1e6 / target_fps;
        self.config.total_macs() as f64 * report.worst_frame_cycles as f64 / budget_cycles
    }

    /// Concurrent mode: a static lane split balancing the two models'
    /// work rates; both partitions run in parallel.
    fn concurrent_window(
        &self,
        workload: &PipelineWorkload,
        frames: u64,
        seg_runs: u64,
    ) -> (u64, Vec<LayerCost>) {
        let cfg = &self.config;
        let lanes = cfg.mac_lanes;
        let per_frame_macs: u64 = workload.per_frame.iter().map(|m| m.macs()).sum();
        let seg_macs = workload
            .periodic
            .as_ref()
            .map(|(m, _)| m.macs())
            .unwrap_or(0);
        // Balance by work share over the window (paper: this assigns the
        // segmentation model only ~4 of 1024 MACs).
        let total = per_frame_macs * frames + seg_macs * seg_runs;
        let seg_lanes = if seg_macs == 0 {
            0
        } else {
            (((seg_macs * seg_runs) as f64 / total.max(1) as f64) * lanes as f64)
                .round()
                .max(1.0) as usize
        };
        let gaze_lanes = lanes - seg_lanes.min(lanes - 1);

        let mut frame_costs = Vec::new();
        for m in &workload.per_frame {
            frame_costs.extend(model_cost(&m.layers, gaze_lanes, cfg));
        }
        let frame_cycles: u64 = frame_costs.iter().map(|c| c.cycles).sum();
        let seg_costs = workload
            .periodic
            .as_ref()
            .map(|(m, _)| model_cost(&m.layers, seg_lanes.max(1), cfg))
            .unwrap_or_default();
        let seg_cycles: u64 = seg_costs.iter().map(|c| c.cycles).sum();
        let cycles = (frames * frame_cycles).max(seg_runs * seg_cycles);
        (cycles, seg_costs)
    }

    /// Partial time-multiplexing: the segmentation model soaks up MAC-cycles
    /// left idle by low-utilisation gaze layers (util < 80 %, the red line
    /// of paper Fig. 7), at a small activation-bandwidth premium; any
    /// residue runs time-multiplexed.
    fn partial_window(
        &self,
        frame_costs: &[LayerCost],
        frame_cycles: u64,
        seg_costs: &[LayerCost],
        frames: u64,
        seg_runs: u64,
    ) -> (u64, f64) {
        let cfg = &self.config;
        let mpl = cfg.macs_per_lane;
        // Idle MAC-cycles the gaze stages expose per frame on layers below
        // the 80% utilisation line.
        let idle_per_frame: u64 = frame_costs
            .iter()
            .filter(|c| c.utilization < 0.80)
            .map(|c| c.idle_mac_cycles(mpl))
            .sum();
        // Scavenged execution achieves a reduced efficiency.
        const SCAVENGE_EFF: f64 = 0.85;
        let seg_demand: f64 = seg_costs
            .iter()
            .map(|c| c.macs as f64 / SCAVENGE_EFF)
            .sum::<f64>()
            * seg_runs as f64;
        let available = (idle_per_frame * frames) as f64 * SCAVENGE_EFF;
        let absorbed = seg_demand.min(available);
        let absorbed_frac = if seg_demand > 0.0 {
            absorbed / seg_demand
        } else {
            1.0
        };
        let leftover_macs = seg_demand - absorbed;
        let leftover_cycles =
            (leftover_macs / (cfg.total_macs() as f64 * SCAVENGE_EFF)).ceil() as u64;
        // Running both models concurrently raises the activation GB
        // bandwidth requirement ~10% (paper); with the SWPR buffer most of
        // it is hidden.
        let bw_penalty = if cfg.swpr_buffer { 1.02 } else { 1.08 };
        let cycles = ((frames * frame_cycles) as f64 * bw_penalty).ceil() as u64 + leftover_cycles;
        (cycles, absorbed_frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::EyeCodWorkload;

    fn sim(orch: Orchestration, swpr: bool, reuse: bool) -> WindowSimulator {
        WindowSimulator::new(AcceleratorConfig {
            orchestration: orch,
            swpr_buffer: swpr,
            intra_channel_reuse: reuse,
            ..AcceleratorConfig::paper_default()
        })
    }

    #[test]
    fn full_eyecod_exceeds_240_fps() {
        let report = sim(Orchestration::PartialTimeMultiplexed, true, true)
            .run_window(&EyeCodWorkload::paper_default().into_workload());
        assert!(report.fps > 240.0, "fps {}", report.fps);
        assert!(
            report.avg_utilization > 0.5,
            "util {}",
            report.avg_utilization
        );
    }

    #[test]
    fn partial_beats_time_multiplexed() {
        let w = EyeCodWorkload::paper_default().into_workload();
        let tm = sim(Orchestration::TimeMultiplexed, true, true).run_window(&w);
        let pm = sim(Orchestration::PartialTimeMultiplexed, true, true).run_window(&w);
        assert!(
            pm.fps > tm.fps,
            "partial {} should beat time-mux {}",
            pm.fps,
            tm.fps
        );
    }

    #[test]
    fn partial_beats_concurrent() {
        let w = EyeCodWorkload::paper_default().into_workload();
        let cc = sim(Orchestration::Concurrent, true, true).run_window(&w);
        let pm = sim(Orchestration::PartialTimeMultiplexed, true, true).run_window(&w);
        assert!(
            pm.fps > cc.fps,
            "partial {} should beat concurrent {}",
            pm.fps,
            cc.fps
        );
    }

    #[test]
    fn concurrent_gives_segmentation_very_few_lanes() {
        // paper: a balanced split leaves segmentation ~4 of 1024 MACs
        let w = EyeCodWorkload::paper_default().into_workload();
        let cc = sim(Orchestration::Concurrent, true, true).run_window(&w);
        let seg_lanes = cc.seg_costs.first().map(|c| c.lanes).unwrap_or(0);
        assert!(
            seg_lanes * 4 <= 128,
            "segmentation partition should be a small minority, got {seg_lanes} lanes"
        );
    }

    #[test]
    fn swpr_improves_throughput() {
        let w = EyeCodWorkload::paper_default().into_workload();
        let without = sim(Orchestration::TimeMultiplexed, false, false).run_window(&w);
        let with = sim(Orchestration::TimeMultiplexed, true, false).run_window(&w);
        let ratio = with.fps / without.fps;
        assert!(
            ratio > 1.1,
            "SWPR should give a tangible speedup, got {ratio:.2}x"
        );
    }

    #[test]
    fn intra_channel_reuse_improves_throughput() {
        let w = EyeCodWorkload::paper_default().into_workload();
        let without = sim(Orchestration::PartialTimeMultiplexed, true, false).run_window(&w);
        let with = sim(Orchestration::PartialTimeMultiplexed, true, true).run_window(&w);
        let ratio = with.fps / without.fps;
        assert!(ratio > 1.05, "reuse speedup {ratio:.2}x");
    }

    #[test]
    fn most_segmentation_work_is_absorbed() {
        let report = sim(Orchestration::PartialTimeMultiplexed, true, true)
            .run_window(&EyeCodWorkload::paper_default().into_workload());
        assert!(
            report.seg_absorbed > 0.5,
            "absorbed fraction {}",
            report.seg_absorbed
        );
    }

    #[test]
    fn time_multiplexing_has_a_segmentation_latency_spike() {
        let w = EyeCodWorkload::paper_default().into_workload();
        let tm = sim(Orchestration::TimeMultiplexed, true, true).run_window(&w);
        let pm = sim(Orchestration::PartialTimeMultiplexed, true, true).run_window(&w);
        let tm_avg = tm.cycles / 50;
        // the segmentation frame is several times the average frame
        assert!(
            tm.worst_frame_cycles > 2 * tm_avg,
            "time-mux spike {} vs avg {tm_avg}",
            tm.worst_frame_cycles
        );
        // partial mode flattens the spike
        assert!(tm.worst_frame_cycles > 2 * pm.worst_frame_cycles);
        // Challenge #I: sustaining a frame-rate target through the spike
        // needs substantially more MACs under time-multiplexing
        let target = pm.fps;
        let s = sim(Orchestration::TimeMultiplexed, true, true);
        let needed_tm = s.macs_needed_for_worst_frame(&tm, target);
        let s2 = sim(Orchestration::PartialTimeMultiplexed, true, true);
        let needed_pm = s2.macs_needed_for_worst_frame(&pm, target);
        assert!(
            needed_tm > 1.2 * needed_pm,
            "time-mux should need extra MACs: {needed_tm:.0} vs {needed_pm:.0}"
        );
    }

    #[test]
    fn energy_counts_are_orchestration_invariant_for_dynamic_work() {
        let w = EyeCodWorkload::paper_default().into_workload();
        let tm = sim(Orchestration::TimeMultiplexed, true, true).run_window(&w);
        let pm = sim(Orchestration::PartialTimeMultiplexed, true, true).run_window(&w);
        assert_eq!(tm.counts.macs, pm.counts.macs);
        assert_eq!(tm.counts.gb_words, pm.counts.gb_words);
    }

    #[test]
    fn lens_system_is_slower_than_eyecod() {
        let eyecod = sim(Orchestration::PartialTimeMultiplexed, true, true)
            .run_window(&EyeCodWorkload::paper_default().into_workload());
        let lens = WindowSimulator::new(AcceleratorConfig::ablation_baseline())
            .run_window(&EyeCodWorkload::lens_based().into_workload());
        let speedup = eyecod.fps / lens.fps;
        // Table 6: full EyeCoD is ~4x the lens-based baseline.
        assert!(
            speedup > 2.0,
            "end-to-end speedup {speedup:.2}x should be substantial"
        );
    }
}
