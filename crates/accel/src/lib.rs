//! # eyecod-accel
//!
//! A cycle-level simulator of the EyeCoD accelerator (paper §5 and Fig. 9):
//! 128 MAC lanes × 8 MACs at 370 MHz, dual 512 KB activation global buffers,
//! a 512 KB weight global buffer with ping-pong weight buffers, an index
//! SRAM and an instruction SRAM.
//!
//! The paper evaluates its design with "an in-house cycle-accurate simulator
//! … verified against the RTL implementation"; this crate reproduces that
//! methodology. Layer execution is modelled by closed-form cycle/traffic
//! equations derived from the MAC-lane microarchitecture (one input-act row
//! per lane FIFO, weights streamed tap-by-tap), and those equations are
//! validated against an explicit event-level MAC-lane simulation in
//! [`maclane`].
//!
//! The four hardware contributions of the paper are all modelled and
//! individually toggleable for the Table 6 ablation:
//!
//! * **partial time-multiplexing** workload orchestration
//!   ([`schedule::Orchestration::PartialTimeMultiplexed`]);
//! * **intra-channel reuse** for depth-wise layers
//!   ([`config::AcceleratorConfig::intra_channel_reuse`]);
//! * **input feature-wise partition**
//!   ([`config::AcceleratorConfig::feature_partition`]);
//! * the **sequential-write-parallel-read input activation buffer**
//!   ([`config::AcceleratorConfig::swpr_buffer`], functional model in
//!   [`swpr`]).
//!
//! # Example
//!
//! ```
//! use eyecod_accel::config::AcceleratorConfig;
//! use eyecod_accel::schedule::WindowSimulator;
//! use eyecod_accel::workload::EyeCodWorkload;
//!
//! let sim = WindowSimulator::new(AcceleratorConfig::paper_default());
//! let report = sim.run_window(&EyeCodWorkload::paper_default().into_workload());
//! assert!(report.fps > 240.0, "EyeCoD must beat the 240 FPS real-time bar");
//! ```

pub mod config;
pub mod cost;
pub mod energy;
pub mod isa;
pub mod maclane;
pub mod roofline;
pub mod schedule;
pub mod storage;
pub mod swpr;
pub mod trace;
pub mod workload;

pub use config::AcceleratorConfig;
pub use cost::LayerCost;
pub use schedule::{Orchestration, WindowReport, WindowSimulator};
pub use workload::{EyeCodWorkload, PipelineWorkload};
