//! Weight initialisation schemes.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::Rng;

/// Kaiming (He) normal initialisation for ReLU-family networks:
/// `N(0, sqrt(2 / fan_in))`.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming(shape: Shape, fan_in: usize, rng: &mut impl Rng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be non-zero");
    let std = (2.0 / fan_in as f32).sqrt();
    gaussian(shape, 0.0, std, rng)
}

/// Xavier/Glorot uniform initialisation:
/// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier(shape: Shape, fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be non-zero");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::from_fn(shape, |_, _, _, _| rng.gen_range(-bound..bound))
}

/// Gaussian initialisation via Box–Muller (avoids depending on
/// `rand_distr`).
pub fn gaussian(shape: Shape, mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::from_fn(shape, |_, _, _, _| {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        mean + std * z
    })
}

/// Uniform initialisation over `[lo, hi)`.
pub fn uniform(shape: Shape, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    assert!(lo < hi, "uniform range must be non-empty");
    Tensor::from_fn(shape, |_, _, _, _| rng.gen_range(lo..hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_std_is_plausible() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = kaiming(Shape::new(64, 32, 3, 3), 32 * 9, &mut rng);
        let mean = t.mean();
        let var = t
            .as_slice()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.shape().len() as f32;
        let expected = 2.0 / (32.0 * 9.0);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!(
            (var - expected).abs() / expected < 0.15,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn xavier_is_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier(Shape::vector(100, 50), 50, 100, &mut rng);
        let bound = (6.0f32 / 150.0).sqrt();
        assert!(t.max_abs() <= bound);
    }

    #[test]
    fn uniform_respects_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = uniform(Shape::vector(1, 1000), -0.5, 0.25, &mut rng);
        assert!(t.min() >= -0.5 && t.max() < 0.25);
    }

    #[test]
    fn gaussian_is_reproducible_per_seed() {
        let a = gaussian(
            Shape::vector(1, 16),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(7),
        );
        let b = gaussian(
            Shape::vector(1, 16),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
    }
}
