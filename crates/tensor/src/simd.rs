//! Runtime SIMD capability probe and the int8 building-block kernels.
//!
//! Every SIMD-dispatched kernel in the workspace (the int8 `quant` ops, the
//! f32 im2col GEMM in [`crate::ops`], and the f64 GEMM tile in
//! `eyecod-optics`) routes through the single probe here: AVX2 is used iff
//! the host supports it **and** the `EYECOD_NO_SIMD=1` kill switch is not
//! set. That gives every test suite a one-variable way to run both dispatch
//! paths, and every kernel keeps its scalar implementation as the retained
//! differential baseline.
//!
//! # Exactness contract
//!
//! The int8 kernels accumulate i8×i8 products in `i32`. Integer addition is
//! exactly associative, so the vector kernels are **bit-identical** to their
//! scalar references by construction — any blocking or lane order is
//! admissible. Two hazards have to be designed out instead of tested away:
//!
//! * **i16 intermediate saturation.** The AVX2 dot kernel uses the
//!   `vpmaddubsw`-style pairwise widening (`_mm256_maddubs_epi16`), which
//!   multiplies an *unsigned* byte by a signed byte and adds adjacent
//!   products with i16 *saturation*. The sign-split trick (`|x|` as the
//!   unsigned operand, `w` carrying `x`'s sign via `_mm256_sign_epi8`) keeps
//!   every pairwise sum inside `2 · 127 · 127 = 32258 < i16::MAX`, so the
//!   saturating add can never actually saturate — **provided every operand
//!   lies in `[-127, 127]`**. All [`crate::quant::QTensor`] constructors
//!   clamp to ±127 (never −128), which is exactly this invariant; the
//!   kernels `debug_assert` it.
//! * **i32 accumulator overflow.** A reduction of depth `K` is bounded by
//!   `K · 127 · 127`, which exceeds `i32::MAX` for
//!   `K > `[`MAX_REDUCTION_DEPTH`]. The quant ops assert the bound at call
//!   time and `eyecod-models` checks it when a network is quantised.

use std::sync::OnceLock;

/// Maximum admissible reduction depth (number of i8×i8 products summed into
/// one `i32` accumulator) before the worst case `K · 127 · 127` could
/// overflow: `i32::MAX / 127² = 133152`.
///
/// Every int8 reduction in the workspace (qconv taps per output element,
/// qlinear input features, qpool plane sums) must stay at or below this
/// bound; the quant ops enforce it with a checked assert and the kernels
/// here re-check it with `debug_assert`s.
pub const MAX_REDUCTION_DEPTH: usize = (i32::MAX / (127 * 127)) as usize;

/// True when the host CPU supports AVX2, ignoring the kill switch.
pub fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the `EYECOD_NO_SIMD=1` kill switch is set (any value other
/// than `0` or empty counts), read once per process.
pub fn simd_killed() -> bool {
    static KILLED: OnceLock<bool> = OnceLock::new();
    *KILLED.get_or_init(|| std::env::var("EYECOD_NO_SIMD").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// The single capability probe every SIMD dispatch site consults: AVX2 is
/// supported *and* not disabled via `EYECOD_NO_SIMD=1`. Cached, so after the
/// first call this is one predictable load.
pub fn avx2_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| avx2_supported() && !simd_killed())
}

/// In debug builds, checks the ±127 operand invariant the `maddubs`
/// saturation analysis relies on (see the module docs). Release builds
/// compile this to nothing.
#[inline]
fn debug_check_i8_range(xs: &[i8]) {
    debug_assert!(
        xs.iter().all(|&v| v > i8::MIN),
        "int8 SIMD kernels require operands in [-127, 127] (QTensor invariant)"
    );
}

/// Scalar reference dot product `Σ x[i]·w[i]` with exact i32 accumulation —
/// the retained differential baseline for [`qdot_i8`].
pub fn qdot_i8_scalar(x: &[i8], w: &[i8]) -> i32 {
    debug_assert_eq!(x.len(), w.len());
    x.iter().zip(w).map(|(&a, &b)| a as i32 * b as i32).sum()
}

/// Dot product `Σ x[i]·w[i]` with exact i32 accumulation, dispatched to the
/// AVX2 sign-split `maddubs` kernel when [`avx2_enabled`] and long enough to
/// pay for it. Bit-identical to [`qdot_i8_scalar`] (integer accumulation is
/// exactly associative).
///
/// # Panics
///
/// `debug_assert`s that both slices have equal length, stay within
/// [`MAX_REDUCTION_DEPTH`], and respect the ±127 invariant.
pub fn qdot_i8(x: &[i8], w: &[i8]) -> i32 {
    debug_assert!(x.len() <= MAX_REDUCTION_DEPTH);
    #[cfg(target_arch = "x86_64")]
    if x.len() >= 32 && avx2_enabled() {
        // SAFETY: AVX2 support verified by the cached probe above.
        return unsafe { qdot_i8_avx2(x, w) };
    }
    qdot_i8_scalar(x, w)
}

/// Four dot products of one activation row against four weight rows,
/// sharing every activation load — the register tile behind `qlinear`.
/// Bit-identical to four [`qdot_i8_scalar`] calls.
pub fn qdot4_i8(x: &[i8], w: [&[i8]; 4]) -> [i32; 4] {
    debug_assert!(x.len() <= MAX_REDUCTION_DEPTH);
    #[cfg(target_arch = "x86_64")]
    if x.len() >= 32 && avx2_enabled() {
        // SAFETY: AVX2 support verified by the cached probe above.
        return unsafe { qdot4_i8_avx2(x, w) };
    }
    [
        qdot_i8_scalar(x, w[0]),
        qdot_i8_scalar(x, w[1]),
        qdot_i8_scalar(x, w[2]),
        qdot_i8_scalar(x, w[3]),
    ]
}

/// Scalar reference of the widening multiply-accumulate row update
/// `row[i] += x[i] · w` — the retained differential baseline for
/// [`qaxpy_i8`].
pub fn qaxpy_i8_scalar(row: &mut [i32], x: &[i8], w: i32) {
    debug_assert_eq!(row.len(), x.len());
    for (r, &v) in row.iter_mut().zip(x) {
        *r += v as i32 * w;
    }
}

/// Widening multiply-accumulate row update `row[i] += x[i] · w` (the
/// streaming tap kernel of the int8 convolutions), dispatched to AVX2 when
/// [`avx2_enabled`]. Bit-identical to [`qaxpy_i8_scalar`]: the vector path
/// computes each 16-bit product exactly (`|x·w| ≤ 127² < i16::MAX`), widens
/// to i32 and adds — the same per-element arithmetic in a different lane
/// order.
///
/// # Panics
///
/// `debug_assert`s equal slice lengths, `|w| ≤ 127` and the ±127 operand
/// invariant.
pub fn qaxpy_i8(row: &mut [i32], x: &[i8], w: i32) {
    debug_assert!((-127..=127).contains(&w));
    #[cfg(target_arch = "x86_64")]
    if row.len() >= 16 && avx2_enabled() {
        // SAFETY: AVX2 support verified by the cached probe above.
        unsafe { qaxpy_i8_avx2(row, x, w) };
        return;
    }
    qaxpy_i8_scalar(row, x, w);
}

/// Horizontal sum of the eight i32 lanes of a 256-bit accumulator.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn hsum_epi32(acc: std::arch::x86_64::__m256i) -> i32 {
    use std::arch::x86_64::*;
    let lo = _mm256_castsi256_si128(acc);
    let hi = _mm256_extracti128_si256(acc, 1);
    let s = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
    _mm_cvtsi128_si32(s)
}

/// One 32-byte step of the sign-split `maddubs` dot kernel: widens 32
/// pairwise i8×i8 products into eight i32 partial sums and adds them to
/// `acc`. See the module docs for why the i16 intermediate cannot saturate.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn dot_step(
    acc: std::arch::x86_64::__m256i,
    xv: std::arch::x86_64::__m256i,
    wv: std::arch::x86_64::__m256i,
) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::*;
    // sign-split: x·w == |x| · sign(x)·w, with |x| ≤ 127 as the unsigned
    // maddubs operand and the sign folded into w
    let xabs = _mm256_sign_epi8(xv, xv);
    let wsgn = _mm256_sign_epi8(wv, xv);
    // 16 × i16 pairwise sums, each |·| ≤ 2·127² = 32258 (no saturation)
    let pairs = _mm256_maddubs_epi16(xabs, wsgn);
    // widen i16 pairs to 8 × i32 exactly
    _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, _mm256_set1_epi16(1)))
}

/// [`qdot_i8`]'s AVX2 body: 32 products per step via sign-split `maddubs`,
/// scalar remainder, exact i32 total.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn qdot_i8_avx2(x: &[i8], w: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(x.len(), w.len());
    debug_check_i8_range(x);
    debug_check_i8_range(w);
    let n = x.len();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 32 <= n {
        // SAFETY: i + 32 <= n bounds both unaligned 32-byte loads.
        let xv = unsafe { _mm256_loadu_si256(x.as_ptr().add(i) as *const __m256i) };
        let wv = unsafe { _mm256_loadu_si256(w.as_ptr().add(i) as *const __m256i) };
        acc = dot_step(acc, xv, wv);
        i += 32;
    }
    hsum_epi32(acc) + qdot_i8_scalar(&x[i..], &w[i..])
}

/// [`qdot4_i8`]'s AVX2 body: a 4-row register tile (four 256-bit i32
/// accumulators) sharing each 32-byte activation load.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn qdot4_i8_avx2(x: &[i8], w: [&[i8]; 4]) -> [i32; 4] {
    use std::arch::x86_64::*;
    debug_check_i8_range(x);
    let n = x.len();
    for wr in &w {
        debug_assert_eq!(wr.len(), n);
        debug_check_i8_range(wr);
    }
    let mut acc = [_mm256_setzero_si256(); 4];
    let mut i = 0;
    while i + 32 <= n {
        // SAFETY: i + 32 <= n == each row's length bounds every load.
        let xv = unsafe { _mm256_loadu_si256(x.as_ptr().add(i) as *const __m256i) };
        for (a, wr) in acc.iter_mut().zip(&w) {
            let wv = unsafe { _mm256_loadu_si256(wr.as_ptr().add(i) as *const __m256i) };
            *a = dot_step(*a, xv, wv);
        }
        i += 32;
    }
    let mut out = [0i32; 4];
    for (o, (a, wr)) in out.iter_mut().zip(acc.into_iter().zip(&w)) {
        *o = hsum_epi32(a) + qdot_i8_scalar(&x[i..], &wr[i..]);
    }
    out
}

/// [`qaxpy_i8`]'s AVX2 body: 16 outputs per step — load 16 i8, widen to
/// i16, exact `mullo` against the broadcast weight (`|x·w| ≤ 127² <
/// i16::MAX`, so the low 16 bits are the full product), widen both halves
/// to i32 and add into the accumulator row.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn qaxpy_i8_avx2(row: &mut [i32], x: &[i8], w: i32) {
    use std::arch::x86_64::*;
    debug_assert_eq!(row.len(), x.len());
    debug_check_i8_range(x);
    let n = row.len();
    let wv = _mm256_set1_epi16(w as i16);
    let mut i = 0;
    while i + 16 <= n {
        // SAFETY: i + 16 <= n bounds the 16-byte load and both 8-lane
        // accumulator loads/stores.
        unsafe {
            let xv = _mm_loadu_si128(x.as_ptr().add(i) as *const __m128i);
            let x16 = _mm256_cvtepi8_epi16(xv);
            let p16 = _mm256_mullo_epi16(x16, wv);
            let plo = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(p16));
            let phi = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(p16, 1));
            let r0 = row.as_mut_ptr().add(i) as *mut __m256i;
            let r1 = row.as_mut_ptr().add(i + 8) as *mut __m256i;
            _mm256_storeu_si256(
                r0,
                _mm256_add_epi32(_mm256_loadu_si256(r0 as *const _), plo),
            );
            _mm256_storeu_si256(
                r1,
                _mm256_add_epi32(_mm256_loadu_si256(r1 as *const _), phi),
            );
        }
        i += 16;
    }
    qaxpy_i8_scalar(&mut row[i..], &x[i..], w);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, seed: i32) -> Vec<i8> {
        (0..len)
            .map(|i| (((i as i32).wrapping_mul(31).wrapping_add(seed) % 255) - 127) as i8)
            .collect()
    }

    #[test]
    fn dot_kernels_agree_across_lengths() {
        // straddles the 32-lane tile: remainders, exact multiples, short
        for len in [0, 1, 15, 31, 32, 33, 63, 64, 65, 100, 257] {
            let x = pattern(len, 3);
            let w = pattern(len, 11);
            assert_eq!(qdot_i8(&x, &w), qdot_i8_scalar(&x, &w), "len {len}");
        }
    }

    #[test]
    fn dot_kernels_agree_at_saturating_extremes() {
        // all-(±127) operands maximise every i16 pairwise sum — the exact
        // pattern that would saturate a naive maddubs without the sign split
        for len in [32, 33, 64, 127] {
            for (a, b) in [(127i8, 127i8), (-127, 127), (127, -127), (-127, -127)] {
                let x = vec![a; len];
                let w = vec![b; len];
                let want = len as i32 * a as i32 * b as i32;
                assert_eq!(qdot_i8(&x, &w), want, "len {len} a {a} b {b}");
                assert_eq!(qdot_i8_scalar(&x, &w), want);
            }
        }
    }

    #[test]
    fn dot4_matches_four_scalar_dots() {
        for len in [32, 45, 96] {
            let x = pattern(len, 5);
            let ws: Vec<Vec<i8>> = (0..4).map(|s| pattern(len, 17 + s)).collect();
            let tiled = qdot4_i8(&x, [&ws[0], &ws[1], &ws[2], &ws[3]]);
            for (t, w) in tiled.iter().zip(&ws) {
                assert_eq!(*t, qdot_i8_scalar(&x, w), "len {len}");
            }
        }
    }

    #[test]
    fn axpy_kernels_agree_across_lengths_and_weights() {
        for len in [0, 1, 15, 16, 17, 31, 32, 47, 130] {
            for w in [-127, -1, 0, 1, 77, 127] {
                let x = pattern(len, 7);
                let mut a = vec![5i32; len];
                let mut b = a.clone();
                qaxpy_i8(&mut a, &x, w);
                qaxpy_i8_scalar(&mut b, &x, w);
                assert_eq!(a, b, "len {len} w {w}");
            }
        }
    }

    #[test]
    fn probe_is_stable_and_consistent() {
        let first = avx2_enabled();
        assert_eq!(first, avx2_enabled());
        if simd_killed() || !avx2_supported() {
            assert!(!first);
        } else {
            assert!(first);
        }
    }

    #[test]
    fn reduction_depth_bound_is_the_i32_worst_case() {
        let k = MAX_REDUCTION_DEPTH as i64;
        assert!(k * 127 * 127 <= i32::MAX as i64);
        assert!((k + 1) * 127 * 127 > i32::MAX as i64);
    }
}
