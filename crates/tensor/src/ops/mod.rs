//! Functional neural-network operators (forward and backward).
//!
//! Every operator is a free function over [`Tensor`](crate::Tensor)s; the
//! stateful, trainable wrappers live in [`crate::layer`]. Backward functions
//! take the cached forward inputs plus the upstream gradient and return input
//! (and where applicable parameter) gradients.

mod activation;
mod conv;
mod fastconv;
mod linear;
mod norm;
mod pool;
mod resize;
mod spatial;

pub use activation::{
    leaky_relu, leaky_relu_backward, relu, relu_backward, sigmoid, sigmoid_backward,
    softmax_channels,
};
pub use conv::{conv2d, conv2d_backward, conv2d_naive, Conv2dGrads};
pub use fastconv::{
    conv2d_gemm, conv2d_gemm_buf, conv2d_gemm_into, conv2d_gemm_reference, ConvWorkspace,
};
pub use linear::{linear, linear_backward, linear_into, matmul, LinearGrads};
pub use norm::{
    batch_norm, batch_norm_backward, batch_norm_infer_inplace, BatchNormCache, BatchNormGrads,
};
pub use pool::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool, global_avg_pool_backward,
    global_avg_pool_into, max_pool2d, max_pool2d_backward, MaxPoolCache,
};
pub use resize::{
    downsample_avg, resize_bilinear, resize_bilinear_into, upsample_nearest,
    upsample_nearest_backward,
};
pub use spatial::{concat_channels, crop, crop_into, pad_zero, split_channels};
