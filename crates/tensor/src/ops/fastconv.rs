//! im2col + GEMM convolution: a faster path for the generic/point-wise
//! convolutions that dominate training time.
//!
//! The input patches are unrolled into a matrix (`im2col`) and the
//! convolution becomes one dense matrix product with the reshaped weights —
//! the standard lowering CPU inference stacks use. The GEMM runs a
//! register-tiled microkernel over packed row-major weight panels, and the
//! `*_into` variants reuse a [`ConvWorkspace`] so the steady-state frame
//! path performs no heap allocation. Always produces results identical (up
//! to float summation order) to [`super::conv2d`], which the tests enforce.

use crate::shape::Shape;
use crate::simd;
use crate::tensor::Tensor;

/// Output channels per register tile of the GEMM microkernel.
const MR: usize = 4;
/// Output positions per register tile of the GEMM microkernel.
const NR: usize = 8;

/// Reusable buffers for the allocation-free convolution path: the im2col
/// patch buffer plus a two-buffer ping-pong activation arena — the software
/// mirror of the paper's dual 512 KB activation global buffers, between
/// which layer outputs alternate instead of being freshly allocated.
///
/// Buffers are sized lazily on first use and only ever grow.
#[derive(Debug, Clone)]
pub struct ConvWorkspace {
    patches: Vec<f32>,
    ping: Tensor,
    pong: Tensor,
}

impl Default for ConvWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl ConvWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        ConvWorkspace {
            patches: Vec::new(),
            ping: Tensor::zeros(Shape::new(1, 1, 1, 1)),
            pong: Tensor::zeros(Shape::new(1, 1, 1, 1)),
        }
    }

    /// Splits the workspace into disjoint borrows of the im2col buffer and
    /// the two arena buffers, so a caller can stream activations through
    /// the arena (`input` in one buffer, output in the other, swapping
    /// after each layer) while the same patch buffer serves every layer.
    pub fn split(&mut self) -> (&mut Vec<f32>, &mut Tensor, &mut Tensor) {
        (&mut self.patches, &mut self.ping, &mut self.pong)
    }
}

/// Unrolls convolution patches for batch item `n` and channel group `g`
/// into `out`, as a row-major matrix of shape `(oh * ow, c_in_g * k * k)`.
///
/// Every cell is written exactly once in order (in-bounds cells get the
/// input value, padded border cells an explicit zero), so no pre-zeroing
/// pass over the buffer is needed; with `pad == 0` the bounds checks are
/// skipped entirely and rows are copied as contiguous slices.
#[allow(clippy::too_many_arguments)]
fn im2col_into(
    input: &Tensor,
    n: usize,
    g: usize,
    cin_g: usize,
    k: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    out: &mut Vec<f32>,
) {
    let s = input.shape();
    let cols = cin_g * k * k;
    out.clear();
    out.reserve(oh * ow * cols);
    if pad == 0 {
        // every patch cell is in bounds: copy k-long row segments directly
        for oy in 0..oh {
            for ox in 0..ow {
                for icg in 0..cin_g {
                    let plane = input.channel_plane(n, g * cin_g + icg);
                    for kh in 0..k {
                        let base = (oy * stride + kh) * s.w + ox * stride;
                        out.extend_from_slice(&plane[base..base + k]);
                    }
                }
            }
        }
    } else {
        for oy in 0..oh {
            for ox in 0..ow {
                for icg in 0..cin_g {
                    let plane = input.channel_plane(n, g * cin_g + icg);
                    for kh in 0..k {
                        let iy = (oy * stride + kh) as isize - pad as isize;
                        for kw in 0..k {
                            let ix = (ox * stride + kw) as isize - pad as isize;
                            let v =
                                if iy >= 0 && ix >= 0 && (iy as usize) < s.h && (ix as usize) < s.w
                                {
                                    plane[iy as usize * s.w + ix as usize]
                                } else {
                                    0.0
                                };
                            out.push(v);
                        }
                    }
                }
            }
        }
    }
}

/// Validates the conv2d contract shared by the GEMM paths and returns
/// `(cin_g, cout_g, k, oshape)`.
fn validate_conv(
    ishape: Shape,
    wshape: Shape,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
) -> (usize, usize, usize, Shape) {
    assert!(groups > 0, "groups must be non-zero");
    assert!(
        ishape.c.is_multiple_of(groups) && wshape.n.is_multiple_of(groups),
        "channels not divisible by groups {groups}"
    );
    let cin_g = ishape.c / groups;
    let cout_g = wshape.n / groups;
    assert_eq!(wshape.c, cin_g, "weight/group mismatch");
    assert_eq!(wshape.h, wshape.w, "only square kernels are supported");
    if let Some(b) = bias {
        assert_eq!(b.len(), wshape.n, "bias length must equal output channels");
    }
    let k = wshape.h;
    (
        cin_g,
        cout_g,
        k,
        ishape.conv_output(wshape.n, k, pad, stride),
    )
}

/// The blocked GEMM core: `out[oc, p] = bias[oc] + Σ_c w[oc, c] · patches[p, c]`
/// over an `MR × NR` register tile. Both operands are row-major panels
/// (the weights in their natural packed layout, the patches from im2col),
/// so every accumulation step reads two contiguous rows. Accumulators
/// start at the bias and add in ascending `c` order — the exact per-element
/// accumulation sequence of the scalar reference loop, so results are
/// bit-identical to the unblocked path.
///
/// Monomorphised twice, exactly like `gemm_rows_body` in
/// `eyecod_optics::mat`: once as a plain function and once under
/// `#[target_feature(enable = "avx2")]`, where LLVM keeps the whole
/// `MR × NR` accumulator tile in YMM registers. The per-element IEEE
/// operation sequence (`mul` then `add`, ascending `l`) is identical in
/// both instantiations — Rust never contracts `a * b + c` into an FMA —
/// so the AVX2 build is bit-identical to the scalar one.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn gemm_panel_body(
    w_data: &[f32],
    patches: &[f32],
    bias: Option<&[f32]>,
    g: usize,
    cout_g: usize,
    cols: usize,
    positions: usize,
    out_chunk: &mut [f32],
) {
    let mut ocg = 0;
    while ocg < cout_g {
        let mr = MR.min(cout_g - ocg);
        let mut p = 0;
        while p < positions {
            let nr = NR.min(positions - p);
            let mut acc = [[0.0f32; NR]; MR];
            for (ii, accr) in acc.iter_mut().enumerate().take(mr) {
                let b = bias.map_or(0.0, |b| b[g * cout_g + ocg + ii]);
                accr[..nr].fill(b);
            }
            for l in 0..cols {
                for (ii, accr) in acc.iter_mut().enumerate().take(mr) {
                    let w = w_data[(g * cout_g + ocg + ii) * cols + l];
                    for (jj, accv) in accr.iter_mut().enumerate().take(nr) {
                        *accv += w * patches[(p + jj) * cols + l];
                    }
                }
            }
            for (ii, accr) in acc.iter().enumerate().take(mr) {
                let o0 = (ocg + ii) * positions + p;
                out_chunk[o0..o0 + nr].copy_from_slice(&accr[..nr]);
            }
            p += nr;
        }
        ocg += mr;
    }
}

/// AVX2 instantiation of [`gemm_panel_body`] (see its docs for the
/// bit-identity argument).
///
/// Safe to call only when the host supports AVX2, which
/// [`gemm_panel`] guarantees via [`simd::avx2_enabled`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
fn gemm_panel_avx2(
    w_data: &[f32],
    patches: &[f32],
    bias: Option<&[f32]>,
    g: usize,
    cout_g: usize,
    cols: usize,
    positions: usize,
    out_chunk: &mut [f32],
) {
    gemm_panel_body(w_data, patches, bias, g, cout_g, cols, positions, out_chunk);
}

/// Dispatches one GEMM panel to the AVX2 or scalar instantiation.
#[allow(clippy::too_many_arguments)]
fn gemm_panel(
    w_data: &[f32],
    patches: &[f32],
    bias: Option<&[f32]>,
    g: usize,
    cout_g: usize,
    cols: usize,
    positions: usize,
    out_chunk: &mut [f32],
    use_simd: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if use_simd && simd::avx2_enabled() {
        // SAFETY: avx2_enabled() returns true only on hosts with AVX2.
        unsafe {
            gemm_panel_avx2(w_data, patches, bias, g, cout_g, cols, positions, out_chunk);
        }
        return;
    }
    let _ = use_simd;
    gemm_panel_body(w_data, patches, bias, g, cout_g, cols, positions, out_chunk);
}

/// Convolution via im2col + GEMM. Same contract as [`super::conv2d`]
/// (square kernels, symmetric zero padding, groups); typically faster for
/// generic and point-wise layers with several input channels.
///
/// # Panics
///
/// Panics under the same conditions as [`super::conv2d`].
pub fn conv2d_gemm(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
) -> Tensor {
    let mut ws = ConvWorkspace::new();
    let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
    conv2d_gemm_into(input, weight, bias, stride, pad, groups, &mut ws, &mut out);
    out
}

/// [`conv2d_gemm`] pinned to the scalar GEMM instantiation regardless of
/// host capabilities — the retained differential baseline the SIMD
/// bit-equality suites compare against.
///
/// # Panics
///
/// Panics under the same conditions as [`super::conv2d`].
pub fn conv2d_gemm_reference(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
) -> Tensor {
    let mut patches = Vec::new();
    let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
    conv2d_gemm_buf_impl(
        input,
        weight,
        bias,
        stride,
        pad,
        groups,
        &mut patches,
        &mut out,
        false,
    );
    out
}

/// [`conv2d_gemm`] through a caller-owned workspace and output tensor:
/// with warm buffers the whole convolution performs no heap allocation.
/// Bit-identical to [`conv2d_gemm`] (same kernel, same workspace shape
/// handling).
///
/// Only the workspace's im2col buffer is used; its arena buffers are free
/// for the caller to stream activations through (`out` must not alias
/// `input`, which the borrow checker already enforces).
///
/// # Panics
///
/// Panics under the same conditions as [`super::conv2d`].
#[allow(clippy::too_many_arguments)]
pub fn conv2d_gemm_into(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
    ws: &mut ConvWorkspace,
    out: &mut Tensor,
) {
    conv2d_gemm_buf(
        input,
        weight,
        bias,
        stride,
        pad,
        groups,
        &mut ws.patches,
        out,
    );
}

/// [`conv2d_gemm_into`] against a bare im2col buffer — the building block
/// the model workspaces use so the patch buffer and the activation arena
/// can be borrowed disjointly from one [`ConvWorkspace`] via
/// [`ConvWorkspace::split`].
///
/// # Panics
///
/// Panics under the same conditions as [`super::conv2d`].
#[allow(clippy::too_many_arguments)]
pub fn conv2d_gemm_buf(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
    patches: &mut Vec<f32>,
    out: &mut Tensor,
) {
    conv2d_gemm_buf_impl(input, weight, bias, stride, pad, groups, patches, out, true);
}

#[allow(clippy::too_many_arguments)]
fn conv2d_gemm_buf_impl(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
    patches: &mut Vec<f32>,
    out: &mut Tensor,
    use_simd: bool,
) {
    let ishape = input.shape();
    let wshape = weight.shape();
    let (cin_g, cout_g, k, oshape) = validate_conv(ishape, wshape, bias, stride, pad, groups);
    let (oh, ow) = (oshape.h, oshape.w);
    let cols = cin_g * k * k;
    let positions = oh * ow;
    let w_data = weight.as_slice();

    out.reset(oshape);
    let out_data = out.as_mut_slice();
    for n in 0..ishape.n {
        for g in 0..groups {
            im2col_into(input, n, g, cin_g, k, stride, pad, oh, ow, patches);
            let out_base = (n * oshape.c + g * cout_g) * positions;
            gemm_panel(
                w_data,
                patches,
                bias,
                g,
                cout_g,
                cols,
                positions,
                &mut out_data[out_base..out_base + cout_g * positions],
                use_simd,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{conv2d, conv2d_naive};
    use super::*;
    use crate::shape::Shape;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_tensor(shape: Shape, rng: &mut StdRng) -> Tensor {
        Tensor::from_fn(shape, |_, _, _, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn gemm_matches_direct_conv_across_geometry() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(stride, pad, k, groups) in &[
            (1usize, 1usize, 3usize, 1usize),
            (2, 1, 3, 1),
            (1, 0, 1, 1),
            (2, 2, 5, 1),
            (1, 1, 3, 2),
            (1, 1, 3, 6), // depth-wise
        ] {
            let x = rand_tensor(Shape::new(2, 6, 9, 7), &mut rng);
            let w = rand_tensor(Shape::new(6, 6 / groups, k, k), &mut rng);
            let b: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let gemm = conv2d_gemm(&x, &w, Some(&b), stride, pad, groups);
            let direct = conv2d(&x, &w, Some(&b), stride, pad, groups);
            assert!(
                gemm.sub(&direct).max_abs() < 1e-4,
                "mismatch at stride={stride} pad={pad} k={k} groups={groups}"
            );
        }
    }

    #[test]
    fn gemm_into_reuses_one_workspace_across_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ws = ConvWorkspace::new();
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        // two different geometries through the same workspace, in both
        // orders — results must equal the fresh-allocation path exactly
        let x1 = rand_tensor(Shape::new(1, 4, 10, 8), &mut rng);
        let w1 = rand_tensor(Shape::new(6, 4, 3, 3), &mut rng);
        let x2 = rand_tensor(Shape::new(2, 2, 5, 5), &mut rng);
        let w2 = rand_tensor(Shape::new(4, 1, 1, 1), &mut rng);
        for _ in 0..2 {
            conv2d_gemm_into(&x1, &w1, None, 1, 1, 1, &mut ws, &mut out);
            assert_eq!(
                out.as_slice(),
                conv2d_gemm(&x1, &w1, None, 1, 1, 1).as_slice()
            );
            conv2d_gemm_into(&x2, &w2, None, 1, 0, 2, &mut ws, &mut out);
            assert_eq!(
                out.as_slice(),
                conv2d_gemm(&x2, &w2, None, 1, 0, 2).as_slice()
            );
        }
    }

    #[test]
    fn gemm_matches_reference_on_asymmetric_input() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = rand_tensor(Shape::new(1, 3, 5, 11), &mut rng);
        let w = rand_tensor(Shape::new(4, 3, 3, 3), &mut rng);
        let gemm = conv2d_gemm(&x, &w, None, 1, 1, 1);
        let slow = conv2d_naive(&x, &w, None, 1, 1, 1);
        assert!(gemm.sub(&slow).max_abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn gemm_rejects_bad_groups() {
        let x = Tensor::zeros(Shape::new(1, 3, 4, 4));
        let w = Tensor::zeros(Shape::new(4, 1, 3, 3));
        conv2d_gemm(&x, &w, None, 1, 1, 2);
    }
}
