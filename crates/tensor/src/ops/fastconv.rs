//! im2col + GEMM convolution: a faster path for the generic/point-wise
//! convolutions that dominate training time.
//!
//! The input patches are unrolled into a matrix (`im2col`) and the
//! convolution becomes one dense matrix product with the reshaped weights —
//! the standard lowering CPU inference stacks use. Always produces results
//! identical (up to float summation order) to [`super::conv2d`], which the
//! tests enforce.

use crate::tensor::Tensor;

/// Unrolls convolution patches: returns a row-major matrix of shape
/// `(oh * ow, c_in_g * k * k)` for batch item `n` and channel group `g`.
#[allow(clippy::too_many_arguments)]
fn im2col(
    input: &Tensor,
    n: usize,
    g: usize,
    cin_g: usize,
    k: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
) -> Vec<f32> {
    let s = input.shape();
    let cols = cin_g * k * k;
    let mut out = vec![0.0f32; oh * ow * cols];
    for oy in 0..oh {
        for ox in 0..ow {
            let row = (oy * ow + ox) * cols;
            let mut col = 0;
            for icg in 0..cin_g {
                let ic = g * cin_g + icg;
                for kh in 0..k {
                    let iy = (oy * stride + kh) as isize - pad as isize;
                    for kw in 0..k {
                        let ix = (ox * stride + kw) as isize - pad as isize;
                        if iy >= 0 && ix >= 0 && (iy as usize) < s.h && (ix as usize) < s.w {
                            out[row + col] = input.at(n, ic, iy as usize, ix as usize);
                        }
                        col += 1;
                    }
                }
            }
        }
    }
    out
}

/// Convolution via im2col + GEMM. Same contract as [`super::conv2d`]
/// (square kernels, symmetric zero padding, groups); typically faster for
/// generic and point-wise layers with several input channels.
///
/// # Panics
///
/// Panics under the same conditions as [`super::conv2d`].
pub fn conv2d_gemm(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
) -> Tensor {
    let ishape = input.shape();
    let wshape = weight.shape();
    assert!(groups > 0, "groups must be non-zero");
    assert!(
        ishape.c.is_multiple_of(groups) && wshape.n.is_multiple_of(groups),
        "channels not divisible by groups {groups}"
    );
    let cin_g = ishape.c / groups;
    let cout_g = wshape.n / groups;
    assert_eq!(wshape.c, cin_g, "weight/group mismatch");
    assert_eq!(wshape.h, wshape.w, "only square kernels are supported");
    if let Some(b) = bias {
        assert_eq!(b.len(), wshape.n, "bias length must equal output channels");
    }
    let k = wshape.h;
    let oshape = ishape.conv_output(wshape.n, k, pad, stride);
    let (oh, ow) = (oshape.h, oshape.w);
    let cols = cin_g * k * k;
    let w_data = weight.as_slice();

    let mut out = Tensor::zeros(oshape);
    let out_data = out.as_mut_slice();
    for n in 0..ishape.n {
        for g in 0..groups {
            let patches = im2col(input, n, g, cin_g, k, stride, pad, oh, ow);
            // out[oc, p] = Σ_c w[oc, c] * patches[p, c]
            for ocg in 0..cout_g {
                let oc = g * cout_g + ocg;
                let wrow = &w_data[oc * cols..(oc + 1) * cols];
                let b = bias.map_or(0.0, |b| b[oc]);
                let out_base = (n * oshape.c + oc) * oh * ow;
                for p in 0..oh * ow {
                    let prow = &patches[p * cols..(p + 1) * cols];
                    let mut acc = b;
                    for (w, x) in wrow.iter().zip(prow) {
                        acc += w * x;
                    }
                    out_data[out_base + p] = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::{conv2d, conv2d_naive};
    use super::*;
    use crate::shape::Shape;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_tensor(shape: Shape, rng: &mut StdRng) -> Tensor {
        Tensor::from_fn(shape, |_, _, _, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn gemm_matches_direct_conv_across_geometry() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(stride, pad, k, groups) in &[
            (1usize, 1usize, 3usize, 1usize),
            (2, 1, 3, 1),
            (1, 0, 1, 1),
            (2, 2, 5, 1),
            (1, 1, 3, 2),
            (1, 1, 3, 6), // depth-wise
        ] {
            let x = rand_tensor(Shape::new(2, 6, 9, 7), &mut rng);
            let w = rand_tensor(Shape::new(6, 6 / groups, k, k), &mut rng);
            let b: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let gemm = conv2d_gemm(&x, &w, Some(&b), stride, pad, groups);
            let direct = conv2d(&x, &w, Some(&b), stride, pad, groups);
            assert!(
                gemm.sub(&direct).max_abs() < 1e-4,
                "mismatch at stride={stride} pad={pad} k={k} groups={groups}"
            );
        }
    }

    #[test]
    fn gemm_matches_reference_on_asymmetric_input() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = rand_tensor(Shape::new(1, 3, 5, 11), &mut rng);
        let w = rand_tensor(Shape::new(4, 3, 3, 3), &mut rng);
        let gemm = conv2d_gemm(&x, &w, None, 1, 1, 1);
        let slow = conv2d_naive(&x, &w, None, 1, 1, 1);
        assert!(gemm.sub(&slow).max_abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn gemm_rejects_bad_groups() {
        let x = Tensor::zeros(Shape::new(1, 3, 4, 4));
        let w = Tensor::zeros(Shape::new(4, 1, 3, 3));
        conv2d_gemm(&x, &w, None, 1, 1, 2);
    }
}
