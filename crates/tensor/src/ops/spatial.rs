//! Spatial rearrangements: channel concatenation/split, cropping, padding.
//!
//! These mirror the activation reshaping operations supported by the EyeCoD
//! accelerator's activation GB storage arrangement (paper Fig. 11): partition,
//! concatenation, and the crops used by the predict-then-focus ROI stage.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Concatenates tensors along the channel dimension.
///
/// # Panics
///
/// Panics if `parts` is empty or batch/spatial shapes differ.
pub fn concat_channels(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "cannot concatenate zero tensors");
    let first = parts[0].shape();
    let c_total: usize = parts
        .iter()
        .map(|t| {
            let s = t.shape();
            assert_eq!(
                (s.n, s.h, s.w),
                (first.n, first.h, first.w),
                "concatenated tensors must share batch and spatial shape"
            );
            s.c
        })
        .sum();
    let oshape = Shape::new(first.n, c_total, first.h, first.w);
    let mut out = Tensor::zeros(oshape);
    for n in 0..first.n {
        let mut c_off = 0;
        for t in parts {
            let s = t.shape();
            for c in 0..s.c {
                let src = t.channel_plane(n, c);
                let start = oshape.index(n, c_off + c, 0, 0);
                out.as_mut_slice()[start..start + src.len()].copy_from_slice(src);
            }
            c_off += s.c;
        }
    }
    out
}

/// Splits a tensor along the channel dimension into parts of the given sizes.
///
/// # Panics
///
/// Panics if the sizes do not sum to the channel count.
pub fn split_channels(input: &Tensor, sizes: &[usize]) -> Vec<Tensor> {
    let s = input.shape();
    assert_eq!(
        sizes.iter().sum::<usize>(),
        s.c,
        "split sizes must sum to channel count {}",
        s.c
    );
    let mut out = Vec::with_capacity(sizes.len());
    let mut c_off = 0;
    for &sz in sizes {
        assert!(sz > 0, "split sizes must be non-zero");
        let part = Tensor::from_fn(Shape::new(s.n, sz, s.h, s.w), |n, c, h, w| {
            input.at(n, c_off + c, h, w)
        });
        out.push(part);
        c_off += sz;
    }
    out
}

/// Crops a spatial window `[y0, y0+h) × [x0, x0+w)` from every channel.
///
/// # Panics
///
/// Panics if the window exceeds the input bounds.
pub fn crop(input: &Tensor, y0: usize, x0: usize, h: usize, w: usize) -> Tensor {
    let s = input.shape();
    assert!(
        y0 + h <= s.h && x0 + w <= s.w,
        "crop window ({y0}+{h}, {x0}+{w}) exceeds input {s}"
    );
    Tensor::from_fn(Shape::new(s.n, s.c, h, w), |n, c, y, x| {
        input.at(n, c, y0 + y, x0 + x)
    })
}

/// [`crop`] writing into a caller-owned tensor (allocation-free once the
/// output buffer is warm); rows are copied as contiguous slices.
///
/// # Panics
///
/// Panics if the crop window exceeds the input extent.
pub fn crop_into(input: &Tensor, y0: usize, x0: usize, h: usize, w: usize, out: &mut Tensor) {
    let s = input.shape();
    assert!(
        y0 + h <= s.h && x0 + w <= s.w,
        "crop window ({y0}+{h}, {x0}+{w}) exceeds input {s}"
    );
    out.reset(Shape::new(s.n, s.c, h, w));
    let data = out.as_mut_slice();
    let mut idx = 0;
    for n in 0..s.n {
        for c in 0..s.c {
            let plane = input.channel_plane(n, c);
            for y in 0..h {
                let base = (y0 + y) * s.w + x0;
                data[idx..idx + w].copy_from_slice(&plane[base..base + w]);
                idx += w;
            }
        }
    }
}

/// Pads each spatial plane with a zero border of the given extents
/// (top, bottom, left, right).
pub fn pad_zero(input: &Tensor, top: usize, bottom: usize, left: usize, right: usize) -> Tensor {
    let s = input.shape();
    let oshape = Shape::new(s.n, s.c, s.h + top + bottom, s.w + left + right);
    Tensor::from_fn(oshape, |n, c, y, x| {
        if y >= top && y < top + s.h && x >= left && x < left + s.w {
            input.at(n, c, y - top, x - left)
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crop_into_matches_crop() {
        let x = Tensor::from_fn(Shape::new(2, 3, 6, 7), |n, c, h, w| {
            (n * 100 + c * 50 + h * 7 + w) as f32
        });
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        for (y0, x0, h, w) in [(0usize, 0usize, 6usize, 7usize), (1, 2, 3, 4), (4, 5, 2, 2)] {
            crop_into(&x, y0, x0, h, w, &mut out);
            assert_eq!(out.as_slice(), crop(&x, y0, x0, h, w).as_slice());
        }
    }

    #[test]
    fn concat_then_split_round_trips() {
        let a = Tensor::from_fn(Shape::new(2, 2, 3, 3), |n, c, h, w| (n + c + h + w) as f32);
        let b = Tensor::from_fn(Shape::new(2, 3, 3, 3), |n, c, h, w| {
            -((n + c + h + w) as f32)
        });
        let cat = concat_channels(&[&a, &b]);
        assert_eq!(cat.shape().dims(), (2, 5, 3, 3));
        let parts = split_channels(&cat, &[2, 3]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    #[should_panic(expected = "share batch and spatial")]
    fn concat_rejects_mismatched_spatial() {
        let a = Tensor::zeros(Shape::new(1, 1, 2, 2));
        let b = Tensor::zeros(Shape::new(1, 1, 3, 3));
        concat_channels(&[&a, &b]);
    }

    #[test]
    fn crop_extracts_window() {
        let x = Tensor::from_fn(Shape::new(1, 1, 4, 4), |_, _, h, w| (h * 4 + w) as f32);
        let y = crop(&x, 1, 2, 2, 2);
        assert_eq!(y.as_slice(), &[6., 7., 10., 11.]);
    }

    #[test]
    #[should_panic(expected = "exceeds input")]
    fn crop_rejects_out_of_bounds() {
        crop(&Tensor::zeros(Shape::new(1, 1, 4, 4)), 3, 0, 2, 2);
    }

    #[test]
    fn pad_surrounds_with_zeros() {
        let x = Tensor::ones(Shape::new(1, 1, 1, 1));
        let y = pad_zero(&x, 1, 1, 1, 1);
        assert_eq!(y.shape().dims(), (1, 1, 3, 3));
        assert_eq!(y.sum(), 1.0);
        assert_eq!(y.at(0, 0, 1, 1), 1.0);
    }

    #[test]
    fn crop_of_pad_is_identity() {
        let x = Tensor::from_fn(Shape::new(1, 2, 3, 3), |_, c, h, w| {
            (c * 9 + h * 3 + w) as f32
        });
        let y = crop(&pad_zero(&x, 2, 1, 1, 2), 2, 1, 3, 3);
        assert_eq!(y, x);
    }
}
