//! 2-D convolution (generic, point-wise and depth-wise via `groups`).

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Validates convolution arguments and returns `(c_in_per_group, c_out_per_group)`.
fn check_conv_args(input: Shape, weight: Shape, groups: usize) -> (usize, usize) {
    assert!(groups > 0, "groups must be non-zero");
    assert_eq!(
        input.c % groups,
        0,
        "input channels {} not divisible by groups {groups}",
        input.c
    );
    assert_eq!(
        weight.n % groups,
        0,
        "output channels {} not divisible by groups {groups}",
        weight.n
    );
    let cin_g = input.c / groups;
    assert_eq!(
        weight.c, cin_g,
        "weight expects {} input channels per group, input provides {cin_g}",
        weight.c
    );
    assert_eq!(weight.h, weight.w, "only square kernels are supported");
    (cin_g, weight.n / groups)
}

/// 2-D convolution with square kernels, symmetric zero padding and groups.
///
/// * `input`: `(N, C_in, H, W)`
/// * `weight`: `(C_out, C_in / groups, K, K)`
/// * `bias`: optional, length `C_out`
/// * `groups == 1` is a generic convolution, `groups == C_in == C_out` is a
///   depth-wise convolution, and `K == 1, groups == 1` is point-wise.
///
/// # Panics
///
/// Panics on inconsistent channel/group configuration or if the kernel does
/// not fit the padded input.
///
/// # Example
///
/// ```
/// use eyecod_tensor::{Tensor, Shape};
/// use eyecod_tensor::ops::conv2d;
/// let x = Tensor::ones(Shape::new(1, 2, 4, 4));
/// let w = Tensor::ones(Shape::new(2, 1, 3, 3));
/// // depth-wise: each output channel sees one input channel
/// let y = conv2d(&x, &w, None, 1, 1, 2);
/// assert_eq!(y.at(0, 0, 1, 1), 9.0);
/// ```
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
) -> Tensor {
    let ishape = input.shape();
    let wshape = weight.shape();
    let (cin_g, cout_g) = check_conv_args(ishape, wshape, groups);
    if let Some(b) = bias {
        assert_eq!(b.len(), wshape.n, "bias length must equal output channels");
    }
    let k = wshape.h;
    let oshape = ishape.conv_output(wshape.n, k, pad, stride);
    let mut out = Tensor::zeros(oshape);

    let (ih, iw) = (ishape.h, ishape.w);
    let (oh, ow) = (oshape.h, oshape.w);
    let in_data = input.as_slice();
    let w_data = weight.as_slice();
    let out_data = out.as_mut_slice();

    for n in 0..ishape.n {
        for g in 0..groups {
            for ocg in 0..cout_g {
                let oc = g * cout_g + ocg;
                let out_base = (n * oshape.c + oc) * oh * ow;
                let b = bias.map_or(0.0, |b| b[oc]);
                for icg in 0..cin_g {
                    let ic = g * cin_g + icg;
                    let in_base = (n * ishape.c + ic) * ih * iw;
                    let w_base = (oc * cin_g + icg) * k * k;
                    for kh in 0..k {
                        for kw in 0..k {
                            let wv = w_data[w_base + kh * k + kw];
                            if wv == 0.0 {
                                continue;
                            }
                            // Output rows where the (kh, kw) tap lands inside the input.
                            for oy in 0..oh {
                                let iy = (oy * stride + kh) as isize - pad as isize;
                                if iy < 0 || iy >= ih as isize {
                                    continue;
                                }
                                let irow = in_base + iy as usize * iw;
                                let orow = out_base + oy * ow;
                                for ox in 0..ow {
                                    let ix = (ox * stride + kw) as isize - pad as isize;
                                    if ix < 0 || ix >= iw as isize {
                                        continue;
                                    }
                                    out_data[orow + ox] += wv * in_data[irow + ix as usize];
                                }
                            }
                        }
                    }
                }
                if b != 0.0 {
                    for v in &mut out_data[out_base..out_base + oh * ow] {
                        *v += b;
                    }
                }
            }
        }
    }
    out
}

/// A straightforward quadruple-loop reference convolution used to validate
/// [`conv2d`] in tests. Same contract as [`conv2d`].
pub fn conv2d_naive(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
) -> Tensor {
    let ishape = input.shape();
    let wshape = weight.shape();
    let (cin_g, cout_g) = check_conv_args(ishape, wshape, groups);
    let k = wshape.h;
    let oshape = ishape.conv_output(wshape.n, k, pad, stride);
    Tensor::from_fn(oshape, |n, oc, oy, ox| {
        let g = oc / cout_g;
        let mut acc = bias.map_or(0.0, |b| b[oc]);
        for icg in 0..cin_g {
            let ic = g * cin_g + icg;
            for kh in 0..k {
                for kw in 0..k {
                    let iy = (oy * stride + kh) as isize - pad as isize;
                    let ix = (ox * stride + kw) as isize - pad as isize;
                    if iy >= 0 && ix >= 0 && (iy as usize) < ishape.h && (ix as usize) < ishape.w {
                        acc +=
                            input.at(n, ic, iy as usize, ix as usize) * weight.at(oc, icg, kh, kw);
                    }
                }
            }
        }
        acc
    })
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the layer input.
    pub input: Tensor,
    /// Gradient with respect to the weights.
    pub weight: Tensor,
    /// Gradient with respect to the bias (one entry per output channel).
    pub bias: Vec<f32>,
}

/// Backward pass of [`conv2d`].
///
/// `grad_out` must have the shape the forward pass produced for the given
/// arguments.
///
/// # Panics
///
/// Panics if `grad_out`'s shape is inconsistent with the forward geometry.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
    groups: usize,
) -> Conv2dGrads {
    let ishape = input.shape();
    let wshape = weight.shape();
    let (cin_g, cout_g) = check_conv_args(ishape, wshape, groups);
    let k = wshape.h;
    let oshape = ishape.conv_output(wshape.n, k, pad, stride);
    assert_eq!(grad_out.shape(), oshape, "grad_out shape mismatch");

    let mut gin = Tensor::zeros(ishape);
    let mut gw = Tensor::zeros(wshape);
    let mut gb = vec![0.0f32; wshape.n];

    let (ih, iw) = (ishape.h, ishape.w);
    let (oh, ow) = (oshape.h, oshape.w);
    let in_data = input.as_slice();
    let w_data = weight.as_slice();
    let go_data = grad_out.as_slice();
    let gin_data = gin.as_mut_slice();
    let gw_data = gw.as_mut_slice();

    for n in 0..ishape.n {
        for g in 0..groups {
            for ocg in 0..cout_g {
                let oc = g * cout_g + ocg;
                let out_base = (n * oshape.c + oc) * oh * ow;
                let mut bias_acc = 0.0f32;
                for v in &go_data[out_base..out_base + oh * ow] {
                    bias_acc += v;
                }
                gb[oc] += bias_acc;
                for icg in 0..cin_g {
                    let ic = g * cin_g + icg;
                    let in_base = (n * ishape.c + ic) * ih * iw;
                    let w_base = (oc * cin_g + icg) * k * k;
                    for kh in 0..k {
                        for kw in 0..k {
                            let wv = w_data[w_base + kh * k + kw];
                            let mut wgrad = 0.0f32;
                            for oy in 0..oh {
                                let iy = (oy * stride + kh) as isize - pad as isize;
                                if iy < 0 || iy >= ih as isize {
                                    continue;
                                }
                                let irow = in_base + iy as usize * iw;
                                let orow = out_base + oy * ow;
                                for ox in 0..ow {
                                    let ix = (ox * stride + kw) as isize - pad as isize;
                                    if ix < 0 || ix >= iw as isize {
                                        continue;
                                    }
                                    let go = go_data[orow + ox];
                                    wgrad += go * in_data[irow + ix as usize];
                                    gin_data[irow + ix as usize] += go * wv;
                                }
                            }
                            gw_data[w_base + kh * k + kw] += wgrad;
                        }
                    }
                }
            }
        }
    }
    Conv2dGrads {
        input: gin,
        weight: gw,
        bias: gb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_tensor(shape: Shape, rng: &mut StdRng) -> Tensor {
        Tensor::from_fn(shape, |_, _, _, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let x = Tensor::from_fn(Shape::new(1, 1, 4, 4), |_, _, h, w| (h * 4 + w) as f32);
        let mut w = Tensor::zeros(Shape::new(1, 1, 3, 3));
        *w.at_mut(0, 0, 1, 1) = 1.0;
        let y = conv2d(&x, &w, None, 1, 1, 1);
        assert_eq!(y, x);
    }

    #[test]
    fn bias_is_added() {
        let x = Tensor::zeros(Shape::new(1, 1, 3, 3));
        let w = Tensor::zeros(Shape::new(2, 1, 1, 1));
        let y = conv2d(&x, &w, Some(&[1.5, -2.0]), 1, 0, 1);
        assert_eq!(y.at(0, 0, 2, 2), 1.5);
        assert_eq!(y.at(0, 1, 0, 0), -2.0);
    }

    #[test]
    fn matches_naive_generic() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(stride, pad, k) in &[(1usize, 1usize, 3usize), (2, 1, 3), (1, 0, 1), (2, 2, 5)] {
            let x = rand_tensor(Shape::new(2, 3, 9, 7), &mut rng);
            let w = rand_tensor(Shape::new(4, 3, k, k), &mut rng);
            let b: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let fast = conv2d(&x, &w, Some(&b), stride, pad, 1);
            let slow = conv2d_naive(&x, &w, Some(&b), stride, pad, 1);
            assert!(
                fast.sub(&slow).max_abs() < 1e-4,
                "mismatch at stride={stride} pad={pad} k={k}"
            );
        }
    }

    #[test]
    fn matches_naive_depthwise_and_grouped() {
        let mut rng = StdRng::seed_from_u64(9);
        // depth-wise
        let x = rand_tensor(Shape::new(1, 6, 8, 8), &mut rng);
        let w = rand_tensor(Shape::new(6, 1, 3, 3), &mut rng);
        let fast = conv2d(&x, &w, None, 1, 1, 6);
        let slow = conv2d_naive(&x, &w, None, 1, 1, 6);
        assert!(fast.sub(&slow).max_abs() < 1e-4);
        // grouped, 2 groups
        let w2 = rand_tensor(Shape::new(4, 3, 3, 3), &mut rng);
        let fast2 = conv2d(&x, &w2, None, 2, 1, 2);
        let slow2 = conv2d_naive(&x, &w2, None, 2, 1, 2);
        assert!(fast2.sub(&slow2).max_abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_bad_groups() {
        let x = Tensor::zeros(Shape::new(1, 3, 4, 4));
        let w = Tensor::zeros(Shape::new(4, 1, 3, 3));
        conv2d(&x, &w, None, 1, 1, 2);
    }

    /// Finite-difference check of the backward pass.
    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = rand_tensor(Shape::new(1, 2, 5, 5), &mut rng);
        let w = rand_tensor(Shape::new(3, 2, 3, 3), &mut rng);
        let go = rand_tensor(Shape::new(1, 3, 3, 3), &mut rng); // stride 2, pad 1 -> 3x3
        let grads = conv2d_backward(&x, &w, &go, 2, 1, 1);

        let loss = |x: &Tensor, w: &Tensor| -> f32 { conv2d(x, w, None, 2, 1, 1).mul(&go).sum() };
        let eps = 1e-2;
        // spot-check a handful of input positions
        for &(c, h, ww) in &[(0usize, 0usize, 0usize), (1, 2, 3), (0, 4, 4)] {
            let mut xp = x.clone();
            *xp.at_mut(0, c, h, ww) += eps;
            let mut xm = x.clone();
            *xm.at_mut(0, c, h, ww) -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            let ana = grads.input.at(0, c, h, ww);
            assert!((num - ana).abs() < 1e-2, "input grad: num={num} ana={ana}");
        }
        // spot-check weight positions
        for &(oc, ic, kh, kw) in &[(0usize, 0usize, 0usize, 0usize), (2, 1, 2, 2), (1, 0, 1, 2)] {
            let mut wp = w.clone();
            *wp.at_mut(oc, ic, kh, kw) += eps;
            let mut wm = w.clone();
            *wm.at_mut(oc, ic, kh, kw) -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            let ana = grads.weight.at(oc, ic, kh, kw);
            assert!((num - ana).abs() < 1e-2, "weight grad: num={num} ana={ana}");
        }
    }

    #[test]
    fn backward_bias_sums_grad_out() {
        let x = Tensor::ones(Shape::new(2, 1, 4, 4));
        let w = Tensor::ones(Shape::new(1, 1, 3, 3));
        let go = Tensor::ones(Shape::new(2, 1, 4, 4));
        let grads = conv2d_backward(&x, &w, &go, 1, 1, 1);
        assert_eq!(grads.bias, vec![32.0]);
    }
}
