//! Fully connected layers and matrix multiplication.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Fully connected layer: `y = x · Wᵀ + b`.
///
/// * `input`: `(N, C_in, 1, 1)` (or any shape whose item length is `C_in`)
/// * `weight`: `(C_out, C_in, 1, 1)`
/// * `bias`: optional, length `C_out`
///
/// Returns `(N, C_out, 1, 1)`.
///
/// # Panics
///
/// Panics if the flattened input item length does not match `C_in`.
pub fn linear(input: &Tensor, weight: &Tensor, bias: Option<&[f32]>) -> Tensor {
    let mut out = Tensor::zeros(Shape::vector(1, 1));
    linear_into(input, weight, bias, &mut out);
    out
}

/// [`linear`] writing into a caller-owned tensor (allocation-free once the
/// output buffer is warm). Bit-identical to the allocating path.
///
/// # Panics
///
/// Same requirements as [`linear`].
pub fn linear_into(input: &Tensor, weight: &Tensor, bias: Option<&[f32]>, out: &mut Tensor) {
    let n = input.shape().n;
    let cin = input.shape().item_len();
    let wshape = weight.shape();
    let cout = wshape.n;
    assert_eq!(
        wshape.item_len(),
        cin,
        "linear weight expects {} inputs, got {cin}",
        wshape.item_len()
    );
    if let Some(b) = bias {
        assert_eq!(b.len(), cout, "bias length must equal output features");
    }
    let x = input.as_slice();
    let w = weight.as_slice();
    out.reset(Shape::vector(n, cout));
    let o = out.as_mut_slice();
    for i in 0..n {
        let xrow = &x[i * cin..(i + 1) * cin];
        for j in 0..cout {
            let wrow = &w[j * cin..(j + 1) * cin];
            let mut acc = bias.map_or(0.0, |b| b[j]);
            for (a, b) in xrow.iter().zip(wrow) {
                acc += a * b;
            }
            o[i * cout + j] = acc;
        }
    }
}

/// Gradients produced by [`linear_backward`].
#[derive(Debug, Clone)]
pub struct LinearGrads {
    /// Gradient with respect to the (flattened) input.
    pub input: Tensor,
    /// Gradient with respect to the weights.
    pub weight: Tensor,
    /// Gradient with respect to the bias.
    pub bias: Vec<f32>,
}

/// Backward pass of [`linear`].
///
/// `grad_out` must be `(N, C_out, 1, 1)`. The returned input gradient has the
/// original `input` shape.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn linear_backward(input: &Tensor, weight: &Tensor, grad_out: &Tensor) -> LinearGrads {
    let n = input.shape().n;
    let cin = input.shape().item_len();
    let cout = weight.shape().n;
    assert_eq!(grad_out.shape().n, n, "grad_out batch mismatch");
    assert_eq!(
        grad_out.shape().item_len(),
        cout,
        "grad_out feature mismatch"
    );

    let x = input.as_slice();
    let w = weight.as_slice();
    let go = grad_out.as_slice();

    let mut gin = Tensor::zeros(input.shape());
    let mut gw = Tensor::zeros(weight.shape());
    let mut gb = vec![0.0f32; cout];
    let gi = gin.as_mut_slice();
    let gwd = gw.as_mut_slice();

    for i in 0..n {
        let xrow = &x[i * cin..(i + 1) * cin];
        for j in 0..cout {
            let g = go[i * cout + j];
            gb[j] += g;
            let wrow = &w[j * cin..(j + 1) * cin];
            let girow = &mut gi[i * cin..(i + 1) * cin];
            for k in 0..cin {
                girow[k] += g * wrow[k];
                gwd[j * cin + k] += g * xrow[k];
            }
        }
    }
    LinearGrads {
        input: gin,
        weight: gw,
        bias: gb,
    }
}

/// Dense matrix multiplication of `(m, k)` by `(k, n)` tensors stored as
/// `(m, k, 1, 1)` and `(k, n, 1, 1)`, returning `(m, n, 1, 1)`.
///
/// Used by the paper's matrix-matrix-multiplication layers (treated on the
/// accelerator as point-wise convolutions with batch > 1).
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape().n, a.shape().item_len());
    let (k2, n) = (b.shape().n, b.shape().item_len());
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let ad = a.as_slice();
    let bd = b.as_slice();
    let mut out = Tensor::zeros(Shape::vector(m, n));
    let od = out.as_mut_slice();
    for i in 0..m {
        for l in 0..k {
            let av = ad[i * k + l];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[l * n..(l + 1) * n];
            let orow = &mut od[i * n..(i + 1) * n];
            for j in 0..n {
                orow[j] += av * brow[j];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_into_matches_allocating_path() {
        let x = Tensor::from_fn(Shape::vector(2, 5), |n, c, _, _| (n * 5 + c) as f32 * 0.3);
        let w = Tensor::from_fn(Shape::vector(3, 5), |n, c, _, _| (n + c) as f32 * 0.1 - 0.2);
        let b = [0.5, -0.25, 0.0];
        let mut out = Tensor::zeros(Shape::vector(1, 1));
        linear_into(&x, &w, Some(&b), &mut out);
        assert_eq!(out.as_slice(), linear(&x, &w, Some(&b)).as_slice());
    }

    #[test]
    fn linear_computes_affine_map() {
        let x = Tensor::from_vec(Shape::vector(2, 3), vec![1., 2., 3., 4., 5., 6.]);
        let w = Tensor::from_vec(Shape::vector(2, 3), vec![1., 0., 0., 0., 1., 1.]);
        let y = linear(&x, &w, Some(&[10.0, 0.0]));
        assert_eq!(y.as_slice(), &[11., 5., 14., 11.]);
    }

    #[test]
    fn linear_flattens_spatial_input() {
        let x = Tensor::ones(Shape::new(1, 2, 2, 2));
        let w = Tensor::ones(Shape::vector(1, 8));
        assert_eq!(linear(&x, &w, None).as_slice(), &[8.0]);
    }

    #[test]
    fn linear_backward_finite_difference() {
        let x = Tensor::from_vec(Shape::vector(2, 3), vec![0.5, -1., 2., 1., 0., -0.5]);
        let w = Tensor::from_vec(Shape::vector(2, 3), vec![0.1, 0.2, -0.3, 0.4, -0.5, 0.6]);
        let go = Tensor::from_vec(Shape::vector(2, 2), vec![1., -1., 0.5, 2.]);
        let grads = linear_backward(&x, &w, &go);
        let loss = |x: &Tensor, w: &Tensor| linear(x, w, None).mul(&go).sum();
        let eps = 1e-3;
        for idx in 0..6 {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((num - grads.input.as_slice()[idx]).abs() < 1e-3);

            let mut wp = w.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[idx] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((num - grads.weight.as_slice()[idx]).abs() < 1e-3);
        }
        assert_eq!(grads.bias, vec![1.5, 1.0]);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(Shape::vector(2, 2), vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(Shape::vector(2, 2), vec![5., 6., 7., 8.]);
        assert_eq!(matmul(&a, &b).as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(Shape::vector(2, 3));
        let b = Tensor::zeros(Shape::vector(2, 2));
        matmul(&a, &b);
    }
}
