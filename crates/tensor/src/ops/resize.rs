//! Spatial resizing: nearest-neighbour up/down-sampling and bilinear resize.
//!
//! The EyeCoD pipeline downsamples 512×512 captures to 128×128 for
//! segmentation and resizes reconstructions to 256×256 before ROI cropping;
//! RITNet's decoder upsamples feature maps back up. These are the reshaping
//! "downsampling"/"upsampling" operations the accelerator's activation GB
//! arrangement supports (paper Fig. 11 (d)/(e)).

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Nearest-neighbour upsampling by an integer factor.
///
/// # Panics
///
/// Panics if `factor == 0`.
pub fn upsample_nearest(input: &Tensor, factor: usize) -> Tensor {
    assert!(factor > 0, "upsample factor must be non-zero");
    let s = input.shape();
    let oshape = Shape::new(s.n, s.c, s.h * factor, s.w * factor);
    Tensor::from_fn(oshape, |n, c, h, w| input.at(n, c, h / factor, w / factor))
}

/// Backward pass of [`upsample_nearest`]: sums the gradient over each
/// replicated block.
///
/// # Panics
///
/// Panics if `factor == 0` or `grad_out` is not shaped like
/// `input_shape` upsampled by `factor` — a silent mismatch would read
/// gradients into the wrong (or out-of-range) input cells.
pub fn upsample_nearest_backward(input_shape: Shape, grad_out: &Tensor, factor: usize) -> Tensor {
    assert!(factor > 0, "upsample factor must be non-zero");
    let os = grad_out.shape();
    assert_eq!(
        (os.n, os.c, os.h, os.w),
        (
            input_shape.n,
            input_shape.c,
            input_shape.h * factor,
            input_shape.w * factor
        ),
        "grad_out {os} must be input {input_shape} upsampled by {factor}"
    );
    let mut gin = Tensor::zeros(input_shape);
    for n in 0..os.n {
        for c in 0..os.c {
            for h in 0..os.h {
                for w in 0..os.w {
                    *gin.at_mut(n, c, h / factor, w / factor) += grad_out.at(n, c, h, w);
                }
            }
        }
    }
    gin
}

/// Box-filter downsampling by an integer factor (each output pixel is the
/// mean of a `factor × factor` block).
///
/// # Panics
///
/// Panics if the spatial extents are not divisible by `factor`.
pub fn downsample_avg(input: &Tensor, factor: usize) -> Tensor {
    assert!(factor > 0, "downsample factor must be non-zero");
    let s = input.shape();
    assert!(
        s.h.is_multiple_of(factor) && s.w.is_multiple_of(factor),
        "input {s} not divisible by factor {factor}"
    );
    let oshape = Shape::new(s.n, s.c, s.h / factor, s.w / factor);
    let inv = 1.0 / (factor * factor) as f32;
    Tensor::from_fn(oshape, |n, c, oy, ox| {
        let mut acc = 0.0;
        for dy in 0..factor {
            for dx in 0..factor {
                acc += input.at(n, c, oy * factor + dy, ox * factor + dx);
            }
        }
        acc * inv
    })
}

/// Bilinear resize to an arbitrary target resolution (align-corners = false
/// convention, matching common DNN framework behaviour).
pub fn resize_bilinear(input: &Tensor, out_h: usize, out_w: usize) -> Tensor {
    let s = input.shape();
    assert!(out_h > 0 && out_w > 0, "target extent must be non-zero");
    let scale_y = s.h as f32 / out_h as f32;
    let scale_x = s.w as f32 / out_w as f32;
    Tensor::from_fn(Shape::new(s.n, s.c, out_h, out_w), |n, c, oy, ox| {
        let fy = ((oy as f32 + 0.5) * scale_y - 0.5).clamp(0.0, (s.h - 1) as f32);
        let fx = ((ox as f32 + 0.5) * scale_x - 0.5).clamp(0.0, (s.w - 1) as f32);
        let y0 = fy.floor() as usize;
        let x0 = fx.floor() as usize;
        let y1 = (y0 + 1).min(s.h - 1);
        let x1 = (x0 + 1).min(s.w - 1);
        let dy = fy - y0 as f32;
        let dx = fx - x0 as f32;
        let v00 = input.at(n, c, y0, x0);
        let v01 = input.at(n, c, y0, x1);
        let v10 = input.at(n, c, y1, x0);
        let v11 = input.at(n, c, y1, x1);
        v00 * (1.0 - dy) * (1.0 - dx)
            + v01 * (1.0 - dy) * dx
            + v10 * dy * (1.0 - dx)
            + v11 * dy * dx
    })
}

/// [`resize_bilinear`] writing into a caller-owned tensor (allocation-free
/// once the output buffer is warm). Bit-identical to the allocating path.
pub fn resize_bilinear_into(input: &Tensor, out_h: usize, out_w: usize, out: &mut Tensor) {
    let s = input.shape();
    assert!(out_h > 0 && out_w > 0, "target extent must be non-zero");
    let scale_y = s.h as f32 / out_h as f32;
    let scale_x = s.w as f32 / out_w as f32;
    out.reset(Shape::new(s.n, s.c, out_h, out_w));
    let oshape = out.shape();
    let data = out.as_mut_slice();
    let mut idx = 0;
    for n in 0..oshape.n {
        for c in 0..oshape.c {
            for oy in 0..out_h {
                let fy = ((oy as f32 + 0.5) * scale_y - 0.5).clamp(0.0, (s.h - 1) as f32);
                let y0 = fy.floor() as usize;
                let y1 = (y0 + 1).min(s.h - 1);
                let dy = fy - y0 as f32;
                for ox in 0..out_w {
                    let fx = ((ox as f32 + 0.5) * scale_x - 0.5).clamp(0.0, (s.w - 1) as f32);
                    let x0 = fx.floor() as usize;
                    let x1 = (x0 + 1).min(s.w - 1);
                    let dx = fx - x0 as f32;
                    let v00 = input.at(n, c, y0, x0);
                    let v01 = input.at(n, c, y0, x1);
                    let v10 = input.at(n, c, y1, x0);
                    let v11 = input.at(n, c, y1, x1);
                    data[idx] = v00 * (1.0 - dy) * (1.0 - dx)
                        + v01 * (1.0 - dy) * dx
                        + v10 * dy * (1.0 - dx)
                        + v11 * dy * dx;
                    idx += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resize_into_matches_allocating_path() {
        let x = Tensor::from_fn(Shape::new(2, 2, 5, 7), |n, c, h, w| {
            (n * 31 + c * 17 + h * 7 + w) as f32 * 0.13
        });
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        for (oh, ow) in [(9usize, 3usize), (4, 11)] {
            resize_bilinear_into(&x, oh, ow, &mut out);
            assert_eq!(out.as_slice(), resize_bilinear(&x, oh, ow).as_slice());
        }
    }

    #[test]
    fn upsample_replicates() {
        let x = Tensor::from_vec(Shape::new(1, 1, 1, 2), vec![1., 2.]);
        let y = upsample_nearest(&x, 2);
        assert_eq!(y.as_slice(), &[1., 1., 2., 2., 1., 1., 2., 2.]);
    }

    #[test]
    fn upsample_backward_sums_blocks() {
        let g = Tensor::ones(Shape::new(1, 1, 2, 4));
        let gin = upsample_nearest_backward(Shape::new(1, 1, 1, 2), &g, 2);
        assert_eq!(gin.as_slice(), &[4., 4.]);
    }

    #[test]
    fn downsample_then_upsample_constant_is_identity() {
        let x = Tensor::full(Shape::new(1, 2, 4, 4), 3.0);
        let y = upsample_nearest(&downsample_avg(&x, 2), 2);
        assert_eq!(y, x);
    }

    #[test]
    fn downsample_averages_blocks() {
        let x = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![0., 2., 4., 6.]);
        assert_eq!(downsample_avg(&x, 2).as_slice(), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn downsample_rejects_ragged_sizes() {
        downsample_avg(&Tensor::zeros(Shape::new(1, 1, 3, 3)), 2);
    }

    #[test]
    #[should_panic(expected = "factor must be non-zero")]
    fn upsample_backward_rejects_zero_factor() {
        let g = Tensor::ones(Shape::new(1, 1, 2, 2));
        upsample_nearest_backward(Shape::new(1, 1, 2, 2), &g, 0);
    }

    #[test]
    #[should_panic(expected = "upsampled by 2")]
    fn upsample_backward_rejects_shape_mismatch() {
        // grad is 2x4 but input 1x2 upsampled by 2 would be 2x4 in w only:
        // here h is wrong (3 instead of 2)
        let g = Tensor::ones(Shape::new(1, 1, 3, 4));
        upsample_nearest_backward(Shape::new(1, 1, 1, 2), &g, 2);
    }

    #[test]
    #[should_panic(expected = "upsampled by 2")]
    fn upsample_backward_rejects_channel_mismatch() {
        let g = Tensor::ones(Shape::new(1, 2, 2, 4));
        upsample_nearest_backward(Shape::new(1, 1, 1, 2), &g, 2);
    }

    #[test]
    fn bilinear_identity_resize() {
        let x = Tensor::from_fn(Shape::new(1, 1, 4, 4), |_, _, h, w| (h * 4 + w) as f32);
        let y = resize_bilinear(&x, 4, 4);
        assert!(y.sub(&x).max_abs() < 1e-6);
    }

    #[test]
    fn bilinear_preserves_constant() {
        let x = Tensor::full(Shape::new(1, 1, 5, 7), 2.5);
        let y = resize_bilinear(&x, 9, 3);
        assert!(y.sub(&Tensor::full(y.shape(), 2.5)).max_abs() < 1e-6);
    }

    #[test]
    fn bilinear_interpolates_midpoint() {
        let x = Tensor::from_vec(Shape::new(1, 1, 1, 2), vec![0., 1.]);
        let y = resize_bilinear(&x, 1, 4);
        // midpoints at 0.25 and 0.75 of the source line
        assert!(y.at(0, 0, 0, 1) > 0.0 && y.at(0, 0, 0, 2) < 1.0);
        assert!(y.at(0, 0, 0, 1) < y.at(0, 0, 0, 2));
    }
}
