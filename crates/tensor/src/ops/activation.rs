//! Element-wise activation functions.

use crate::tensor::Tensor;

/// Rectified linear unit: `max(x, 0)`.
pub fn relu(input: &Tensor) -> Tensor {
    input.map(|x| x.max(0.0))
}

/// Backward pass of [`relu`]. The gradient flows only where the forward
/// input was positive.
pub fn relu_backward(input: &Tensor, grad_out: &Tensor) -> Tensor {
    input.zip(grad_out, |x, g| if x > 0.0 { g } else { 0.0 })
}

/// Leaky ReLU with negative slope `alpha` (RITNet uses leaky activations).
pub fn leaky_relu(input: &Tensor, alpha: f32) -> Tensor {
    input.map(|x| if x > 0.0 { x } else { alpha * x })
}

/// Backward pass of [`leaky_relu`].
pub fn leaky_relu_backward(input: &Tensor, grad_out: &Tensor, alpha: f32) -> Tensor {
    input.zip(grad_out, |x, g| if x > 0.0 { g } else { alpha * g })
}

/// Channel-wise softmax: at every spatial position the channel vector is
/// normalised to a probability distribution (numerically stabilised).
/// This is what turns segmentation logits into per-pixel class
/// probabilities.
pub fn softmax_channels(input: &Tensor) -> Tensor {
    let s = input.shape();
    let mut out = Tensor::zeros(s);
    for n in 0..s.n {
        for h in 0..s.h {
            for w in 0..s.w {
                let mut maxv = f32::NEG_INFINITY;
                for c in 0..s.c {
                    maxv = maxv.max(input.at(n, c, h, w));
                }
                let mut sum = 0.0f32;
                for c in 0..s.c {
                    sum += (input.at(n, c, h, w) - maxv).exp();
                }
                for c in 0..s.c {
                    *out.at_mut(n, c, h, w) = (input.at(n, c, h, w) - maxv).exp() / sum;
                }
            }
        }
    }
    out
}

/// Logistic sigmoid `1 / (1 + e^{-x})`.
pub fn sigmoid(input: &Tensor) -> Tensor {
    input.map(|x| 1.0 / (1.0 + (-x).exp()))
}

/// Backward pass of [`sigmoid`]; takes the forward *output* (not input).
pub fn sigmoid_backward(output: &Tensor, grad_out: &Tensor) -> Tensor {
    output.zip(grad_out, |y, g| g * y * (1.0 - y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(Shape::vector(1, 4), vec![-1., 0., 0.5, 2.]);
        assert_eq!(relu(&x).as_slice(), &[0., 0., 0.5, 2.]);
    }

    #[test]
    fn relu_backward_masks() {
        let x = Tensor::from_vec(Shape::vector(1, 3), vec![-1., 0., 2.]);
        let g = Tensor::ones(Shape::vector(1, 3));
        assert_eq!(relu_backward(&x, &g).as_slice(), &[0., 0., 1.]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let x = Tensor::from_vec(Shape::vector(1, 2), vec![-2., 4.]);
        assert_eq!(leaky_relu(&x, 0.1).as_slice(), &[-0.2, 4.0]);
        let g = Tensor::ones(Shape::vector(1, 2));
        assert_eq!(leaky_relu_backward(&x, &g, 0.1).as_slice(), &[0.1, 1.0]);
    }

    #[test]
    fn softmax_is_a_distribution_per_pixel() {
        let x = Tensor::from_vec(
            crate::shape::Shape::new(1, 3, 1, 2),
            vec![1., -50., 2., 0., 3., 50.],
        );
        let y = softmax_channels(&x);
        for w in 0..2 {
            let sum: f32 = (0..3).map(|c| y.at(0, c, 0, w)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // the +50 logit dominates its pixel
        assert!(y.at(0, 2, 0, 1) > 0.999);
        // invariant to a constant shift
        let y2 = softmax_channels(&x.map(|v| v + 7.0));
        assert!(y.sub(&y2).max_abs() < 1e-6);
    }

    #[test]
    fn sigmoid_range_and_gradient() {
        let x = Tensor::from_vec(Shape::vector(1, 3), vec![-10., 0., 10.]);
        let y = sigmoid(&x);
        assert!(y.at(0, 0, 0, 0) < 1e-4);
        assert!((y.at(0, 1, 0, 0) - 0.5).abs() < 1e-6);
        assert!(y.at(0, 2, 0, 0) > 1.0 - 1e-4);
        let g = Tensor::ones(Shape::vector(1, 3));
        let gb = sigmoid_backward(&y, &g);
        assert!((gb.at(0, 1, 0, 0) - 0.25).abs() < 1e-6);
    }
}
