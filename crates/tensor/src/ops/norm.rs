//! Batch normalisation.

use crate::tensor::Tensor;

/// Per-channel statistics cached by the training-mode forward pass of
/// [`batch_norm`], required by [`batch_norm_backward`].
#[derive(Debug, Clone)]
pub struct BatchNormCache {
    /// Normalised activations `x̂` (before scale/shift).
    pub normalized: Tensor,
    /// Per-channel batch standard deviation (with epsilon folded in).
    pub std: Vec<f32>,
}

/// Batch normalisation over the channel dimension.
///
/// In training mode (`running == None` is not allowed; pass the running
/// buffers and set `train = true`) batch statistics are used and the running
/// mean/variance are updated with `momentum`. In inference mode the running
/// statistics are used directly.
///
/// Returns the output plus, in training mode, a cache for the backward pass.
///
/// # Panics
///
/// Panics if the parameter/stat vectors do not have one entry per channel.
#[allow(clippy::too_many_arguments)]
pub fn batch_norm(
    input: &Tensor,
    gamma: &[f32],
    beta: &[f32],
    running_mean: &mut [f32],
    running_var: &mut [f32],
    eps: f32,
    momentum: f32,
    train: bool,
) -> (Tensor, Option<BatchNormCache>) {
    let s = input.shape();
    let c = s.c;
    assert_eq!(gamma.len(), c, "gamma must have one entry per channel");
    assert_eq!(beta.len(), c, "beta must have one entry per channel");
    assert_eq!(
        running_mean.len(),
        c,
        "running_mean must have one entry per channel"
    );
    assert_eq!(
        running_var.len(),
        c,
        "running_var must have one entry per channel"
    );

    let count = (s.n * s.spatial_len()) as f32;
    #[allow(clippy::needless_range_loop)] // indexed in lockstep with per-channel stats
    let (mean, var) = if train {
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for n in 0..s.n {
            for ch in 0..c {
                for &v in input.channel_plane(n, ch) {
                    mean[ch] += v;
                }
            }
        }
        for m in &mut mean {
            *m /= count;
        }
        for n in 0..s.n {
            for ch in 0..c {
                for &v in input.channel_plane(n, ch) {
                    let d = v - mean[ch];
                    var[ch] += d * d;
                }
            }
        }
        for v in &mut var {
            *v /= count;
        }
        for ch in 0..c {
            running_mean[ch] = (1.0 - momentum) * running_mean[ch] + momentum * mean[ch];
            running_var[ch] = (1.0 - momentum) * running_var[ch] + momentum * var[ch];
        }
        (mean, var)
    } else {
        (running_mean.to_vec(), running_var.to_vec())
    };

    let std: Vec<f32> = var.iter().map(|&v| (v + eps).sqrt()).collect();
    let normalized = Tensor::from_fn(s, |n, ch, h, w| {
        (input.at(n, ch, h, w) - mean[ch]) / std[ch]
    });
    let out = Tensor::from_fn(s, |n, ch, h, w| {
        gamma[ch] * normalized.at(n, ch, h, w) + beta[ch]
    });
    let cache = train.then_some(BatchNormCache { normalized, std });
    (out, cache)
}

/// Inference-mode batch normalisation in place: the allocation-free
/// counterpart of [`batch_norm`] with `train = false`, using the running
/// statistics directly. Applies exactly the same arithmetic
/// (`gamma · (x − mean) / sqrt(var + eps) + beta`, with the division by the
/// per-channel standard deviation as a separate step), so the results are
/// bit-identical to the allocating path.
///
/// # Panics
///
/// Panics if the parameter/stat vectors do not have one entry per channel.
pub fn batch_norm_infer_inplace(
    x: &mut Tensor,
    gamma: &[f32],
    beta: &[f32],
    running_mean: &[f32],
    running_var: &[f32],
    eps: f32,
) {
    let s = x.shape();
    let c = s.c;
    assert_eq!(gamma.len(), c, "gamma must have one entry per channel");
    assert_eq!(beta.len(), c, "beta must have one entry per channel");
    assert_eq!(
        running_mean.len(),
        c,
        "running_mean must have one entry per channel"
    );
    assert_eq!(
        running_var.len(),
        c,
        "running_var must have one entry per channel"
    );
    let plane = s.spatial_len();
    let data = x.as_mut_slice();
    for n in 0..s.n {
        for ch in 0..c {
            let std = (running_var[ch] + eps).sqrt();
            let (g, b, m) = (gamma[ch], beta[ch], running_mean[ch]);
            let base = (n * c + ch) * plane;
            for v in &mut data[base..base + plane] {
                *v = g * ((*v - m) / std) + b;
            }
        }
    }
}

/// Gradients produced by [`batch_norm_backward`].
#[derive(Debug, Clone)]
pub struct BatchNormGrads {
    /// Gradient with respect to the input.
    pub input: Tensor,
    /// Gradient with respect to gamma.
    pub gamma: Vec<f32>,
    /// Gradient with respect to beta.
    pub beta: Vec<f32>,
}

/// Backward pass of training-mode [`batch_norm`].
pub fn batch_norm_backward(
    cache: &BatchNormCache,
    gamma: &[f32],
    grad_out: &Tensor,
) -> BatchNormGrads {
    let s = grad_out.shape();
    let c = s.c;
    let count = (s.n * s.spatial_len()) as f32;
    let mut g_gamma = vec![0.0f32; c];
    let mut g_beta = vec![0.0f32; c];
    for n in 0..s.n {
        for ch in 0..c {
            let go = grad_out.channel_plane(n, ch);
            let xn = cache.normalized.channel_plane(n, ch);
            for (g, x) in go.iter().zip(xn) {
                g_gamma[ch] += g * x;
                g_beta[ch] += g;
            }
        }
    }
    // dL/dx = gamma/std * (g - mean(g) - x̂ * mean(g·x̂))
    let gin = Tensor::from_fn(s, |n, ch, h, w| {
        let g = grad_out.at(n, ch, h, w);
        let xn = cache.normalized.at(n, ch, h, w);
        gamma[ch] / cache.std[ch] * (g - g_beta[ch] / count - xn * g_gamma[ch] / count)
    });
    BatchNormGrads {
        input: gin,
        gamma: g_gamma,
        beta: g_beta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn train_mode_normalizes_batch() {
        let x = Tensor::from_vec(Shape::new(2, 1, 1, 2), vec![1., 3., 5., 7.]);
        let mut rm = vec![0.0];
        let mut rv = vec![1.0];
        let (y, cache) = batch_norm(&x, &[1.0], &[0.0], &mut rm, &mut rv, 1e-5, 0.1, true);
        assert!(cache.is_some());
        assert!(y.mean().abs() < 1e-5);
        let var: f32 = y.as_slice().iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!((var - 1.0).abs() < 1e-3);
        // running stats moved toward batch stats (mean 4, var 5)
        assert!((rm[0] - 0.4).abs() < 1e-5);
    }

    #[test]
    fn inference_uses_running_stats() {
        let x = Tensor::from_vec(Shape::new(1, 1, 1, 2), vec![2.0, 4.0]);
        let mut rm = vec![2.0];
        let mut rv = vec![4.0];
        let (y, cache) = batch_norm(&x, &[2.0], &[1.0], &mut rm, &mut rv, 0.0, 0.1, false);
        assert!(cache.is_none());
        assert!((y.at(0, 0, 0, 0) - 1.0).abs() < 1e-5); // (2-2)/2*2+1
        assert!((y.at(0, 0, 0, 1) - 3.0).abs() < 1e-5); // (4-2)/2*2+1
                                                        // running stats untouched in inference
        assert_eq!(rm, vec![2.0]);
    }

    #[test]
    fn inplace_inference_matches_batch_norm() {
        let x = Tensor::from_vec(
            Shape::new(2, 2, 1, 2),
            vec![1., 2., -1., 0.5, 3., -2., 0., 1.],
        );
        let mut rm = vec![0.3, -0.2];
        let mut rv = vec![1.5, 0.8];
        let (want, _) = batch_norm(
            &x,
            &[1.2, 0.6],
            &[0.1, -0.4],
            &mut rm,
            &mut rv,
            1e-5,
            0.1,
            false,
        );
        let mut got = x.clone();
        batch_norm_infer_inplace(&mut got, &[1.2, 0.6], &[0.1, -0.4], &rm, &rv, 1e-5);
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn backward_finite_difference() {
        let x = Tensor::from_vec(
            Shape::new(2, 2, 1, 2),
            vec![1., 2., -1., 0.5, 3., -2., 0., 1.],
        );
        let gamma = [1.5, 0.7];
        let beta = [0.1, -0.3];
        let go = Tensor::from_vec(
            Shape::new(2, 2, 1, 2),
            vec![0.5, -1., 2., 0.3, -0.7, 1., 0.2, -0.4],
        );
        let forward = |x: &Tensor| {
            let mut rm = vec![0.0; 2];
            let mut rv = vec![1.0; 2];
            batch_norm(x, &gamma, &beta, &mut rm, &mut rv, 1e-5, 0.1, true)
        };
        let (_, cache) = forward(&x);
        let grads = batch_norm_backward(&cache.unwrap(), &gamma, &go);
        let loss = |x: &Tensor| forward(x).0.mul(&go).sum();
        let eps = 1e-2;
        for idx in [0usize, 3, 5, 7] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            let ana = grads.input.as_slice()[idx];
            assert!((num - ana).abs() < 5e-2, "idx {idx}: num={num} ana={ana}");
        }
    }
}
