//! Max / average pooling.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Cache of winning positions from a [`max_pool2d`] forward pass, needed by
/// the backward pass.
#[derive(Debug, Clone)]
pub struct MaxPoolCache {
    input_shape: Shape,
    /// For each output element, the flat input index that won the max.
    argmax: Vec<usize>,
}

/// 2×2-style max pooling with square window `k` and stride `stride`
/// (no padding). Returns the pooled tensor and a cache for the backward pass.
///
/// # Panics
///
/// Panics if the window does not fit the input.
pub fn max_pool2d(input: &Tensor, k: usize, stride: usize) -> (Tensor, MaxPoolCache) {
    let ishape = input.shape();
    let oshape = ishape.conv_output(ishape.c, k, 0, stride);
    let mut argmax = Vec::with_capacity(oshape.len());
    let data = input.as_slice();
    let out = Tensor::from_fn(oshape, |n, c, oy, ox| {
        let mut best = f32::NEG_INFINITY;
        let mut best_idx = 0;
        for kh in 0..k {
            for kw in 0..k {
                let idx = ishape.index(n, c, oy * stride + kh, ox * stride + kw);
                if data[idx] > best {
                    best = data[idx];
                    best_idx = idx;
                }
            }
        }
        argmax.push(best_idx);
        best
    });
    (
        out,
        MaxPoolCache {
            input_shape: ishape,
            argmax,
        },
    )
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the input
/// element that won the max.
pub fn max_pool2d_backward(cache: &MaxPoolCache, grad_out: &Tensor) -> Tensor {
    assert_eq!(
        cache.argmax.len(),
        grad_out.shape().len(),
        "cache does not match grad_out"
    );
    let mut gin = Tensor::zeros(cache.input_shape);
    let gd = gin.as_mut_slice();
    for (&idx, &g) in cache.argmax.iter().zip(grad_out.as_slice()) {
        gd[idx] += g;
    }
    gin
}

/// Average pooling with square window `k` and stride `stride` (no padding).
pub fn avg_pool2d(input: &Tensor, k: usize, stride: usize) -> Tensor {
    let ishape = input.shape();
    let oshape = ishape.conv_output(ishape.c, k, 0, stride);
    let inv = 1.0 / (k * k) as f32;
    Tensor::from_fn(oshape, |n, c, oy, ox| {
        let mut acc = 0.0;
        for kh in 0..k {
            for kw in 0..k {
                acc += input.at(n, c, oy * stride + kh, ox * stride + kw);
            }
        }
        acc * inv
    })
}

/// Backward pass of [`avg_pool2d`].
pub fn avg_pool2d_backward(
    input_shape: Shape,
    grad_out: &Tensor,
    k: usize,
    stride: usize,
) -> Tensor {
    let inv = 1.0 / (k * k) as f32;
    let mut gin = Tensor::zeros(input_shape);
    let oshape = grad_out.shape();
    for n in 0..oshape.n {
        for c in 0..oshape.c {
            for oy in 0..oshape.h {
                for ox in 0..oshape.w {
                    let g = grad_out.at(n, c, oy, ox) * inv;
                    for kh in 0..k {
                        for kw in 0..k {
                            *gin.at_mut(n, c, oy * stride + kh, ox * stride + kw) += g;
                        }
                    }
                }
            }
        }
    }
    gin
}

/// Global average pooling: reduces each channel plane to a single value,
/// returning `(N, C, 1, 1)`.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    let s = input.shape();
    let inv = 1.0 / s.spatial_len() as f32;
    Tensor::from_fn(Shape::vector(s.n, s.c), |n, c, _, _| {
        input.channel_plane(n, c).iter().sum::<f32>() * inv
    })
}

/// [`global_avg_pool`] writing into a caller-owned tensor (allocation-free
/// once the output buffer is warm). Bit-identical to the allocating path.
pub fn global_avg_pool_into(input: &Tensor, out: &mut Tensor) {
    let s = input.shape();
    let inv = 1.0 / s.spatial_len() as f32;
    out.reset(Shape::vector(s.n, s.c));
    let data = out.as_mut_slice();
    let mut idx = 0;
    for n in 0..s.n {
        for c in 0..s.c {
            data[idx] = input.channel_plane(n, c).iter().sum::<f32>() * inv;
            idx += 1;
        }
    }
}

/// Backward pass of [`global_avg_pool`].
pub fn global_avg_pool_backward(input_shape: Shape, grad_out: &Tensor) -> Tensor {
    let inv = 1.0 / input_shape.spatial_len() as f32;
    Tensor::from_fn(input_shape, |n, c, _, _| grad_out.at(n, c, 0, 0) * inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_avg_pool_into_matches_allocating_path() {
        let x = Tensor::from_fn(Shape::new(2, 3, 4, 5), |n, c, h, w| {
            (n * 7 + c * 3 + h * 5 + w) as f32 * 0.17 - 1.0
        });
        let mut out = Tensor::zeros(Shape::vector(1, 1));
        global_avg_pool_into(&x, &mut out);
        assert_eq!(out.as_slice(), global_avg_pool(&x).as_slice());
    }

    #[test]
    fn max_pool_picks_maximum() {
        let x = Tensor::from_vec(
            Shape::new(1, 1, 2, 4),
            vec![1., 5., 2., 0., 3., 4., -1., 7.],
        );
        let (y, _) = max_pool2d(&x, 2, 2);
        assert_eq!(y.as_slice(), &[5., 7.]);
    }

    #[test]
    fn max_pool_backward_routes_to_winner() {
        let x = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![1., 5., 2., 0.]);
        let (_, cache) = max_pool2d(&x, 2, 2);
        let g = Tensor::from_vec(Shape::new(1, 1, 1, 1), vec![3.0]);
        let gin = max_pool2d_backward(&cache, &g);
        assert_eq!(gin.as_slice(), &[0., 3., 0., 0.]);
    }

    #[test]
    fn avg_pool_averages() {
        let x = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![1., 2., 3., 6.]);
        let y = avg_pool2d(&x, 2, 2);
        assert_eq!(y.as_slice(), &[3.0]);
        let g = Tensor::from_vec(Shape::new(1, 1, 1, 1), vec![4.0]);
        let gin = avg_pool2d_backward(x.shape(), &g, 2, 2);
        assert_eq!(gin.as_slice(), &[1., 1., 1., 1.]);
    }

    #[test]
    fn global_avg_pool_round_trip() {
        let x = Tensor::from_fn(Shape::new(2, 3, 4, 4), |n, c, _, _| (n + c) as f32);
        let y = global_avg_pool(&x);
        assert_eq!(y.shape().dims(), (2, 3, 1, 1));
        assert_eq!(y.at(1, 2, 0, 0), 3.0);
        let gin = global_avg_pool_backward(x.shape(), &Tensor::ones(y.shape()));
        assert!((gin.sum() - 6.0).abs() < 1e-5);
    }
}
