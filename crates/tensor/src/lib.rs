//! # eyecod-tensor
//!
//! A small, dependency-light neural-network substrate used throughout the
//! EyeCoD reproduction: NCHW [`Tensor`]s, the convolution / linear / pooling
//! operators needed by the paper's networks (RITNet, FBNet-C100, ResNet18,
//! MobileNet, U-Net), explicit backward passes so proxy networks can be
//! trained from scratch, simple optimisers, and symmetric int8 quantisation
//! matching the paper's 8-bit deployments.
//!
//! The crate favours correctness and clarity over raw speed; every operator
//! has a naive reference implementation that the optimised paths are tested
//! against.
//!
//! # Example
//!
//! ```
//! use eyecod_tensor::{Tensor, Shape};
//! use eyecod_tensor::ops::conv2d;
//!
//! let input = Tensor::ones(Shape::new(1, 3, 8, 8));
//! let weight = Tensor::ones(Shape::new(4, 3, 3, 3));
//! let out = conv2d(&input, &weight, None, 1, 1, 1);
//! assert_eq!(out.shape().dims(), (1, 4, 8, 8));
//! ```

pub mod init;
pub mod layer;
pub mod loss;
pub mod ops;
pub mod optim;
pub mod quant;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use layer::{Layer, Param};
pub use shape::Shape;
pub use tensor::Tensor;
