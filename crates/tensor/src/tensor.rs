//! The dense NCHW [`Tensor`] type.

use crate::shape::Shape;
use std::fmt;

/// A dense, row-major NCHW tensor of `f32` values.
///
/// This is the working currency of the EyeCoD reproduction: images, feature
/// maps, weights and gradients are all `Tensor`s. The type deliberately keeps
/// a single element type and layout; the accelerator simulator reasons about
/// layouts symbolically instead.
///
/// # Example
///
/// ```
/// use eyecod_tensor::{Tensor, Shape};
/// let mut t = Tensor::zeros(Shape::new(1, 1, 2, 2));
/// *t.at_mut(0, 0, 1, 1) = 3.0;
/// assert_eq!(t.at(0, 0, 1, 1), 3.0);
/// assert_eq!(t.sum(), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: Shape) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        Tensor {
            shape,
            data: vec![value; shape.len()],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape} ({} elements)",
            data.len(),
            shape.len()
        );
        Tensor { shape, data }
    }

    /// Creates a tensor by evaluating `f(n, c, h, w)` at every position.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize, usize, usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        data.push(f(n, c, h, w));
                    }
                }
            }
        }
        Tensor { shape, data }
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// A read-only view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// A mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access by 4-D coordinates.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.index(n, c, h, w)]
    }

    /// Mutable element access by 4-D coordinates.
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let i = self.shape.index(n, c, h, w);
        &mut self.data[i]
    }

    /// Reinterprets the data with a new shape of equal length.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: Shape) -> Self {
        assert_eq!(
            self.shape.len(),
            shape.len(),
            "cannot reshape {} into {shape}",
            self.shape
        );
        self.shape = shape;
        self
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two equal-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in zip");
        Tensor {
            shape: self.shape,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise multiplication.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place `self += other * s` (AXPY), used by optimisers.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Fills the tensor with a constant value.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.data.len() as f32
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Maximum absolute value (`‖·‖∞`).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Euclidean norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Extracts one batch item as a new single-item tensor.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn batch_item(&self, n: usize) -> Tensor {
        assert!(n < self.shape.n, "batch index {n} out of range");
        let item = self.shape.item_len();
        let shape = Shape::new(1, self.shape.c, self.shape.h, self.shape.w);
        Tensor::from_vec(shape, self.data[n * item..(n + 1) * item].to_vec())
    }

    /// Borrows batch item `n` as a contiguous `c*h*w` slice — the
    /// allocation-free gather/scatter primitive for batching many
    /// single-item tensors into one batch buffer (and reading per-item
    /// rows back out).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn batch_item_slice(&self, n: usize) -> &[f32] {
        assert!(n < self.shape.n, "batch index {n} out of range");
        let item = self.shape.item_len();
        &self.data[n * item..(n + 1) * item]
    }

    /// Mutable twin of [`Tensor::batch_item_slice`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn batch_item_slice_mut(&mut self, n: usize) -> &mut [f32] {
        assert!(n < self.shape.n, "batch index {n} out of range");
        let item = self.shape.item_len();
        &mut self.data[n * item..(n + 1) * item]
    }

    /// Stacks single-item tensors along the batch dimension.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or item shapes differ.
    pub fn stack(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "cannot stack zero tensors");
        let first = items[0].shape();
        let mut data = Vec::with_capacity(first.item_len() * items.len());
        let mut n_total = 0;
        for t in items {
            assert_eq!(
                (t.shape().c, t.shape().h, t.shape().w),
                (first.c, first.h, first.w),
                "stacked tensors must share item shape"
            );
            n_total += t.shape().n;
            data.extend_from_slice(t.as_slice());
        }
        Tensor::from_vec(Shape::new(n_total, first.c, first.h, first.w), data)
    }

    /// A single channel plane `(h, w)` of batch item `n`, as a flat slice.
    pub fn channel_plane(&self, n: usize, c: usize) -> &[f32] {
        let start = self.shape.index(n, c, 0, 0);
        &self.data[start..start + self.shape.spatial_len()]
    }

    /// Returns true if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Reshapes this tensor in place to `shape`, zero-filled, reusing the
    /// existing allocation when its capacity suffices. The workhorse of the
    /// workspace (`*_into`) kernels: after warm-up, reshaping a scratch
    /// tensor allocates nothing.
    pub fn reset(&mut self, shape: Shape) {
        self.data.clear();
        self.data.resize(shape.len(), 0.0);
        self.shape = shape;
    }

    /// Makes this tensor an element-wise copy of `other`, reusing the
    /// existing allocation when possible.
    pub fn copy_from(&mut self, other: &Tensor) {
        self.data.clear();
        self.data.extend_from_slice(&other.data);
        self.shape = other.shape;
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor({}, min={:.4}, max={:.4}, mean={:.4})",
            self.shape,
            self.min(),
            self.max(),
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(shape: Shape) -> Tensor {
        let len = shape.len();
        Tensor::from_vec(shape, (0..len).map(|i| i as f32).collect())
    }

    #[test]
    fn constructors() {
        let s = Shape::new(1, 2, 2, 2);
        assert_eq!(Tensor::zeros(s).sum(), 0.0);
        assert_eq!(Tensor::ones(s).sum(), 8.0);
        assert_eq!(Tensor::full(s, 2.5).mean(), 2.5);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_len() {
        Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![1.0; 3]);
    }

    #[test]
    fn from_fn_ordering() {
        let t = Tensor::from_fn(Shape::new(1, 2, 2, 2), |_, c, h, w| {
            (c * 4 + h * 2 + w) as f32
        });
        assert_eq!(t.as_slice(), &[0., 1., 2., 3., 4., 5., 6., 7.]);
    }

    #[test]
    fn elementwise_math() {
        let a = seq(Shape::new(1, 1, 2, 2));
        let b = Tensor::ones(Shape::new(1, 1, 2, 2));
        assert_eq!(a.add(&b).as_slice(), &[1., 2., 3., 4.]);
        assert_eq!(a.sub(&b).as_slice(), &[-1., 0., 1., 2.]);
        assert_eq!(a.mul(&a).as_slice(), &[0., 1., 4., 9.]);
        assert_eq!(a.scale(2.0).as_slice(), &[0., 2., 4., 6.]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(Shape::new(1, 1, 1, 3));
        let g = Tensor::from_vec(Shape::new(1, 1, 1, 3), vec![1., 2., 3.]);
        a.axpy(-0.5, &g);
        assert_eq!(a.as_slice(), &[0.5, 0.0, -0.5]);
    }

    #[test]
    fn statistics() {
        let t = Tensor::from_vec(Shape::new(1, 1, 1, 4), vec![-2., 0., 1., 5.]);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.max(), 5.0);
        assert_eq!(t.max_abs(), 5.0);
        assert_eq!(t.mean(), 1.0);
        assert!((t.norm() - (4.0f32 + 1.0 + 25.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn batch_item_and_stack_round_trip() {
        let t = seq(Shape::new(3, 2, 2, 2));
        let items: Vec<Tensor> = (0..3).map(|n| t.batch_item(n)).collect();
        let restacked = Tensor::stack(&items);
        assert_eq!(restacked, t);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = seq(Shape::new(1, 2, 2, 2)).reshape(Shape::vector(2, 4));
        assert_eq!(t.shape().dims(), (2, 4, 1, 1));
        assert_eq!(t.at(1, 3, 0, 0), 7.0);
    }

    #[test]
    fn channel_plane_view() {
        let t = seq(Shape::new(1, 2, 2, 2));
        assert_eq!(t.channel_plane(0, 1), &[4., 5., 6., 7.]);
    }

    #[test]
    fn reset_reuses_capacity_and_zeroes() {
        let mut t = seq(Shape::new(1, 2, 2, 2));
        let cap_probe = t.as_slice().as_ptr();
        t.reset(Shape::new(1, 1, 2, 2));
        assert_eq!(t.shape().dims(), (1, 1, 2, 2));
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(t.as_slice().as_ptr(), cap_probe, "no realloc on shrink");
        let src = seq(Shape::new(1, 1, 1, 3));
        t.copy_from(&src);
        assert_eq!(t, src);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(Shape::new(1, 1, 1, 2));
        assert!(!t.has_non_finite());
        *t.at_mut(0, 0, 0, 1) = f32::NAN;
        assert!(t.has_non_finite());
    }
}
